"""Max-min fairness: water-filling allocation properties."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.des.kernel import Kernel
from repro.netmodel.maxmin import MaxMinStarNetwork, maxmin_rates
from repro.netmodel.params import NetworkParams


def test_empty_flows():
    assert maxmin_rates([], 1.0) == []


def test_single_flow_gets_full_capacity():
    assert maxmin_rates([(0, 1)], 10.0) == [pytest.approx(10.0)]


def test_shared_egress_split_evenly():
    rates = maxmin_rates([(0, 1), (0, 2)], 10.0)
    assert rates == [pytest.approx(5.0), pytest.approx(5.0)]


def test_redistribution_beats_equal_share():
    """0->1 bottlenecked at the shared ingress of 1; 0->2 takes the rest."""
    rates = maxmin_rates([(0, 1), (0, 2), (3, 1)], 12.0)
    # ingress of node 1 shared: flows 0 and 2 get 6 each; flow 1 (0->2)
    # gets the remaining egress of node 0: 12 - 6 = 6... but then egress
    # of 0 carries 6+6=12 = capacity (feasible).
    assert rates[0] == pytest.approx(6.0)
    assert rates[2] == pytest.approx(6.0)
    assert rates[1] == pytest.approx(6.0)


def test_asymmetric_bottleneck_redistributes():
    """Three flows out of node 0; one also constrained at its destination."""
    # 1 receives from 0 and from 2 and from 3: ingress of 1 split 3 ways=4;
    # flow 0->4 then gets egress leftover 12-4=8.
    rates = maxmin_rates([(0, 1), (2, 1), (3, 1), (0, 4)], 12.0)
    assert rates[0] == pytest.approx(4.0)
    assert rates[1] == pytest.approx(4.0)
    assert rates[2] == pytest.approx(4.0)
    assert rates[3] == pytest.approx(8.0)


def test_float_drift_never_yields_negative_rates():
    """Regression: repeated residual-capacity subtraction drifted a few
    ulps below zero (observed: -5.6e-16 on this exact case), which could
    later surface as a negative fair share and trip the fluid pool's
    invalid-rate guard.  The residual is now clamped at zero."""
    flows = [
        (2, 0), (5, 0), (5, 0), (1, 3), (3, 0), (1, 2),
        (0, 4), (3, 0), (1, 0), (4, 0), (5, 2),
    ]
    capacity = 3.3
    rates = maxmin_rates(flows, capacity)
    assert all(r >= 0.0 for r in rates)
    # Feasibility still holds with the clamp in place.
    out_load: dict[int, float] = {}
    in_load: dict[int, float] = {}
    for (src, dst), rate in zip(flows, rates):
        out_load[src] = out_load.get(src, 0.0) + rate
        in_load[dst] = in_load.get(dst, 0.0) + rate
    for load in list(out_load.values()) + list(in_load.values()):
        assert load <= capacity * (1 + 1e-9)


@settings(deadline=None, max_examples=100)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=7),
            st.integers(min_value=0, max_value=7),
        ).filter(lambda t: t[0] != t[1]),
        min_size=1,
        max_size=25,
    ),
    st.sampled_from([0.1, 0.3, 1 / 3, 1 / 7, 1 / 11, 2.3, 3.3]),
)
def test_awkward_capacities_stay_feasible_and_non_negative(flows, capacity):
    """The clamp plus the per-link invariant check hold for capacities
    whose fair shares are not exactly representable."""
    rates = maxmin_rates(flows, capacity)  # invariant check runs inside
    assert all(r >= 0.0 for r in rates)


flows_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=5), st.integers(min_value=0, max_value=5)
    ).filter(lambda t: t[0] != t[1]),
    min_size=1,
    max_size=15,
)


@settings(deadline=None, max_examples=100)
@given(flows_strategy, st.floats(min_value=0.5, max_value=100.0))
def test_maxmin_feasibility_and_positivity(flows, capacity):
    """No link over capacity; every flow gets a strictly positive rate."""
    rates = maxmin_rates(flows, capacity)
    assert all(r > 0 for r in rates)
    out_load: dict[int, float] = {}
    in_load: dict[int, float] = {}
    for (src, dst), rate in zip(flows, rates):
        out_load[src] = out_load.get(src, 0.0) + rate
        in_load[dst] = in_load.get(dst, 0.0) + rate
    for load in list(out_load.values()) + list(in_load.values()):
        assert load <= capacity * (1 + 1e-9)


@settings(deadline=None, max_examples=60)
@given(flows_strategy, st.floats(min_value=0.5, max_value=100.0))
def test_maxmin_bottleneck_property(flows, capacity):
    """Each flow crosses at least one saturated link where it is maximal."""
    rates = maxmin_rates(flows, capacity)
    out_load: dict[int, float] = {}
    in_load: dict[int, float] = {}
    for (src, dst), rate in zip(flows, rates):
        out_load[src] = out_load.get(src, 0.0) + rate
        in_load[dst] = in_load.get(dst, 0.0) + rate
    for (src, dst), rate in zip(flows, rates):
        out_saturated = out_load[src] >= capacity * (1 - 1e-9)
        in_saturated = in_load[dst] >= capacity * (1 - 1e-9)
        assert out_saturated or in_saturated
        # Maximality at one of its saturated links.
        maximal = False
        if out_saturated:
            peers = [r for (s, _), r in zip(flows, rates) if s == src]
            maximal |= rate >= max(peers) - 1e-9
        if in_saturated:
            peers = [r for (_, d), r in zip(flows, rates) if d == dst]
            maximal |= rate >= max(peers) - 1e-9
        assert maximal


def test_maxmin_network_end_to_end(kernel):
    net = MaxMinStarNetwork(kernel, NetworkParams(latency=0.0, bandwidth=1e6))
    done = {}
    net.submit(0, 1, 1e6, lambda tr: done.setdefault("a", kernel.now))
    net.submit(0, 2, 1e6, lambda tr: done.setdefault("b", kernel.now))
    net.submit(3, 1, 1e6, lambda tr: done.setdefault("c", kernel.now))
    kernel.run()
    # All links saturated at 0.5 each here; same as equal share for this
    # symmetric pattern.
    assert done["a"] == pytest.approx(2.0)
    # After a completes at t=2 max-min redistributes: b and c speed up to
    # full rate, finishing their remaining 0 bytes... they also had 0.5
    # rate so finish at 2.0 as well.
    assert done["b"] == pytest.approx(2.0)
    assert done["c"] == pytest.approx(2.0)
