"""Warm-started max-min re-solve: equivalence, accounting, invalidation.

The cascade path of :class:`repro.netmodel.base.LinkComponentAllocator`
replays the previous whole-pool solve's saturation prefix and re-solves
only the suffix the delta touched (see ``docs/performance.md``).  These
tests pin:

* **exactness** — randomized dense and sparse flow churn (add/remove
  bursts, capacity edits) produces, after every update, exactly the rates
  a from-scratch :func:`~repro.netmodel.maxmin.maxmin_rates` assigns;
* **accounting** — warm starts and full fallbacks partition the cascades,
  and the dense-traffic fallback rate stays strictly below the
  warm-start-disabled (PR 2) level;
* **invalidation** — capacity edits and pool-emptying updates drop the
  cached saturation order instead of replaying stale state.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.des.fluid import FluidTask
from repro.des.kernel import Kernel
from repro.netmodel.maxmin import (
    IncrementalMaxMinAllocator,
    MaxMinStarNetwork,
    maxmin_rates,
)
from repro.netmodel.params import NetworkParams


class FakeTransfer:
    def __init__(self, src, dst):
        self.src = src
        self.dst = dst


def _flow_task(src, dst):
    return FluidTask(1.0, lambda t: None, tag=FakeTransfer(src, dst))


def _assert_matches_scratch(allocator, active):
    expected = maxmin_rates(
        [(t.tag.src, t.tag.dst) for t in active], allocator.capacity
    )
    for task, rate in zip(active, expected):
        assert task.rate == pytest.approx(rate, rel=1e-9, abs=1e-12)


# ------------------------------------------------------------------ property


@settings(deadline=None, max_examples=30)
@given(
    st.integers(min_value=3, max_value=10),     # node count (3 = very dense)
    st.integers(min_value=0, max_value=2**32),  # churn seed
)
def test_warm_started_churn_matches_scratch_solver(num_nodes, seed):
    """Randomized add/remove bursts and capacity edits: the maintained
    rates equal a from-scratch water-fill after every single update."""
    rng = random.Random(seed)
    allocator = IncrementalMaxMinAllocator(capacity=1.0)
    active: list[FluidTask] = []
    for _ in range(120):
        op = rng.random()
        added, removed = [], []
        if op < 0.08:
            # Capacity edit: an external invalidation, delivered through
            # refresh() per the allocator protocol.  The rebuilt warm cache
            # must carry the new capacity (the pin is unit-tested in
            # test_capacity_edit_invalidates_warm_cache).
            allocator.capacity = rng.choice([0.5, 1.0, 2.0, 3.3])
            allocator.refresh(active)
            _assert_matches_scratch(allocator, active)
            continue
        elif active and op < 0.45:
            for _ in range(min(len(active), rng.randint(1, 3))):
                removed.append(active.pop(rng.randrange(len(active))))
        else:
            for _ in range(rng.randint(1, 3)):
                src = rng.randrange(num_nodes)
                dst = (src + 1 + rng.randrange(num_nodes - 1)) % num_nodes
                task = _flow_task(src, dst)
                active.append(task)
                added.append(task)
        allocator.update(active, added, removed)
        _assert_matches_scratch(allocator, active)


@settings(deadline=None, max_examples=20)
@given(st.integers(min_value=0, max_value=2**32))
def test_warm_start_disabled_matches_scratch_solver(seed):
    """The PR 2 baseline (warm_start=False) stays exact too — the flag
    only selects the cascade strategy, never the result."""
    rng = random.Random(seed)
    allocator = IncrementalMaxMinAllocator(capacity=1.0, warm_start=False)
    active: list[FluidTask] = []
    for _ in range(60):
        if active and rng.random() < 0.4:
            task = active.pop(rng.randrange(len(active)))
            allocator.update(active, [], [task])
        else:
            src = rng.randrange(4)
            dst = (src + 1 + rng.randrange(3)) % 4
            task = _flow_task(src, dst)
            active.append(task)
            allocator.update(active, [task], [])
        _assert_matches_scratch(allocator, active)
    assert allocator.stats.warm_starts == 0


# ---------------------------------------------------------------- accounting


def _dense_churn(warm_start, flows=64, num_nodes=9, seed=7, verify=False):
    """All-to-all-ish churn on few nodes: every change cascades."""
    kernel = Kernel()
    rng = random.Random(seed)
    net = MaxMinStarNetwork(
        kernel,
        NetworkParams(latency=0.0, bandwidth=1e6),
        warm_start=warm_start,
        verify_incremental=verify,
    )
    total = 3 * flows
    spawned = 0

    def submit():
        nonlocal spawned
        spawned += 1
        src = rng.randrange(num_nodes)
        dst = (src + 1 + rng.randrange(num_nodes - 1)) % num_nodes
        net.submit(src, dst, rng.uniform(0.5e6, 1.5e6), on_done)

    def on_done(_tr):
        if spawned < total:
            submit()

    for _ in range(flows):
        submit()
    kernel.run()
    return net.allocator.stats


def test_dense_traffic_fallback_rate_below_pr2_level():
    """Regression: on dense traffic the warm-started allocator must turn
    most PR 2 full fallbacks into warm starts — strictly fewer fallbacks
    and strictly fewer rate computations, never more total cascades."""
    warm = _dense_churn(warm_start=True)
    baseline = _dense_churn(warm_start=False)
    assert baseline.warm_starts == 0
    assert warm.warm_starts > 0
    assert warm.full_fallbacks < baseline.full_fallbacks
    # The bulk of the cascades must warm-start, not just a token few.
    assert warm.full_fallbacks < baseline.full_fallbacks / 2
    assert warm.rates_computed < baseline.rates_computed
    # Warm starts and fallbacks partition the same cascade events.
    assert (
        warm.warm_starts + warm.full_fallbacks <= baseline.full_fallbacks
    )


def test_dense_warm_started_solves_survive_verify_shadow():
    """verify_incremental=True shadows every warm-started solve with a
    from-scratch solve and raises beyond 1e-9 relative; surviving the run
    is the bit-for-bit-within-tolerance equivalence check."""
    stats = _dense_churn(warm_start=True, flows=48, verify=True)
    assert stats.warm_starts > 0
    assert stats.verify_recomputes > 0


# -------------------------------------------------------------- invalidation


def test_capacity_edit_invalidates_warm_cache():
    """A capacity change between updates must force a full re-solve (the
    cached saturation order was computed under the old capacity)."""
    allocator = IncrementalMaxMinAllocator(capacity=1.0, cascade_threshold=0.0)
    active = []
    for i in range(4):
        task = _flow_task(0, i + 1)
        active.append(task)
        allocator.update(active, [task], [])
    allocator.capacity = 2.0
    task = _flow_task(1, 2)
    active.append(task)
    before = allocator.stats.warm_starts
    allocator.update(active, [task], [])
    # The delta's links are disjoint from the hub's saturation rounds, so
    # only the capacity pin can have blocked the replay.
    assert allocator.stats.warm_starts == before
    _assert_matches_scratch(allocator, active)


def test_emptied_pool_drops_warm_cache():
    """Removing every task invalidates the cache; the next cascade after a
    refill must fall back (no stale tasks can be re-frozen)."""
    allocator = IncrementalMaxMinAllocator(capacity=1.0, cascade_threshold=0.0)
    first = [_flow_task(0, 1), _flow_task(2, 3)]
    allocator.update(first, first, [])
    allocator.update([], [], list(first))
    assert allocator._warm is None
    second = [_flow_task(4, 5)]
    allocator.update(second, second, [])
    _assert_matches_scratch(allocator, second)


def test_removal_after_earlier_rounds_replays_saturation_prefix():
    """A removal whose links only appear in a *late* saturation round keeps
    the earlier rounds as a valid prefix: the cascade warm-starts, the
    prefix flows keep their rates without reassignment, and only the
    suffix is re-solved."""
    allocator = IncrementalMaxMinAllocator(capacity=1.0, cascade_threshold=0.0)
    # Hub A (0 -> {1,2,3}) saturates (out, 0) first at share 1/3; hub B
    # (4 -> {5,6}) saturates (out, 4) second at share 1/2.
    active = [_flow_task(0, i + 1) for i in range(3)]
    active += [_flow_task(4, 5), _flow_task(4, 6)]
    allocator.update(active, list(active), [])
    assert allocator.stats.warm_starts == 0
    victim = active.pop()  # 4 -> 6: hub B's round breaks, hub A's replays
    rates_before = allocator.stats.rates_computed
    allocator.update(active, [], [victim])
    assert allocator.stats.warm_starts == 1
    # Only the one surviving hub-B flow is re-solved; hub A's three flows
    # re-freeze from the replayed prefix without any rate assignment.
    assert allocator.stats.rates_computed == rates_before + 1
    assert active[-1].rate == pytest.approx(1.0)
    _assert_matches_scratch(allocator, active)


# ------------------------------------------------------- cache repair (merge)
def test_component_restricted_update_repairs_cache_for_later_warm_start():
    """A component-restricted re-solve must not invalidate the warm cache:
    the dirty component's rounds are replaced and share-merged, so a later
    dense cascade still warm-starts off the repaired order."""
    allocator = IncrementalMaxMinAllocator(capacity=1.0, verify=True)
    active: list[FluidTask] = []

    def add(src, dst):
        t = _flow_task(src, dst)
        active.append(t)
        allocator.update(active, [t], [])
        return t

    # Dense component A: all-to-all on nodes {0, 1, 2} (fair share 0.5).
    a_flows = [add(s, d) for s in range(3) for d in range(3) if s != d]
    merges_after_a = allocator.stats.warm_merges
    # Component B: four parallel 10 -> 11 flows (fair share 0.25), each a
    # *small* component relative to the pool -> the restricted path runs
    # and repairs the cached whole-pool saturation order in place.
    for _ in range(4):
        add(10, 11)
    assert allocator.stats.warm_merges > merges_after_a
    merges = allocator.stats.warm_merges
    fallbacks = allocator.stats.full_fallbacks
    warm_before = allocator.stats.warm_starts
    # A removal inside dense A cascades past the threshold.  B's round
    # (share 0.25) precedes every A round (share 0.5) in the merged order
    # and is untouched by the delta, so the warm start must succeed.
    removed = a_flows.pop()
    active.remove(removed)
    allocator.update(active, [], [removed])
    assert allocator.stats.warm_starts == warm_before + 1
    assert allocator.stats.full_fallbacks == fallbacks
    assert allocator.stats.warm_merges == merges
    _assert_matches_scratch(allocator, active)


def test_warm_start_disabled_never_merges():
    allocator = IncrementalMaxMinAllocator(capacity=1.0, warm_start=False)
    active: list[FluidTask] = []
    for s, d in [(0, 1), (1, 0), (0, 2), (5, 6), (6, 5)]:
        t = _flow_task(s, d)
        active.append(t)
        allocator.update(active, [t], [])
    assert allocator.stats.warm_merges == 0
    _assert_matches_scratch(allocator, active)
