"""Equal-share star network: the paper's contention model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.des.kernel import Kernel
from repro.errors import SimulationError
from repro.netmodel.base import Transfer
from repro.netmodel.params import NetworkParams
from repro.netmodel.star import EqualShareStarNetwork


def make(kernel, latency=0.0, bandwidth=1e6):
    return EqualShareStarNetwork(
        kernel, NetworkParams(latency=latency, bandwidth=bandwidth)
    )


def test_single_transfer_is_l_plus_s_over_b(kernel):
    net = make(kernel, latency=1e-3, bandwidth=1e6)
    done = []
    net.submit(0, 1, 5e5, lambda tr: done.append(kernel.now))
    kernel.run()
    assert done == [pytest.approx(1e-3 + 0.5)]


def test_two_outgoing_transfers_share_egress(kernel):
    net = make(kernel, bandwidth=1e6)
    done = {}
    net.submit(0, 1, 1e6, lambda tr: done.setdefault("a", kernel.now))
    net.submit(0, 2, 1e6, lambda tr: done.setdefault("b", kernel.now))
    kernel.run()
    # Each gets half the egress: 2 s each, concurrent.
    assert done["a"] == pytest.approx(2.0)
    assert done["b"] == pytest.approx(2.0)


def test_two_incoming_transfers_share_ingress(kernel):
    net = make(kernel, bandwidth=1e6)
    done = {}
    net.submit(1, 0, 1e6, lambda tr: done.setdefault("a", kernel.now))
    net.submit(2, 0, 1e6, lambda tr: done.setdefault("b", kernel.now))
    kernel.run()
    assert done["a"] == pytest.approx(2.0)
    assert done["b"] == pytest.approx(2.0)


def test_disjoint_pairs_do_not_interact(kernel):
    net = make(kernel, bandwidth=1e6)
    done = {}
    net.submit(0, 1, 1e6, lambda tr: done.setdefault("a", kernel.now))
    net.submit(2, 3, 1e6, lambda tr: done.setdefault("b", kernel.now))
    kernel.run()
    assert done["a"] == pytest.approx(1.0)
    assert done["b"] == pytest.approx(1.0)


def test_equal_share_does_not_redistribute(kernel):
    """The paper's law: min(out share, in share), unused share wasted.

    Node 0 sends to nodes 1 and 2; node 1 also receives from node 3.
    Transfer 0->1 is limited by node 1's ingress share (B/2), and 0->2
    gets node 0's egress share (B/2) — NOT the leftover redistribution a
    max-min allocation would grant.
    """
    net = make(kernel, bandwidth=1e6)
    done = {}
    net.submit(0, 1, 1e6, lambda tr: done.setdefault("x01", kernel.now))
    net.submit(0, 2, 1e6, lambda tr: done.setdefault("x02", kernel.now))
    net.submit(3, 1, 1e6, lambda tr: done.setdefault("x31", kernel.now))
    kernel.run()
    # All three run at B/2 = 0.5 MB/s while coexisting -> 2 s each.
    assert done["x01"] == pytest.approx(2.0)
    assert done["x02"] == pytest.approx(2.0)
    assert done["x31"] == pytest.approx(2.0)


def test_latency_phase_holds_no_bandwidth(kernel):
    net = make(kernel, latency=1.0, bandwidth=1e6)
    done = {}
    net.submit(0, 1, 1e6, lambda tr: done.setdefault("a", kernel.now))
    # Second transfer submitted while the first is still in latency phase
    # finishes its latency later; both then share bandwidth.
    kernel.schedule(0.5, lambda: net.submit(0, 2, 1e6, lambda tr: done.setdefault("b", kernel.now)))
    kernel.run()
    # a drains alone during [1.0, 1.5] (0.5 MB), then shares. a has 0.5MB
    # left at 0.5 MB/s -> t=2.5. b: 1 MB at 0.5 until a done (0.5 done at
    # 2.5), then alone -> 3.0.
    assert done["a"] == pytest.approx(2.5)
    assert done["b"] == pytest.approx(3.0)


def test_self_transfer_rejected(kernel):
    net = make(kernel)
    with pytest.raises(SimulationError):
        net.submit(1, 1, 100.0, lambda tr: None)


def test_concurrency_counters_and_listener(kernel):
    net = make(kernel, bandwidth=1e6)
    changes = []
    net.add_listener(
        lambda nodes: changes.append((net.active_transfers(), nodes))
    )
    net.submit(0, 1, 1e6, lambda tr: None)
    assert net.concurrent_outgoing(0) == 1
    assert net.concurrent_incoming(1) == 1
    kernel.run()
    assert net.concurrent_outgoing(0) == 0
    assert net.completed_transfers == 1
    assert changes[0] == (1, (0, 1)) and changes[-1] == (0, (0, 1))


def test_draining_counts_updated_before_completion_callback(kernel):
    """Inside a transfer's completion callback the finished transfer must
    no longer be counted as draining (pre-incremental-engine semantics)."""
    net = make(kernel, bandwidth=1e6)
    seen = []
    net.submit(
        0, 1, 1e6,
        lambda tr: seen.append((net.draining_outgoing(0), net.draining_incoming(1))),
    )
    assert net.draining_outgoing(0) == 1
    kernel.run()
    assert seen == [(0, 0)]


def test_transfer_records_times(kernel):
    net = make(kernel, latency=0.5, bandwidth=1e6)
    transfers = []
    tr = net.submit(0, 1, 1e6, lambda t: transfers.append(t))
    kernel.run()
    assert tr.submitted_at == 0.0
    assert tr.completed_at == pytest.approx(1.5)
    assert tr.elapsed == pytest.approx(1.5)


@settings(deadline=None, max_examples=40)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=4),
            st.integers(min_value=0, max_value=4),
            st.floats(min_value=1.0, max_value=1e6),
        ).filter(lambda t: t[0] != t[1]),
        min_size=1,
        max_size=12,
    )
)
def test_all_transfers_complete_and_delivered_bytes_conserved(flows):
    kernel = Kernel()
    net = make(kernel, bandwidth=1e6)
    for src, dst, size in flows:
        net.submit(src, dst, size, lambda tr: None)
    kernel.run()
    assert net.completed_transfers == len(flows)
    assert net.delivered_bytes == pytest.approx(sum(s for _, _, s in flows))
    # No transfer can beat the uncontended bound or the serialized bound.
    total = sum(s for _, _, s in flows)
    assert kernel.now >= max(s for _, _, s in flows) / 1e6 - 1e-9
    assert kernel.now <= total / 1e6 * 2 + 1e-6 + total  # loose upper bound
