"""Finite-backplane star network: relaxing "never a bottleneck"."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.des.kernel import Kernel
from repro.errors import ConfigurationError
from repro.netmodel.backplane import BackplaneStarNetwork
from repro.netmodel.params import NetworkParams
from repro.netmodel.star import EqualShareStarNetwork

B = 1e6


def make(kernel, capacity=math.inf, latency=0.0, bandwidth=B):
    return BackplaneStarNetwork(
        kernel,
        NetworkParams(latency=latency, bandwidth=bandwidth),
        capacity=capacity,
    )


def test_infinite_capacity_matches_paper_model():
    """With capacity = inf the model must equal the paper's star exactly."""
    for model_cls in (None,):
        times = {}
        for name, build in (
            ("star", lambda k: EqualShareStarNetwork(
                k, NetworkParams(latency=1e-4, bandwidth=B))),
            ("backplane", lambda k: BackplaneStarNetwork(
                k, NetworkParams(latency=1e-4, bandwidth=B))),
        ):
            kernel = Kernel()
            net = build(kernel)
            done = []
            for (s, d, size) in [(0, 1, 1e6), (0, 2, 5e5), (3, 1, 2e5)]:
                net.submit(s, d, size, lambda tr: done.append(kernel.now))
            kernel.run()
            times[name] = sorted(done)
        assert times["star"] == pytest.approx(times["backplane"])


def test_single_transfer_unaffected_by_ample_capacity(kernel):
    net = make(kernel, capacity=10 * B, latency=1e-3)
    done = []
    net.submit(0, 1, 5e5, lambda tr: done.append(kernel.now))
    kernel.run()
    assert done == [pytest.approx(1e-3 + 0.5)]


def test_saturated_fabric_scales_all_transfers(kernel):
    """Two disjoint pairs want 2B total; a fabric of B halves both rates."""
    net = make(kernel, capacity=B)
    done = {}
    net.submit(0, 1, 1e6, lambda tr: done.setdefault("a", kernel.now))
    net.submit(2, 3, 1e6, lambda tr: done.setdefault("b", kernel.now))
    kernel.run()
    # Unconstrained each would take 1 s; the shared fabric doubles it.
    assert done["a"] == pytest.approx(2.0)
    assert done["b"] == pytest.approx(2.0)


def test_fabric_never_exceeded(kernel):
    net = make(kernel, capacity=1.5 * B)
    for i in range(4):
        net.submit(i, (i + 1) % 4 + 4, 1e6, lambda tr: None)
    # Inspect rates right after admission.
    loads = []

    def probe():
        loads.append(net.fabric_load())

    kernel.schedule(0.1, probe)
    kernel.run()
    assert loads and loads[0] <= 1.0 + 1e-9


def test_capacity_one_link_serializes_disjoint_pairs(kernel):
    """An extreme fabric (one link's worth) makes 4 pairs take 4x."""
    net = make(kernel, capacity=B)
    done = []
    for i in range(4):
        net.submit(2 * i, 2 * i + 1, 1e6, lambda tr: done.append(kernel.now))
    kernel.run()
    assert done[-1] == pytest.approx(4.0)


def test_invalid_capacity_rejected(kernel):
    with pytest.raises(ConfigurationError):
        make(kernel, capacity=0.0)
    with pytest.raises(ConfigurationError):
        make(kernel, capacity=-1.0)


class TestFactory:
    def test_factory_capacity_formula(self, kernel):
        build = BackplaneStarNetwork.factory(num_nodes=8, oversubscription=2.0)
        net = build(kernel, NetworkParams(latency=0.0, bandwidth=B))
        assert net.capacity == pytest.approx(8 * B / 2.0)

    def test_factory_rejects_bad_ratio(self):
        with pytest.raises(ConfigurationError):
            BackplaneStarNetwork.factory(8, 0.0)

    def test_nonblocking_factory_is_no_bottleneck(self):
        """Oversubscription 1.0 carries all one-directional traffic."""
        kernel = Kernel()
        build = BackplaneStarNetwork.factory(num_nodes=8, oversubscription=1.0)
        net = build(kernel, NetworkParams(latency=0.0, bandwidth=B))
        done = []
        for i in range(4):
            net.submit(i, i + 4, 1e6, lambda tr: done.append(kernel.now))
        kernel.run()
        assert all(t == pytest.approx(1.0) for t in done)


@given(
    st.floats(min_value=0.25, max_value=8.0),
    st.integers(min_value=1, max_value=6),
)
@settings(max_examples=25, deadline=None)
def test_more_capacity_never_slower(ratio, pairs):
    """Monotonicity: adding fabric capacity cannot delay any transfer."""

    def finish_time(capacity):
        kernel = Kernel()
        net = make(kernel, capacity=capacity)
        done = []
        for i in range(pairs):
            net.submit(2 * i, 2 * i + 1, 1e6, lambda tr: done.append(kernel.now))
        kernel.run()
        return max(done)

    tight = finish_time(ratio * B)
    loose = finish_time(2 * ratio * B)
    assert loose <= tight + 1e-9
