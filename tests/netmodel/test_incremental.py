"""Incremental rate allocation: exact equivalence with full recomputation.

Two complementary checks:

* **shadow mode** — networks built with ``verify_incremental=True`` re-run
  the full allocator after every incremental update and raise on any
  divergence beyond 1e-9 relative, so simply driving a randomized workload
  through them exercises the equivalence at every membership change;
* **end-to-end** — the same workload through an ``incremental=True`` and an
  ``incremental=False`` model must produce identical completion times.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.des.kernel import Kernel
from repro.netmodel.maxmin import (
    IncrementalMaxMinAllocator,
    MaxMinStarNetwork,
    maxmin_rates,
)
from repro.netmodel.params import NetworkParams
from repro.netmodel.star import EqualShareStarNetwork


def _drive(net_factory, arrivals):
    """Submit (time, src, dst, size) arrivals; return completion times."""
    kernel = Kernel()
    net = net_factory(kernel)
    completions = {}

    def submit(index, src, dst, size):
        net.submit(src, dst, size, lambda tr: completions.setdefault(index, kernel.now))

    for i, (time, src, dst, size) in enumerate(arrivals):
        kernel.schedule(time, submit, i, src, dst, size)
    kernel.run()
    assert len(completions) == len(arrivals)
    return [completions[i] for i in range(len(arrivals))], net


arrival_strategy = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=5.0),     # arrival time
        st.integers(min_value=0, max_value=5),       # src
        st.integers(min_value=0, max_value=5),       # dst
        st.floats(min_value=1e3, max_value=5e6),     # size
    ).filter(lambda t: t[1] != t[2]),
    min_size=1,
    max_size=25,
)


@settings(deadline=None, max_examples=40)
@given(arrival_strategy)
def test_maxmin_incremental_matches_full_shadow(arrivals):
    """verify_incremental=True raises if any incremental update diverges
    from the full water-filling result by more than 1e-9 relative."""
    params = NetworkParams(latency=0.0, bandwidth=1e6)
    times, net = _drive(
        lambda kernel: MaxMinStarNetwork(kernel, params, verify_incremental=True),
        arrivals,
    )
    assert net.allocator.stats.incremental_updates > 0


@settings(deadline=None, max_examples=40)
@given(arrival_strategy)
def test_equal_share_incremental_matches_full_shadow(arrivals):
    params = NetworkParams(latency=0.0, bandwidth=1e6)
    times, net = _drive(
        lambda kernel: EqualShareStarNetwork(kernel, params, verify_incremental=True),
        arrivals,
    )
    assert net.allocator.stats.incremental_updates > 0


@settings(deadline=None, max_examples=25)
@given(arrival_strategy)
def test_maxmin_incremental_end_to_end_equivalence(arrivals):
    """Completion times agree between incremental and full allocation."""
    params = NetworkParams(latency=0.0, bandwidth=1e6)
    inc_times, _ = _drive(
        lambda kernel: MaxMinStarNetwork(kernel, params, incremental=True), arrivals
    )
    full_times, _ = _drive(
        lambda kernel: MaxMinStarNetwork(kernel, params, incremental=False), arrivals
    )
    for a, b in zip(inc_times, full_times):
        assert a == pytest.approx(b, rel=1e-9, abs=1e-12)


@settings(deadline=None, max_examples=25)
@given(arrival_strategy)
def test_equal_share_incremental_end_to_end_equivalence(arrivals):
    params = NetworkParams(latency=0.0, bandwidth=1e6)
    inc_times, _ = _drive(
        lambda kernel: EqualShareStarNetwork(kernel, params, incremental=True), arrivals
    )
    full_times, _ = _drive(
        lambda kernel: EqualShareStarNetwork(kernel, params, incremental=False), arrivals
    )
    for a, b in zip(inc_times, full_times):
        assert a == pytest.approx(b, rel=1e-9, abs=1e-12)


def test_incremental_touches_fewer_flows_than_full(kernel):
    """Disjoint flow pairs form singleton components: a membership change
    must not recompute rates for unrelated flows."""
    params = NetworkParams(latency=0.0, bandwidth=1e6)
    net = MaxMinStarNetwork(kernel, params)
    # 8 pairwise-disjoint flows: (0->1), (2->3), ... share no links.
    for i in range(8):
        net.submit(2 * i, 2 * i + 1, 1e6 * (i + 1), lambda tr: None)
    stats = net.allocator.stats
    # Each arrival's component is just itself: one rate per update.
    assert stats.incremental_updates == 8
    assert stats.rates_computed == 8
    kernel.run()


def test_cascade_threshold_falls_back_to_full(kernel):
    """A hub pattern makes every flow one component; past the threshold the
    allocator must do a single full recompute instead of a 'restricted'
    solve covering everything anyway."""
    params = NetworkParams(latency=0.0, bandwidth=1e6)
    net = MaxMinStarNetwork(kernel, params, cascade_threshold=0.0)
    done = []
    for i in range(4):
        net.submit(0, i + 1, 1e6, lambda tr: done.append(kernel.now))
    # threshold 0: every update with a non-empty dirty set is a cascade.
    stats = net.allocator.stats
    assert stats.incremental_updates == 4
    assert stats.rates_computed == 1 + 2 + 3 + 4
    kernel.run()
    assert len(done) == 4
    # Hub egress split four ways at 0.25 MB/s each: all finish at t=4.
    assert done == [pytest.approx(4.0)] * 4


def test_maxmin_incremental_is_hash_seed_deterministic():
    """Regression: the component BFS must not iterate id- or str-hashed
    sets, or rates pick up run-to-run float noise.  The same workload under
    different PYTHONHASHSEEDs must produce bit-identical completion times."""
    import os
    import subprocess
    import sys

    script = (
        "import random\n"
        "from repro.des.kernel import Kernel\n"
        "from repro.netmodel.maxmin import MaxMinStarNetwork\n"
        "from repro.netmodel.params import NetworkParams\n"
        "kernel = Kernel()\n"
        "net = MaxMinStarNetwork(kernel, NetworkParams(latency=0.0, bandwidth=1e6))\n"
        "rng = random.Random(3)\n"
        "times = {}\n"
        "for i in range(40):\n"
        "    src = rng.randrange(6)\n"
        "    dst = (src + 1 + rng.randrange(5)) % 6\n"
        "    kernel.schedule(\n"
        "        rng.uniform(0.0, 3.0), net.submit, src, dst,\n"
        "        rng.uniform(1e4, 2e6),\n"
        "        lambda tr, i=i: times.__setitem__(i, kernel.now),\n"
        "    )\n"
        "kernel.run()\n"
        "print(repr(sorted(times.items())))\n"
    )
    src_dir = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir, "src")
    outputs = set()
    for hash_seed in ("1", "2", "random"):
        env = dict(os.environ, PYTHONHASHSEED=hash_seed)
        env["PYTHONPATH"] = os.path.abspath(src_dir) + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, env=env, check=True,
        )
        outputs.add(proc.stdout)
    assert len(outputs) == 1


def test_incremental_allocator_component_restriction_is_exact():
    """Randomized add/remove sequences at the allocator level: after every
    operation the maintained rates equal a from-scratch water-fill."""
    from repro.des.fluid import FluidTask

    class FakeTransfer:
        def __init__(self, src, dst):
            self.src = src
            self.dst = dst

    rng = random.Random(42)
    allocator = IncrementalMaxMinAllocator(capacity=1.0)
    active = []
    for step in range(300):
        if active and rng.random() < 0.4:
            task = active.pop(rng.randrange(len(active)))
            allocator.update(active, [], [task])
        else:
            src = rng.randrange(8)
            dst = (src + 1 + rng.randrange(7)) % 8
            task = FluidTask(1.0, lambda t: None, tag=FakeTransfer(src, dst))
            active.append(task)
            allocator.update(active, [task], [])
        expected = maxmin_rates([(t.tag.src, t.tag.dst) for t in active], 1.0)
        for task, rate in zip(active, expected):
            assert task.rate == pytest.approx(rate, rel=1e-9, abs=1e-12)
