"""The numpy structure-of-arrays network backend vs the scalar reference.

The equivalence contract (docs/allocator_protocol.md): for any submission
sequence, an SoA model and its scalar twin produce completion times equal
within 1e-9 relative — the SoA engine solves the *same* max-min (or
equal-share) program over parallel arrays, and ``verify_incremental=True``
shadows every solve with the scalar reference solver in-process.

Also here: the PR 3 remainder regression — adding a flow to an
already-solved dense component warm-starts (``warm_starts`` rises,
``warm_inserts`` counts bounded insertions) instead of falling back to a
full solve (``full_fallbacks`` stays flat).
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

np = pytest.importorskip("numpy")

from repro.des.kernel import Kernel
from repro.netmodel.maxmin import MaxMinStarNetwork
from repro.netmodel.packet import PacketNetwork
from repro.netmodel.params import NetworkParams
from repro.netmodel.soa import (
    EqualShareStarNetworkSoA,
    MaxMinStarNetworkSoA,
    PacketNetworkSoA,
)
from repro.netmodel.star import EqualShareStarNetwork

PARAMS = NetworkParams(latency=1e-4, bandwidth=1e6)

arrival_strategy = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=5.0),     # arrival time
        st.integers(min_value=0, max_value=5),       # src
        st.integers(min_value=0, max_value=5),       # dst
        st.floats(min_value=1e3, max_value=5e6),     # size
    ).filter(lambda t: t[1] != t[2]),
    min_size=1,
    max_size=25,
)


def _drive(net_factory, arrivals):
    """Submit (time, src, dst, size) arrivals; return completion times."""
    kernel = Kernel()
    net = net_factory(kernel)
    completions = {}

    def submit(index, src, dst, size):
        net.submit(src, dst, size, lambda tr: completions.setdefault(index, kernel.now))

    for i, (time, src, dst, size) in enumerate(arrivals):
        kernel.schedule(time, submit, i, src, dst, size)
    kernel.run()
    assert len(completions) == len(arrivals)
    return [completions[i] for i in range(len(arrivals))], net


@settings(deadline=None, max_examples=40)
@given(arrival_strategy)
def test_maxmin_soa_shadow_verifies_every_solve(arrivals):
    """Random churn under the scalar-reference shadow: any rate diverging
    beyond 1e-9 relative raises inside the engine."""
    times, net = _drive(
        lambda kernel: MaxMinStarNetworkSoA(kernel, PARAMS, verify_incremental=True),
        arrivals,
    )
    stats = net.allocator.stats
    assert stats.incremental_updates > 0
    assert stats.verify_recomputes > 0


@settings(deadline=None, max_examples=40)
@given(arrival_strategy)
def test_maxmin_soa_matches_scalar(arrivals):
    soa_times, _ = _drive(
        lambda kernel: MaxMinStarNetworkSoA(kernel, PARAMS), arrivals
    )
    scalar_times, _ = _drive(
        lambda kernel: MaxMinStarNetwork(kernel, PARAMS), arrivals
    )
    for a, b in zip(soa_times, scalar_times):
        assert a == pytest.approx(b, rel=1e-9, abs=1e-12)


@settings(deadline=None, max_examples=25)
@given(arrival_strategy)
def test_packet_soa_matches_scalar_draw_for_draw(arrivals):
    """Same seed, same submission order — the SoA packet model replays the
    scalar model's jitter stream, so measurements are identical."""
    soa_times, _ = _drive(
        lambda kernel: PacketNetworkSoA(kernel, PARAMS, seed=3), arrivals
    )
    scalar_times, _ = _drive(
        lambda kernel: PacketNetwork(kernel, PARAMS, seed=3), arrivals
    )
    for a, b in zip(soa_times, scalar_times):
        assert a == pytest.approx(b, rel=1e-9, abs=1e-12)


@settings(deadline=None, max_examples=25)
@given(arrival_strategy)
def test_star_soa_matches_scalar(arrivals):
    soa_times, _ = _drive(
        lambda kernel: EqualShareStarNetworkSoA(kernel, PARAMS), arrivals
    )
    scalar_times, _ = _drive(
        lambda kernel: EqualShareStarNetwork(kernel, PARAMS), arrivals
    )
    for a, b in zip(soa_times, scalar_times):
        assert a == pytest.approx(b, rel=1e-9, abs=1e-12)


def _dense_churn(net, rng, nodes, flows):
    """Load ``flows`` random all-to-all transfers onto ``net``."""
    for _ in range(flows):
        src = rng.randrange(nodes)
        dst = rng.randrange(nodes)
        while dst == src:
            dst = rng.randrange(nodes)
        net.submit(src, dst, rng.uniform(0.5e6, 1.5e6), lambda tr: None)


class TestWarmInsertRegression:
    """PR 3 remainder: a flow added to an already-solved dense component
    inserts into the cached saturation order instead of recomputing."""

    NODES = 8
    FLOWS = 40

    def test_scalar_added_flow_warm_starts(self):
        kernel = Kernel()
        net = MaxMinStarNetwork(
            kernel, NetworkParams(latency=0.0, bandwidth=1e6), warm_insert=True
        )
        rng = random.Random(5)
        _dense_churn(net, rng, self.NODES, self.FLOWS)
        stats = net.allocator.stats
        warm_before = stats.warm_starts
        fallbacks_before = stats.full_fallbacks
        # One more flow into the solved dense component: the warm path
        # must take it (possibly via bounded insertion of its link into
        # the cached saturation order), not a cold full solve.
        net.submit(0, 1, 1e6, lambda tr: None)
        assert stats.warm_starts == warm_before + 1
        assert stats.full_fallbacks == fallbacks_before
        kernel.run()
        assert stats.warm_inserts > 0

    def test_scalar_warm_insert_off_is_the_pr3_baseline(self):
        kernel = Kernel()
        net = MaxMinStarNetwork(
            kernel, NetworkParams(latency=0.0, bandwidth=1e6), warm_insert=False
        )
        rng = random.Random(5)
        _dense_churn(net, rng, self.NODES, self.FLOWS)
        kernel.run()
        assert net.allocator.stats.warm_inserts == 0

    def test_soa_added_flow_warm_starts(self):
        kernel = Kernel()
        net = MaxMinStarNetworkSoA(kernel, NetworkParams(latency=0.0, bandwidth=1e6))
        rng = random.Random(5)
        _dense_churn(net, rng, self.NODES, self.FLOWS)
        stats = net.allocator.stats
        warm_before = stats.warm_starts
        fallbacks_before = stats.full_fallbacks
        net.submit(0, 1, 1e6, lambda tr: None)
        assert stats.warm_starts == warm_before + 1
        assert stats.full_fallbacks == fallbacks_before
        kernel.run()
