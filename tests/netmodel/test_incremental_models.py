"""Incremental allocation for the testbed/backplane network models.

Mirrors ``test_incremental.py`` for the two models that joined the
dirty-set protocol later: :class:`~repro.netmodel.packet.PacketNetwork`
(per-link contention components plus seeded throughput jitter) and
:class:`~repro.netmodel.backplane.BackplaneStarNetwork` (single-hop base
rates plus the shared-backplane scale factor).

* **shadow mode** — ``verify_incremental=True`` re-runs the full allocator
  after every incremental update and raises on any divergence beyond 1e-9
  relative;
* **end-to-end** — the same workload through ``incremental=True`` and
  ``incremental=False`` must produce matching completion times.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.des.kernel import Kernel
from repro.netmodel.backplane import BackplaneStarNetwork
from repro.netmodel.packet import PacketNetwork
from repro.netmodel.params import NetworkParams

try:
    import numpy  # noqa: F401
    HAS_NUMPY = True
except ImportError:
    HAS_NUMPY = False

requires_numpy = pytest.mark.skipif(
    not HAS_NUMPY, reason="seeded noise streams need numpy"
)



def _drive(net_factory, arrivals):
    """Submit (time, src, dst, size) arrivals; return completion times."""
    kernel = Kernel()
    net = net_factory(kernel)
    completions = {}

    def submit(index, src, dst, size):
        net.submit(src, dst, size, lambda tr: completions.setdefault(index, kernel.now))

    for i, (time, src, dst, size) in enumerate(arrivals):
        kernel.schedule(time, submit, i, src, dst, size)
    kernel.run()
    assert len(completions) == len(arrivals)
    return [completions[i] for i in range(len(arrivals))], net


arrival_strategy = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=5.0),     # arrival time
        st.integers(min_value=0, max_value=5),       # src
        st.integers(min_value=0, max_value=5),       # dst
        st.floats(min_value=1e3, max_value=5e6),     # size
    ).filter(lambda t: t[1] != t[2]),
    min_size=1,
    max_size=25,
)

PARAMS = NetworkParams(latency=1e-4, bandwidth=1e6)
#: Tight enough that dense random traffic regularly saturates the fabric —
#: the scale factor moves, exercising the whole-pool re-rate path.
TIGHT_BACKPLANE = 1.5e6


@requires_numpy
@settings(deadline=None, max_examples=40)
@given(arrival_strategy)
def test_packet_incremental_matches_full_shadow(arrivals):
    times, net = _drive(
        lambda kernel: PacketNetwork(kernel, PARAMS, seed=3, verify_incremental=True),
        arrivals,
    )
    assert net.allocator.stats.incremental_updates > 0
    assert net.allocator.stats.verify_recomputes > 0


@settings(deadline=None, max_examples=40)
@given(arrival_strategy)
def test_backplane_incremental_matches_full_shadow(arrivals):
    times, net = _drive(
        lambda kernel: BackplaneStarNetwork(
            kernel, PARAMS, capacity=TIGHT_BACKPLANE, verify_incremental=True
        ),
        arrivals,
    )
    assert net.allocator.stats.incremental_updates > 0


@requires_numpy
@settings(deadline=None, max_examples=25)
@given(arrival_strategy)
def test_packet_incremental_end_to_end_equivalence(arrivals):
    """Completion times agree between incremental and full allocation (the
    seeded jitter draws are identical because submission order is)."""
    inc_times, _ = _drive(
        lambda kernel: PacketNetwork(kernel, PARAMS, seed=3, incremental=True),
        arrivals,
    )
    full_times, _ = _drive(
        lambda kernel: PacketNetwork(kernel, PARAMS, seed=3, incremental=False),
        arrivals,
    )
    for a, b in zip(inc_times, full_times):
        assert a == pytest.approx(b, rel=1e-9, abs=1e-12)


@settings(deadline=None, max_examples=25)
@given(arrival_strategy)
def test_backplane_incremental_end_to_end_equivalence(arrivals):
    inc_times, _ = _drive(
        lambda kernel: BackplaneStarNetwork(
            kernel, PARAMS, capacity=TIGHT_BACKPLANE, incremental=True
        ),
        arrivals,
    )
    full_times, _ = _drive(
        lambda kernel: BackplaneStarNetwork(
            kernel, PARAMS, capacity=TIGHT_BACKPLANE, incremental=False
        ),
        arrivals,
    )
    for a, b in zip(inc_times, full_times):
        assert a == pytest.approx(b, rel=1e-9, abs=1e-12)


def test_backplane_uncongested_updates_touch_one_hop_only(kernel):
    """With an infinite fabric, disjoint flow pairs are singleton dirty
    sets: each arrival re-rates exactly one flow."""
    net = BackplaneStarNetwork(kernel, NetworkParams(latency=0.0, bandwidth=1e6))
    for i in range(8):
        net.submit(2 * i, 2 * i + 1, 1e6 * (i + 1), lambda tr: None)
    stats = net.allocator.stats
    assert stats.incremental_updates == 8
    assert stats.rates_computed == 8
    kernel.run()


def test_backplane_congestion_rerates_every_flow(kernel):
    """Once aggregate demand exceeds the fabric, the scale factor moves and
    the shared-backplane component — every flow — is re-rated."""
    net = BackplaneStarNetwork(
        kernel, NetworkParams(latency=0.0, bandwidth=1e6), capacity=1.5e6
    )
    net.submit(0, 1, 1e6, lambda tr: None)
    stats = net.allocator.stats
    assert stats.rates_computed == 1
    # The second disjoint pair pushes demand to 2 MB/s > 1.5 MB/s.
    net.submit(2, 3, 1e6, lambda tr: None)
    assert stats.rates_computed == 1 + 2
    kernel.run()


@requires_numpy
def test_packet_incremental_beats_full_on_disjoint_flows(kernel):
    """Disjoint flow pairs are singleton water-fill components: every
    arrival re-rates exactly one flow, and departures re-rate none (the
    drain phase starts after the latency event, so stats are checked after
    the run)."""
    net = PacketNetwork(
        kernel, NetworkParams(latency=0.0, bandwidth=1e6), seed=0
    )
    for i in range(8):
        net.submit(2 * i, 2 * i + 1, 1e6, lambda tr: None)
    kernel.run()
    stats = net.allocator.stats
    assert stats.incremental_updates >= 8
    assert stats.rates_computed == 8
    # The very first arrival's component is the whole (one-flow) pool, so
    # it counts as a cascade fallback; no later update may.
    assert stats.full_fallbacks <= 1


def test_backplane_infinite_capacity_still_matches_star(kernel):
    """The incremental refactor must preserve the capacity=inf degradation
    to the paper's model (scale factor pinned at 1)."""
    from repro.netmodel.star import EqualShareStarNetwork

    times = {}
    for name, build in (
        ("star", lambda k: EqualShareStarNetwork(k, PARAMS)),
        ("backplane", lambda k: BackplaneStarNetwork(k, PARAMS, capacity=math.inf)),
    ):
        k = Kernel()
        net = build(k)
        done = []
        for (s, d, size) in [(0, 1, 1e6), (0, 2, 5e5), (3, 1, 2e5), (1, 4, 8e5)]:
            net.submit(s, d, size, lambda tr: done.append(k.now))
        k.run()
        times[name] = sorted(done)
    assert times["star"] == pytest.approx(times["backplane"])
