"""Network parameter validation and the t = l + s/b formula."""

import pytest

from repro.errors import ConfigurationError
from repro.netmodel.params import FAST_ETHERNET, GIGABIT_ETHERNET, NetworkParams


def test_uncontended_time_formula():
    p = NetworkParams(latency=1e-4, bandwidth=1e7, per_object_overhead=0.0)
    assert p.uncontended_time(0) == pytest.approx(1e-4)
    assert p.uncontended_time(1e7) == pytest.approx(1.0 + 1e-4)


def test_per_object_overhead_adds_to_latency():
    p = NetworkParams(latency=1e-4, bandwidth=1e7, per_object_overhead=5e-5)
    assert p.effective_latency == pytest.approx(1.5e-4)
    assert p.uncontended_time(0) == pytest.approx(1.5e-4)


def test_invalid_params_rejected():
    with pytest.raises(ConfigurationError):
        NetworkParams(latency=-1.0)
    with pytest.raises(ConfigurationError):
        NetworkParams(bandwidth=0.0)
    with pytest.raises(ConfigurationError):
        NetworkParams(per_object_overhead=-1e-9)


def test_negative_size_rejected():
    p = NetworkParams()
    with pytest.raises(ConfigurationError):
        p.uncontended_time(-1.0)


def test_presets_are_ordered():
    assert GIGABIT_ETHERNET.bandwidth > FAST_ETHERNET.bandwidth
    assert GIGABIT_ETHERNET.latency < FAST_ETHERNET.latency
