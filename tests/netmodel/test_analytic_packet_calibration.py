"""Analytic baseline, packet ground truth, and (l, b) calibration."""

import pytest

from repro.des.kernel import Kernel
from repro.netmodel.analytic import AnalyticNetwork
from repro.netmodel.calibration import calibrate
from repro.netmodel.packet import PacketNetwork, PacketNetworkParams
from repro.netmodel.params import NetworkParams

try:
    import numpy  # noqa: F401
    HAS_NUMPY = True
except ImportError:
    HAS_NUMPY = False

requires_numpy = pytest.mark.skipif(
    not HAS_NUMPY, reason="seeded noise streams need numpy"
)



PARAMS = NetworkParams(latency=5e-5, bandwidth=1.25e7, per_object_overhead=0.0)


def test_analytic_ignores_contention(kernel):
    net = AnalyticNetwork(kernel, PARAMS)
    done = {}
    for i in range(4):
        net.submit(0, 1, 1.25e7, lambda tr, i=i: done.setdefault(i, kernel.now))
    kernel.run()
    # All four complete at l + s/b despite sharing the same link.
    for i in range(4):
        assert done[i] == pytest.approx(1.0 + 5e-5)


@requires_numpy
def test_packet_network_is_reproducible():
    times = []
    for _ in range(2):
        kernel = Kernel()
        net = PacketNetwork(kernel, PARAMS, seed=42)
        net.submit(0, 1, 1e6, lambda tr: times.append(kernel.now))
        kernel.run()
    assert times[0] == times[1]


@requires_numpy
def test_packet_seed_changes_outcome():
    times = []
    for seed in (1, 2):
        kernel = Kernel()
        net = PacketNetwork(kernel, PARAMS, seed=seed)
        net.submit(0, 1, 1e6, lambda tr: times.append(kernel.now))
        kernel.run()
    assert times[0] != times[1]


@requires_numpy
def test_packet_slower_than_ideal():
    """Chunking + ramp-up must make the ground truth slower than l+s/b."""
    kernel = Kernel()
    net = PacketNetwork(kernel, PARAMS, seed=0)
    done = []
    net.submit(0, 1, 4 * 1024 * 1024, lambda tr: done.append(kernel.now))
    kernel.run()
    assert done[0] > PARAMS.uncontended_time(4 * 1024 * 1024)


def test_packet_params_validation():
    with pytest.raises(Exception):
        PacketNetworkParams(mtu=0)
    with pytest.raises(Exception):
        PacketNetworkParams(ramp_factor=0.0)


@requires_numpy
def test_calibration_recovers_analytic_params():
    res = calibrate(lambda k: AnalyticNetwork(k, PARAMS))
    assert res.latency == pytest.approx(PARAMS.latency, rel=1e-6, abs=1e-9)
    assert res.bandwidth == pytest.approx(PARAMS.bandwidth, rel=1e-6)
    assert res.residual_rms < 1e-9


@requires_numpy
def test_calibration_of_packet_network_is_close():
    res = calibrate(
        lambda k: PacketNetwork(k, PARAMS, seed=5), repetitions=5
    )
    # Effective bandwidth a bit below line rate (per-chunk overhead) and
    # latency inflated by ramp-up absorbed into the intercept.
    assert 0.9 * PARAMS.bandwidth < res.bandwidth < PARAMS.bandwidth
    assert res.latency > PARAMS.latency


@requires_numpy
def test_calibration_as_params_roundtrip():
    res = calibrate(lambda k: AnalyticNetwork(k, PARAMS))
    p = res.as_params()
    assert p.uncontended_time(1e6) == pytest.approx(
        PARAMS.uncontended_time(1e6), rel=1e-6
    )


def test_calibration_requires_two_sizes():
    with pytest.raises(ValueError):
        calibrate(lambda k: AnalyticNetwork(k, PARAMS), sizes=(1024,))
