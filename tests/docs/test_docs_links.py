"""Documentation link and reference integrity.

Walks every markdown file under ``docs/`` plus the repo-level ``README.md``
and fails on drift:

* **intra-repo links** — ``[text](relative/path)`` targets must exist
  (anchors are checked against the target's headings);
* **file references** — backticked paths like ``benchmarks/foo.py`` must
  exist relative to the repo root;
* **symbol references** — backticked dotted names like
  ``repro.netmodel.waterfill.maxmin_solve`` must import/resolve.

Keeping this in the tier-1 suite (and as a dedicated CI job) means a
rename or deletion cannot silently orphan the documentation.
"""

from __future__ import annotations

import importlib
import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
DOC_FILES = sorted((REPO_ROOT / "docs").glob("*.md")) + [REPO_ROOT / "README.md"]

#: [text](target) — excluding images and absolute URLs.
_LINK_RE = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)\)")
#: Backticked repo-relative file path (contains a slash, known suffix).
_FILE_REF_RE = re.compile(r"`([\w./-]+/[\w.-]+\.(?:py|md|yml|yaml|json))`")
#: Backticked dotted repro symbol, optionally with a trailing call/attr.
_SYMBOL_RE = re.compile(r"`(repro(?:\.\w+)+)`")


def _headings(path: Path) -> set[str]:
    """GitHub-style anchor slugs of a markdown file's headings."""
    anchors = set()
    for line in path.read_text().splitlines():
        if line.startswith("#"):
            title = line.lstrip("#").strip().lower()
            slug = re.sub(r"[^\w\- ]", "", title).replace(" ", "-")
            anchors.add(slug)
    return anchors


@pytest.mark.parametrize("doc", DOC_FILES, ids=lambda p: p.name)
def test_docs_exist(doc):
    assert doc.is_file(), f"expected documentation file {doc} is missing"


@pytest.mark.parametrize("doc", DOC_FILES, ids=lambda p: p.name)
def test_intra_repo_links_resolve(doc):
    broken = []
    for target in _LINK_RE.findall(doc.read_text()):
        if "://" in target or target.startswith("mailto:"):
            continue
        path_part, _, anchor = target.partition("#")
        resolved = (
            (doc.parent / path_part).resolve() if path_part else doc.resolve()
        )
        if not resolved.exists():
            broken.append(f"{target} -> {resolved} (missing)")
            continue
        if anchor and resolved.suffix == ".md":
            if anchor not in _headings(resolved):
                broken.append(f"{target} (no heading for #{anchor})")
    assert not broken, f"{doc.name}: broken links:\n  " + "\n  ".join(broken)


@pytest.mark.parametrize("doc", DOC_FILES, ids=lambda p: p.name)
def test_referenced_files_exist(doc):
    missing = []
    for ref in _FILE_REF_RE.findall(doc.read_text()):
        # Example/home paths in command output transcripts are not repo
        # references.
        if ref.startswith(("~", "/")):
            continue
        if not (REPO_ROOT / ref).exists():
            missing.append(ref)
    assert not missing, (
        f"{doc.name}: referenced files missing from the repo:\n  "
        + "\n  ".join(missing)
    )


@pytest.mark.parametrize("doc", DOC_FILES, ids=lambda p: p.name)
def test_referenced_symbols_resolve(doc):
    dead = []
    for dotted in set(_SYMBOL_RE.findall(doc.read_text())):
        parts = dotted.split(".")
        obj = None
        # Longest importable module prefix, then attribute walk.
        for cut in range(len(parts), 0, -1):
            try:
                obj = importlib.import_module(".".join(parts[:cut]))
            except ImportError:
                continue
            try:
                for attr in parts[cut:]:
                    obj = getattr(obj, attr)
            except AttributeError:
                obj = None
            break
        if obj is None:
            dead.append(dotted)
    assert not dead, (
        f"{doc.name}: documented symbols that no longer resolve:\n  "
        + "\n  ".join(sorted(dead))
    )
