"""Failure injection: the runtime must reject broken applications loudly.

Each test builds a deliberately faulty flow graph or operation and checks
the runtime raises the specific, diagnosable error — silent mis-simulation
would undermine every prediction downstream.
"""

import pytest

from repro.cpumodel.shared import SharedCpuModel
from repro.des.kernel import Kernel
from repro.dps.backend import ExecutionBackend
from repro.dps.data_objects import DataObject
from repro.dps.deployment import Deployment
from repro.dps.flowgraph import FlowGraph
from repro.dps.operations import (
    Compute,
    KernelSpec,
    LeafOperation,
    MergeOperation,
    Post,
    RemoveThreads,
    SplitOperation,
    StreamOperation,
)
from repro.dps.routing import Constant, Modulo, RoundRobin, RoutingFunction
from repro.dps.runtime import DurationProvider, Runtime
from repro.errors import (
    FlowGraphError,
    MalleabilityError,
    RoutingError,
    SimulationError,
)
from repro.netmodel.params import NetworkParams
from repro.netmodel.star import EqualShareStarNetwork


class FixedRate(DurationProvider):
    def evaluate(self, compute, ctx):
        result = compute.fn(*compute.args) if compute.fn else None
        return compute.spec.flops / 1e8, result


def make_runtime(graph, deployment, **kwargs):
    kernel = Kernel()
    backend = ExecutionBackend(
        kernel,
        SharedCpuModel(kernel),
        EqualShareStarNetwork(
            kernel, NetworkParams(latency=1e-4, bandwidth=1e7)
        ),
    )
    return Runtime(graph, deployment, backend, FixedRate(), **kwargs)


def work():
    return Compute(KernelSpec("work", flops=1e5), None)


def two_node_deployment(workers=2):
    dep = Deployment(2)
    dep.add_singleton("main", 0)
    dep.add_group("workers", [i % 2 for i in range(workers)])
    return dep


class TwoTasks(SplitOperation):
    def run(self, ctx, obj):
        for i in range(2):
            yield work()
            yield Post(DataObject("task", meta={"i": i}, declared_size=100))


class Swallow(StreamOperation):
    """Keyed sink that completes immediately."""

    def instance_key(self, obj):
        return "all"

    def combine(self, ctx, state, obj):
        ctx.finish_instance()
        return None


# --------------------------------------------------------------------------
# lifecycle misuse
# --------------------------------------------------------------------------


def simple_graph(leaf_factory):
    g = FlowGraph("faulty")
    g.add_split("split", TwoTasks, group="main")
    g.add_leaf("leaf", leaf_factory, group="workers")
    g.add_keyed_stream("sink", Swallow, group="main")
    g.connect("split", "leaf", RoundRobin())
    g.connect("leaf", "sink", Constant(0))
    return g


class Forward(LeafOperation):
    def run(self, ctx, obj):
        yield work()
        yield Post(DataObject("out", meta=dict(obj.meta), declared_size=10))


def test_inject_after_run_rejected():
    rt = make_runtime(simple_graph(Forward), two_node_deployment())
    rt.inject("split", DataObject("job", meta={}))
    rt.run()
    with pytest.raises(SimulationError, match="inject"):
        rt.inject("split", DataObject("job2", meta={}))


def test_run_twice_rejected():
    rt = make_runtime(simple_graph(Forward), two_node_deployment())
    rt.inject("split", DataObject("job", meta={}))
    rt.run()
    with pytest.raises(SimulationError, match="already ran"):
        rt.run()


def test_inject_unknown_vertex_rejected():
    rt = make_runtime(simple_graph(Forward), two_node_deployment())
    with pytest.raises(FlowGraphError, match="unknown vertex"):
        rt.inject("nope", DataObject("job", meta={}))


# --------------------------------------------------------------------------
# bad operation bodies
# --------------------------------------------------------------------------


class YieldsGarbage(LeafOperation):
    def run(self, ctx, obj):
        yield "not a runtime item"


def test_unsupported_yield_item_rejected():
    rt = make_runtime(simple_graph(YieldsGarbage), two_node_deployment())
    rt.inject("split", DataObject("job", meta={}))
    with pytest.raises(SimulationError, match="unsupported item"):
        rt.run()


class PostsToUnknownEdge(LeafOperation):
    def run(self, ctx, obj):
        yield work()
        yield Post(DataObject("out", declared_size=1.0), to="nowhere")


def test_post_to_unknown_edge_rejected():
    rt = make_runtime(simple_graph(PostsToUnknownEdge), two_node_deployment())
    rt.inject("split", DataObject("job", meta={}))
    with pytest.raises(FlowGraphError, match="no edge"):
        rt.run()


class AmbiguousPost(LeafOperation):
    def run(self, ctx, obj):
        yield work()
        yield Post(DataObject("out", meta=dict(obj.meta), declared_size=1.0))


def test_ambiguous_default_post_rejected():
    g = FlowGraph("fanout")
    g.add_split("split", TwoTasks, group="main")
    g.add_leaf("leaf", AmbiguousPost, group="workers")
    g.add_keyed_stream("sink_a", Swallow, group="main")
    g.add_keyed_stream("sink_b", Swallow, group="main")
    g.connect("split", "leaf", RoundRobin())
    g.connect("leaf", "sink_a", Constant(0))
    g.connect("leaf", "sink_b", Constant(0))
    rt = make_runtime(g, two_node_deployment())
    rt.inject("split", DataObject("job", meta={}))
    with pytest.raises(FlowGraphError, match="outgoing edges"):
        rt.run()


def test_finish_instance_outside_stream_rejected():
    class FinishesWrongly(LeafOperation):
        def run(self, ctx, obj):
            yield work()
            ctx.finish_instance()

    rt = make_runtime(simple_graph(FinishesWrongly), two_node_deployment())
    rt.inject("split", DataObject("job", meta={}))
    with pytest.raises(FlowGraphError, match="finish_instance"):
        rt.run()


# --------------------------------------------------------------------------
# routing faults
# --------------------------------------------------------------------------


class OutOfRange(RoutingFunction):
    def route(self, obj, group_size):
        return group_size  # one past the end


def test_out_of_range_routing_detected():
    g = FlowGraph("badroute")
    g.add_split("split", TwoTasks, group="main")
    g.add_leaf("leaf", Forward, group="workers")
    g.add_keyed_stream("sink", Swallow, group="main")
    g.connect("split", "leaf", OutOfRange())
    g.connect("leaf", "sink", Constant(0))
    rt = make_runtime(g, two_node_deployment())
    rt.inject("split", DataObject("job", meta={}))
    with pytest.raises(RoutingError, match="outside"):
        rt.run()


class SplitByParity(SplitOperation):
    """Routes instance-mates to different threads — illegal for merges."""

    def run(self, ctx, obj):
        for i in range(2):
            yield work()
            yield Post(DataObject("task", meta={"i": i}, declared_size=10))


class CollectAll(MergeOperation):
    def initial_state(self, ctx):
        return []

    def combine(self, ctx, state, obj):
        state.append(obj.get("i"))
        return None

    def finalize(self, ctx, state):
        yield Post(DataObject("final", declared_size=1.0))


def test_instance_split_across_threads_rejected():
    """All objects of one merge instance must reach the same thread."""
    g = FlowGraph("inconsistent")
    g.add_split("split", SplitByParity, group="main")
    g.add_leaf("leaf", Forward, group="workers")
    # Routing the merge by i sends instance-mates to different threads.
    g.add_merge("merge", CollectAll, group="collectors", closes="split")
    g.add_keyed_stream("sink", Swallow, group="main")
    g.connect("split", "leaf", RoundRobin())
    g.connect("leaf", "merge", Modulo("i"))
    g.connect("merge", "sink", Constant(0))
    dep = Deployment(2)
    dep.add_singleton("main", 0)
    dep.add_group("workers", [0, 1])
    dep.add_group("collectors", [0, 1])
    rt = make_runtime(g, dep)
    rt.inject("split", DataObject("job", meta={}))
    with pytest.raises(FlowGraphError, match="two\\s+different threads"):
        rt.run()


# --------------------------------------------------------------------------
# malleability faults
# --------------------------------------------------------------------------


def removal_graph(remover_factory):
    g = FlowGraph("removal")
    g.add_leaf("control", remover_factory, group="main")
    g.add_keyed_stream("sink", Swallow, group="main")
    g.connect("control", "sink", Constant(0))
    return g


def removal_deployment(workers=4):
    dep = Deployment(4)
    dep.add_singleton("main", 0)
    dep.add_group("workers", [i % 4 for i in range(workers)])
    return dep


def run_removal(remover_factory, workers=4):
    g = removal_graph(remover_factory)
    rt = make_runtime(g, removal_deployment(workers))
    rt.inject("control", DataObject("go", meta={}))
    rt.run()
    return rt


class RemovesUnknown(LeafOperation):
    def run(self, ctx, obj):
        yield work()
        yield RemoveThreads("workers", (9,))


def test_remove_unknown_thread_rejected():
    with pytest.raises(MalleabilityError, match="not a live thread"):
        run_removal(RemovesUnknown)


class RemovesSelf(LeafOperation):
    def run(self, ctx, obj):
        yield work()
        yield RemoveThreads("main", (0,))


def test_remove_own_thread_rejected():
    with pytest.raises(MalleabilityError, match="own thread"):
        run_removal(RemovesSelf)


class RemovesEveryWorkerTwice(LeafOperation):
    def run(self, ctx, obj):
        yield work()
        yield RemoveThreads("workers", (0, 1, 2, 3))
        yield work()
        yield RemoveThreads("workers", (0,))


def test_remove_from_emptied_group_rejected():
    with pytest.raises(MalleabilityError, match="no surviving threads"):
        run_removal(RemovesEveryWorkerTwice)


def test_double_removal_of_same_thread_rejected():
    class RemovesTwice(LeafOperation):
        def run(self, ctx, obj):
            yield work()
            yield RemoveThreads("workers", (1,))
            yield work()
            yield RemoveThreads("workers", (1,))

    with pytest.raises(MalleabilityError, match="not a live thread"):
        run_removal(RemovesTwice)


def test_bad_migration_plan_detected():
    """A planner that strands state on a removed thread is an app bug."""

    class SeedsStateThenRemoves(LeafOperation):
        def run(self, ctx, obj):
            yield work()
            yield RemoveThreads("workers", (1,))

    class SeedState(LeafOperation):
        def run(self, ctx, obj):
            ctx.thread_state["payload"] = 42
            yield work()
            yield Post(DataObject("seeded", declared_size=1.0))

    g = FlowGraph("strand")
    g.add_leaf("seed", SeedState, group="workers")
    g.add_keyed_stream("gate", _GateThenRemove, group="main")
    g.add_keyed_stream("sink", Swallow, group="main")
    g.connect("seed", "gate", Constant(0))
    g.connect("gate", "sink", Constant(0))
    dep = removal_deployment(2)
    kernel_rt = make_runtime(
        g, dep, migration_planner=lambda group, states, survivors: []
    )
    kernel_rt.inject("seed", DataObject("go", meta={}), thread_index=1)
    with pytest.raises(MalleabilityError, match="leaves state"):
        kernel_rt.run()


class _GateThenRemove(StreamOperation):
    def instance_key(self, obj):
        return "gate"

    def combine(self, ctx, state, obj):
        yield work()
        yield RemoveThreads("workers", (1,))
        ctx.finish_instance()
        yield Post(DataObject("done", declared_size=1.0))


def test_remove_busy_thread_rejected():
    """Removal must happen at a quiescent point; a worker mid-operation
    (queued work) cannot be removed."""

    class SlowEcho(LeafOperation):
        def run(self, ctx, obj):
            yield Compute(KernelSpec("slow", flops=1e9), None)
            yield Post(DataObject("late", declared_size=1.0))

    class RemoveImmediately(SplitOperation):
        def run(self, ctx, obj):
            # Send work to worker 1, then remove it while the task is in
            # flight or executing.
            yield Post(DataObject("task", meta={"i": 1}, declared_size=10))
            yield Compute(KernelSpec("pause", flops=5e8), None)
            yield RemoveThreads("workers", (1,))

    g = FlowGraph("busy")
    g.add_split("split", RemoveImmediately, group="main")
    g.add_leaf("slow", SlowEcho, group="workers")
    g.add_merge("merge", CollectAll, group="main", closes="split")
    g.add_keyed_stream("sink", Swallow, group="main")
    g.connect("split", "slow", Modulo("i"))
    g.connect("slow", "merge", Constant(0))
    g.connect("merge", "sink", Constant(0))
    rt = make_runtime(g, removal_deployment(4))
    rt.inject("split", DataObject("job", meta={}))
    with pytest.raises(MalleabilityError, match="queued\\s+or running"):
        rt.run()
