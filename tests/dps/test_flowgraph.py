"""Flow graph construction, validation and composition."""

import pytest

from repro.dps.flowgraph import FlowGraph, VertexKind
from repro.dps.operations import (
    LeafOperation,
    MergeOperation,
    SplitOperation,
    StreamOperation,
)
from repro.dps.routing import Constant, RoundRobin
from repro.errors import FlowGraphError


class L(LeafOperation):
    def run(self, ctx, obj):
        yield None


class S(SplitOperation):
    def run(self, ctx, obj):
        yield None


class M(MergeOperation):
    def combine(self, ctx, state, obj):
        return None

    def finalize(self, ctx, state):
        return None


class T(StreamOperation):
    def combine(self, ctx, state, obj):
        return None


def simple_graph():
    g = FlowGraph("g")
    g.add_split("split", S, group="main")
    g.add_leaf("work", L, group="workers")
    g.add_merge("merge", M, group="main", closes="split")
    g.connect("split", "work", RoundRobin())
    g.connect("work", "merge", Constant(0))
    return g


def test_valid_graph_passes():
    simple_graph().validate()


def test_duplicate_vertex_rejected():
    g = FlowGraph("g")
    g.add_leaf("x", L, group="a")
    with pytest.raises(FlowGraphError, match="duplicate"):
        g.add_leaf("x", L, group="a")


def test_unknown_edge_endpoint_rejected():
    g = FlowGraph("g")
    g.add_leaf("x", L, group="a")
    with pytest.raises(FlowGraphError):
        g.connect("x", "nope", Constant(0))


def test_cycle_detected():
    g = FlowGraph("g")
    g.add_leaf("a", L, group="x")
    g.add_leaf("b", L, group="x")
    g.connect("a", "b", Constant(0))
    g.connect("b", "a", Constant(0))
    with pytest.raises(FlowGraphError, match="cycle"):
        g.validate()


def test_merge_closing_unknown_split_rejected():
    g = FlowGraph("g")
    g.add_merge("m", M, group="x", closes="ghost")
    with pytest.raises(FlowGraphError, match="unknown split"):
        g.validate()


def test_split_closed_twice_rejected():
    g = FlowGraph("g")
    g.add_split("s", S, group="x")
    g.add_merge("m1", M, group="x", closes="s")
    g.add_merge("m2", M, group="x", closes="s")
    with pytest.raises(FlowGraphError, match="closed by both"):
        g.validate()


def test_factory_type_mismatch_detected():
    g = FlowGraph("g")
    g.add_split("s", L, group="x")  # leaf factory declared as split
    with pytest.raises(FlowGraphError, match="declared split"):
        g.validate()


def test_stream_can_close_stream():
    g = FlowGraph("g")
    g.add_split("s", S, group="x")
    g.add_stream("t", T, group="x", closes="s")
    g.add_merge("m", M, group="x", closes="t")
    g.connect("s", "t", Constant(0))
    g.connect("t", "m", Constant(0))
    g.validate()


def test_edge_to_default_requires_single_out_edge():
    g = simple_graph()
    assert g.edge_to("split", None).dst == "work"
    g.add_leaf("other", L, group="workers")
    g.connect("split", "other", Constant(0))
    with pytest.raises(FlowGraphError, match="outgoing edges"):
        g.edge_to("split", None)


def test_edge_to_named():
    g = simple_graph()
    assert g.edge_to("work", "merge").dst == "merge"
    with pytest.raises(FlowGraphError):
        g.edge_to("work", "nothing")


def test_groups_collected():
    assert simple_graph().groups() == {"main", "workers"}


def test_as_networkx_structure():
    nx_graph = simple_graph().as_networkx()
    assert set(nx_graph.nodes) == {"split", "work", "merge"}
    assert nx_graph.nodes["split"]["kind"] == "split"
    assert ("split", "work") in nx_graph.edges


def test_max_in_flight_validated():
    g = FlowGraph("g")
    g.add_split("s", S, group="x", max_in_flight=0)
    with pytest.raises(FlowGraphError, match="max_in_flight"):
        g.validate()


# ------------------------------------------------------------- composition
def subgraph():
    sg = FlowGraph("sub")
    sg.add_split("entry", S, group="workers")
    sg.add_leaf("inner", L, group="workers")
    sg.add_merge("exit", M, group="workers", closes="entry")
    sg.connect("entry", "inner", RoundRobin())
    sg.connect("inner", "exit", Constant(0))
    return sg


def test_replace_leaf_rewires_edges():
    g = simple_graph()
    g.replace_leaf("work", subgraph(), entry="entry", exit_="exit")
    g.validate()
    assert "work" not in g.vertices
    assert "work.entry" in g.vertices
    assert g.edge_to("split", None).dst == "work.entry"
    assert g.edge_to("work.exit", None).dst == "merge"
    # The internal pairing was renamed consistently.
    assert g.vertices["work.exit"].closes == "work.entry"


def test_replace_non_leaf_rejected():
    g = simple_graph()
    with pytest.raises(FlowGraphError, match="only leaf"):
        g.replace_leaf("split", subgraph(), entry="entry", exit_="exit")


def test_replace_unknown_vertex_rejected():
    g = simple_graph()
    with pytest.raises(FlowGraphError):
        g.replace_leaf("ghost", subgraph(), entry="entry", exit_="exit")


def test_replace_bad_entry_exit_rejected():
    g = simple_graph()
    with pytest.raises(FlowGraphError, match="entry/exit"):
        g.replace_leaf("work", subgraph(), entry="nope", exit_="exit")
