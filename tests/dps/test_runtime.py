"""Runtime semantics: split/merge instances, streams, flow control,
broadcast, atomic-step accounting and deadlock detection."""

import pytest

from repro.cpumodel.shared import SharedCpuModel
from repro.des.kernel import Kernel
from repro.dps.backend import ExecutionBackend
from repro.dps.data_objects import DataObject
from repro.dps.deployment import Deployment
from repro.dps.flowgraph import FlowGraph
from repro.dps.operations import (
    Compute,
    KernelSpec,
    LeafOperation,
    MergeOperation,
    Post,
    SplitOperation,
    StreamOperation,
)
from repro.dps.routing import Broadcast, Constant, RoundRobin
from repro.dps.runtime import DurationProvider, Runtime
from repro.dps.trace import TraceLevel
from repro.errors import DeadlockError, FlowGraphError
from repro.netmodel.params import NetworkParams
from repro.netmodel.star import EqualShareStarNetwork


class FixedRate(DurationProvider):
    """Deterministic provider: flops at 1e8 flop/s; runs fns."""

    def evaluate(self, compute, ctx):
        result = compute.fn(*compute.args) if compute.fn else None
        return compute.spec.flops / 1e8, result


def make_runtime(graph, deployment, trace_level=TraceLevel.SUMMARY, latency=1e-4):
    kernel = Kernel()
    backend = ExecutionBackend(
        kernel,
        SharedCpuModel(kernel),
        EqualShareStarNetwork(
            kernel,
            NetworkParams(latency=latency, bandwidth=1e7, per_object_overhead=0.0),
        ),
    )
    return Runtime(graph, deployment, backend, FixedRate(), trace_level=trace_level)


def work(flops=1e6):
    return Compute(KernelSpec("work", flops=flops), None)


# ---------------------------------------------------------------- helpers
class NSplit(SplitOperation):
    """Posts meta['n'] task objects."""

    def run(self, ctx, obj):
        for i in range(obj.get("n")):
            yield work(1e5)
            yield Post(DataObject("task", meta={"i": i}, declared_size=1000))


class Echo(LeafOperation):
    def run(self, ctx, obj):
        yield work()
        yield Post(DataObject("result", meta=dict(obj.meta), declared_size=100))


class Gather(MergeOperation):
    def initial_state(self, ctx):
        return []

    def combine(self, ctx, state, obj):
        state.append(obj.get("i"))
        return None

    def finalize(self, ctx, state):
        yield Post(
            DataObject("final", meta={"items": tuple(sorted(state))}, declared_size=8)
        )


class Sink(StreamOperation):
    """Keyed sink storing all received objects on the class."""

    received: list = []

    def instance_key(self, obj):
        return "sink"

    def combine(self, ctx, state, obj):
        Sink.received.append(obj)
        ctx.finish_instance()
        return None


@pytest.fixture(autouse=True)
def clear_sink():
    Sink.received = []
    yield


def scatter_gather_graph():
    g = FlowGraph("sg")
    g.add_split("split", NSplit, group="main")
    g.add_leaf("work", Echo, group="workers")
    g.add_merge("merge", Gather, group="main", closes="split")
    g.add_keyed_stream("sink", Sink, group="main")
    g.connect("split", "work", RoundRobin())
    g.connect("work", "merge", Constant(0))
    g.connect("merge", "sink", Constant(0))
    return g


def sg_deployment(nodes=3, workers=2):
    dep = Deployment(nodes)
    dep.add_singleton("main", 0)
    dep.add_group("workers", [1 + i % (nodes - 1) for i in range(workers)])
    return dep


# ------------------------------------------------------------------ tests
def test_scatter_gather_completes_and_orders():
    rt = make_runtime(scatter_gather_graph(), sg_deployment())
    rt.inject("split", DataObject("job", meta={"n": 5}))
    res = rt.run()
    assert len(Sink.received) == 1
    assert Sink.received[0].get("items") == (0, 1, 2, 3, 4)
    assert res.makespan > 0


def test_successive_inputs_create_new_split_instances():
    """Paper: successive data objects yield new split-merge instances."""
    rt = make_runtime(scatter_gather_graph(), sg_deployment())
    rt.inject("split", DataObject("job", meta={"n": 2}))
    rt.inject("split", DataObject("job", meta={"n": 3}))
    rt.run()
    assert len(Sink.received) == 2
    sizes = sorted(len(o.get("items")) for o in Sink.received)
    assert sizes == [2, 3]


def test_work_attributed_to_worker_nodes():
    rt = make_runtime(scatter_gather_graph(), sg_deployment(nodes=3, workers=2))
    rt.inject("split", DataObject("job", meta={"n": 4}))
    res = rt.run()
    # 4 echo steps of 0.01 s, two per worker node.
    assert res.trace.node_work[1] == pytest.approx(0.02)
    assert res.trace.node_work[2] == pytest.approx(0.02)


def test_transfers_counted_and_local_deliveries_bypass_network():
    g = scatter_gather_graph()
    dep = Deployment(1)
    dep.add_singleton("main", 0)
    dep.add_group("workers", [0, 0])
    rt = make_runtime(g, dep)
    rt.inject("split", DataObject("job", meta={"n": 3}))
    res = rt.run()
    assert res.trace.transfer_count == 0
    assert res.trace.local_deliveries > 0


def test_full_trace_records_steps():
    rt = make_runtime(
        scatter_gather_graph(), sg_deployment(), trace_level=TraceLevel.FULL
    )
    rt.inject("split", DataObject("job", meta={"n": 3}))
    res = rt.run()
    kernels = {s.kernel for s in res.trace.steps}
    assert kernels == {"work"}
    assert len(res.trace.transfers) == res.trace.transfer_count
    for s in res.trace.steps:
        assert s.end >= s.start
        assert s.duration >= s.work - 1e-12


def test_phase_marking():
    class PhasedSplit(NSplit):
        def run(self, ctx, obj):
            ctx.mark_phase("startup")
            yield from super().run(ctx, obj)

    g = FlowGraph("p")
    g.add_split("split", PhasedSplit, group="main")
    g.add_leaf("work", Echo, group="workers")
    g.add_merge("merge", Gather, group="main", closes="split")
    g.add_keyed_stream("sink", Sink, group="main")
    g.connect("split", "work", RoundRobin())
    g.connect("work", "merge", Constant(0))
    g.connect("merge", "sink", Constant(0))
    rt = make_runtime(g, sg_deployment())
    rt.inject("split", DataObject("job", meta={"n": 2}))
    res = rt.run()
    assert res.phases == [(0.0, "startup")]
    assert res.trace.phase_work["startup"] > 0


def test_broadcast_reaches_every_live_thread():
    hits = []

    class BSplit(SplitOperation):
        def run(self, ctx, obj):
            yield Post(DataObject("ping", declared_size=10))

    class Recv(LeafOperation):
        def run(self, ctx, obj):
            hits.append(ctx.thread_index)
            yield Post(DataObject("pong", meta={"t": ctx.thread_index}, declared_size=1))

    class Collect(MergeOperation):
        def initial_state(self, ctx):
            return []

        def combine(self, ctx, state, obj):
            state.append(obj.get("t"))
            return None

        def finalize(self, ctx, state):
            yield Post(DataObject("final", meta={"count": len(state)}, declared_size=1))

    g = FlowGraph("b")
    g.add_split("split", BSplit, group="main")
    g.add_leaf("recv", Recv, group="workers")
    g.add_merge("merge", Collect, group="main", closes="split")
    g.add_keyed_stream("sink", Sink, group="main")
    g.connect("split", "recv", Broadcast())
    g.connect("recv", "merge", Constant(0))
    g.connect("merge", "sink", Constant(0))
    rt = make_runtime(g, sg_deployment(nodes=3, workers=4))
    rt.inject("split", DataObject("go"))
    rt.run()
    assert sorted(hits) == [0, 1, 2, 3]
    assert Sink.received[0].get("count") == 4


def test_flow_control_limits_in_flight():
    """With limit L, at most L tasks are unprocessed at any time."""
    in_flight = {"now": 0, "peak": 0}

    class Tracked(LeafOperation):
        def run(self, ctx, obj):
            in_flight["now"] += 1
            in_flight["peak"] = max(in_flight["peak"], in_flight["now"])
            yield work(1e6)
            in_flight["now"] -= 1
            yield Post(DataObject("result", meta=dict(obj.meta), declared_size=10))

    class FCSplit(SplitOperation):
        def run(self, ctx, obj):
            for i in range(10):
                yield Post(DataObject("task", meta={"i": i}, declared_size=10))

    g = FlowGraph("fc")
    g.add_split("split", FCSplit, group="main", max_in_flight=2)
    g.add_leaf("work", Tracked, group="workers")
    g.add_merge("merge", Gather, group="main", closes="split")
    g.add_keyed_stream("sink", Sink, group="main")
    g.connect("split", "work", RoundRobin())
    g.connect("work", "merge", Constant(0))
    g.connect("merge", "sink", Constant(0))
    rt = make_runtime(g, sg_deployment(nodes=3, workers=2))
    rt.inject("split", DataObject("job"))
    rt.run()
    # Counting is conservative (credits return when processing finishes);
    # the leaf execution itself admits at most the credit limit.
    assert in_flight["peak"] <= 2
    assert Sink.received[0].get("items") == tuple(range(10))


def test_flow_control_with_broadcast_rejected():
    class BSplit(SplitOperation):
        def run(self, ctx, obj):
            yield Post(DataObject("ping", declared_size=1))

    g = FlowGraph("bad")
    g.add_split("split", BSplit, group="main", max_in_flight=1)
    g.add_leaf("recv", Echo, group="workers")
    g.connect("split", "recv", Broadcast())
    rt = make_runtime(g, sg_deployment())
    rt.inject("split", DataObject("go"))
    with pytest.raises(FlowGraphError, match="broadcast"):
        rt.run()


def test_merge_overflow_detected():
    """A leaf that duplicates objects breaks the 1:1 contract."""

    class Duplicator(LeafOperation):
        def run(self, ctx, obj):
            yield Post(DataObject("result", meta={"i": 0}, declared_size=1))
            yield Post(DataObject("result", meta={"i": 1}, declared_size=1))

    g = FlowGraph("dup")
    g.add_split("split", NSplit, group="main")
    g.add_leaf("work", Duplicator, group="workers")
    g.add_merge("merge", Gather, group="main", closes="split")
    g.add_keyed_stream("sink", Sink, group="main")
    g.connect("split", "work", RoundRobin())
    g.connect("work", "merge", Constant(0))
    g.connect("merge", "sink", Constant(0))
    rt = make_runtime(g, sg_deployment())
    rt.inject("split", DataObject("job", meta={"n": 2}))
    with pytest.raises(FlowGraphError, match="after its instance completed"):
        rt.run()


def test_deadlock_detected_when_merge_starves():
    """A leaf that swallows objects leaves the merge waiting forever."""

    class BlackHole(LeafOperation):
        def run(self, ctx, obj):
            yield work(1e4)

    g = FlowGraph("dl")
    g.add_split("split", NSplit, group="main")
    g.add_leaf("work", BlackHole, group="workers")
    g.add_merge("merge", Gather, group="main", closes="split")
    g.add_keyed_stream("sink", Sink, group="main")
    g.connect("split", "work", RoundRobin())
    g.connect("work", "merge", Constant(0))
    g.connect("merge", "sink", Constant(0))
    rt = make_runtime(g, sg_deployment())
    rt.inject("split", DataObject("job", meta={"n": 2}))
    with pytest.raises(DeadlockError):
        rt.run()


def test_root_object_at_merge_rejected():
    g = scatter_gather_graph()
    rt = make_runtime(g, sg_deployment())
    rt.inject("merge", DataObject("stray"))
    with pytest.raises(FlowGraphError, match="root object"):
        rt.run()


def test_zero_posting_split_rejected():
    rt = make_runtime(scatter_gather_graph(), sg_deployment())
    rt.inject("split", DataObject("job", meta={"n": 0}))
    with pytest.raises(FlowGraphError, match="zero data objects"):
        rt.run()


def test_thread_serialization_one_op_at_a_time():
    """Two long leafs on the same DPS thread must not overlap."""
    spans = []

    class Timed(LeafOperation):
        def run(self, ctx, obj):
            start = ctx.now
            yield work(1e6)
            spans.append((start, ctx.now))
            yield Post(DataObject("result", meta=dict(obj.meta), declared_size=1))

    g = FlowGraph("ser")
    g.add_split("split", NSplit, group="main")
    g.add_leaf("work", Timed, group="workers")
    g.add_merge("merge", Gather, group="main", closes="split")
    g.add_keyed_stream("sink", Sink, group="main")
    g.connect("split", "work", Constant(0))  # everything on worker 0
    g.connect("work", "merge", Constant(0))
    g.connect("merge", "sink", Constant(0))
    rt = make_runtime(g, sg_deployment(nodes=2, workers=1))
    rt.inject("split", DataObject("job", meta={"n": 3}))
    rt.run()
    spans.sort()
    for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
        assert s2 >= e1 - 1e-12
