"""Flow-graph composition: substituting a leaf by a subgraph (paper Fig. 7).

"The compositional nature of DPS allows us to replace operation (e) in
Figure 5 by the flow graph shown in Figure 7."  Beyond the PM variant's
use inside the LU app, composition must preserve structural invariants
for arbitrary subgraphs — checked here both structurally (hypothesis over
random chain subgraphs) and behaviourally (a composed graph runs and
produces the same results as the original).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpumodel.shared import SharedCpuModel
from repro.des.kernel import Kernel
from repro.dps.backend import ExecutionBackend
from repro.dps.data_objects import DataObject
from repro.dps.deployment import Deployment
from repro.dps.flowgraph import FlowGraph, VertexKind
from repro.dps.operations import (
    Compute,
    KernelSpec,
    LeafOperation,
    MergeOperation,
    Post,
    SplitOperation,
    StreamOperation,
)
from repro.dps.routing import Constant, RoundRobin
from repro.dps.runtime import DurationProvider, Runtime
from repro.errors import FlowGraphError
from repro.netmodel.params import NetworkParams
from repro.netmodel.star import EqualShareStarNetwork


def work():
    return Compute(KernelSpec("work", flops=1e5), None)


class NSplit(SplitOperation):
    def run(self, ctx, obj):
        for i in range(obj.get("n")):
            yield work()
            yield Post(DataObject("task", meta={"i": i}, declared_size=100))


class AddOne(LeafOperation):
    """Increments meta['value'] — lets the test count traversed stages."""

    def run(self, ctx, obj):
        yield work()
        meta = dict(obj.meta)
        meta["value"] = meta.get("value", 0) + 1
        yield Post(DataObject("task", meta=meta, declared_size=100))


class Gather(MergeOperation):
    results: list = []

    def initial_state(self, ctx):
        return []

    def combine(self, ctx, state, obj):
        state.append(obj.get("value", 0))
        return None

    def finalize(self, ctx, state):
        Gather.results.append(sorted(state))
        yield Post(DataObject("final", declared_size=8))


class Sink(StreamOperation):
    def instance_key(self, obj):
        return "sink"

    def combine(self, ctx, state, obj):
        ctx.finish_instance()
        return None


@pytest.fixture(autouse=True)
def clear_gather():
    Gather.results = []
    yield


def base_graph():
    g = FlowGraph("base")
    g.add_split("split", NSplit, group="main")
    g.add_leaf("stage", AddOne, group="workers")
    g.add_merge("merge", Gather, group="main", closes="split")
    g.add_keyed_stream("sink", Sink, group="main")
    g.connect("split", "stage", RoundRobin())
    g.connect("stage", "merge", Constant(0))
    g.connect("merge", "sink", Constant(0))
    return g


def chain_subgraph(length: int) -> FlowGraph:
    """A linear chain of ``length`` AddOne leaves."""
    g = FlowGraph("chain")
    for i in range(length):
        g.add_leaf(f"hop{i}", AddOne, group="workers")
    for i in range(length - 1):
        g.connect(f"hop{i}", f"hop{i + 1}", RoundRobin())
    return g


def run_graph(graph, tasks=4):
    kernel = Kernel()
    backend = ExecutionBackend(
        kernel,
        SharedCpuModel(kernel),
        EqualShareStarNetwork(kernel, NetworkParams(latency=1e-4, bandwidth=1e7)),
    )

    class FixedRate(DurationProvider):
        def evaluate(self, compute, ctx):
            return compute.spec.flops / 1e8, None

    dep = Deployment(2)
    dep.add_singleton("main", 0)
    dep.add_group("workers", [0, 1])
    rt = Runtime(graph, dep, backend, FixedRate())
    rt.inject("split", DataObject("job", meta={"n": tasks}))
    return rt.run()


# --------------------------------------------------------------------------
# structural properties
# --------------------------------------------------------------------------


@given(st.integers(min_value=1, max_value=6))
@settings(max_examples=20, deadline=None)
def test_composition_preserves_validity(length):
    g = base_graph()
    g.replace_leaf("stage", chain_subgraph(length), "hop0", f"hop{length - 1}")
    g.validate()
    # The replaced leaf is gone; the subgraph's vertices are prefixed in.
    assert "stage" not in g.vertices
    for i in range(length):
        assert f"stage.hop{i}" in g.vertices


@given(st.integers(min_value=1, max_value=6))
@settings(max_examples=20, deadline=None)
def test_composition_edge_accounting(length):
    g = base_graph()
    before_edges = len(g.edges)
    g.replace_leaf("stage", chain_subgraph(length), "hop0", f"hop{length - 1}")
    # Same boundary edges, plus the chain's internal edges.
    assert len(g.edges) == before_edges + (length - 1)
    assert any(e.dst == "stage.hop0" for e in g.edges)
    assert any(e.src == f"stage.hop{length - 1}" and e.dst == "merge"
               for e in g.edges)


def test_composition_keeps_vertex_kinds():
    sub = FlowGraph("sub")
    sub.add_split("s", NSplit, group="workers")
    sub.add_leaf("l", AddOne, group="workers")
    sub.add_merge("m", Gather, group="workers", closes="s")
    sub.connect("s", "l", RoundRobin())
    sub.connect("l", "m", Constant(0))
    g = base_graph()
    g.replace_leaf("stage", sub, "s", "m")
    g.validate()
    assert g.vertices["stage.s"].kind is VertexKind.SPLIT
    assert g.vertices["stage.m"].kind is VertexKind.MERGE
    # The pairing was renamed along with the vertices.
    assert g.vertices["stage.m"].closes == "stage.s"


def test_composition_into_missing_entry_rejected():
    g = base_graph()
    with pytest.raises(FlowGraphError, match="entry/exit"):
        g.replace_leaf("stage", chain_subgraph(2), "nope", "hop1")


# --------------------------------------------------------------------------
# behavioural equivalence
# --------------------------------------------------------------------------


@pytest.mark.parametrize("length", [1, 2, 4])
def test_composed_graph_runs_and_counts_stages(length):
    g = base_graph()
    g.replace_leaf("stage", chain_subgraph(length), "hop0", f"hop{length - 1}")
    run_graph(g, tasks=5)
    # Every task traversed exactly `length` AddOne stages.
    assert Gather.results == [[length] * 5]


def test_identity_composition_equivalent_to_original():
    """Replacing a leaf by a single-vertex chain is behaviourally a no-op."""
    plain = run_graph(base_graph(), tasks=6)
    plain_values = Gather.results.pop()
    composed_graph = base_graph()
    composed_graph.replace_leaf("stage", chain_subgraph(1), "hop0", "hop0")
    composed = run_graph(composed_graph, tasks=6)
    assert Gather.results.pop() == plain_values
    # Same logical execution -> same step count; timing identical too
    # (same vertices on the same threads).
    assert composed.trace.step_count == plain.trace.step_count
    assert composed.makespan == pytest.approx(plain.makespan)


def test_nested_composition():
    """Composition composes: replace a leaf inside an already-spliced chain."""
    g = base_graph()
    g.replace_leaf("stage", chain_subgraph(2), "hop0", "hop1")
    g.replace_leaf("stage.hop1", chain_subgraph(3), "hop0", "hop2")
    g.validate()
    run_graph(g, tasks=3)
    assert Gather.results == [[4] * 3]  # 1 (hop0) + 3 (nested chain)
