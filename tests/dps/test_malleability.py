"""Dynamic allocation at the runtime level: planners and removal."""

import pytest

from repro.dps.deployment import ThreadId
from repro.dps.malleability import (
    AllocationEvent,
    AllocationSchedule,
    Migration,
    modulo_owner_planner,
    round_robin_planner,
)
from repro.errors import MalleabilityError


def tid(i):
    return ThreadId("workers", i)


def test_allocation_schedule_lookup():
    sched = AllocationSchedule(
        events=(
            AllocationEvent("iter1", "workers", (4, 5)),
            AllocationEvent("iter3", "workers", (2, 3)),
        ),
        name="staged",
    )
    assert len(sched.removals_after("iter1")) == 1
    assert sched.removals_after("iter2") == []
    assert sched.total_removed == 4


def test_allocation_event_needs_indices():
    with pytest.raises(MalleabilityError):
        AllocationEvent("iter1", "workers", ())


def test_migration_negative_size_rejected():
    with pytest.raises(MalleabilityError):
        Migration(key="k", src=tid(0), dst=tid(1), size=-1.0)


def test_round_robin_planner_moves_only_removed_state():
    states = {
        tid(0): {"a": object()},
        tid(1): {"b": object(), "c": object()},
    }
    survivors = [tid(0)]
    plan = round_robin_planner()("workers", states, survivors)
    moved_keys = {m.key for m in plan}
    assert moved_keys == {"b", "c"}
    assert all(m.dst == tid(0) for m in plan)


def test_round_robin_planner_requires_survivors():
    with pytest.raises(MalleabilityError):
        round_robin_planner()("workers", {tid(0): {"x": 1}}, [])


def test_modulo_owner_planner_relocates_between_survivors():
    """Shrinking 4 -> 2 moves block 2 from surviving thread 0? No —
    block j lives at j % P; after shrink block 2 belongs to survivors[0].
    Blocks whose owner changes move even off surviving threads."""
    states = {
        tid(0): {("block", 0): "b0"},
        tid(1): {("block", 1): "b1", ("block", 3): "b3-wrong-home"},
        tid(2): {("block", 2): "b2"},
        tid(3): {},
    }
    survivors = [tid(0), tid(1)]

    def key_index(key):
        return key[1] if key[0] == "block" else None

    plan = modulo_owner_planner(key_index, lambda k, v: 100.0)(
        "workers", states, survivors
    )
    moves = {m.key: (m.src, m.dst) for m in plan}
    # block 2 must move from removed thread 2 to survivors[2 % 2] = thread 0
    assert moves[("block", 2)] == (tid(2), tid(0))
    # blocks 0 and 1 already live at their new owner: no migration
    assert ("block", 0) not in moves
    assert ("block", 1) not in moves
    # block 3 -> survivors[3 % 2] = thread 1 — already there, no move
    assert ("block", 3) not in moves


def test_modulo_owner_planner_handles_unindexed_keys():
    states = {
        tid(0): {"scratch": "s"},
        tid(1): {"temp": "t"},
    }
    survivors = [tid(0)]
    plan = modulo_owner_planner(lambda k: None, lambda k, v: 0.0)(
        "workers", states, survivors
    )
    # Unindexed state on the removed thread moves; survivor state stays.
    assert {m.key for m in plan} == {"temp"}
