"""Trace accumulation levels and the execution backend."""

import pytest

from repro.cpumodel.shared import SharedCpuModel
from repro.des.kernel import Kernel
from repro.dps.backend import ExecutionBackend
from repro.dps.deployment import ThreadId
from repro.dps.trace import RuntimeTrace, StepRecord, TraceLevel, TransferRecord
from repro.netmodel.params import NetworkParams
from repro.netmodel.star import EqualShareStarNetwork


def step(node=0, work=1.0, start=0.0, end=None, phase=None):
    return StepRecord(
        vertex="v",
        thread=ThreadId("g", 0),
        node=node,
        kernel="k",
        start=start,
        end=end if end is not None else start + work,
        work=work,
        phase=phase,
    )


def test_none_level_counts_only():
    trace = RuntimeTrace(level=TraceLevel.NONE)
    trace.record_step(step())
    assert trace.step_count == 1
    assert trace.node_work == {}
    assert trace.steps == []


def test_summary_level_accumulates_work():
    trace = RuntimeTrace(level=TraceLevel.SUMMARY)
    trace.record_step(step(node=0, work=1.0, phase="p1"))
    trace.record_step(step(node=0, work=2.0, phase="p1"))
    trace.record_step(step(node=1, work=0.5, phase="p2"))
    assert trace.node_work == {0: 3.0, 1: 0.5}
    assert trace.phase_work == {"p1": 3.0, "p2": 0.5}
    assert trace.phase_node_work[("p1", 0)] == 3.0
    assert trace.total_work() == 3.5
    assert trace.steps == []  # not retained at SUMMARY


def test_full_level_retains_records():
    trace = RuntimeTrace(level=TraceLevel.FULL)
    trace.record_step(step())
    trace.record_transfer(
        TransferRecord(kind="t", src_node=0, dst_node=1, size=100.0, start=0.0, end=1.0)
    )
    assert len(trace.steps) == 1
    assert len(trace.transfers) == 1
    assert trace.transfer_bytes == 100.0


def test_step_stretch():
    contended = step(work=1.0, start=0.0, end=2.0)
    assert contended.stretch == pytest.approx(2.0)
    assert contended.duration == pytest.approx(2.0)


def test_busy_fraction():
    trace = RuntimeTrace()
    trace.record_step(step(node=0, work=2.0))
    assert trace.busy_fraction(0, makespan=4.0) == pytest.approx(0.5)
    assert trace.busy_fraction(1, makespan=4.0) == 0.0
    assert trace.busy_fraction(0, makespan=0.0) == 0.0


# ------------------------------------------------------------------ backend
def make_backend(kernel):
    return ExecutionBackend(
        kernel,
        SharedCpuModel(kernel),
        EqualShareStarNetwork(
            kernel, NetworkParams(latency=1e-4, bandwidth=1e7, per_object_overhead=0)
        ),
        local_delivery_delay=5e-6,
    )


def test_backend_local_transfer_uses_delay(kernel):
    backend = make_backend(kernel)
    done = []
    backend.submit_transfer(2, 2, 1e9, lambda: done.append(kernel.now))
    kernel.run()
    assert done == [pytest.approx(5e-6)]  # size irrelevant locally


def test_backend_remote_transfer_uses_network(kernel):
    backend = make_backend(kernel)
    done = []
    backend.submit_transfer(0, 1, 1e7, lambda: done.append(kernel.now))
    kernel.run()
    assert done == [pytest.approx(1.0 + 1e-4)]


def test_backend_compute_goes_to_cpu(kernel):
    backend = make_backend(kernel)
    done = []
    backend.submit_compute(0, 0.25, lambda: done.append(kernel.now))
    kernel.run()
    assert done == [pytest.approx(0.25)]
