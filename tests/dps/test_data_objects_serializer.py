"""Data objects and the size-counting serializer."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.dps.data_objects import DataObject, Frame
from repro.dps.serializer import (
    CountingSerializer,
    ELEMENT_TAG_BYTES,
    HEADER_BYTES,
    META_ENTRY_BYTES,
    payload_nbytes,
)
from repro.errors import SerializationError


def test_data_object_basics():
    obj = DataObject("task", payload=[1, 2], meta={"i": 3}, declared_size=100)
    assert obj.kind == "task"
    assert obj.get("i") == 3
    assert obj.get("missing", "d") == "d"
    assert obj.top_frame is None


def test_frames_attach():
    obj = DataObject("t")
    obj.with_frames((Frame(1, 0), Frame(2, 5)))
    assert obj.top_frame == Frame(2, 5)


def test_object_ids_unique():
    a, b = DataObject("x"), DataObject("x")
    assert a.object_id != b.object_id


def test_empty_kind_rejected():
    with pytest.raises(SerializationError):
        DataObject("")


def test_negative_declared_size_rejected():
    with pytest.raises(SerializationError):
        DataObject("x", declared_size=-1)


def test_payload_nbytes_numpy_exact():
    arr = np.zeros((13, 7), dtype=np.float64)
    assert payload_nbytes(arr) == 13 * 7 * 8


def test_payload_nbytes_scalars():
    assert payload_nbytes(None) == 0.0
    assert payload_nbytes(True) == 1.0
    assert payload_nbytes(3) == 8.0
    assert payload_nbytes(3.5) == 8.0
    assert payload_nbytes(1 + 2j) == 16.0
    assert payload_nbytes(b"abcd") == 4.0
    assert payload_nbytes("héllo") == len("héllo".encode()) * 1.0


def test_payload_nbytes_nested_containers():
    value = {"a": [1, 2.0], "b": np.zeros(4)}
    list_bytes = (8 + ELEMENT_TAG_BYTES) + (8 + ELEMENT_TAG_BYTES)
    expected = (
        (1 + list_bytes + ELEMENT_TAG_BYTES)  # key "a" + list + entry tag
        + (1 + 32 + ELEMENT_TAG_BYTES)  # key "b" + array + entry tag
    )
    assert payload_nbytes(value) == pytest.approx(expected)


def test_payload_nbytes_unsupported_type():
    with pytest.raises(SerializationError):
        payload_nbytes(object())


def test_serializer_declared_size_wins():
    s = CountingSerializer()
    obj = DataObject("x", payload=np.zeros(1000), declared_size=64)
    info = s.size_info(obj)
    assert info.payload == 64
    assert info.header == HEADER_BYTES


def test_serializer_meta_counted():
    s = CountingSerializer()
    obj = DataObject("x", meta={"col": 1, "row": 2}, declared_size=0)
    info = s.size_info(obj)
    assert info.meta == 2 * META_ENTRY_BYTES + len("col") + len("row")
    assert s.size(obj) == info.total


arrays = st.integers(min_value=0, max_value=64).map(
    lambda n: np.zeros(n, dtype=np.float64)
)
payloads = st.recursive(
    st.one_of(
        st.none(),
        st.booleans(),
        st.integers(min_value=-(2**40), max_value=2**40),
        st.floats(allow_nan=False, allow_infinity=False),
        st.text(max_size=16),
        st.binary(max_size=32),
        arrays,
    ),
    lambda children: st.lists(children, max_size=4),
    max_leaves=12,
)


@given(payloads)
def test_sizing_never_copies_and_is_non_negative(payload):
    size = payload_nbytes(payload)
    assert size >= 0.0
    # Sizing twice gives the same answer (pure function).
    assert payload_nbytes(payload) == size


@given(payloads)
def test_serializer_total_is_header_plus_parts(payload):
    s = CountingSerializer()
    obj = DataObject("k", payload=payload, meta={"m": 1})
    info = s.size_info(obj)
    assert info.total == info.header + info.meta + info.payload
    assert info.payload == payload_nbytes(payload)
