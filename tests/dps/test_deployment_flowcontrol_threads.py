"""Deployment mapping, credit accounts and thread managers."""

import pytest

from repro.dps.deployment import Deployment, ThreadId
from repro.dps.flow_control import CreditAccount, FlowControlConfig
from repro.dps.threads import DPSThread, ThreadManager
from repro.errors import ConfigurationError, DeploymentError, MalleabilityError


# ----------------------------------------------------------- deployment
def test_deployment_group_mapping():
    dep = Deployment(4)
    dep.add_group("workers", [0, 1, 2, 3, 0, 1])
    assert dep.node_of(ThreadId("workers", 4)) == 0
    assert dep.groups["workers"].size == 6


def test_block_cyclic_helper():
    dep = Deployment(4).add_group_block("workers", 8)
    assert [dep.node_of(ThreadId("workers", i)) for i in range(8)] == [
        0, 1, 2, 3, 0, 1, 2, 3,
    ]


def test_per_node_and_singleton():
    dep = Deployment(3).add_per_node("control").add_singleton("main", 2)
    assert [dep.node_of(ThreadId("control", i)) for i in range(3)] == [0, 1, 2]
    assert dep.node_of(ThreadId("main", 0)) == 2


def test_invalid_deployments_rejected():
    with pytest.raises(DeploymentError):
        Deployment(0)
    dep = Deployment(2)
    with pytest.raises(DeploymentError):
        dep.add_group("g", [])
    with pytest.raises(DeploymentError):
        dep.add_group("g", [5])
    dep.add_group("g", [0])
    with pytest.raises(DeploymentError):
        dep.add_group("g", [0])


def test_unknown_thread_lookup_rejected():
    dep = Deployment(2).add_group("g", [0])
    with pytest.raises(DeploymentError):
        dep.node_of(ThreadId("nope", 0))
    with pytest.raises(DeploymentError):
        dep.node_of(ThreadId("g", 7))


def test_validate_against_graph_groups():
    dep = Deployment(2).add_group("main", [0])
    with pytest.raises(DeploymentError, match="workers"):
        dep.validate_against({"main", "workers"})


def test_used_nodes_and_threads():
    dep = Deployment(4).add_group("a", [0, 2]).add_group("b", [2])
    assert dep.used_nodes() == {0, 2}
    assert len(list(dep.threads())) == 3


# ----------------------------------------------------------- flow control
def test_credit_account_acquire_release():
    acc = CreditAccount(2)
    assert acc.acquire() and acc.acquire()
    assert not acc.acquire()
    assert acc.release() is None
    assert acc.acquire()


def test_credit_transfers_to_waiter():
    acc = CreditAccount(1)
    assert acc.acquire()
    resumed = []
    acc.wait(lambda: resumed.append(True))
    cb = acc.release()
    assert cb is not None
    cb()
    assert resumed == [True]
    # Credit moved to the waiter: still outstanding.
    assert acc.outstanding == 1
    assert not acc.acquire()


def test_release_without_outstanding_rejected():
    with pytest.raises(ConfigurationError):
        CreditAccount(1).release()


def test_flow_control_config_validation():
    FlowControlConfig(None)
    FlowControlConfig(3)
    with pytest.raises(ConfigurationError):
        FlowControlConfig(0)


# ----------------------------------------------------------- threads
def test_thread_manager_create_destroy():
    mgr = ThreadManager(0)
    t = mgr.create(ThreadId("g", 0))
    assert mgr.live_count == 1
    assert t.drained
    mgr.destroy(ThreadId("g", 0))
    assert mgr.live_count == 0


def test_duplicate_thread_rejected():
    mgr = ThreadManager(0)
    mgr.create(ThreadId("g", 0))
    with pytest.raises(MalleabilityError):
        mgr.create(ThreadId("g", 0))


def test_destroy_busy_thread_rejected():
    mgr = ThreadManager(0)
    t = mgr.create(ThreadId("g", 0))
    t.queue.append(("v", object()))
    with pytest.raises(MalleabilityError, match="queued or running"):
        mgr.destroy(ThreadId("g", 0))


def test_dead_thread_rejects_deliveries():
    t = DPSThread(ThreadId("g", 0), 0)
    t.alive = False
    with pytest.raises(MalleabilityError, match="removed thread"):
        t.ensure_alive()
