"""Routing functions: range correctness and distribution."""

import pytest
from hypothesis import given, strategies as st

from repro.dps.data_objects import DataObject
from repro.dps.routing import (
    Broadcast,
    ByMetaKey,
    Constant,
    Modulo,
    RoundRobin,
)
from repro.errors import RoutingError


def obj(**meta):
    return DataObject("t", meta=meta)


def test_constant_clamps_into_group():
    assert Constant(5)(obj(), 3) == 2


def test_round_robin_cycles():
    rr = RoundRobin()
    assert [rr(obj(), 3) for _ in range(6)] == [0, 1, 2, 0, 1, 2]


def test_round_robin_instances_independent():
    a, b = RoundRobin(), RoundRobin()
    assert a(obj(), 4) == 0
    assert a(obj(), 4) == 1
    assert b(obj(), 4) == 0


def test_modulo_routes_by_meta():
    m = Modulo("col")
    assert m(obj(col=7), 4) == 3
    assert m(obj(col=7), 8) == 7


def test_modulo_offset():
    assert Modulo("col", offset=1)(obj(col=3), 4) == 0


def test_modulo_missing_key_raises():
    with pytest.raises(RoutingError):
        Modulo("col")(obj(), 4)


def test_by_meta_key_custom_function():
    r = ByMetaKey("size", lambda v, n: v // 10)
    assert r(obj(size=25), 8) == 2


def test_empty_group_rejected():
    with pytest.raises(RoutingError):
        Constant(0)(obj(), 0)


def test_broadcast_route_not_directly_callable():
    with pytest.raises(RoutingError):
        Broadcast()(obj(), 4)


def test_out_of_range_detected():
    class Bad(Modulo):
        def route(self, obj, group_size):
            return group_size  # off by one

    with pytest.raises(RoutingError):
        Bad("col")(obj(col=1), 4)


@given(
    st.integers(min_value=0, max_value=10**9),
    st.integers(min_value=1, max_value=64),
)
def test_modulo_always_in_range(value, group):
    assert 0 <= Modulo("col")(obj(col=value), group) < group


@given(st.integers(min_value=1, max_value=32), st.integers(min_value=1, max_value=200))
def test_round_robin_is_balanced(group, count):
    rr = RoundRobin()
    hits = [0] * group
    for _ in range(count * group):
        hits[rr(obj(), group)] += 1
    assert max(hits) - min(hits) == 0
