"""Machine profiles: efficiency curve and flops-to-seconds conversion."""

import pytest
from hypothesis import given, strategies as st

from repro.cpumodel.machines import (
    MachineProfile,
    PENTIUM4_2800,
    ULTRASPARC_II_440,
)
from repro.util.units import KB, MB


def test_seconds_scale_with_flops():
    m = ULTRASPARC_II_440
    ws = 500 * KB
    assert m.seconds_for(2e6, ws) == pytest.approx(2 * m.seconds_for(1e6, ws))


def test_zero_flops_is_zero_seconds():
    assert ULTRASPARC_II_440.seconds_for(0.0, 1000) == 0.0


def test_negative_flops_rejected():
    with pytest.raises(ValueError):
        ULTRASPARC_II_440.seconds_for(-1.0, 100)


def test_efficiency_peaks_at_moderate_working_sets():
    m = ULTRASPARC_II_440
    tiny = m.efficiency(1 * KB)
    sweet = m.efficiency(600 * KB)
    huge = m.efficiency(64 * MB)
    assert sweet > tiny
    assert sweet > huge
    assert tiny >= m.small_block_factor * m.memory_bound_factor - 1e-9
    assert huge >= m.memory_bound_factor * 0.5


@given(st.floats(min_value=1.0, max_value=1e10))
def test_efficiency_bounded(ws):
    e = ULTRASPARC_II_440.efficiency(ws)
    assert 0.0 < e <= 1.0


def test_speed_ratio_between_paper_hosts():
    # Table 1: the Pentium 4 runs the direct-execution simulation ~6.5x
    # faster than the UltraSparc (29.7 s vs 193.0 s).
    ratio = PENTIUM4_2800.speed_ratio(ULTRASPARC_II_440)
    assert 5.5 < ratio < 7.5


def test_serial_lu_calibration_anchor():
    """Paper: serial LU of 2592^2 with r=216 runs in 185.1 s."""
    from repro.apps.lu.costs import lu_total_flops, panel_lu_spec, gemm_spec

    m = ULTRASPARC_II_440
    # Approximate the serial time as flops over the gemm-dominated rate.
    total = 0.0
    n, r = 2592, 216
    nb = n // r
    for k in range(nb):
        rows = n - k * r
        mk = nb - 1 - k
        total += m.seconds_for(rows * r * r - r**3 / 3, 8.0 * rows * r)
        total += mk * m.seconds_for(float(r) ** 3, 2 * 8.0 * r * r)
        total += mk * mk * m.seconds_for(2.0 * float(r) ** 3, 3 * 8.0 * r * r)
        total += mk * mk * m.seconds_for(float(r) * r, 2 * 8.0 * r * r)
    assert total == pytest.approx(185.1, rel=0.10)


def test_profile_validation():
    with pytest.raises(Exception):
        MachineProfile(name="bad", effective_mflops=0.0)
    with pytest.raises(Exception):
        MachineProfile(name="bad", effective_mflops=100.0, memory_bound_factor=1.5)
