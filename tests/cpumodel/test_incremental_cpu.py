"""Incremental allocation for the timeslice CPU model (and its coupling).

Mirrors ``tests/netmodel/test_incremental.py`` for
:class:`~repro.cpumodel.timeslice.TimesliceCpuModel`, which joined the
dirty-set protocol after the shared-CPU model: per-host slice groups with
the multiprogramming-overhead rate law, including the network coupling
(transfer activity consumes processing power, so network changes must
re-rate exactly the touched hosts).
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.cpumodel.timeslice import TimesliceCpuModel, TimesliceParams
from repro.des.kernel import Kernel
from repro.netmodel.params import NetworkParams
from repro.netmodel.star import EqualShareStarNetwork

try:
    import numpy  # noqa: F401
    HAS_NUMPY = True
except ImportError:
    HAS_NUMPY = False

requires_numpy = pytest.mark.skipif(
    not HAS_NUMPY, reason="seeded noise streams need numpy"
)


#: Deterministic knobs (noise off) keep the inc/full comparison exact even
#: under heavy churn; noise is covered by the seeded-equivalence test below.
QUIET = TimesliceParams(csw_overhead=0.05, noise_sigma=0.0)


def _drive(cpu_factory, submissions, with_network=False):
    """Submit (time, node, work) steps; return completion times."""
    kernel = Kernel()
    cpu = cpu_factory(kernel)
    if with_network:
        # Couple to a network and keep transfers churning so available
        # power moves mid-run (the refresh path).
        net = EqualShareStarNetwork(kernel, NetworkParams(latency=0.0, bandwidth=1e6))
        cpu.attach_network(net)
        rng = random.Random(9)
        for i in range(10):
            kernel.schedule(
                rng.uniform(0.0, 2.0),
                net.submit,
                rng.randrange(4),
                4 + rng.randrange(4),
                rng.uniform(1e5, 1e6),
                lambda tr: None,
            )
    completions = {}

    def submit(index, node, work):
        cpu.submit(node, work, lambda h: completions.setdefault(index, kernel.now))

    for i, (time, node, work) in enumerate(submissions):
        kernel.schedule(time, submit, i, node, work)
    kernel.run()
    assert len(completions) == len(submissions)
    return [completions[i] for i in range(len(submissions))], cpu


submission_strategy = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=3.0),    # submit time
        st.integers(min_value=0, max_value=3),      # node
        st.floats(min_value=0.01, max_value=2.0),   # work
    ),
    min_size=1,
    max_size=25,
)


@requires_numpy
@settings(deadline=None, max_examples=40)
@given(submission_strategy)
def test_timeslice_incremental_matches_full_shadow(submissions):
    """verify_incremental=True raises if any incremental update diverges
    from the full recompute by more than 1e-9 relative."""
    times, cpu = _drive(
        lambda kernel: TimesliceCpuModel(
            kernel, QUIET, seed=0, verify_incremental=True
        ),
        submissions,
    )
    assert cpu.allocator.stats.incremental_updates > 0
    assert cpu.allocator.stats.verify_recomputes > 0


@requires_numpy
@settings(deadline=None, max_examples=25)
@given(submission_strategy)
def test_timeslice_shadow_with_network_coupling(submissions):
    """The refresh path (power moved by transfer activity) must also match
    the full recompute exactly."""
    times, cpu = _drive(
        lambda kernel: TimesliceCpuModel(
            kernel, QUIET, seed=0, verify_incremental=True
        ),
        submissions,
        with_network=True,
    )
    assert cpu.allocator.stats.incremental_updates > 0


@requires_numpy
@settings(deadline=None, max_examples=25)
@given(submission_strategy)
def test_timeslice_incremental_end_to_end_equivalence(submissions):
    """Completion times agree between incremental and full allocation, with
    seeded noise on (identical submission order → identical draws)."""
    noisy = TimesliceParams(csw_overhead=0.02, noise_sigma=0.05)
    inc_times, _ = _drive(
        lambda kernel: TimesliceCpuModel(kernel, noisy, seed=5, incremental=True),
        submissions,
    )
    full_times, _ = _drive(
        lambda kernel: TimesliceCpuModel(kernel, noisy, seed=5, incremental=False),
        submissions,
    )
    for a, b in zip(inc_times, full_times):
        assert a == pytest.approx(b, rel=1e-9, abs=1e-12)


@requires_numpy
def test_timeslice_updates_touch_one_host_only(kernel):
    """Steps on distinct hosts are independent slice groups: each arrival
    re-rates only its own host's steps."""
    cpu = TimesliceCpuModel(kernel, QUIET, seed=0)
    for node in range(6):
        cpu.submit(node, 1.0, lambda h: None)
    stats = cpu.allocator.stats
    assert stats.incremental_updates == 6
    assert stats.rates_computed == 6
    kernel.run()


@requires_numpy
def test_timeslice_overhead_law_survives_incremental(kernel):
    """The multiprogramming-overhead rate law must be unchanged: two steps
    on one host finish at 2 * (1 + csw) with csw overhead."""
    cpu = TimesliceCpuModel(
        kernel, TimesliceParams(csw_overhead=0.1, noise_sigma=0.0), seed=0
    )
    done = []
    cpu.submit(0, 1.0, lambda h: done.append(kernel.now))
    cpu.submit(0, 1.0, lambda h: done.append(kernel.now))
    kernel.run()
    assert done[0] == pytest.approx(2.0 * 1.1, rel=1e-6)


@requires_numpy
def test_shared_and_timeslice_agree_without_overhead(kernel):
    """With csw_overhead=0 and no noise the timeslice law reduces to the
    paper's even share — the two allocator families must agree."""
    from repro.cpumodel.shared import SharedCpuModel

    results = {}
    for name, build in (
        ("shared", lambda k: SharedCpuModel(k)),
        ("timeslice", lambda k: TimesliceCpuModel(
            k, TimesliceParams(csw_overhead=0.0, noise_sigma=0.0), seed=0
        )),
    ):
        k = Kernel()
        cpu = build(k)
        done = []
        for node, work in [(0, 1.0), (0, 2.0), (1, 1.5), (0, 0.5)]:
            cpu.submit(node, work, lambda h: done.append(k.now))
        k.run()
        results[name] = sorted(done)
    assert results["shared"] == pytest.approx(results["timeslice"])
