"""Even-share CPU model and its coupling to the network."""

import pytest

from repro.cpumodel.commcost import CommCostModel, CommCostParams
from repro.cpumodel.shared import SharedCpuModel
from repro.des.kernel import Kernel
from repro.errors import SimulationError
from repro.netmodel.params import NetworkParams
from repro.netmodel.star import EqualShareStarNetwork


def test_single_step_runs_at_full_power(kernel):
    cpu = SharedCpuModel(kernel)
    done = []
    cpu.submit(0, 2.0, lambda h: done.append(kernel.now))
    kernel.run()
    assert done == [pytest.approx(2.0)]


def test_two_steps_share_node_evenly(kernel):
    cpu = SharedCpuModel(kernel)
    done = {}
    cpu.submit(0, 1.0, lambda h: done.setdefault("a", kernel.now))
    cpu.submit(0, 1.0, lambda h: done.setdefault("b", kernel.now))
    kernel.run()
    assert done["a"] == pytest.approx(2.0)
    assert done["b"] == pytest.approx(2.0)


def test_steps_on_different_nodes_independent(kernel):
    cpu = SharedCpuModel(kernel)
    done = {}
    cpu.submit(0, 1.0, lambda h: done.setdefault("a", kernel.now))
    cpu.submit(1, 1.0, lambda h: done.setdefault("b", kernel.now))
    kernel.run()
    assert done["a"] == pytest.approx(1.0)
    assert done["b"] == pytest.approx(1.0)


def test_zero_work_completes_instantly(kernel):
    cpu = SharedCpuModel(kernel)
    done = []
    cpu.submit(0, 0.0, lambda h: done.append(kernel.now))
    assert done == [0.0]


def test_negative_work_rejected(kernel):
    cpu = SharedCpuModel(kernel)
    with pytest.raises(SimulationError):
        cpu.submit(0, -1.0, lambda h: None)


def test_communication_slows_computation(kernel):
    """The paper's coupling: transfers consume processing power."""
    params = CommCostParams(
        recv_fraction=0.0, send_fraction=0.2, marginal_decay=1.0, max_fraction=0.9
    )
    net = EqualShareStarNetwork(
        kernel, NetworkParams(latency=0.0, bandwidth=1e6, per_object_overhead=0.0)
    )
    cpu = SharedCpuModel(kernel, CommCostModel(params))
    cpu.attach_network(net)
    done = {}
    # Transfer occupies [0, 1]: 1 MB at 1 MB/s, costing 20% CPU on node 0.
    net.submit(0, 1, 1e6, lambda tr: done.setdefault("net", kernel.now))
    cpu.submit(0, 1.0, lambda h: done.setdefault("cpu", kernel.now))
    kernel.run()
    assert done["net"] == pytest.approx(1.0)
    # During [0,1] the step runs at 0.8 -> 0.2 work left -> ends at 1.2.
    assert done["cpu"] == pytest.approx(1.2)


def test_completed_work_accounting(kernel):
    cpu = SharedCpuModel(kernel)
    cpu.submit(0, 1.0, lambda h: None)
    cpu.submit(0, 2.0, lambda h: None)
    cpu.submit(1, 0.5, lambda h: None)
    kernel.run()
    assert cpu.completed_work[0] == pytest.approx(3.0)
    assert cpu.completed_work[1] == pytest.approx(0.5)


def test_running_steps_counter(kernel):
    cpu = SharedCpuModel(kernel)
    cpu.submit(0, 1.0, lambda h: None)
    cpu.submit(0, 1.0, lambda h: None)
    assert cpu.running_steps(0) == 2
    kernel.run()
    assert cpu.running_steps(0) == 0


def _coupled_workload(kernel, incremental, verify=False):
    """Compute steps on several nodes overlapping a transfer storm."""
    params = CommCostParams(
        recv_fraction=0.1, send_fraction=0.2, marginal_decay=0.7, max_fraction=0.9
    )
    net = EqualShareStarNetwork(
        kernel, NetworkParams(latency=0.0, bandwidth=1e6), incremental=incremental
    )
    cpu = SharedCpuModel(
        kernel,
        CommCostModel(params),
        incremental=incremental,
        verify_incremental=verify,
    )
    cpu.attach_network(net)
    done = {}
    for i, (node, work) in enumerate(
        [(0, 1.0), (0, 2.0), (1, 0.5), (1, 1.5), (2, 1.0), (3, 0.25)]
    ):
        cpu.submit(node, work, lambda h, i=i: done.setdefault(i, kernel.now))
    for j, (src, dst, size) in enumerate(
        [(0, 1, 1e6), (0, 2, 5e5), (1, 3, 2e6), (2, 0, 1e6), (3, 1, 7e5)]
    ):
        kernel.schedule(0.1 * j, net.submit, src, dst, size, lambda tr: None)
    kernel.run()
    return done, cpu


def test_incremental_cpu_matches_full_shadow(kernel):
    """verify_incremental=True shadows every update/refresh with a full
    recompute and raises on divergence."""
    done, cpu = _coupled_workload(kernel, incremental=True, verify=True)
    assert len(done) == 6
    assert cpu.allocator.stats.incremental_updates > 0
    assert cpu.allocator.stats.refreshes > 0


def test_incremental_cpu_end_to_end_equivalence():
    """Completion times agree between incremental and full allocation."""
    k1, k2 = Kernel(), Kernel()
    inc_done, _ = _coupled_workload(k1, incremental=True)
    full_done, _ = _coupled_workload(k2, incremental=False)
    assert inc_done.keys() == full_done.keys()
    for key in inc_done:
        assert inc_done[key] == pytest.approx(full_done[key], rel=1e-9)


def test_verify_mode_survives_submit_from_transfer_callback(kernel):
    """Regression: a transfer-completion callback that submits CPU work on
    the transfer's node runs before the network's change notification, so
    the allocator must not trust its cached node power there — the verify
    shadow (which recomputes power fresh) used to diverge and raise."""
    params = CommCostParams(
        recv_fraction=0.1, send_fraction=0.2, marginal_decay=1.0, max_fraction=0.9
    )
    net = EqualShareStarNetwork(kernel, NetworkParams(latency=0.0, bandwidth=1e6))
    cpu = SharedCpuModel(
        kernel, CommCostModel(params), verify_incremental=True
    )
    cpu.attach_network(net)
    done = {}
    cpu.submit(0, 1.0, lambda h: done.setdefault("first", kernel.now))
    net.submit(
        0, 1, 1e6,
        lambda tr: cpu.submit(0, 0.5, lambda h: done.setdefault("second", kernel.now)),
    )
    kernel.run()
    assert "first" in done and "second" in done


def test_network_refresh_only_touches_changed_nodes(kernel):
    """A transfer between nodes 0 and 1 must not re-rate steps on node 5."""
    net = EqualShareStarNetwork(kernel, NetworkParams(latency=0.0, bandwidth=1e6))
    cpu = SharedCpuModel(kernel)
    cpu.attach_network(net)
    cpu.submit(5, 10.0, lambda h: None)
    baseline = cpu.allocator.stats.rates_computed
    net.submit(0, 1, 1e6, lambda tr: None)
    # The refresh ran (listener fired) but node 5's power is unchanged and
    # nodes 0/1 run no steps, so no rates were recomputed.
    assert cpu.allocator.stats.refreshes >= 1
    assert cpu.allocator.stats.rates_computed == baseline
    kernel.run()
