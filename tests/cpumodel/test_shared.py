"""Even-share CPU model and its coupling to the network."""

import pytest

from repro.cpumodel.commcost import CommCostModel, CommCostParams
from repro.cpumodel.shared import SharedCpuModel
from repro.des.kernel import Kernel
from repro.errors import SimulationError
from repro.netmodel.params import NetworkParams
from repro.netmodel.star import EqualShareStarNetwork


def test_single_step_runs_at_full_power(kernel):
    cpu = SharedCpuModel(kernel)
    done = []
    cpu.submit(0, 2.0, lambda h: done.append(kernel.now))
    kernel.run()
    assert done == [pytest.approx(2.0)]


def test_two_steps_share_node_evenly(kernel):
    cpu = SharedCpuModel(kernel)
    done = {}
    cpu.submit(0, 1.0, lambda h: done.setdefault("a", kernel.now))
    cpu.submit(0, 1.0, lambda h: done.setdefault("b", kernel.now))
    kernel.run()
    assert done["a"] == pytest.approx(2.0)
    assert done["b"] == pytest.approx(2.0)


def test_steps_on_different_nodes_independent(kernel):
    cpu = SharedCpuModel(kernel)
    done = {}
    cpu.submit(0, 1.0, lambda h: done.setdefault("a", kernel.now))
    cpu.submit(1, 1.0, lambda h: done.setdefault("b", kernel.now))
    kernel.run()
    assert done["a"] == pytest.approx(1.0)
    assert done["b"] == pytest.approx(1.0)


def test_zero_work_completes_instantly(kernel):
    cpu = SharedCpuModel(kernel)
    done = []
    cpu.submit(0, 0.0, lambda h: done.append(kernel.now))
    assert done == [0.0]


def test_negative_work_rejected(kernel):
    cpu = SharedCpuModel(kernel)
    with pytest.raises(SimulationError):
        cpu.submit(0, -1.0, lambda h: None)


def test_communication_slows_computation(kernel):
    """The paper's coupling: transfers consume processing power."""
    params = CommCostParams(
        recv_fraction=0.0, send_fraction=0.2, marginal_decay=1.0, max_fraction=0.9
    )
    net = EqualShareStarNetwork(
        kernel, NetworkParams(latency=0.0, bandwidth=1e6, per_object_overhead=0.0)
    )
    cpu = SharedCpuModel(kernel, CommCostModel(params))
    cpu.attach_network(net)
    done = {}
    # Transfer occupies [0, 1]: 1 MB at 1 MB/s, costing 20% CPU on node 0.
    net.submit(0, 1, 1e6, lambda tr: done.setdefault("net", kernel.now))
    cpu.submit(0, 1.0, lambda h: done.setdefault("cpu", kernel.now))
    kernel.run()
    assert done["net"] == pytest.approx(1.0)
    # During [0,1] the step runs at 0.8 -> 0.2 work left -> ends at 1.2.
    assert done["cpu"] == pytest.approx(1.2)


def test_completed_work_accounting(kernel):
    cpu = SharedCpuModel(kernel)
    cpu.submit(0, 1.0, lambda h: None)
    cpu.submit(0, 2.0, lambda h: None)
    cpu.submit(1, 0.5, lambda h: None)
    kernel.run()
    assert cpu.completed_work[0] == pytest.approx(3.0)
    assert cpu.completed_work[1] == pytest.approx(0.5)


def test_running_steps_counter(kernel):
    cpu = SharedCpuModel(kernel)
    cpu.submit(0, 1.0, lambda h: None)
    cpu.submit(0, 1.0, lambda h: None)
    assert cpu.running_steps(0) == 2
    kernel.run()
    assert cpu.running_steps(0) == 0
