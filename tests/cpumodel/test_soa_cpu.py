"""The numpy structure-of-arrays CPU backend vs the scalar reference.

Same equivalence contract as ``tests/netmodel/test_soa.py``: for any
submission sequence — including network-coupled runs where transfer
activity moves the available power mid-step — the SoA models produce
completion times equal to the scalar models' within 1e-9 relative, and
``verify_incremental=True`` shadows every solve with a scalar recompute.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

np = pytest.importorskip("numpy")

from repro.cpumodel.shared import SharedCpuModel
from repro.cpumodel.soa import SharedCpuModelSoA, TimesliceCpuModelSoA
from repro.cpumodel.timeslice import TimesliceCpuModel, TimesliceParams
from repro.des.kernel import Kernel
from repro.netmodel.params import NetworkParams
from repro.netmodel.star import EqualShareStarNetwork


def _drive(cpu_factory, submissions, with_network=False):
    """Submit (time, node, work) steps; return completion times."""
    kernel = Kernel()
    cpu = cpu_factory(kernel)
    if with_network:
        net = EqualShareStarNetwork(kernel, NetworkParams(latency=0.0, bandwidth=1e6))
        cpu.attach_network(net)
        rng = random.Random(9)
        for i in range(10):
            kernel.schedule(
                rng.uniform(0.0, 2.0),
                net.submit,
                rng.randrange(4),
                4 + rng.randrange(4),
                rng.uniform(1e5, 1e6),
                lambda tr: None,
            )
    completions = {}

    def submit(index, node, work):
        cpu.submit(node, work, lambda h: completions.setdefault(index, kernel.now))

    for i, (time, node, work) in enumerate(submissions):
        kernel.schedule(time, submit, i, node, work)
    kernel.run()
    assert len(completions) == len(submissions)
    return [completions[i] for i in range(len(submissions))], cpu


submission_strategy = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=3.0),    # submit time
        st.integers(min_value=0, max_value=3),      # node
        st.floats(min_value=0.01, max_value=2.0),   # work
    ),
    min_size=1,
    max_size=25,
)


@settings(deadline=None, max_examples=40)
@given(submission_strategy)
def test_shared_soa_shadow_verifies_every_solve(submissions):
    times, cpu = _drive(
        lambda kernel: SharedCpuModelSoA(kernel, verify_incremental=True),
        submissions,
    )
    stats = cpu.allocator.stats
    assert stats.incremental_updates > 0
    assert stats.verify_recomputes > 0


@settings(deadline=None, max_examples=40)
@given(submission_strategy)
def test_shared_soa_matches_scalar(submissions):
    soa_times, _ = _drive(lambda kernel: SharedCpuModelSoA(kernel), submissions)
    scalar_times, _ = _drive(lambda kernel: SharedCpuModel(kernel), submissions)
    for a, b in zip(soa_times, scalar_times):
        assert a == pytest.approx(b, rel=1e-9, abs=1e-12)


@settings(deadline=None, max_examples=25)
@given(submission_strategy)
def test_timeslice_soa_matches_scalar_with_noise_and_network(submissions):
    """Full ground-truth configuration: seeded lognormal noise AND network
    coupling.  The SoA model draws from the same stream in the same order,
    so completion times are identical."""
    soa_times, _ = _drive(
        lambda kernel: TimesliceCpuModelSoA(kernel, TimesliceParams(), seed=7),
        submissions,
        with_network=True,
    )
    scalar_times, _ = _drive(
        lambda kernel: TimesliceCpuModel(kernel, TimesliceParams(), seed=7),
        submissions,
        with_network=True,
    )
    for a, b in zip(soa_times, scalar_times):
        assert a == pytest.approx(b, rel=1e-9, abs=1e-12)


@settings(deadline=None, max_examples=20)
@given(submission_strategy)
def test_timeslice_soa_shadow_with_network_coupling(submissions):
    times, cpu = _drive(
        lambda kernel: TimesliceCpuModelSoA(
            kernel, TimesliceParams(), seed=7, verify_incremental=True
        ),
        submissions,
        with_network=True,
    )
    assert cpu.allocator.stats.verify_recomputes > 0


def test_soa_rejects_negative_work():
    kernel = Kernel()
    cpu = SharedCpuModelSoA(kernel)
    with pytest.raises(Exception):
        cpu.submit(0, -1.0, lambda h: None)
