"""Testbed CPU model: overhead, noise, determinism."""

import pytest

from repro.cpumodel.timeslice import TimesliceCpuModel, TimesliceParams
from repro.des.kernel import Kernel

try:
    import numpy  # noqa: F401
    HAS_NUMPY = True
except ImportError:
    HAS_NUMPY = False

requires_numpy = pytest.mark.skipif(
    not HAS_NUMPY, reason="seeded noise streams need numpy"
)



def run_two_steps(seed: int, csw: float = 0.1, noise: float = 0.0):
    kernel = Kernel()
    cpu = TimesliceCpuModel(
        kernel, TimesliceParams(csw_overhead=csw, noise_sigma=noise), seed=seed
    )
    done = []
    cpu.submit(0, 1.0, lambda h: done.append(kernel.now))
    cpu.submit(0, 1.0, lambda h: done.append(kernel.now))
    kernel.run()
    return done


@requires_numpy
def test_multiprogramming_overhead_slows_aggregate():
    done = run_two_steps(seed=0, csw=0.1, noise=0.0)
    # Fluid ideal would finish both at t=2; the overheadful model later.
    assert all(t > 2.0 for t in done)
    assert done[0] == pytest.approx(2.0 * 1.1, rel=1e-6)


@requires_numpy
def test_single_step_pays_no_overhead():
    kernel = Kernel()
    cpu = TimesliceCpuModel(
        kernel, TimesliceParams(csw_overhead=0.1, noise_sigma=0.0), seed=0
    )
    done = []
    cpu.submit(0, 1.0, lambda h: done.append(kernel.now))
    kernel.run()
    assert done == [pytest.approx(1.0)]


@requires_numpy
def test_noise_is_seeded_and_reproducible():
    a = run_two_steps(seed=3, noise=0.05)
    b = run_two_steps(seed=3, noise=0.05)
    c = run_two_steps(seed=4, noise=0.05)
    assert a == b
    assert a != c


@requires_numpy
def test_noise_perturbs_durations():
    clean = run_two_steps(seed=5, noise=0.0)
    noisy = run_two_steps(seed=5, noise=0.05)
    assert clean != noisy
    # noise is small: within 20%
    for x, y in zip(clean, noisy):
        assert abs(x - y) / x < 0.2


def test_convex_comm_cost_is_superlinear():
    from repro.cpumodel.timeslice import _ConvexCommCost

    cost = _ConvexCommCost(TimesliceParams())
    one = cost.consumed_power(1, 0)
    two = cost.consumed_power(2, 0)
    assert two > 2 * one * 0.999  # superlinear in the count
