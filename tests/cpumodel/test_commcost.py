"""Communication CPU-cost model."""

import pytest
from hypothesis import given, strategies as st

from repro.cpumodel.commcost import (
    CommCostModel,
    CommCostParams,
    FREE_COMMUNICATION,
)


def test_no_transfers_no_cost():
    m = CommCostModel()
    assert m.consumed_power(0, 0) == 0.0
    assert m.available_power(0, 0) == 1.0


def test_receive_costs_more_than_send():
    """Paper: receiving induces more interrupts and memory copies."""
    m = CommCostModel()
    assert m.consumed_power(1, 0) > m.consumed_power(0, 1)


def test_marginal_cost_decays():
    m = CommCostModel(CommCostParams(recv_fraction=0.1, marginal_decay=0.5, max_fraction=1.0))
    first = m.consumed_power(1, 0)
    second = m.consumed_power(2, 0) - m.consumed_power(1, 0)
    assert second < first
    assert second == pytest.approx(first * 0.5)


def test_saturation_cap():
    m = CommCostModel(CommCostParams(recv_fraction=0.3, marginal_decay=1.0, max_fraction=0.5))
    assert m.consumed_power(10, 10) == 0.5
    assert m.available_power(10, 10) == 0.5


def test_free_communication_preset():
    m = CommCostModel(FREE_COMMUNICATION)
    assert m.consumed_power(5, 5) == 0.0


@given(st.integers(min_value=0, max_value=50), st.integers(min_value=0, max_value=50))
def test_power_bounds(inc, out):
    m = CommCostModel()
    consumed = m.consumed_power(inc, out)
    assert 0.0 <= consumed <= m.params.max_fraction
    assert m.available_power(inc, out) == pytest.approx(1.0 - consumed)


@given(st.integers(min_value=0, max_value=20), st.integers(min_value=0, max_value=20))
def test_monotone_in_counts(inc, out):
    m = CommCostModel()
    assert m.consumed_power(inc + 1, out) >= m.consumed_power(inc, out)
    assert m.consumed_power(inc, out + 1) >= m.consumed_power(inc, out)


def test_params_validation():
    with pytest.raises(Exception):
        CommCostParams(recv_fraction=1.5)
    with pytest.raises(Exception):
        CommCostParams(marginal_decay=-0.1)
