"""Streaming statistics and percentiles."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.util.stats import (
    OnlineStats,
    StreamingQuantile,
    percentile,
    summarize,
)

finite_floats = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
)


def test_empty_stats_are_nan():
    acc = OnlineStats()
    assert math.isnan(acc.mean)
    assert math.isnan(acc.variance)
    assert acc.count == 0


@given(st.lists(finite_floats, min_size=1, max_size=200))
def test_online_stats_match_numpy(xs):
    acc = OnlineStats()
    acc.extend(xs)
    assert acc.count == len(xs)
    assert acc.mean == pytest.approx(np.mean(xs), rel=1e-9, abs=1e-6)
    assert acc.minimum == min(xs)
    assert acc.maximum == max(xs)
    if len(xs) >= 2:
        assert acc.variance == pytest.approx(np.var(xs, ddof=1), rel=1e-6, abs=1e-4)


@given(st.lists(finite_floats, min_size=1, max_size=80), st.lists(finite_floats, min_size=1, max_size=80))
def test_merge_equals_combined(xs, ys):
    a = OnlineStats()
    a.extend(xs)
    b = OnlineStats()
    b.extend(ys)
    merged = a.merge(b)
    combined = OnlineStats()
    combined.extend(xs + ys)
    assert merged.count == combined.count
    assert merged.mean == pytest.approx(combined.mean, rel=1e-9, abs=1e-6)


def test_merge_with_empty_side_is_identity():
    xs = [3.0, 1.0, 4.0, 1.5]
    full = OnlineStats()
    full.extend(xs)
    empty = OnlineStats()
    for merged in (full.merge(empty), empty.merge(full)):
        assert merged.count == full.count
        assert merged.mean == full.mean
        assert merged.variance == pytest.approx(full.variance)
        assert merged.minimum == full.minimum
        assert merged.maximum == full.maximum
    both = empty.merge(OnlineStats())
    assert both.count == 0
    assert math.isnan(both.mean)


def test_merge_singleton_sides():
    a = OnlineStats()
    a.add(2.0)
    b = OnlineStats()
    b.add(6.0)
    merged = a.merge(b)
    assert merged.count == 2
    assert merged.mean == pytest.approx(4.0)
    assert merged.variance == pytest.approx(8.0)  # ddof=1
    assert merged.minimum == 2.0 and merged.maximum == 6.0
    # Singleton merged into a larger accumulator.
    big = OnlineStats()
    big.extend([1.0, 2.0, 3.0])
    grown = big.merge(a)
    ref = OnlineStats()
    ref.extend([1.0, 2.0, 3.0, 2.0])
    assert grown.count == 4
    assert grown.mean == pytest.approx(ref.mean)
    assert grown.variance == pytest.approx(ref.variance)


def test_percentile_linear_interpolation():
    xs = [1.0, 2.0, 3.0, 4.0]
    assert percentile(xs, 0) == 1.0
    assert percentile(xs, 100) == 4.0
    assert percentile(xs, 50) == pytest.approx(2.5)
    assert percentile(xs, 25) == pytest.approx(1.75)
    # Exact order statistics need no interpolation.
    assert percentile(xs, 100 / 3) == pytest.approx(2.0)
    assert percentile([7.0], 99) == 7.0


def test_percentile_bounds_checked():
    with pytest.raises(ValueError):
        percentile([1.0], 101)
    with pytest.raises(ValueError):
        percentile([1.0], -0.5)


def test_percentile_empty_is_nan():
    assert math.isnan(percentile([], 50))


def test_summarize_fields():
    s = summarize([1.0, 2.0, 3.0])
    assert s.count == 3
    assert s.p50 == 2.0
    assert s.minimum == 1.0 and s.maximum == 3.0


# ---------------------------------------------------------- StreamingQuantile
@given(st.lists(finite_floats, min_size=1, max_size=200))
def test_streaming_quantile_exact_below_capacity(xs):
    sq = StreamingQuantile(capacity=512)
    sq.extend(xs)
    assert sq.count == len(xs)
    for q in (0, 25, 50, 90, 99, 100):
        assert sq.quantile(q) == percentile(xs, q)


def test_streaming_quantile_empty_is_nan():
    assert math.isnan(StreamingQuantile().quantile(50))


def test_streaming_quantile_capacity_validated():
    with pytest.raises(ValueError):
        StreamingQuantile(capacity=0)


def test_streaming_quantile_deterministic_beyond_capacity():
    def run():
        sq = StreamingQuantile(capacity=64)
        sq.extend(float(i % 997) for i in range(5000))
        return sq.quantile(50), sq.quantile(99), sq.count

    assert run() == run()


def test_streaming_quantile_estimates_uniform_tail():
    # 0..9999 streamed through a small reservoir still lands near the
    # true percentiles — coarse bound, but catches gross bias.
    sq = StreamingQuantile(capacity=256)
    sq.extend(float(x) for x in range(10_000))
    assert sq.count == 10_000
    assert abs(sq.quantile(50) - 4999.5) < 1500
    assert abs(sq.quantile(99) - 9900.0) < 1500


@given(
    st.lists(finite_floats, min_size=1, max_size=100),
    st.lists(finite_floats, min_size=1, max_size=100),
)
def test_streaming_quantile_merge_exact_when_it_fits(xs, ys):
    a = StreamingQuantile(capacity=512)
    a.extend(xs)
    b = StreamingQuantile(capacity=512)
    b.extend(ys)
    merged = a.merge(b)
    assert merged.count == len(xs) + len(ys)
    for q in (0, 50, 100):
        assert merged.quantile(q) == percentile(xs + ys, q)


def test_streaming_quantile_merge_empty_side():
    a = StreamingQuantile()
    a.extend([1.0, 2.0, 3.0])
    merged = a.merge(StreamingQuantile())
    assert merged.count == 3
    assert merged.quantile(50) == 2.0


def test_streaming_quantile_merge_deterministic_and_bounded():
    def run():
        a = StreamingQuantile(capacity=64)
        a.extend(float(i) for i in range(1000))
        b = StreamingQuantile(capacity=64)
        b.extend(float(i) for i in range(5000, 5300))
        return a.merge(b)

    m1, m2 = run(), run()
    assert len(m1._buffer) <= m1.capacity
    assert m1.count == m2.count == 1300
    assert m1.quantile(50) == m2.quantile(50)
    assert m1.quantile(99) == m2.quantile(99)
    # Proportional contribution: the bigger side dominates the median.
    assert m1.quantile(50) < 5000.0
