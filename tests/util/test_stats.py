"""Streaming statistics and percentiles."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.util.stats import OnlineStats, percentile, summarize

finite_floats = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
)


def test_empty_stats_are_nan():
    acc = OnlineStats()
    assert math.isnan(acc.mean)
    assert math.isnan(acc.variance)
    assert acc.count == 0


@given(st.lists(finite_floats, min_size=1, max_size=200))
def test_online_stats_match_numpy(xs):
    acc = OnlineStats()
    acc.extend(xs)
    assert acc.count == len(xs)
    assert acc.mean == pytest.approx(np.mean(xs), rel=1e-9, abs=1e-6)
    assert acc.minimum == min(xs)
    assert acc.maximum == max(xs)
    if len(xs) >= 2:
        assert acc.variance == pytest.approx(np.var(xs, ddof=1), rel=1e-6, abs=1e-4)


@given(st.lists(finite_floats, min_size=1, max_size=80), st.lists(finite_floats, min_size=1, max_size=80))
def test_merge_equals_combined(xs, ys):
    a = OnlineStats()
    a.extend(xs)
    b = OnlineStats()
    b.extend(ys)
    merged = a.merge(b)
    combined = OnlineStats()
    combined.extend(xs + ys)
    assert merged.count == combined.count
    assert merged.mean == pytest.approx(combined.mean, rel=1e-9, abs=1e-6)


def test_percentile_linear_interpolation():
    xs = [1.0, 2.0, 3.0, 4.0]
    assert percentile(xs, 0) == 1.0
    assert percentile(xs, 100) == 4.0
    assert percentile(xs, 50) == pytest.approx(2.5)


def test_percentile_bounds_checked():
    with pytest.raises(ValueError):
        percentile([1.0], 101)


def test_percentile_empty_is_nan():
    assert math.isnan(percentile([], 50))


def test_summarize_fields():
    s = summarize([1.0, 2.0, 3.0])
    assert s.count == 3
    assert s.p50 == 2.0
    assert s.minimum == 1.0 and s.maximum == 3.0
