"""Argument validation helpers."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.util.validation import (
    check_finite,
    check_in_range,
    check_non_negative,
    check_positive,
    check_type,
)


def test_check_type_accepts_and_returns_value():
    assert check_type("x", 3, int) == 3
    assert check_type("x", "s", (int, str)) == "s"


def test_check_type_rejects_wrong_type():
    with pytest.raises(ConfigurationError, match="must be of type int"):
        check_type("x", "nope", int)


@pytest.mark.parametrize("bad", [math.inf, -math.inf, math.nan])
def test_check_finite_rejects_non_finite(bad):
    with pytest.raises(ConfigurationError):
        check_finite("x", bad)


def test_check_positive():
    assert check_positive("x", 0.5) == 0.5
    with pytest.raises(ConfigurationError):
        check_positive("x", 0.0)
    with pytest.raises(ConfigurationError):
        check_positive("x", -1.0)


def test_check_non_negative():
    assert check_non_negative("x", 0.0) == 0.0
    with pytest.raises(ConfigurationError):
        check_non_negative("x", -1e-9)


def test_check_in_range_inclusive_and_exclusive():
    assert check_in_range("x", 1.0, 0.0, 1.0) == 1.0
    with pytest.raises(ConfigurationError):
        check_in_range("x", 1.0, 0.0, 1.0, inclusive=False)
    with pytest.raises(ConfigurationError):
        check_in_range("x", 2.0, 0.0, 1.0)
