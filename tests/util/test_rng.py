"""Deterministic RNG derivation."""

import numpy as np

from repro.util.rng import SeedSequenceFactory, derive_rng


def test_same_seed_same_label_reproduces_stream():
    a = SeedSequenceFactory(42).rng("node-1").standard_normal(8)
    b = SeedSequenceFactory(42).rng("node-1").standard_normal(8)
    np.testing.assert_array_equal(a, b)


def test_different_labels_decorrelate():
    a = SeedSequenceFactory(42).rng("node-1").standard_normal(64)
    b = SeedSequenceFactory(42).rng("node-2").standard_normal(64)
    assert not np.allclose(a, b)


def test_different_seeds_differ():
    a = SeedSequenceFactory(1).rng("x").standard_normal(64)
    b = SeedSequenceFactory(2).rng("x").standard_normal(64)
    assert not np.allclose(a, b)


def test_child_factory_is_independent_but_deterministic():
    c1 = SeedSequenceFactory(7).child("sub").rng("x").standard_normal(8)
    c2 = SeedSequenceFactory(7).child("sub").rng("x").standard_normal(8)
    parent = SeedSequenceFactory(7).rng("x").standard_normal(8)
    np.testing.assert_array_equal(c1, c2)
    assert not np.allclose(c1, parent)


def test_derive_rng_defaults_none_seed_to_zero():
    a = derive_rng(None, "lbl").standard_normal(4)
    b = derive_rng(0, "lbl").standard_normal(4)
    np.testing.assert_array_equal(a, b)
