"""Units and formatting helpers."""

import pytest

from repro.util.units import (
    GB,
    KB,
    MB,
    format_bytes,
    format_duration,
    mbit_per_s,
    mbyte_per_s,
)


def test_byte_constants_are_powers_of_1024():
    assert KB == 1024
    assert MB == 1024 * KB
    assert GB == 1024 * MB


def test_mbit_per_s_uses_decimal_bits():
    assert mbit_per_s(100.0) == pytest.approx(100e6 / 8)
    assert mbit_per_s(8.0) == pytest.approx(1e6)


def test_mbyte_per_s_uses_binary_megabytes():
    assert mbyte_per_s(1.0) == float(MB)


@pytest.mark.parametrize(
    "size,expected",
    [
        (0, "0 B"),
        (512, "512 B"),
        (2048, "2.00 KB"),
        (3 * MB, "3.00 MB"),
        (5 * GB, "5.00 GB"),
        (-2048, "-2.00 KB"),
    ],
)
def test_format_bytes(size, expected):
    assert format_bytes(size) == expected


@pytest.mark.parametrize(
    "seconds,expected",
    [
        (1.5, "1.500 s"),
        (0.0125, "12.500 ms"),
        (42e-6, "42.0 us"),
        (-0.5, "-500.000 ms"),
    ],
)
def test_format_duration(seconds, expected):
    assert format_duration(seconds) == expected
