"""Crash safety of the process-mode shard protocol.

A SIGKILLed (or otherwise dead) shard worker must surface as a
diagnostic :class:`~repro.errors.ShardCrashError` — shard id, in-flight
command, exit code — within roughly one poll slice, never hang the
controller, and a worker that exits nonzero at teardown must be reported
rather than silently discarded (``docs/faults.md``).
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time

import pytest

from repro.clusterserver import EquipartitionScheduler, ShardedServer
from repro.clusterserver import sharded as sharded_mod
from repro.clusterserver.sharded import _ProcessShardHandle, _shard_worker
from repro.clusterserver.workload import synthetic_workload
from repro.errors import ShardCrashError


def _assignments(jobs=3):
    specs = synthetic_workload(jobs=jobs, seed=1, max_nodes=4)
    return list(enumerate(specs))


@pytest.fixture
def handle():
    h = _ProcessShardHandle(
        multiprocessing.get_context(), 7, _assignments()
    )
    yield h
    if h._proc.is_alive():
        h._proc.terminate()
        h._proc.join(timeout=10.0)
    try:
        h._conn.close()
    except OSError:
        pass


class TestProcessHandle:
    def test_sigkill_surfaces_within_poll_timeout(self, handle):
        os.kill(handle._proc.pid, signal.SIGKILL)
        start = time.monotonic()
        with pytest.raises(ShardCrashError) as exc:
            handle.begin_advance(50.0)
            handle.finish_advance()
        elapsed = time.monotonic() - start
        assert exc.value.shard_id == 7
        assert exc.value.exitcode == -signal.SIGKILL
        assert exc.value.last_command == "run"
        assert "shard 7" in str(exc.value)
        assert "-9" in str(exc.value)
        # detection is poll-bounded, not reply-bounded
        assert elapsed < 5.0

    def test_silent_but_alive_worker_times_out(self, handle):
        # No command in flight: the worker is healthy but will never
        # speak.  A bounded _recv must give up with exitcode None.
        start = time.monotonic()
        with pytest.raises(ShardCrashError) as exc:
            handle._recv(timeout=0.3)
        assert time.monotonic() - start < 5.0
        assert exc.value.shard_id == 7
        assert exc.value.exitcode is None
        assert handle._proc.is_alive()

    def test_clean_shutdown_returns_stats(self, handle):
        handle.begin_advance(1000.0)
        handle.finish_advance()
        events, jobs_seen = handle.shutdown()
        assert events > 0
        assert jobs_seen == 3
        assert handle._proc.exitcode == 0

    def test_nonzero_exit_at_teardown_is_an_error(self, monkeypatch):
        # The worker answers the whole protocol correctly but its
        # process exits 3 — shutdown must report it, not swallow it.
        def dying_worker(conn, shard_id, assignments):
            _shard_worker(conn, shard_id, assignments)
            os._exit(3)

        monkeypatch.setattr(sharded_mod, "_shard_worker", dying_worker)
        h = _ProcessShardHandle(
            multiprocessing.get_context(), 2, _assignments()
        )
        with pytest.raises(ShardCrashError) as exc:
            h.shutdown()
        assert exc.value.shard_id == 2
        assert exc.value.exitcode == 3
        assert exc.value.last_command == "finish"
        assert not h._proc.is_alive()


class TestServerEndToEnd:
    def test_mid_run_worker_death_propagates(self, monkeypatch):
        # Shard 1's worker dies on its first command; the controller
        # must raise the diagnostic error instead of hanging the run.
        def suicidal_worker(conn, shard_id, assignments):
            if shard_id == 1:
                shard = sharded_mod.JobShard(shard_id)
                for index, spec in assignments:
                    shard.schedule_arrival(index, spec)
                conn.send(("ok", shard.next_event_time()))
                conn.recv()
                os._exit(11)
            _shard_worker(conn, shard_id, assignments)

        monkeypatch.setattr(sharded_mod, "_shard_worker", suicidal_worker)
        server = ShardedServer(
            8, EquipartitionScheduler(), shards=2, mode="process"
        )
        with pytest.raises(ShardCrashError) as exc:
            server.run(synthetic_workload(jobs=6, seed=2, max_nodes=4))
        assert exc.value.shard_id == 1
        assert exc.value.exitcode == 11
