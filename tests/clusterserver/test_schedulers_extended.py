"""Extended cluster-server coverage: FCFS/backfill, metrics, workloads."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clusterserver import (
    AdaptiveEfficiencyScheduler,
    ClusterServer,
    EquipartitionScheduler,
    FcfsScheduler,
    JobSpec,
    StaticScheduler,
    amdahl_efficiency,
    lu_like_job,
    mixed_workload,
    rampup_job,
    stencil_like_job,
    synthetic_workload,
)
from repro.errors import ConfigurationError


def job(name, arrival, work=(10.0,), pf=1.0, max_nodes=8, min_nodes=1,
        preferred=0):
    return JobSpec(
        name=name,
        arrival=arrival,
        phase_work=tuple(work),
        efficiency=amdahl_efficiency(pf),
        max_nodes=max_nodes,
        min_nodes=min_nodes,
        preferred_nodes=preferred,
    )


# --------------------------------------------------------------------------
# JobSpec extensions
# --------------------------------------------------------------------------


class TestJobSpec:
    def test_request_defaults_to_max(self):
        assert job("a", 0.0, max_nodes=8).request == 8

    def test_request_uses_preferred(self):
        assert job("a", 0.0, max_nodes=8, preferred=4).request == 4

    def test_preferred_must_be_in_range(self):
        with pytest.raises(ConfigurationError):
            job("a", 0.0, max_nodes=4, preferred=8)

    def test_ideal_duration_perfect_scaling(self):
        spec = job("a", 0.0, work=(80.0,), pf=1.0, max_nodes=8)
        assert spec.ideal_duration() == pytest.approx(10.0)

    def test_ideal_duration_amdahl_penalty(self):
        perfect = job("a", 0.0, work=(80.0,), pf=1.0, max_nodes=8)
        imperfect = job("b", 0.0, work=(80.0,), pf=0.9, max_nodes=8)
        assert imperfect.ideal_duration() > perfect.ideal_duration()


# --------------------------------------------------------------------------
# workload shapes
# --------------------------------------------------------------------------


class TestWorkloadShapes:
    def test_stencil_like_constant_phases(self):
        spec = stencil_like_job("s", 0.0, iterations=6, unit_work=3.0)
        assert spec.phase_work == (3.0,) * 6

    def test_rampup_increasing_phases(self):
        spec = rampup_job("r", 0.0, phases=5)
        diffs = [b - a for a, b in zip(spec.phase_work, spec.phase_work[1:])]
        assert all(d > 0 for d in diffs)

    def test_lu_like_decreasing_phases(self):
        spec = lu_like_job("l", 0.0, nb=6)
        diffs = [b - a for a, b in zip(spec.phase_work, spec.phase_work[1:])]
        assert all(d < 0 for d in diffs)

    def test_mixed_workload_contains_all_shapes(self):
        specs = mixed_workload(jobs=30, seed=1)
        prefixes = {spec.name[:2] for spec in specs}
        assert prefixes == {"lu", "st", "rr"}

    def test_mixed_workload_deterministic(self):
        a = mixed_workload(jobs=8, seed=5)
        b = mixed_workload(jobs=8, seed=5)
        assert [s.arrival for s in a] == [s.arrival for s in b]
        assert [s.phase_work for s in a] == [s.phase_work for s in b]

    def test_workload_arrivals_increase(self):
        specs = synthetic_workload(jobs=10, seed=3)
        arrivals = [s.arrival for s in specs]
        assert arrivals == sorted(arrivals)


# --------------------------------------------------------------------------
# FCFS and backfill
# --------------------------------------------------------------------------


class TestFcfs:
    def test_names(self):
        assert FcfsScheduler().name == "fcfs"
        assert FcfsScheduler(backfill=True).name == "fcfs+backfill"

    def test_grants_requested_size_in_order(self):
        specs = [
            job("a", 0.0, work=(40.0,), max_nodes=8, preferred=4),
            job("b", 0.0, work=(40.0,), max_nodes=8, preferred=4),
        ]
        result = ClusterServer(8, FcfsScheduler()).run(specs)
        # Both fit side by side: no waiting.
        assert result.job_wait["a"] == 0.0
        assert result.job_wait["b"] == 0.0

    def test_head_of_line_blocking_without_backfill(self):
        specs = [
            job("big0", 0.0, work=(60.0,), max_nodes=6, preferred=6),
            job("big1", 1.0, work=(60.0,), max_nodes=8, preferred=8),
            job("tiny", 2.0, work=(2.0,), max_nodes=2, preferred=2),
        ]
        blocked = ClusterServer(8, FcfsScheduler()).run(specs)
        filled = ClusterServer(8, FcfsScheduler(backfill=True)).run(specs)
        # Without backfill the tiny job waits behind big1; with backfill it
        # slips into the 2 idle nodes immediately.
        assert filled.job_wait["tiny"] == pytest.approx(0.0)
        assert blocked.job_wait["tiny"] > 1.0
        assert filled.job_turnaround["tiny"] < blocked.job_turnaround["tiny"]

    def test_backfill_never_delays_the_head(self):
        specs = [
            job("big0", 0.0, work=(60.0,), max_nodes=6, preferred=6),
            job("big1", 1.0, work=(60.0,), max_nodes=8, preferred=8),
            job("tiny", 2.0, work=(2.0,), max_nodes=2, preferred=2),
        ]
        blocked = ClusterServer(8, FcfsScheduler()).run(specs)
        filled = ClusterServer(8, FcfsScheduler(backfill=True)).run(specs)
        assert filled.job_turnaround["big1"] == pytest.approx(
            blocked.job_turnaround["big1"]
        )

    def test_started_jobs_never_resized(self):
        """FCFS jobs are rigid: the same nodes from start to finish."""
        specs = [
            job("a", 0.0, work=(30.0,), max_nodes=4, preferred=4),
            job("b", 5.0, work=(30.0,), max_nodes=4, preferred=4),
        ]
        result = ClusterServer(8, FcfsScheduler()).run(specs)
        # node_seconds = 4 nodes for the whole (dedicated-speed) duration.
        for name in ("a", "b"):
            duration = result.job_turnaround[name] - result.job_wait[name]
            assert result.job_node_seconds[name] == pytest.approx(4 * duration)


# --------------------------------------------------------------------------
# result metrics
# --------------------------------------------------------------------------


class TestMetrics:
    def test_single_job_slowdown_is_one(self):
        specs = [job("a", 0.0, work=(40.0,), max_nodes=4, preferred=4)]
        result = ClusterServer(4, FcfsScheduler()).run(specs)
        assert result.mean_slowdown == pytest.approx(1.0)
        assert result.max_slowdown == pytest.approx(1.0)
        assert result.mean_wait == 0.0

    def test_contention_raises_slowdown(self):
        light = [job("a", 0.0, work=(40.0,), max_nodes=4, preferred=4)]
        heavy = light + [
            job(f"j{i}", 0.0, work=(40.0,), max_nodes=4, preferred=4)
            for i in range(3)
        ]
        r_light = ClusterServer(4, FcfsScheduler()).run(light)
        r_heavy = ClusterServer(4, FcfsScheduler()).run(heavy)
        assert r_heavy.mean_slowdown > r_light.mean_slowdown
        assert r_heavy.max_slowdown >= 4.0 - 1e-9  # last job waits 3 runs

    def test_utilization_bounded(self):
        specs = synthetic_workload(jobs=6, mean_interarrival=10.0, seed=4)
        result = ClusterServer(8, EquipartitionScheduler()).run(specs)
        assert 0.0 < result.utilization <= 1.0

    def test_service_rate_consistency(self):
        specs = synthetic_workload(jobs=6, mean_interarrival=10.0, seed=4)
        result = ClusterServer(8, EquipartitionScheduler()).run(specs)
        assert result.service_rate == pytest.approx(
            result.total_work / (result.total_nodes * result.makespan)
        )
        # utilization * cluster_efficiency == service_rate (by definition)
        assert result.service_rate == pytest.approx(
            result.utilization * result.cluster_efficiency
        )

    def test_perfect_job_efficiency_one(self):
        specs = [job("a", 0.0, work=(40.0,), pf=1.0, max_nodes=4, preferred=4)]
        result = ClusterServer(4, FcfsScheduler()).run(specs)
        assert result.cluster_efficiency == pytest.approx(1.0)


# --------------------------------------------------------------------------
# cross-policy behaviour
# --------------------------------------------------------------------------


class TestPolicies:
    def test_adaptive_beats_static_on_lu_tail(self):
        """LU-like jobs waste nodes in their tail; the adaptive policy
        reclaims them, so cluster efficiency must improve."""
        specs = [
            lu_like_job(f"lu{i}", arrival=i * 5.0, nb=10, unit_work=8.0,
                        parallel_fraction=0.94, max_nodes=8)
            for i in range(6)
        ]
        static = ClusterServer(16, StaticScheduler(8)).run(specs)
        adaptive = ClusterServer(16, AdaptiveEfficiencyScheduler(0.5)).run(specs)
        assert adaptive.cluster_efficiency > static.cluster_efficiency

    def test_equipartition_fair_waits(self):
        specs = [
            job(f"j{i}", 0.0, work=(40.0,), max_nodes=8) for i in range(4)
        ]
        result = ClusterServer(8, EquipartitionScheduler()).run(specs)
        assert all(w == 0.0 for w in result.job_wait.values())

    def test_all_policies_complete_mixed_workload(self):
        specs = mixed_workload(jobs=8, mean_interarrival=15.0, seed=7)
        for sched in (
            StaticScheduler(4),
            FcfsScheduler(),
            FcfsScheduler(backfill=True),
            EquipartitionScheduler(),
            AdaptiveEfficiencyScheduler(),
        ):
            result = ClusterServer(8, sched).run(specs)
            assert len(result.job_turnaround) == 8
            assert all(math.isfinite(t) for t in result.job_turnaround.values())

    @given(
        st.integers(min_value=1, max_value=20),
        st.integers(min_value=2, max_value=16),
        st.integers(min_value=0, max_value=10000),
    )
    @settings(max_examples=25, deadline=None)
    def test_work_conservation_under_any_policy(self, jobs, nodes, seed):
        """Whatever the policy does, every job finishes and the consumed
        node-seconds are at least the total work (efficiency <= 1)."""
        specs = synthetic_workload(jobs=jobs, mean_interarrival=20.0,
                                   seed=seed, max_nodes=nodes)
        result = ClusterServer(nodes, EquipartitionScheduler()).run(specs)
        consumed = sum(result.job_node_seconds.values())
        assert consumed >= result.total_work - 1e-6
        assert len(result.job_turnaround) == jobs
