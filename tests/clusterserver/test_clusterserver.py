"""Cluster server: workloads, schedulers, and the server simulation."""

import math

import pytest

from repro.clusterserver.scheduler import (
    AdaptiveEfficiencyScheduler,
    EquipartitionScheduler,
    StaticScheduler,
)
from repro.clusterserver.server import ClusterServer
from repro.clusterserver.workload import (
    JobSpec,
    MalleableJob,
    amdahl_efficiency,
    lu_like_job,
    synthetic_workload,
)
from repro.errors import ConfigurationError


# ----------------------------------------------------------------- workload
def test_amdahl_efficiency_decreasing():
    eff = amdahl_efficiency(0.95)
    values = [eff(n) for n in (1, 2, 4, 8, 16)]
    assert values[0] == 1.0
    assert all(a > b for a, b in zip(values, values[1:]))


def test_lu_like_job_decaying_phases():
    spec = lu_like_job("j", arrival=0.0, nb=8)
    works = spec.phase_work
    assert len(works) == 8
    assert all(a > b for a, b in zip(works, works[1:]))


def test_job_spec_validation():
    with pytest.raises(ConfigurationError):
        JobSpec("j", arrival=-1.0, phase_work=(1.0,), efficiency=lambda n: 1.0)
    with pytest.raises(ConfigurationError):
        JobSpec("j", arrival=0.0, phase_work=(), efficiency=lambda n: 1.0)
    with pytest.raises(ConfigurationError):
        JobSpec("j", arrival=0.0, phase_work=(0.0,), efficiency=lambda n: 1.0)


def test_malleable_job_advance_and_phases():
    spec = JobSpec("j", 0.0, (2.0, 1.0), amdahl_efficiency(1.0))
    job = MalleableJob(spec)
    job.nodes = 2
    assert job.rate() == pytest.approx(2.0)
    job.advance(1.0)  # completes phase 0 exactly
    assert job.phase == 1
    assert job.remaining_work == pytest.approx(1.0)
    job.advance(0.5)
    assert job.done
    assert job.node_seconds == pytest.approx(3.0)


def test_job_zero_nodes_makes_no_progress():
    spec = JobSpec("j", 0.0, (1.0,), amdahl_efficiency(1.0))
    job = MalleableJob(spec)
    job.advance(10.0)
    assert not job.done
    assert math.isinf(job.time_to_phase_end())


def test_synthetic_workload_deterministic():
    a = synthetic_workload(jobs=5, seed=1)
    b = synthetic_workload(jobs=5, seed=1)
    assert [j.arrival for j in a] == [j.arrival for j in b]
    assert [j.phase_work for j in a] == [j.phase_work for j in b]


# ---------------------------------------------------------------- scheduler
def _jobs(n, max_nodes=8):
    return [
        MalleableJob(lu_like_job(f"j{i}", arrival=float(i), max_nodes=max_nodes))
        for i in range(n)
    ]


def test_equipartition_divides_evenly():
    jobs = _jobs(3)
    alloc = EquipartitionScheduler().allocate(jobs, 12)
    assert sorted(alloc.values()) == [4, 4, 4]


def test_equipartition_respects_max_nodes():
    jobs = _jobs(2, max_nodes=3)
    alloc = EquipartitionScheduler().allocate(jobs, 12)
    assert all(v <= 3 for v in alloc.values())


def test_static_grants_and_queues():
    jobs = _jobs(3)
    sched = StaticScheduler(nodes_per_job=8)
    alloc = sched.allocate(jobs, 16)
    granted = sorted(alloc.values())
    assert granted == [0, 8, 8]  # third job queues


def test_adaptive_shrinks_inefficient_jobs():
    sched = AdaptiveEfficiencyScheduler(efficiency_floor=0.8)
    poor = MalleableJob(
        JobSpec("poor", 0.0, (10.0,), amdahl_efficiency(0.5), max_nodes=16)
    )
    alloc = sched.allocate([poor], 16)
    # With a 50% serial fraction, extra nodes buy almost nothing.
    assert alloc[poor] <= 2


def test_adaptive_grows_efficient_jobs():
    sched = AdaptiveEfficiencyScheduler(efficiency_floor=0.5)
    good = MalleableJob(
        JobSpec("good", 0.0, (10.0,), amdahl_efficiency(0.999), max_nodes=8)
    )
    alloc = sched.allocate([good], 16)
    assert alloc[good] >= 6


# ------------------------------------------------------------------- server
@pytest.mark.parametrize(
    "scheduler",
    [StaticScheduler(8), EquipartitionScheduler(), AdaptiveEfficiencyScheduler()],
)
def test_server_completes_workload(scheduler):
    workload = synthetic_workload(jobs=6, mean_interarrival=20.0, seed=3)
    result = ClusterServer(16, scheduler).run(workload)
    assert len(result.job_turnaround) == 6
    assert all(t > 0 for t in result.job_turnaround.values())
    assert result.makespan > 0
    assert 0 < result.cluster_efficiency <= 1.0


def test_malleable_policies_beat_static_turnaround():
    workload = synthetic_workload(jobs=10, mean_interarrival=15.0, seed=5)
    static = ClusterServer(16, StaticScheduler(8)).run(workload)
    equi = ClusterServer(16, EquipartitionScheduler()).run(workload)
    assert equi.mean_turnaround < static.mean_turnaround


def test_single_job_uses_cluster_alone():
    job = lu_like_job("solo", arrival=0.0, nb=4, max_nodes=8)
    result = ClusterServer(8, EquipartitionScheduler()).run([job])
    assert result.job_node_seconds["solo"] > 0
    # Turnaround bounded below by perfect-speedup time.
    assert result.job_turnaround["solo"] >= job.total_work / 8 - 1e-9
