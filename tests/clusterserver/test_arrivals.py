"""Arrival processes: determinism, stop conditions, trace replay."""

from __future__ import annotations

import itertools
import json
import math

import pytest

from repro.clusterserver.arrivals import (
    bursty_arrivals,
    closed_stream,
    diurnal_arrivals,
    poisson_arrivals,
    trace_arrivals,
)
from repro.clusterserver.workload import synthetic_workload
from repro.errors import ConfigurationError

PROCESSES = {
    "poisson": poisson_arrivals,
    "bursty": bursty_arrivals,
    "diurnal": diurnal_arrivals,
}


# -------------------------------------------------------------- generators
@pytest.mark.parametrize("name", sorted(PROCESSES))
def test_streams_are_deterministic_and_nondecreasing(name):
    make = PROCESSES[name]
    a = list(make(10.0, seed=42, jobs=50))
    b = list(make(10.0, seed=42, jobs=50))
    assert len(a) == 50
    assert [t for t, _ in a] == [t for t, _ in b]
    assert [s.name for _, s in a] == [s.name for _, s in b]
    times = [t for t, _ in a]
    assert all(t2 >= t1 for t1, t2 in zip(times, times[1:]))
    assert all(t == s.arrival for t, s in a)


@pytest.mark.parametrize("name", sorted(PROCESSES))
def test_seed_changes_the_stream(name):
    make = PROCESSES[name]
    a = [t for t, _ in make(10.0, seed=1, jobs=20)]
    b = [t for t, _ in make(10.0, seed=2, jobs=20)]
    assert a != b


@pytest.mark.parametrize("name", sorted(PROCESSES))
def test_horizon_stop_condition(name):
    make = PROCESSES[name]
    items = list(make(5.0, seed=3, horizon=200.0))
    assert items, "horizon of 40 mean gaps should admit some jobs"
    assert all(t <= 200.0 for t, _ in items)


@pytest.mark.parametrize("name", sorted(PROCESSES))
def test_stop_condition_required(name):
    make = PROCESSES[name]
    with pytest.raises(ConfigurationError, match="stop condition"):
        next(make(10.0, seed=0))


def test_jobs_and_horizon_combine():
    # Whichever stop triggers first wins.
    few = list(poisson_arrivals(10.0, seed=5, jobs=5, horizon=1e9))
    assert len(few) == 5
    short = list(poisson_arrivals(10.0, seed=5, jobs=10**6, horizon=30.0))
    assert all(t <= 30.0 for t, _ in short)


def test_mixed_shape_draws_multiple_families():
    specs = [s for _, s in poisson_arrivals(5.0, shape="mixed", seed=9, jobs=60)]
    prefixes = {s.name[:2] for s in specs}
    assert prefixes == {"lu", "st", "rr"}


def test_unknown_shape_rejected():
    stream = poisson_arrivals(10.0, shape="cube", seed=0, jobs=1)
    with pytest.raises(ConfigurationError, match="unknown job shape"):
        next(stream)


def test_parameter_validation():
    with pytest.raises(ConfigurationError, match="mean_interarrival"):
        next(poisson_arrivals(0.0, jobs=1))
    with pytest.raises(ConfigurationError, match="burst_factor"):
        next(bursty_arrivals(10.0, burst_factor=0.5, jobs=1))
    with pytest.raises(ConfigurationError, match="amplitude"):
        next(diurnal_arrivals(10.0, amplitude=1.5, jobs=1))
    with pytest.raises(ConfigurationError, match="jobs"):
        next(poisson_arrivals(10.0, jobs=0))
    with pytest.raises(ConfigurationError, match="horizon"):
        next(poisson_arrivals(10.0, horizon=-1.0))


def test_bursty_bursts_faster_than_quiet():
    # A heavily bursting stream packs more arrivals into the same horizon
    # than its quiet-only counterpart.
    quiet = list(bursty_arrivals(
        20.0, burst_factor=1.0, seed=11, horizon=5000.0
    ))
    bursty = list(bursty_arrivals(
        20.0, burst_factor=16.0, mean_quiet=100.0, mean_burst=400.0,
        seed=11, horizon=5000.0,
    ))
    assert len(bursty) > len(quiet)


# ------------------------------------------------------------------- traces
def _write_trace(tmp_path, lines):
    path = tmp_path / "trace.jsonl"
    path.write_text("\n".join(json.dumps(x) for x in lines) + "\n")
    return path


def test_trace_replay(tmp_path):
    path = _write_trace(tmp_path, [
        {"arrival": 0.0, "phase_work": [10.0, 5.0], "name": "a"},
        {"arrival": 2.5, "phase_work": [8.0], "max_nodes": 4},
    ])
    items = list(trace_arrivals(path))
    assert [t for t, _ in items] == [0.0, 2.5]
    assert items[0][1].name == "a"
    assert items[0][1].phase_work == (10.0, 5.0)
    assert items[1][1].max_nodes == 4


def test_trace_truncation(tmp_path):
    path = _write_trace(tmp_path, [
        {"arrival": float(i), "phase_work": [1.0]} for i in range(10)
    ])
    assert len(list(trace_arrivals(path, jobs=3))) == 3
    assert len(list(trace_arrivals(path, horizon=4.5))) == 5


def test_trace_errors_name_the_line(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"arrival": 1.0, "phase_work": [1.0]}\nnot json\n')
    with pytest.raises(ConfigurationError, match="bad.jsonl:2"):
        list(trace_arrivals(path))

    path = _write_trace(tmp_path, [
        {"arrival": 5.0, "phase_work": [1.0]},
        {"arrival": 1.0, "phase_work": [1.0]},
    ])
    with pytest.raises(ConfigurationError, match="nondecreasing"):
        list(trace_arrivals(path))

    path = _write_trace(tmp_path, [{"arrival": 1.0}])
    with pytest.raises(ConfigurationError, match="phase_work"):
        list(trace_arrivals(path))


def test_trace_missing_file():
    with pytest.raises(ConfigurationError, match="cannot read"):
        list(trace_arrivals("/nonexistent/trace.jsonl"))


# ------------------------------------------------------------ closed_stream
def test_closed_stream_yields_exact_specs_in_arrival_order():
    specs = synthetic_workload(jobs=8, mean_interarrival=10.0, seed=4)
    items = list(closed_stream(specs))
    assert [s for _, s in items] == sorted(specs, key=lambda s: s.arrival)
    assert all(t == s.arrival for t, s in items)
    assert all(s in specs for _, s in items)


def test_streams_are_lazy():
    # Pulling 3 items from an unbounded-in-jobs stream must not exhaust
    # anything: laziness is the whole point of the open-system layer.
    stream = poisson_arrivals(1.0, seed=0, horizon=math.inf, jobs=10**9)
    first = list(itertools.islice(stream, 3))
    assert len(first) == 3
