"""Open-system engines: stream dispatch, SLO metrics, policies, memory.

The contract: both engines accept an arrival stream of ``(time,
JobSpec)`` pairs, retain only *active* jobs, and report SLO aggregates
through :class:`~repro.clusterserver.metrics.SloSummary`.  The sharded
engine stays **bit-identical for every shard count and mode** — the
summary included — and agrees with the eager engine to float
reassociation noise.
"""

from __future__ import annotations

import math
import tracemalloc

import pytest

from repro.clusterserver import (
    AdaptiveEfficiencyScheduler,
    AdmissionControlScheduler,
    AutoscalingScheduler,
    ClusterServer,
    EquipartitionScheduler,
    FcfsScheduler,
    JobSpec,
    ShardedServer,
    amdahl_efficiency,
    closed_stream,
    poisson_arrivals,
    synthetic_workload,
)
from repro.errors import ConfigurationError
from repro.util.rng import SeedSequenceFactory


def _stream(jobs=60, mean=10.0, seed=7, max_nodes=8):
    return poisson_arrivals(mean, seed=seed, jobs=jobs, max_nodes=max_nodes)


def _dense_stream(jobs, seed=0):
    """Single-node single-phase jobs at ~1 s spacing: many tiny jobs, a
    small bounded active set — the O(active-jobs) regime."""
    rng = SeedSequenceFactory(seed).rng("open-dense")
    t = 0.0
    for i in range(jobs):
        t += float(rng.exponential(1.0))
        work = float(rng.uniform(30.0, 90.0))
        yield t, JobSpec(
            name=f"j{i}",
            arrival=t,
            phase_work=(work,),
            efficiency=amdahl_efficiency(0.9),
            max_nodes=1,
            min_nodes=1,
            preferred_nodes=1,
        )


# ----------------------------------------------------------- eager engine
def test_eager_open_reports_slo_summary():
    result = ClusterServer(32, AdaptiveEfficiencyScheduler()).run(_stream())
    assert result.jobs_completed == 60
    assert result.jobs_rejected == 0
    assert result.job_turnaround == {}  # per-job dicts stay empty: O(active)
    slo = result.slo
    assert slo is not None
    assert slo.jobs_completed == 60
    assert slo.throughput == pytest.approx(60 / result.makespan)
    assert 0.0 < slo.sojourn_p50 <= slo.sojourn_p99
    assert slo.sojourn_mean > 0 and slo.wait_mean >= 0
    assert slo.slowdown_mean >= 1.0
    assert 0.0 < slo.utilization_mean <= 1.0
    assert slo.utilization_series, "utilization-over-time must be recorded"
    # Aggregate properties fall back to the streaming summary.
    assert result.mean_turnaround == slo.sojourn_mean
    assert result.mean_wait == slo.wait_mean
    assert result.mean_slowdown == slo.slowdown_mean
    assert result.max_slowdown == slo.slowdown_max
    assert result.throughput == pytest.approx(slo.throughput)


def test_closed_stream_matches_closed_run():
    """A closed workload replayed through the stream interface makes the
    same scheduling decisions, so the makespan matches exactly and the
    SLO aggregates match the closed per-job dicts."""
    specs = synthetic_workload(jobs=20, mean_interarrival=20.0, seed=3)
    closed = ClusterServer(16, EquipartitionScheduler()).run(specs)
    opened = ClusterServer(16, EquipartitionScheduler()).run(
        closed_stream(specs)
    )
    assert opened.makespan == closed.makespan
    assert opened.jobs_completed == len(specs)
    assert opened.slo.sojourn_mean == pytest.approx(
        closed.mean_turnaround, rel=1e-12
    )
    assert opened.slo.wait_mean == pytest.approx(closed.mean_wait, rel=1e-12)
    assert opened.slo.total_work == pytest.approx(closed.total_work, rel=1e-12)


def test_closed_dispatch_unchanged():
    # A Sequence still takes the closed path: per-job dicts, no summary.
    specs = synthetic_workload(jobs=5, mean_interarrival=20.0, seed=1)
    result = ClusterServer(16, EquipartitionScheduler()).run(specs)
    assert result.slo is None
    assert len(result.job_turnaround) == 5
    assert result.jobs_completed == 5


# ---------------------------------------------------------- sharded engine
def test_sharded_open_bit_identical_across_shard_counts():
    results = {}
    for shards in (1, 2, 4):
        server = ShardedServer(
            32, AdaptiveEfficiencyScheduler(), shards=shards, mode="inprocess"
        )
        results[shards] = server.run(_stream())
        assert sum(server.stats.shard_jobs) == 60
    for shards in (2, 4):
        assert results[shards] == results[1]  # includes the SloSummary
        assert results[shards].slo == results[1].slo


def test_sharded_open_process_mode_identical():
    baseline = ShardedServer(
        32, EquipartitionScheduler(), shards=2, mode="inprocess"
    ).run(_stream(jobs=40))
    server = ShardedServer(
        32, EquipartitionScheduler(), shards=2, mode="process"
    )
    assert server.run(_stream(jobs=40)) == baseline
    assert server.stats.mode == "process"


def test_sharded_open_agrees_with_eager():
    eager = ClusterServer(32, AdaptiveEfficiencyScheduler()).run(_stream())
    sharded = ShardedServer(
        32, AdaptiveEfficiencyScheduler(), shards=4, mode="inprocess"
    ).run(_stream())
    assert sharded.makespan == pytest.approx(eager.makespan, rel=1e-9)
    assert sharded.jobs_completed == eager.jobs_completed
    assert sharded.slo.sojourn_mean == pytest.approx(
        eager.slo.sojourn_mean, rel=1e-9
    )
    assert sharded.slo.sojourn_p99 == pytest.approx(
        eager.slo.sojourn_p99, rel=1e-9
    )
    assert sharded.total_work == pytest.approx(eager.total_work, rel=1e-9)


def test_decreasing_stream_rejected():
    bad = [
        (5.0, next(_dense_stream(1))[1]),
        (1.0, next(_dense_stream(1, seed=1))[1]),
    ]
    for engine in (
        ClusterServer(8, EquipartitionScheduler()),
        ShardedServer(8, EquipartitionScheduler(), shards=2, mode="inprocess"),
    ):
        with pytest.raises(ConfigurationError, match="nondecreasing"):
            engine.run(iter(bad))


def test_empty_stream():
    for engine in (
        ClusterServer(8, EquipartitionScheduler()),
        ShardedServer(8, EquipartitionScheduler(), shards=2, mode="inprocess"),
    ):
        result = engine.run(iter([]))
        assert result.makespan == 0.0
        assert result.jobs_completed == 0


def test_open_starvation_detected():
    stream = ((t, s) for t, s in _dense_stream(2))
    # Jobs need 1 node but static policy wants 8 of a 4-node cluster.
    from repro.clusterserver import StaticScheduler

    big = synthetic_workload(jobs=2, mean_interarrival=5.0, seed=3)
    with pytest.raises(ConfigurationError, match="never completed"):
        ClusterServer(4, StaticScheduler(8)).run(closed_stream(big))
    with pytest.raises(ConfigurationError, match="never completed"):
        ShardedServer(4, StaticScheduler(8), shards=2, mode="inprocess").run(
            closed_stream(big)
        )
    del stream


# ----------------------------------------------------------------- policies
def test_admission_control_rejects_and_counts():
    policy = AdmissionControlScheduler(
        AdaptiveEfficiencyScheduler(), max_active=4
    )
    result = ClusterServer(16, policy).run(_stream(jobs=50, mean=2.0, seed=1))
    assert result.jobs_completed + result.jobs_rejected == 50
    assert result.jobs_rejected > 0
    assert result.slo.rejection_rate == pytest.approx(
        result.jobs_rejected / 50
    )


def test_admission_control_defer_serves_everything():
    policy = AdmissionControlScheduler(
        AdaptiveEfficiencyScheduler(), max_active=4, defer=True
    )
    result = ClusterServer(16, policy).run(_stream(jobs=50, mean=2.0, seed=1))
    assert result.jobs_completed == 50
    assert result.jobs_rejected == 0
    # Deferral shows up as waiting time, not rejections.
    assert result.slo.wait_mean > 0


def test_admission_control_sharded_identical():
    def make():
        return AdmissionControlScheduler(
            AdaptiveEfficiencyScheduler(), max_active=4
        )

    results = [
        ShardedServer(16, make(), shards=k, mode="inprocess").run(
            _stream(jobs=50, mean=2.0, seed=1)
        )
        for k in (1, 2, 4)
    ]
    assert results[0] == results[1] == results[2]
    assert results[0].jobs_rejected > 0


def test_admission_control_validation():
    with pytest.raises(ConfigurationError, match="at least one limit"):
        AdmissionControlScheduler(EquipartitionScheduler())
    with pytest.raises(ConfigurationError, match="max_active"):
        AdmissionControlScheduler(EquipartitionScheduler(), max_active=0)
    with pytest.raises(ConfigurationError, match="load_max"):
        AdmissionControlScheduler(EquipartitionScheduler(), load_max=1.5)
    policy = AdmissionControlScheduler(EquipartitionScheduler(), load_max=0.5)
    assert policy.name == "admission+equipartition"
    assert policy.progress_insensitive


def test_autoscaler_grows_and_caps_utilization():
    policy = AutoscalingScheduler(EquipartitionScheduler(), min_nodes=2)
    result = ClusterServer(64, policy).run(_stream(jobs=40, mean=15.0, seed=5))
    assert result.jobs_completed == 40
    # The pool tracks demand, so measured utilization of the *pool* stays
    # well above what the full 64-node cluster would report.
    assert result.slo.utilization_mean > 0.3
    # Utilization series reports capacity-normalized values in [0, 1].
    assert all(0.0 <= u <= 1.0 + 1e-12 for _, u in result.slo.utilization_series)


def test_autoscaler_sharded_identical():
    results = [
        ShardedServer(
            64,
            AutoscalingScheduler(EquipartitionScheduler(), min_nodes=2),
            shards=k,
            mode="inprocess",
        ).run(_stream(jobs=40, mean=15.0, seed=5))
        for k in (1, 2, 4)
    ]
    assert results[0] == results[1] == results[2]


def test_autoscaler_validation():
    with pytest.raises(ConfigurationError, match="min_nodes"):
        AutoscalingScheduler(EquipartitionScheduler(), min_nodes=0)
    with pytest.raises(ConfigurationError, match="utilization_low"):
        AutoscalingScheduler(
            EquipartitionScheduler(), utilization_low=0.9, utilization_high=0.5
        )
    with pytest.raises(ConfigurationError, match="step"):
        AutoscalingScheduler(EquipartitionScheduler(), step=-1)
    assert (
        AutoscalingScheduler(FcfsScheduler()).name == "autoscale+fcfs"
    )


# ------------------------------------------------------------------- memory
def _peak_memory(jobs: int) -> int:
    server = ShardedServer(
        128, FcfsScheduler(backfill=True), shards=2, mode="inprocess"
    )
    tracemalloc.start()
    try:
        result = server.run(_dense_stream(jobs))
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    assert result.jobs_completed == jobs
    return peak


def test_open_memory_bounded_by_active_jobs():
    """6x the jobs must NOT mean 6x the memory: the active set (~60 jobs
    at this load) is what bounds the peak, not the stream length."""
    small = _peak_memory(1000)
    large = _peak_memory(6000)
    assert large < 3.0 * small, (
        f"peak grew {large / small:.1f}x for 6x jobs "
        f"({small / 1e6:.1f} MB -> {large / 1e6:.1f} MB); "
        "open-system memory must be O(active jobs)"
    )


def test_eager_open_memory_bounded_by_active_jobs():
    def peak(jobs):
        server = ClusterServer(128, FcfsScheduler(backfill=True))
        tracemalloc.start()
        try:
            result = server.run(_dense_stream(jobs))
            _, p = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert result.jobs_completed == jobs
        return p

    small = peak(1000)
    large = peak(6000)
    assert large < 3.0 * small


def test_slo_summary_survives_makespan_zero():
    # Degenerate but legal: no jobs -> finite zeros, no NaN surprises.
    result = ClusterServer(8, EquipartitionScheduler()).run(iter([]))
    assert result.jobs_completed == 0
    assert result.slo.throughput == 0.0
    assert result.slo.rejection_rate == 0.0
    assert math.isnan(result.slo.sojourn_mean) or result.slo.sojourn_mean == 0.0
