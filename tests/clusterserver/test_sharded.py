"""Sharded cluster-server: determinism contract, modes, accounting.

The contract under test (``docs/sharding.md``): a
:class:`~repro.clusterserver.sharded.ShardedServer` result is
**bit-identical for every shard count and execution mode**, with
``shards=1`` being the single-kernel run, and shard kernel events summing
to the single-kernel event count.  Against the eager
:class:`~repro.clusterserver.server.ClusterServer` engine the results
agree to float reassociation noise.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import example, given, settings, strategies as st

from repro.clusterserver import (
    AdaptiveEfficiencyScheduler,
    ClusterServer,
    EquipartitionScheduler,
    FcfsScheduler,
    Scheduler,
    ShardedServer,
    StaticScheduler,
    mixed_workload,
    synthetic_workload,
)
from repro.clusterserver.workload import stencil_like_job
from repro.errors import ConfigurationError


def _assert_identical(a, b):
    """Bit-equality on every gated ServerResult field."""
    assert a.makespan == b.makespan
    assert a.job_turnaround == b.job_turnaround
    assert a.job_wait == b.job_wait
    assert a.job_slowdown == b.job_slowdown
    assert a.events == b.events


SCHEDULERS = {
    "static": lambda: StaticScheduler(4),
    "fcfs": lambda: FcfsScheduler(),
    "backfill": lambda: FcfsScheduler(backfill=True),
    "equipartition": lambda: EquipartitionScheduler(),
    "adaptive": lambda: AdaptiveEfficiencyScheduler(0.5),
}


# ------------------------------------------------------------------ property
@settings(deadline=None, max_examples=25)
@given(
    jobs=st.integers(min_value=1, max_value=16),
    seed=st.integers(min_value=0, max_value=2**32),
    policy=st.sampled_from(sorted(SCHEDULERS)),
    mixed=st.booleans(),
)
# Regression: delay-based horizon scheduling made a job's completion time
# depend on its pool-mates' event times (now + (finish - now) != finish),
# so K=1 diverged from K=2/4 by ~1e-12 on this workload.  The pool now
# schedules at the absolute horizon (fluid.FluidPool._schedule_next).
@example(jobs=2, seed=36676, policy="adaptive", mixed=False)
def test_sharded_reproduces_single_kernel_exactly(jobs, seed, policy, mixed):
    """For random scenarios and K in {1, 2, 4}: identical turnaround,
    wait, slowdown and makespan, and shard event totals that sum to the
    single-kernel event count."""
    make = mixed_workload if mixed else synthetic_workload
    specs = make(jobs=jobs, mean_interarrival=15.0, seed=seed)
    results = {}
    stats = {}
    for shards in (1, 2, 4):
        server = ShardedServer(
            16, SCHEDULERS[policy](), shards=shards, mode="inprocess"
        )
        results[shards] = server.run(specs)
        stats[shards] = server.stats
    for shards in (2, 4):
        _assert_identical(results[shards], results[1])
        assert (
            stats[shards].events_total == stats[1].events_total
        ), "shard event totals must sum to the serial event count"
        assert sum(stats[shards].shard_jobs) == jobs


# --------------------------------------------------------------------- modes
def test_process_mode_matches_inprocess():
    specs = mixed_workload(jobs=14, mean_interarrival=8.0, seed=21)
    baseline = ShardedServer(
        16, EquipartitionScheduler(), shards=1, mode="inprocess"
    ).run(specs)
    server = ShardedServer(
        16, EquipartitionScheduler(), shards=3, mode="process"
    )
    result = server.run(specs)
    _assert_identical(result, baseline)
    assert server.stats.mode == "process"
    assert server.stats.events_total == baseline.events


def test_auto_mode_resolves_by_cpu_count():
    server = ShardedServer(8, EquipartitionScheduler(), shards=1, mode="auto")
    assert server._resolve_mode() == "inprocess"  # K=1 never forks


# ------------------------------------------------------- eager-engine parity
@pytest.mark.parametrize("policy", sorted(SCHEDULERS))
def test_sharded_agrees_with_eager_engine(policy):
    """The eager ClusterServer advances every job at every event; the
    sharded engine integrates lazily.  Decisions are identical, so the
    results agree to float reassociation noise."""
    specs = synthetic_workload(jobs=10, mean_interarrival=12.0, seed=9)
    eager = ClusterServer(16, SCHEDULERS[policy]()).run(specs)
    sharded = ShardedServer(
        16, SCHEDULERS[policy](), shards=2, mode="inprocess"
    ).run(specs)
    assert sharded.makespan == pytest.approx(eager.makespan, rel=1e-9)
    for name, value in eager.job_turnaround.items():
        assert sharded.job_turnaround[name] == pytest.approx(value, rel=1e-9)
    for name, value in eager.job_node_seconds.items():
        assert sharded.job_node_seconds[name] == pytest.approx(
            value, rel=1e-9
        )
    assert sharded.total_work == pytest.approx(eager.total_work, rel=1e-12)


# ---------------------------------------------------------------- accounting
def test_phase_only_barriers_elide_the_scheduler():
    """Pure within-job phase boundaries skip the allocation call: with one
    running job, every barrier between its arrival and completion is
    allocation-neutral."""
    specs = [stencil_like_job("solo", arrival=0.0, iterations=10)]
    server = ShardedServer(8, EquipartitionScheduler(), shards=1)
    server.run(specs)
    stats = server.stats
    # Arrival and job completion allocate; the 9 interior phase
    # boundaries are elided.
    assert stats.allocations == 2
    assert stats.allocations_elided == 9
    assert stats.allocations + stats.allocations_elided == stats.epochs


def test_stats_record_shape():
    specs = synthetic_workload(jobs=6, mean_interarrival=10.0, seed=2)
    server = ShardedServer(16, StaticScheduler(4), shards=3, mode="inprocess")
    result = server.run(specs)
    stats = server.stats
    assert stats.shards == 3
    assert stats.mode == "inprocess"
    assert len(stats.shard_events) == 3
    assert sum(stats.shard_jobs) == 6
    assert stats.events_total == result.events
    assert stats.epochs > 0
    assert stats.wall_s > 0
    assert math.isfinite(stats.speedup_vs(1.0))


# -------------------------------------------------------------------- guards
class _ProgressGreedyScheduler(Scheduler):
    """A scheduler that (illegally, for sharding) reads job progress."""

    name = "progress-greedy"
    progress_insensitive = False

    def allocate(self, running, total_nodes):
        ranked = sorted(running, key=lambda j: j.remaining_work)
        return {job: (total_nodes if i == 0 else 0) for i, job in enumerate(ranked)}


def test_progress_sensitive_scheduler_rejected():
    server = ShardedServer(8, _ProgressGreedyScheduler(), shards=2)
    with pytest.raises(ConfigurationError, match="progress-insensitive"):
        server.run(synthetic_workload(jobs=3, seed=1))


def test_starvation_detected():
    # Jobs demand 8 nodes but the cluster only has 4: StaticScheduler
    # never grants, and the run must fail loudly like ClusterServer does.
    specs = synthetic_workload(jobs=2, mean_interarrival=5.0, seed=3)
    with pytest.raises(ConfigurationError, match="never"):
        ShardedServer(4, StaticScheduler(8), shards=2).run(specs)


def test_validation_errors():
    with pytest.raises(ConfigurationError):
        ShardedServer(0, EquipartitionScheduler())
    with pytest.raises(ConfigurationError):
        ShardedServer(8, EquipartitionScheduler(), shards=0)
    with pytest.raises(ConfigurationError):
        ShardedServer(8, EquipartitionScheduler(), mode="threads")


def test_empty_workload():
    result = ShardedServer(8, EquipartitionScheduler(), shards=2).run([])
    assert result.makespan == 0.0
    assert result.job_turnaround == {}
    assert result.events == 0
