"""Fault replay on the cluster-server engines: semantics and determinism.

The contract (``docs/faults.md``): a non-empty :class:`FaultPlan` is
replayed controller-side at epoch barriers, so a sharded run's result —
including the fault trace and every fault counter — is **bit-identical
for every shard count K**; against the eager engine the integer trace
fields agree exactly and the float accounting to reassociation noise.
An *empty* plan is literally the fault-free code path.
"""

from __future__ import annotations

import math

import pytest

from repro.clusterserver import (
    ClusterServer,
    EquipartitionScheduler,
    FcfsScheduler,
    ShardedServer,
    synthetic_workload,
)
from repro.clusterserver.arrivals import poisson_arrivals
from repro.errors import ConfigurationError
from repro.faults import FaultEvent, FaultPlan

NODES = 16


def _plan(max_retries=2):
    """The reference plan: one of each server-side fault kind."""
    return FaultPlan(
        events=(
            FaultEvent(kind="crash", at=120.0, node=3),
            FaultEvent(kind="brownout", at=260.0, node=7, duration=90.0),
            FaultEvent(kind="degrade", at=60.0, node=1, factor=0.5,
                       duration=200.0),
            FaultEvent(kind="killjob", at=400.0, job=2),
        ),
        max_retries=max_retries,
        seed=0,
    )


def _workload():
    return synthetic_workload(jobs=10, mean_interarrival=40.0, seed=3,
                              max_nodes=8)


def _assert_identical(a, b):
    """Bit-equality on every gated field, fault outcome included."""
    assert a.makespan == b.makespan
    assert a.job_turnaround == b.job_turnaround
    assert a.job_wait == b.job_wait
    assert a.job_slowdown == b.job_slowdown
    assert a.retries == b.retries
    assert a.lost_work == b.lost_work
    assert a.failed_jobs == b.failed_jobs
    assert a.fault_trace == b.fault_trace


def _assert_equivalent(eager, sharded):
    """Eager vs. sharded: integer trace exact, floats to 1e-6."""
    assert eager.retries == sharded.retries
    assert eager.failed_jobs == sharded.failed_jobs
    assert eager.makespan == pytest.approx(sharded.makespan, abs=1e-6)
    assert eager.lost_work == pytest.approx(sharded.lost_work, abs=1e-6)
    assert len(eager.fault_trace) == len(sharded.fault_trace)
    for ea, sh in zip(eager.fault_trace, sharded.fault_trace):
        assert set(ea) == set(sh)
        for key, value in ea.items():
            if isinstance(value, float):
                assert value == pytest.approx(sh[key], abs=1e-6)
            else:
                assert value == sh[key]


# ------------------------------------------------------------- determinism
def test_sharded_fault_replay_is_k_invariant():
    results = {
        shards: ShardedServer(
            NODES, EquipartitionScheduler(), shards=shards,
            mode="inprocess", faults=_plan(),
        ).run(_workload())
        for shards in (1, 2, 4)
    }
    for shards in (2, 4):
        _assert_identical(results[shards], results[1])
    assert results[1].fault_trace, "the reference plan must actually fire"
    assert results[1].retries > 0


def test_eager_engine_agrees_with_sharded():
    eager = ClusterServer(
        NODES, EquipartitionScheduler(), faults=_plan()
    ).run(_workload())
    sharded = ShardedServer(
        NODES, EquipartitionScheduler(), shards=2, mode="inprocess",
        faults=_plan(),
    ).run(_workload())
    _assert_equivalent(eager, sharded)


def test_empty_plan_is_bit_identical_to_no_plan():
    plain = ShardedServer(
        NODES, EquipartitionScheduler(), shards=2, mode="inprocess"
    ).run(_workload())
    empty = ShardedServer(
        NODES, EquipartitionScheduler(), shards=2, mode="inprocess",
        faults=FaultPlan(),
    ).run(_workload())
    _assert_identical(plain, empty)
    assert empty.fault_trace == ()
    eager_plain = ClusterServer(NODES, EquipartitionScheduler()).run(
        _workload()
    )
    eager_empty = ClusterServer(
        NODES, EquipartitionScheduler(), faults=FaultPlan()
    ).run(_workload())
    _assert_identical(eager_plain, eager_empty)


def test_process_mode_matches_inprocess_under_faults():
    baseline = ShardedServer(
        NODES, EquipartitionScheduler(), shards=1, mode="inprocess",
        faults=_plan(),
    ).run(_workload())
    result = ShardedServer(
        NODES, EquipartitionScheduler(), shards=3, mode="process",
        faults=_plan(),
    ).run(_workload())
    _assert_identical(result, baseline)


# --------------------------------------------------------------- semantics
def test_crash_costs_work_but_jobs_complete_under_budget():
    plain = ClusterServer(NODES, EquipartitionScheduler()).run(_workload())
    faulty = ClusterServer(
        NODES, EquipartitionScheduler(), faults=_plan()
    ).run(_workload())
    assert faulty.jobs_completed == plain.jobs_completed
    assert faulty.failed_jobs == 0
    assert faulty.lost_work > 0.0
    # lost work is re-done somewhere: the victims pay in turnaround even
    # when the makespan-setting tail job is untouched
    assert faulty.makespan >= plain.makespan
    assert faulty.mean_turnaround > plain.mean_turnaround


def test_exhausted_retry_budget_fails_the_job():
    for server in (
        ClusterServer(
            NODES, EquipartitionScheduler(), faults=_plan(max_retries=0)
        ),
        ShardedServer(
            NODES, EquipartitionScheduler(), shards=2, mode="inprocess",
            faults=_plan(max_retries=0),
        ),
    ):
        result = server.run(_workload())
        assert result.failed_jobs > 0
        assert result.retries == 0
        assert (
            result.jobs_completed
            == len(_workload()) - result.failed_jobs
        )
        # failed jobs are excluded from the per-job metric dicts
        assert len(result.job_turnaround) == result.jobs_completed
        failed = [
            e for e in result.fault_trace if e.get("outcome") == "failed"
        ]
        assert len(failed) == result.failed_jobs


def test_trace_records_every_applied_operation():
    result = ShardedServer(
        NODES, EquipartitionScheduler(), shards=2, mode="inprocess",
        faults=_plan(),
    ).run(_workload())
    ops = [entry["op"] for entry in result.fault_trace]
    times = [entry["t"] for entry in result.fault_trace]
    assert times == sorted(times)
    assert {"down", "up", "slow", "unslow", "kill"} >= set(ops)
    assert "slow" in ops and "down" in ops
    for entry in result.fault_trace:
        assert isinstance(entry["t"], float)
        if entry.get("outcome") in ("retry", "failed"):
            assert entry["lost"] >= 0.0
            assert entry["restarts"] >= 1


def test_seed_resolved_targets_are_k_invariant():
    plan = FaultPlan(
        events=(
            FaultEvent(kind="crash", at=150.0),     # node drawn from seed
            FaultEvent(kind="brownout", at=300.0, duration=50.0),
        ),
        max_retries=3,
        seed=99,
    )
    results = {
        shards: ShardedServer(
            NODES, FcfsScheduler(), shards=shards, mode="inprocess",
            faults=plan,
        ).run(_workload())
        for shards in (1, 4)
    }
    _assert_identical(results[4], results[1])


def test_all_nodes_down_is_rejected():
    plan = FaultPlan(
        events=tuple(
            FaultEvent(kind="crash", at=10.0, node=n) for n in range(4)
        )
    )
    with pytest.raises(ConfigurationError, match="every node"):
        ClusterServer(4, EquipartitionScheduler(), faults=plan).run(
            synthetic_workload(jobs=4, seed=1, max_nodes=4)
        )


# ------------------------------------------------------------- open system
def _arrivals():
    return poisson_arrivals(
        mean_interarrival=30.0, seed=5, max_nodes=8, jobs=40
    )


def test_open_system_fault_replay_is_k_invariant():
    plan = _plan()
    results = {}
    for shards in (1, 2, 4):
        result = ShardedServer(
            NODES, EquipartitionScheduler(), shards=shards,
            mode="inprocess", faults=plan,
        ).run(_arrivals())
        results[shards] = result
    for shards in (2, 4):
        a, b = results[shards], results[1]
        assert a.fault_trace == b.fault_trace
        assert a.retries == b.retries
        assert a.lost_work == b.lost_work
        assert a.failed_jobs == b.failed_jobs
        assert a.makespan == b.makespan
        assert a.slo.to_metrics() == b.slo.to_metrics()
    assert results[1].fault_trace


def test_open_system_eager_agrees_with_sharded():
    eager = ClusterServer(
        NODES, EquipartitionScheduler(), faults=_plan()
    ).run(_arrivals())
    sharded = ShardedServer(
        NODES, EquipartitionScheduler(), shards=2, mode="inprocess",
        faults=_plan(),
    ).run(_arrivals())
    _assert_equivalent(eager, sharded)
    em, sm = eager.slo.to_metrics(), sharded.slo.to_metrics()
    assert set(em) == set(sm)
    for key, value in em.items():
        if isinstance(value, float) and not math.isnan(value):
            assert value == pytest.approx(sm[key], abs=1e-6)
        elif not isinstance(value, float):
            assert value == sm[key]


def test_open_system_slo_reports_fault_counters():
    result = ShardedServer(
        NODES, EquipartitionScheduler(), shards=2, mode="inprocess",
        faults=_plan(),
    ).run(_arrivals())
    metrics = result.slo.to_metrics()
    assert metrics["retries"] == result.retries
    assert metrics["lost_work"] == result.lost_work
    assert metrics["failed_jobs"] == result.failed_jobs
