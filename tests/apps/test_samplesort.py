"""The parallel sample-sort application: kernels, all-to-all, accuracy."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.sort import (
    SampleSortApplication,
    SampleSortConfig,
    SampleSortCostModel,
    choose_splitters,
    local_sort_spec,
    merge_runs_spec,
    partition_by_splitters,
    partition_spec,
    sample_sort_rate_factors,
)
from repro.errors import ConfigurationError, VerificationError
from repro.sim.modes import SimulationMode
from repro.sim.platform import PAPER_CLUSTER
from repro.sim.providers import CostModelProvider
from repro.sim.simulator import DPSSimulator
from repro.testbed.cluster import VirtualCluster
from repro.testbed.executor import TestbedExecutor


def make_sim(cfg: SampleSortConfig, run_kernels: bool = True) -> DPSSimulator:
    model = SampleSortCostModel(PAPER_CLUSTER.machine, cfg.block, cfg.num_threads)
    return DPSSimulator(
        PAPER_CLUSTER, CostModelProvider(model, run_kernels=run_kernels)
    )


# --------------------------------------------------------------------------
# kernels
# --------------------------------------------------------------------------


class TestSplitters:
    def test_count(self):
        samples = np.arange(100.0)
        assert choose_splitters(samples, 4).size == 3
        assert choose_splitters(samples, 1).size == 0

    def test_sorted_output(self):
        rng = np.random.default_rng(0)
        splitters = choose_splitters(rng.standard_normal(200), 8)
        assert np.all(np.diff(splitters) >= 0)

    def test_empty_samples(self):
        assert choose_splitters(np.empty(0), 4).size == 0

    @given(
        st.integers(min_value=2, max_value=16),
        st.integers(min_value=1, max_value=300),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_splitters_within_sample_range(self, w, n, seed):
        samples = np.random.default_rng(seed).standard_normal(n)
        splitters = choose_splitters(samples, w)
        assert splitters.size == w - 1
        assert np.all(splitters >= samples.min())
        assert np.all(splitters <= samples.max())


class TestPartition:
    def test_partition_covers_block(self):
        block = np.sort(np.random.default_rng(1).standard_normal(100))
        splitters = choose_splitters(block, 4)
        runs = partition_by_splitters(block, splitters)
        assert len(runs) == 4
        np.testing.assert_array_equal(np.concatenate(runs), block)

    def test_partition_respects_splitters(self):
        block = np.sort(np.random.default_rng(2).standard_normal(64))
        splitters = np.array([-0.5, 0.5])
        low, mid, high = partition_by_splitters(block, splitters)
        assert np.all(low <= -0.5)
        assert np.all((mid > -0.5) & (mid <= 0.5))
        assert np.all(high > 0.5)

    @given(
        st.integers(min_value=0, max_value=200),
        st.integers(min_value=2, max_value=8),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_partition_is_exact_cover(self, n, w, seed):
        block = np.sort(np.random.default_rng(seed).standard_normal(n))
        splitters = choose_splitters(block, w) if n else np.empty(0)
        runs = partition_by_splitters(block, splitters)
        assert sum(r.size for r in runs) == n
        if n:
            np.testing.assert_array_equal(np.concatenate(runs), block)


class TestSpecs:
    def test_sort_spec_superlinear(self):
        assert local_sort_spec(2000).flops > 2 * local_sort_spec(1000).flops

    def test_partition_spec_linear(self):
        assert partition_spec(2000, 4).flops == 2 * partition_spec(1000, 4).flops

    def test_merge_spec_grows_with_ways(self):
        assert merge_runs_spec(1000, 8).flops > merge_runs_spec(1000, 2).flops

    def test_rate_factors_cover_kernels(self):
        factors = sample_sort_rate_factors(PAPER_CLUSTER.machine, 1000, 4)
        assert set(factors) == {"local_sort", "partition", "merge_runs", "overhead"}


# --------------------------------------------------------------------------
# configuration
# --------------------------------------------------------------------------


class TestConfig:
    def test_block_sizes_sum_to_m(self):
        cfg = SampleSortConfig(m=103, num_threads=4, num_nodes=2)
        assert sum(cfg.block_size(i) for i in range(4)) == 103

    def test_too_few_keys_rejected(self):
        with pytest.raises(ConfigurationError):
            SampleSortConfig(m=3, num_threads=4)

    def test_oversample_validated(self):
        with pytest.raises(ConfigurationError):
            SampleSortConfig(oversample=0)

    def test_threads_per_node_validated(self):
        with pytest.raises(ConfigurationError):
            SampleSortConfig(num_threads=2, num_nodes=4)


# --------------------------------------------------------------------------
# end-to-end
# --------------------------------------------------------------------------


def test_sorts_correctly_under_simulator():
    cfg = SampleSortConfig(m=4000, num_threads=4, num_nodes=2)
    app = SampleSortApplication(cfg)
    res = make_sim(cfg).run(app)
    app.verify()
    assert res.predicted_time > 0


def test_sorts_correctly_under_testbed():
    cfg = SampleSortConfig(m=4000, num_threads=4, num_nodes=2)
    app = SampleSortApplication(cfg)
    TestbedExecutor(VirtualCluster(num_nodes=2, seed=8)).run(app)
    app.verify()


def test_uneven_block_sizes_sort_correctly():
    cfg = SampleSortConfig(m=4001, num_threads=3, num_nodes=3)
    app = SampleSortApplication(cfg)
    make_sim(cfg).run(app)
    app.verify()


def test_single_worker():
    cfg = SampleSortConfig(m=500, num_threads=1, num_nodes=1)
    app = SampleSortApplication(cfg)
    make_sim(cfg).run(app)
    app.verify()


def test_skewed_input_still_sorts():
    """Heavily duplicated keys skew the partition sizes; correctness holds."""
    cfg = SampleSortConfig(m=3000, num_threads=4, num_nodes=2, seed=3)
    app = SampleSortApplication(cfg)
    rng = np.random.default_rng(3)
    app.data = np.round(rng.standard_normal(cfg.m) * 2).astype(float)
    make_sim(cfg).run(app)
    app.verify()


def test_noalloc_runs_and_predicts_close_to_allocating():
    common = dict(m=20000, num_threads=4, num_nodes=4)
    cfg_a = SampleSortConfig(**common)
    cfg_n = SampleSortConfig(mode=SimulationMode.PDEXEC_NOALLOC, **common)
    t_a = make_sim(cfg_a).run(SampleSortApplication(cfg_a)).predicted_time
    app_n = SampleSortApplication(cfg_n)
    t_n = make_sim(cfg_n, run_kernels=False).run(app_n).predicted_time
    # The uniform-run-size approximation holds for near-uniform data.
    assert t_n == pytest.approx(t_a, rel=0.05)
    with pytest.raises(VerificationError):
        app_n.verify()


def test_prediction_tracks_measurement():
    cfg = SampleSortConfig(m=200000, num_threads=4, num_nodes=4)
    app_m = SampleSortApplication(cfg)
    measured = TestbedExecutor(VirtualCluster(num_nodes=4, seed=6)).run(app_m)
    app_m.verify()
    predicted = make_sim(cfg).run(SampleSortApplication(cfg))
    error = predicted.predicted_time / measured.measured_time - 1.0
    assert abs(error) < 0.12


def test_more_workers_reduce_predicted_time():
    base = dict(m=1 << 17, mode=SimulationMode.PDEXEC_NOALLOC)
    cfg2 = SampleSortConfig(num_threads=2, num_nodes=2, **base)
    cfg8 = SampleSortConfig(num_threads=8, num_nodes=8, **base)
    t2 = make_sim(cfg2, run_kernels=False).run(SampleSortApplication(cfg2)).predicted_time
    t8 = make_sim(cfg8, run_kernels=False).run(SampleSortApplication(cfg8)).predicted_time
    assert t8 < t2


def test_all_to_all_transfer_count():
    """Every worker sends one run to every *other* node's workers."""
    from repro.dps.trace import TraceLevel

    cfg = SampleSortConfig(m=4000, num_threads=4, num_nodes=4)
    app = SampleSortApplication(cfg)
    model = SampleSortCostModel(PAPER_CLUSTER.machine, cfg.block, cfg.num_threads)
    sim = DPSSimulator(
        PAPER_CLUSTER,
        CostModelProvider(model, run_kernels=True),
        trace_level=TraceLevel.FULL,
    )
    res = sim.run(app)
    transfers = [t for t in res.run.trace.transfers if t.kind == "run"]
    # 4 workers x 3 remote destinations (the self-run stays local).
    assert len(transfers) == 12


def test_verify_without_run_raises():
    app = SampleSortApplication(SampleSortConfig())
    with pytest.raises(VerificationError):
        app.verify()
