"""The Jacobi stencil application: kernels, both variants, malleability."""

import numpy as np
import pytest

from repro.apps.stencil import (
    StencilApplication,
    StencilConfig,
    StencilCostModel,
    initial_grid,
    jacobi_sweep,
    reference_jacobi,
    stencil_rate_factors,
)
from repro.dps.malleability import AllocationEvent, AllocationSchedule
from repro.errors import ConfigurationError, VerificationError
from repro.sim.modes import SimulationMode
from repro.sim.platform import PAPER_CLUSTER
from repro.sim.providers import CostModelProvider
from repro.sim.simulator import DPSSimulator
from repro.testbed.cluster import VirtualCluster
from repro.testbed.executor import TestbedExecutor


def make_sim(cfg: StencilConfig, run_kernels: bool = True) -> DPSSimulator:
    model = StencilCostModel(PAPER_CLUSTER.machine, cfg.rows, cfg.n)
    return DPSSimulator(PAPER_CLUSTER, CostModelProvider(model, run_kernels=run_kernels))


# --------------------------------------------------------------------------
# kernels
# --------------------------------------------------------------------------


class TestKernels:
    def test_reference_preserves_boundaries(self):
        grid = initial_grid(16, seed=3)
        out = reference_jacobi(grid, 5)
        np.testing.assert_array_equal(out[0], grid[0])
        np.testing.assert_array_equal(out[-1], grid[-1])
        np.testing.assert_array_equal(out[:, 0], grid[:, 0])
        np.testing.assert_array_equal(out[:, -1], grid[:, -1])

    def test_reference_zero_iterations_is_identity(self):
        grid = initial_grid(8)
        np.testing.assert_array_equal(reference_jacobi(grid, 0), grid)

    def test_reference_converges_towards_laplace(self):
        grid = initial_grid(16, seed=1)
        r_few = np.max(np.abs(reference_jacobi(grid, 11) - reference_jacobi(grid, 10)))
        r_many = np.max(np.abs(reference_jacobi(grid, 201) - reference_jacobi(grid, 200)))
        assert r_many < r_few

    def test_sweep_matches_reference_single_stripe(self):
        grid = initial_grid(12, seed=2)
        new, residual = jacobi_sweep(grid, None, None)
        np.testing.assert_allclose(new, reference_jacobi(grid, 1))
        assert residual == pytest.approx(np.max(np.abs(new - grid)))

    def test_striped_sweeps_match_full_sweep(self):
        grid = initial_grid(12, seed=4)
        full = reference_jacobi(grid, 1)
        stripes = np.split(grid, 4)
        rebuilt = []
        for i, stripe in enumerate(stripes):
            top = stripes[i - 1][-1] if i > 0 else None
            bottom = stripes[i + 1][0] if i < 3 else None
            rebuilt.append(jacobi_sweep(stripe, top, bottom)[0])
        np.testing.assert_allclose(np.vstack(rebuilt), full)

    def test_sweep_residual_zero_on_fixed_point(self):
        # A linear-in-row field is harmonic: one sweep leaves it unchanged.
        n = 8
        grid = np.tile(np.linspace(1.0, 0.0, n)[:, None], (1, n))
        new, residual = jacobi_sweep(grid, None, None)
        np.testing.assert_allclose(new, grid, atol=1e-15)
        assert residual < 1e-15

    def test_reference_rejects_non_2d(self):
        with pytest.raises(ConfigurationError):
            reference_jacobi(np.zeros(5), 1)

    def test_rate_factors_cover_kernels(self):
        factors = stencil_rate_factors(PAPER_CLUSTER.machine, 16, 64)
        assert set(factors) == {"jacobi", "overhead"}
        for value in factors.values():
            assert 0.9 < value < 1.2


# --------------------------------------------------------------------------
# configuration
# --------------------------------------------------------------------------


class TestConfig:
    def test_rows_and_sizes(self):
        cfg = StencilConfig(n=64, stripes=4)
        assert cfg.rows == 16
        assert cfg.stripe_bytes == 8.0 * 16 * 64
        assert cfg.halo_bytes == 8.0 * 64

    def test_stripes_must_divide_n(self):
        with pytest.raises(ConfigurationError):
            StencilConfig(n=64, stripes=5)

    def test_tiny_grid_rejected(self):
        with pytest.raises(ConfigurationError):
            StencilConfig(n=2, stripes=1)

    def test_zero_iterations_rejected(self):
        with pytest.raises(ConfigurationError):
            StencilConfig(iterations=0)

    def test_schedule_requires_barrier(self):
        sched = AllocationSchedule(
            events=(AllocationEvent("iter1", "workers", (1,)),)
        )
        with pytest.raises(ConfigurationError):
            StencilConfig(barrier=False, schedule=sched)

    def test_schedule_cannot_remove_all_workers(self):
        sched = AllocationSchedule(
            events=(AllocationEvent("iter1", "workers", (0, 1, 2, 3)),)
        )
        with pytest.raises(ConfigurationError):
            StencilConfig(num_threads=4, barrier=True, schedule=sched)

    def test_schedule_group_must_be_workers(self):
        sched = AllocationSchedule(
            events=(AllocationEvent("iter1", "main", (0,)),)
        )
        with pytest.raises(ConfigurationError):
            StencilConfig(barrier=True, schedule=sched)

    def test_schedule_unknown_thread_rejected(self):
        sched = AllocationSchedule(
            events=(AllocationEvent("iter1", "workers", (9,)),)
        )
        with pytest.raises(ConfigurationError):
            StencilConfig(num_threads=4, barrier=True, schedule=sched)


# --------------------------------------------------------------------------
# end-to-end runs
# --------------------------------------------------------------------------


@pytest.mark.parametrize("barrier", [False, True])
def test_simulated_run_matches_sequential_reference(barrier):
    cfg = StencilConfig(
        n=48, stripes=4, iterations=4, num_threads=4, num_nodes=2, barrier=barrier
    )
    app = StencilApplication(cfg)
    res = make_sim(cfg).run(app)
    assert app.verify(res.runtime) == 0.0
    assert res.predicted_time > 0.0


@pytest.mark.parametrize("barrier", [False, True])
def test_testbed_run_matches_sequential_reference(barrier):
    cfg = StencilConfig(
        n=48, stripes=4, iterations=4, num_threads=4, num_nodes=2, barrier=barrier
    )
    app = StencilApplication(cfg)
    m = TestbedExecutor(VirtualCluster(num_nodes=2, seed=5)).run(app)
    assert app.verify(m.runtime) == 0.0


def test_single_stripe_run():
    cfg = StencilConfig(n=16, stripes=1, iterations=3, num_threads=1, num_nodes=1)
    app = StencilApplication(cfg)
    res = make_sim(cfg).run(app)
    assert app.verify(res.runtime) == 0.0


def test_more_stripes_than_threads():
    cfg = StencilConfig(n=48, stripes=8, iterations=3, num_threads=3, num_nodes=3)
    app = StencilApplication(cfg)
    res = make_sim(cfg).run(app)
    assert app.verify(res.runtime) == 0.0


def test_phases_mark_every_iteration():
    cfg = StencilConfig(n=32, stripes=4, iterations=5, num_threads=4, num_nodes=2)
    res = make_sim(cfg).run(StencilApplication(cfg))
    labels = [label for _, label in res.run.phases]
    assert labels == [f"iter{k}" for k in range(1, 6)]


def test_residuals_decrease_monotonically():
    cfg = StencilConfig(n=32, stripes=4, iterations=6, num_threads=4, num_nodes=2)
    app = StencilApplication(cfg)
    make_sim(cfg).run(app)
    residuals = [app.residuals[k] for k in range(1, 7)]
    assert all(r > 0 for r in residuals)
    # Jacobi on a diffusive field: updates shrink (weak monotonicity).
    assert residuals[-1] < residuals[0]


def test_pipelined_faster_than_barrier():
    """Halo exchange through gates avoids the per-iteration round trip
    through the main node, so the pipelined variant must win."""
    common = dict(n=96, stripes=8, iterations=6, num_threads=4, num_nodes=4)
    t = {}
    for barrier in (False, True):
        cfg = StencilConfig(barrier=barrier, **common)
        t[barrier] = make_sim(cfg, run_kernels=False).run(
            StencilApplication(cfg)
        ).predicted_time
    assert t[False] < t[True]


def test_noalloc_mode_runs_without_payloads():
    cfg = StencilConfig(
        n=48, stripes=4, iterations=4, mode=SimulationMode.PDEXEC_NOALLOC
    )
    app = StencilApplication(cfg)
    assert app.grid is None
    res = make_sim(cfg, run_kernels=False).run(app)
    assert res.predicted_time > 0.0
    with pytest.raises(VerificationError):
        app.verify(res.runtime)


def test_noalloc_predicts_same_time_as_allocating():
    common = dict(n=48, stripes=4, iterations=4, num_threads=4, num_nodes=2)
    cfg_a = StencilConfig(**common)
    cfg_n = StencilConfig(mode=SimulationMode.PDEXEC_NOALLOC, **common)
    t_a = make_sim(cfg_a).run(StencilApplication(cfg_a)).predicted_time
    t_n = make_sim(cfg_n, run_kernels=False).run(StencilApplication(cfg_n)).predicted_time
    assert t_n == pytest.approx(t_a, rel=1e-12)


def test_verify_before_run_raises():
    app = StencilApplication(StencilConfig())
    with pytest.raises(VerificationError):
        app.verify()


def test_prediction_tracks_measurement():
    """Simulator prediction within the paper's ±12% band of the testbed.

    Uses a compute-dominant granularity; at message-dominated sizes the
    model-granularity error grows, exactly as in the paper's coarse
    configurations.
    """
    cfg = StencilConfig(
        n=768,
        stripes=8,
        iterations=5,
        num_threads=4,
        num_nodes=4,
        mode=SimulationMode.PDEXEC_NOALLOC,
    )
    measured = TestbedExecutor(
        VirtualCluster(num_nodes=4, seed=9), run_kernels=False
    ).run(StencilApplication(cfg))
    predicted = make_sim(cfg, run_kernels=False).run(StencilApplication(cfg))
    error = predicted.predicted_time / measured.measured_time - 1.0
    assert abs(error) < 0.12


# --------------------------------------------------------------------------
# dynamic thread removal
# --------------------------------------------------------------------------


def kill_schedule(after: str, indices) -> AllocationSchedule:
    return AllocationSchedule(
        events=(AllocationEvent(after, "workers", tuple(indices)),),
        name=f"kill{len(tuple(indices))}@{after}",
    )


def test_removal_still_verifies():
    cfg = StencilConfig(
        n=48,
        stripes=8,
        iterations=5,
        num_threads=4,
        num_nodes=4,
        barrier=True,
        schedule=kill_schedule("iter2", (2, 3)),
    )
    app = StencilApplication(cfg)
    res = make_sim(cfg).run(app)
    assert app.verify(res.runtime) == 0.0


def test_removal_shrinks_allocation_timeline():
    cfg = StencilConfig(
        n=48,
        stripes=8,
        iterations=5,
        num_threads=4,
        num_nodes=4,
        barrier=True,
        schedule=kill_schedule("iter2", (2, 3)),
    )
    res = make_sim(cfg).run(StencilApplication(cfg))
    timeline = res.run.allocation_timeline
    assert len(timeline) == 2
    assert timeline[0][1] == frozenset({0, 1, 2, 3})
    assert timeline[1][1] == frozenset({0, 1})


def test_removal_slows_constant_work_app():
    """Stencil work per iteration is constant, so unlike LU's shrinking
    tail, halving the workers mid-run must cost running time (at a
    compute-dominant granularity)."""
    common = dict(
        n=2592,
        stripes=8,
        iterations=30,
        num_threads=4,
        num_nodes=4,
        barrier=True,
        mode=SimulationMode.PDEXEC_NOALLOC,
    )
    cfg_static = StencilConfig(**common)
    cfg_kill = StencilConfig(schedule=kill_schedule("iter5", (2, 3)), **common)
    t_static = make_sim(cfg_static, run_kernels=False).run(
        StencilApplication(cfg_static)
    ).predicted_time
    kill_res = make_sim(cfg_kill, run_kernels=False).run(
        StencilApplication(cfg_kill)
    )
    assert kill_res.predicted_time > t_static * 1.2
    # Within the kill run, iterations on 2 workers take visibly longer
    # than iterations on 4 workers.
    durations = {
        label: end - start for label, start, end in kill_res.run.phase_intervals()
    }
    assert durations["iter10"] > durations["iter4"] * 1.4


def test_staged_removal():
    cfg = StencilConfig(
        n=48,
        stripes=8,
        iterations=6,
        num_threads=4,
        num_nodes=4,
        barrier=True,
        schedule=AllocationSchedule(
            events=(
                AllocationEvent("iter2", "workers", (3,)),
                AllocationEvent("iter4", "workers", (2,)),
            ),
            name="staged",
        ),
    )
    app = StencilApplication(cfg)
    res = make_sim(cfg).run(app)
    assert app.verify(res.runtime) == 0.0
    assert len(res.run.allocation_timeline) == 3


def test_removal_under_testbed_verifies():
    cfg = StencilConfig(
        n=48,
        stripes=8,
        iterations=5,
        num_threads=4,
        num_nodes=4,
        barrier=True,
        schedule=kill_schedule("iter3", (2, 3)),
    )
    app = StencilApplication(cfg)
    m = TestbedExecutor(VirtualCluster(num_nodes=4, seed=2)).run(app)
    assert app.verify(m.runtime) == 0.0
