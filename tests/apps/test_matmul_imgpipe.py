"""Matrix multiplication (Fig. 7) and the image pipeline apps."""

import pytest

from repro.apps.imgpipe import ImagePipelineApplication, ImagePipelineConfig
from repro.apps.matmul import MatmulApplication, MatmulConfig
from repro.errors import ConfigurationError
from repro.sim.modes import SimulationMode
from repro.sim.platform import PAPER_CLUSTER
from repro.sim.providers import CostModelProvider, MachineCostModel
from repro.sim.simulator import DPSSimulator
from repro.testbed.cluster import VirtualCluster
from repro.testbed.executor import TestbedExecutor


def sim(run_kernels=True):
    return DPSSimulator(
        PAPER_CLUSTER,
        CostModelProvider(
            MachineCostModel(PAPER_CLUSTER.machine), run_kernels=run_kernels
        ),
    )


def test_matmul_verifies_under_simulator():
    app = MatmulApplication(MatmulConfig(n=96, s=24, num_threads=4, num_nodes=2))
    res = sim().run(app)
    assert app.verify() < 1e-10
    assert res.predicted_time > 0


def test_matmul_verifies_under_testbed():
    app = MatmulApplication(MatmulConfig(n=96, s=24, num_threads=4, num_nodes=2))
    TestbedExecutor(VirtualCluster(num_nodes=2, seed=1)).run(app)
    assert app.verify() < 1e-10


def test_matmul_noalloc_mode():
    app = MatmulApplication(
        MatmulConfig(n=96, s=24, mode=SimulationMode.PDEXEC_NOALLOC)
    )
    res = sim(run_kernels=False).run(app)
    assert res.predicted_time > 0
    with pytest.raises(Exception):
        app.verify()


def test_matmul_finer_blocks_more_transfers():
    coarse = MatmulApplication(MatmulConfig(n=96, s=48, num_threads=4, num_nodes=2))
    fine = MatmulApplication(MatmulConfig(n=96, s=12, num_threads=4, num_nodes=2))
    res_c = sim().run(coarse)
    res_f = sim().run(fine)
    assert res_f.run.trace.transfer_count > res_c.run.trace.transfer_count
    assert coarse.verify() < 1e-10 and fine.verify() < 1e-10


def test_matmul_config_validation():
    with pytest.raises(ConfigurationError):
        MatmulConfig(n=100, s=24)
    with pytest.raises(ConfigurationError):
        MatmulConfig(num_threads=1, num_nodes=2)


def test_imgpipe_runs_and_marks_frames():
    cfg = ImagePipelineConfig(frames=5, tiles_per_frame=6, num_threads=4, num_nodes=2)
    res = sim(run_kernels=False).run(ImagePipelineApplication(cfg))
    assert res.predicted_time > 0
    assert len(res.run.phases) == 5


def test_imgpipe_pipelining_beats_serial_frames():
    """Back-to-back frames overlap: time << frames x single-frame time.

    A single 2-tile frame leaves six of the eight workers idle; streaming
    eight frames through the graph fills them, so the total is far below
    the strictly serial 8 x t1 (macro-dataflow pipelining, paper §2).
    """
    one = ImagePipelineConfig(frames=1, tiles_per_frame=2, num_threads=8, num_nodes=8)
    many = ImagePipelineConfig(frames=8, tiles_per_frame=2, num_threads=8, num_nodes=8)
    t1 = sim(run_kernels=False).run(ImagePipelineApplication(one)).predicted_time
    t8 = sim(run_kernels=False).run(ImagePipelineApplication(many)).predicted_time
    assert t8 < 8 * t1 * 0.85


def test_imgpipe_more_nodes_faster():
    small = ImagePipelineConfig(frames=6, tiles_per_frame=12, num_threads=2, num_nodes=2)
    large = ImagePipelineConfig(frames=6, tiles_per_frame=12, num_threads=8, num_nodes=8)
    t_small = sim(run_kernels=False).run(ImagePipelineApplication(small)).predicted_time
    t_large = sim(run_kernels=False).run(ImagePipelineApplication(large)).predicted_time
    assert t_large < t_small
