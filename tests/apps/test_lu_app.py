"""The distributed LU application: all variants, both engines, verified."""

import pytest

from repro.apps.lu.app import LUApplication
from repro.apps.lu.config import LUConfig
from repro.apps.lu.costs import LUCostModel, lu_total_flops
from repro.dps.malleability import AllocationEvent, AllocationSchedule
from repro.errors import ConfigurationError
from repro.sim.modes import SimulationMode
from repro.sim.platform import PAPER_CLUSTER
from repro.sim.providers import CostModelProvider
from repro.sim.simulator import DPSSimulator
from repro.testbed.cluster import VirtualCluster
from repro.testbed.executor import TestbedExecutor

N, R = 96, 24  # 4 column blocks: fast but exercises every code path


def simulate(cfg: LUConfig):
    provider = CostModelProvider(
        LUCostModel(PAPER_CLUSTER.machine, cfg.r),
        run_kernels=cfg.mode.runs_kernels,
    )
    return DPSSimulator(PAPER_CLUSTER, provider).run(LUApplication(cfg))


VARIANTS = {
    "basic": {},
    "P": dict(pipelined=True),
    "FC": dict(flow_control=3),
    "P+FC": dict(pipelined=True, flow_control=3),
    "PM": dict(pm_subblock=12),
    "P+PM": dict(pipelined=True, pm_subblock=12),
    "P+PM+FC": dict(pipelined=True, pm_subblock=12, flow_control=3),
}


@pytest.mark.parametrize("variant", sorted(VARIANTS))
def test_every_variant_verifies_under_simulator(variant):
    cfg = LUConfig(
        n=N, r=R, num_threads=4, num_nodes=2,
        mode=SimulationMode.PDEXEC, **VARIANTS[variant],
    )
    app = LUApplication(cfg)
    provider = CostModelProvider(
        LUCostModel(PAPER_CLUSTER.machine, cfg.r), run_kernels=True
    )
    res = DPSSimulator(PAPER_CLUSTER, provider).run(app)
    assert app.verify(res.runtime) < 1e-10
    assert res.predicted_time > 0
    # One phase marked per iteration.
    assert [p[1] for p in res.run.phases] == [f"iter{k}" for k in range(1, N // R + 1)]


@pytest.mark.parametrize("variant", ["basic", "P+FC", "PM"])
def test_every_variant_verifies_under_testbed(variant):
    cfg = LUConfig(
        n=N, r=R, num_threads=4, num_nodes=2,
        mode=SimulationMode.PDEXEC, **VARIANTS[variant],
    )
    app = LUApplication(cfg)
    m = TestbedExecutor(VirtualCluster(num_nodes=2, seed=3)).run(app)
    assert app.verify(m.runtime) < 1e-10


def test_noalloc_runs_without_payloads():
    cfg = LUConfig(
        n=N, r=R, num_threads=4, num_nodes=2, mode=SimulationMode.PDEXEC_NOALLOC
    )
    res = simulate(cfg)
    assert res.predicted_time > 0


def test_noalloc_predicts_same_time_as_alloc():
    """NOALLOC changes memory, not the predicted schedule."""
    base = dict(n=N, r=R, num_threads=4, num_nodes=2)
    t_alloc = simulate(LUConfig(mode=SimulationMode.PDEXEC, **base)).predicted_time
    t_noalloc = simulate(
        LUConfig(mode=SimulationMode.PDEXEC_NOALLOC, **base)
    ).predicted_time
    assert t_alloc == pytest.approx(t_noalloc, rel=1e-9)


def test_threads_can_exceed_nodes():
    cfg = LUConfig(
        n=N, r=R, num_threads=4, num_nodes=2, mode=SimulationMode.PDEXEC
    )
    app = LUApplication(cfg)
    res = simulate(cfg)
    # ok as long as it verifies; 2 threads per node
    app2 = LUApplication(
        LUConfig(n=N, r=R, num_threads=2, num_nodes=2, mode=SimulationMode.PDEXEC)
    )
    provider = CostModelProvider(
        LUCostModel(PAPER_CLUSTER.machine, R), run_kernels=True
    )
    res2 = DPSSimulator(PAPER_CLUSTER, provider).run(app2)
    assert app2.verify(res2.runtime) < 1e-10


def test_single_node_single_thread():
    cfg = LUConfig(n=N, r=R, num_threads=1, num_nodes=1, mode=SimulationMode.PDEXEC)
    app = LUApplication(cfg)
    provider = CostModelProvider(
        LUCostModel(PAPER_CLUSTER.machine, R), run_kernels=True
    )
    res = DPSSimulator(PAPER_CLUSTER, provider).run(app)
    assert app.verify(res.runtime) < 1e-10
    # Serial time approximates total work over the profile rate.
    assert res.predicted_time > 0


def test_removal_schedule_verifies_and_deallocates():
    sched = AllocationSchedule(
        events=(AllocationEvent("iter1", "workers", (2, 3)),), name="kill2@1"
    )
    cfg = LUConfig(
        n=N, r=R, num_threads=4, num_nodes=4,
        schedule=sched, mode=SimulationMode.PDEXEC,
    )
    app = LUApplication(cfg)
    provider = CostModelProvider(
        LUCostModel(PAPER_CLUSTER.machine, R), run_kernels=True
    )
    res = DPSSimulator(PAPER_CLUSTER, provider).run(app)
    assert app.verify(res.runtime) < 1e-10
    # Node allocation shrank from 4 to 2 mid-run.
    assert len(res.run.allocation_timeline) == 2
    assert res.run.allocation_timeline[-1][1] == frozenset({0, 1})


def test_staged_removal_verifies():
    sched = AllocationSchedule(
        events=(
            AllocationEvent("iter1", "workers", (3,)),
            AllocationEvent("iter2", "workers", (2,)),
        ),
        name="staged",
    )
    cfg = LUConfig(
        n=N, r=R, num_threads=4, num_nodes=4,
        schedule=sched, mode=SimulationMode.PDEXEC,
    )
    app = LUApplication(cfg)
    provider = CostModelProvider(
        LUCostModel(PAPER_CLUSTER.machine, R), run_kernels=True
    )
    res = DPSSimulator(PAPER_CLUSTER, provider).run(app)
    assert app.verify(res.runtime) < 1e-10
    assert res.run.allocation_timeline[-1][1] == frozenset({0, 1})


def test_removal_costs_time_but_not_much_late():
    """Removing after the heavy iterations barely hurts (paper Fig. 12)."""
    base = dict(n=N, r=R, num_threads=4, num_nodes=4, mode=SimulationMode.PDEXEC_NOALLOC)
    t_static = simulate(LUConfig(**base)).predicted_time
    late = AllocationSchedule(
        events=(AllocationEvent("iter3", "workers", (2, 3)),), name="late"
    )
    t_late = simulate(LUConfig(schedule=late, **base)).predicted_time
    assert t_late < 1.5 * t_static


def test_config_validation():
    with pytest.raises(ConfigurationError):
        LUConfig(n=100, r=24)  # r does not divide n
    with pytest.raises(ConfigurationError):
        LUConfig(n=96, r=24, num_threads=1, num_nodes=2)
    with pytest.raises(ConfigurationError):
        LUConfig(n=96, r=24, pm_subblock=7)
    with pytest.raises(ConfigurationError):
        LUConfig(n=96, r=24, pm_subblock=24)
    with pytest.raises(ConfigurationError):
        LUConfig(n=96, r=24, flow_control=0)


def test_variant_names():
    assert LUConfig(n=96, r=24).variant_name == "basic"
    assert (
        LUConfig(n=96, r=24, pipelined=True, flow_control=2, pm_subblock=12).variant_name
        == "P+PM+FC"
    )


def test_lu_total_flops_close_to_two_thirds_n_cubed():
    n = 2592
    assert lu_total_flops(n, 216) == pytest.approx(2 / 3 * n**3, rel=0.05)
