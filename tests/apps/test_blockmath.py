"""Block LU kernels vs scipy ground truth, with property-based coverage."""

import numpy as np
import pytest
import scipy.linalg
from hypothesis import given, settings, strategies as st

from repro.apps.lu.blockmath import (
    apply_pivots,
    gemm_update,
    panel_lu,
    random_matrix,
    sequential_block_lu,
    trsm_block,
    undo_pivots,
    unpack_lu,
    verify_factorization,
)
from repro.errors import VerificationError


def test_panel_lu_matches_scipy():
    a = random_matrix(32, seed=1)[:, :8]
    lu, piv = panel_lu(a)
    lu_ref, piv_ref = scipy.linalg.lu_factor(a)
    np.testing.assert_allclose(lu, lu_ref)
    np.testing.assert_array_equal(piv, piv_ref)


def test_apply_undo_pivots_roundtrip():
    rng = np.random.default_rng(3)
    block = rng.standard_normal((16, 4))
    piv = np.array([3, 1, 5, 3, 7, 5, 6, 9, 8, 9, 10, 11, 12, 13, 14, 15])
    original = block.copy()
    apply_pivots(block, piv)
    undo_pivots(block, piv)
    np.testing.assert_allclose(block, original)


def test_trsm_solves_unit_lower_system():
    rng = np.random.default_rng(4)
    l = np.tril(rng.standard_normal((8, 8)), -1) + np.eye(8)
    # pack junk into the upper triangle: trsm must ignore it
    packed = l + np.triu(rng.standard_normal((8, 8)), 1)
    b = rng.standard_normal((8, 5))
    x = trsm_block(packed, b)
    np.testing.assert_allclose(l @ x, b, atol=1e-10)


def test_gemm_update_out_of_place():
    rng = np.random.default_rng(5)
    c = rng.standard_normal((4, 4))
    a = rng.standard_normal((4, 3))
    b = rng.standard_normal((3, 4))
    c0 = c.copy()
    out = gemm_update(c, a, b)
    np.testing.assert_allclose(out, c0 - a @ b)
    np.testing.assert_allclose(c, c0)  # input untouched


@pytest.mark.parametrize("n,r", [(16, 4), (24, 8), (36, 6), (30, 30)])
def test_sequential_block_lu_reconstructs(n, r):
    a = random_matrix(n, seed=n + r)
    lu, perm = sequential_block_lu(a, r)
    residual = verify_factorization(a, lu, perm)
    assert residual < 1e-10


def test_sequential_block_lu_matches_scipy_solution():
    """Same factorization quality: solve a system through our LU."""
    n, r = 24, 6
    a = random_matrix(n, seed=9)
    b = np.arange(n, dtype=float)
    lu, perm = sequential_block_lu(a, r)
    l, u = unpack_lu(lu)
    y = scipy.linalg.solve_triangular(l, b[perm], lower=True, unit_diagonal=True)
    x = scipy.linalg.solve_triangular(u, y)
    np.testing.assert_allclose(a @ x, b, atol=1e-8)


def test_block_size_must_divide():
    with pytest.raises(VerificationError):
        sequential_block_lu(random_matrix(10), 3)


def test_non_square_rejected():
    with pytest.raises(VerificationError):
        sequential_block_lu(np.zeros((4, 6)), 2)


def test_verify_detects_corruption():
    a = random_matrix(16, seed=2)
    lu, perm = sequential_block_lu(a, 4)
    lu[3, 3] += 1.0
    with pytest.raises(VerificationError):
        verify_factorization(a, lu, perm)


@settings(deadline=None, max_examples=25)
@given(
    st.integers(min_value=1, max_value=6),
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=0, max_value=10_000),
)
def test_block_lu_property_reconstruction(nb, r, seed):
    """P @ A == L @ U for arbitrary block decompositions."""
    n = nb * r
    a = random_matrix(n, seed=seed)
    lu, perm = sequential_block_lu(a, r)
    assert verify_factorization(a, lu, perm, rtol=1e-8) < 1e-8


@settings(deadline=None, max_examples=25)
@given(st.integers(min_value=2, max_value=5), st.integers(min_value=0, max_value=1000))
def test_block_lu_independent_of_block_size(nb, seed):
    """The factorization (with pivoting) is identical for every r."""
    n = nb * 4
    a = random_matrix(n, seed=seed)
    lu_a, perm_a = sequential_block_lu(a, 4)
    lu_b, perm_b = sequential_block_lu(a, n)  # single panel == plain getrf
    np.testing.assert_allclose(lu_a, lu_b, atol=1e-9)
    np.testing.assert_array_equal(perm_a, perm_b)
