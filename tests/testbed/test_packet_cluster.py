"""Packet network and virtual-cluster fidelity knobs (testbed substrate)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.des.kernel import Kernel
from repro.errors import ConfigurationError
from repro.netmodel.packet import PacketNetwork, PacketNetworkParams
from repro.netmodel.params import NetworkParams
from repro.testbed.cluster import VirtualCluster

B = 1e7


def quiet_params(**overrides):
    """Packet params with all stochastic knobs disabled."""
    defaults = dict(
        mtu=1460,
        per_chunk_cost=0.0,
        ramp_bytes=0,
        ramp_factor=1.0,
        latency_jitter=0.0,
        rate_jitter=0.0,
    )
    defaults.update(overrides)
    return PacketNetworkParams(**defaults)


def timed_transfer(size, pp, latency=1e-4, seed=0):
    kernel = Kernel()
    net = PacketNetwork(
        kernel, NetworkParams(latency=latency, bandwidth=B), pp, seed=seed
    )
    done = []
    net.submit(0, 1, size, lambda tr: done.append(kernel.now))
    kernel.run()
    return done[0]


class TestPacketParams:
    def test_defaults_valid(self):
        PacketNetworkParams()

    def test_bad_values_rejected(self):
        with pytest.raises(ConfigurationError):
            PacketNetworkParams(mtu=0)
        with pytest.raises(ConfigurationError):
            PacketNetworkParams(ramp_factor=0.0)
        with pytest.raises(ConfigurationError):
            PacketNetworkParams(ramp_factor=1.5)
        with pytest.raises(ConfigurationError):
            PacketNetworkParams(per_chunk_cost=-1.0)


class TestPacketEffects:
    def test_quiet_network_is_ideal(self):
        """With every knob off, the packet model is exactly l + s/b."""
        t = timed_transfer(1e6, quiet_params(), latency=1e-3)
        assert t == pytest.approx(1e-3 + 1e6 / B)

    def test_per_chunk_cost_superlinear(self):
        """Chunk processing makes many small messages cost more than one
        large one of the same total size."""
        pp = quiet_params(per_chunk_cost=50.0)
        one_big = timed_transfer(1e6, pp, latency=0.0)
        many = 100 * (timed_transfer(1e4, pp, latency=0.0))
        assert many > one_big

    def test_ramp_up_slows_short_transfers_relatively(self):
        pp_ramp = quiet_params(ramp_bytes=16 * 1024, ramp_factor=0.5)
        pp_none = quiet_params()
        short_penalty = timed_transfer(16e3, pp_ramp) / timed_transfer(16e3, pp_none)
        long_penalty = timed_transfer(4e6, pp_ramp) / timed_transfer(4e6, pp_none)
        assert short_penalty > long_penalty
        assert short_penalty == pytest.approx(2.0, rel=0.1)

    def test_zero_size_transfer_completes(self):
        t = timed_transfer(0.0, quiet_params(), latency=1e-3)
        assert t == pytest.approx(1e-3)

    def test_jitter_reproducible_per_seed(self):
        pp = PacketNetworkParams()
        a = timed_transfer(1e6, pp, seed=4)
        b = timed_transfer(1e6, pp, seed=4)
        c = timed_transfer(1e6, pp, seed=5)
        assert a == b
        assert a != c

    @given(st.integers(min_value=1, max_value=2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_noise_never_beats_lower_bound(self, seed):
        """Whatever the seed, the testbed can't beat the physics:
        rate jitter is capped at 1.0 and latency at 0.2x nominal."""
        t = timed_transfer(1e6, PacketNetworkParams(), seed=seed)
        ideal_drain = 1e6 / B
        assert t >= ideal_drain + 0.2 * 1e-4 - 1e-12

    @given(
        st.floats(min_value=1e3, max_value=1e7),
        st.floats(min_value=2e3, max_value=1e7),
    )
    @settings(max_examples=25, deadline=None)
    def test_monotone_in_size_without_noise(self, a, b):
        pp = quiet_params(per_chunk_cost=18.0, ramp_bytes=16384, ramp_factor=0.55)
        small, large = sorted((a, b))
        assert timed_transfer(small, pp) <= timed_transfer(large, pp) + 1e-12


class TestVirtualCluster:
    def test_defaults_match_paper_platform(self):
        c = VirtualCluster()
        assert c.num_nodes == 8
        assert c.machine.name.lower().startswith("ultrasparc")

    def test_invalid_node_count(self):
        with pytest.raises(Exception):
            VirtualCluster(num_nodes=0)

    def test_with_helpers_preserve_other_fields(self):
        c = VirtualCluster(num_nodes=4, seed=3)
        assert c.with_nodes(2).seed == 3
        assert c.with_seed(5).num_nodes == 4
        assert c.with_seed(5).packet_params == c.packet_params
