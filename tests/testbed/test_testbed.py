"""Testbed: ground-truth provider, reproducibility, bias structure."""

import pytest

from repro.apps.imgpipe import ImagePipelineApplication, ImagePipelineConfig
from repro.dps.operations import Compute, KernelSpec
from repro.testbed.cluster import VirtualCluster
from repro.testbed.executor import GroundTruthProvider, TestbedExecutor
from repro.testbed.noise import DEFAULT_KERNEL_BIAS, KernelBias, NoisySampler


def app():
    return ImagePipelineApplication(
        ImagePipelineConfig(frames=3, tiles_per_frame=6, num_threads=4, num_nodes=2)
    )


def test_measurement_reproducible_per_seed():
    a = TestbedExecutor(VirtualCluster(num_nodes=2, seed=7)).run(app()).measured_time
    b = TestbedExecutor(VirtualCluster(num_nodes=2, seed=7)).run(app()).measured_time
    assert a == b


def test_different_seeds_differ_slightly():
    a = TestbedExecutor(VirtualCluster(num_nodes=2, seed=1)).run(app()).measured_time
    b = TestbedExecutor(VirtualCluster(num_nodes=2, seed=2)).run(app()).measured_time
    assert a != b
    assert abs(a - b) / a < 0.10


def test_kernel_bias_factors():
    bias = KernelBias(factors={"gemm": 1.1}, default_factor=1.02)
    assert bias.factor("gemm") == 1.1
    assert bias.factor("anything") == 1.02
    assert DEFAULT_KERNEL_BIAS.factor("panel_lu") > 1.0


def test_noisy_sampler_seeded():
    a = [NoisySampler(3, 0.05).sample() for _ in range(4)]
    b = [NoisySampler(3, 0.05).sample() for _ in range(4)]
    assert a == b
    assert NoisySampler(3, 0.0).sample() == 1.0


def test_ground_truth_provider_applies_bias_and_noise():
    cluster = VirtualCluster(num_nodes=2, seed=0)
    provider = GroundTruthProvider(
        cluster, KernelBias(factors={"k": 2.0}, sigma=0.0), run_kernels=False
    )
    spec = KernelSpec("k", flops=1e6, working_set=1e5)
    duration, result = provider.evaluate(Compute(spec, None), None)
    expected = cluster.machine.seconds_for(1e6, 1e5) * 2.0
    assert duration == pytest.approx(expected)
    assert result is None


def test_ground_truth_runs_kernels_when_asked():
    cluster = VirtualCluster(num_nodes=2, seed=0)
    provider = GroundTruthProvider(cluster, run_kernels=True)
    spec = KernelSpec("gemm", flops=1.0)
    _, result = provider.evaluate(Compute(spec, lambda: 42), None)
    assert result == 42


def test_cluster_with_helpers():
    c = VirtualCluster(num_nodes=4, seed=1)
    assert c.with_nodes(8).num_nodes == 8
    assert c.with_seed(9).seed == 9
    assert c.with_nodes(8).machine is c.machine
