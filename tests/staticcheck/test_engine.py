"""Engine mechanics: globs, discovery, suppressions, output shapes."""

import json

import pytest

from repro.staticcheck import (
    BAD_SUPPRESSION,
    SYNTAX_ERROR,
    UNUSED_SUPPRESSION,
    Finding,
    glob_match,
    run_check,
)
from repro.staticcheck.rules_determinism import WallClockRule

RULES = (WallClockRule(),)


def check_tree(tmp_path, files, **kwargs):
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source, encoding="utf-8")
    return run_check([tmp_path], kwargs.pop("rules", RULES),
                     root=tmp_path, **kwargs)


class TestGlobMatch:
    def test_doublestar_spans_segments(self):
        assert glob_match("src/repro/des/kernel.py", "**/des/**")
        assert glob_match("des/kernel.py", "**/des/**")

    def test_single_star_stays_in_segment(self):
        # fnmatch on the whole string would let '*des/*' match 'modes/x.py'
        assert not glob_match("modes/x.py", "**/des/**")
        assert not glob_match("src/modes/x.py", "*/des/*")

    def test_suffix_pattern(self):
        assert glob_match("src/repro/faults.py", "**/faults.py")
        assert not glob_match("src/repro/faults_test.py", "**/faults.py")


class TestDiscovery:
    def test_directories_walked_and_caches_skipped(self, tmp_path):
        result = check_tree(tmp_path, {
            "pkg/des/a.py": "x = 1\n",
            "pkg/des/__pycache__/a.cpython-311.pyc": "junk",
            "pkg/.hidden/b.py": "x = 1\n",
            "notes.md": "hello\n",
        })
        assert result.files_checked == 2  # a.py + notes.md
        assert result.ok

    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            run_check([tmp_path / "nope"], RULES, root=tmp_path)

    def test_syntax_error_reported_not_raised(self, tmp_path):
        result = check_tree(tmp_path, {"des/bad.py": "def broken(:\n"})
        assert [f.rule_id for f in result.findings] == [SYNTAX_ERROR]


class TestSuppressions:
    VIOLATION = "import time\n\ndef f():\n    return time.time(){marker}\n"

    def test_finding_without_marker(self, tmp_path):
        result = check_tree(
            tmp_path, {"des/a.py": self.VIOLATION.format(marker="")}
        )
        assert [f.rule_id for f in result.findings] == ["REP-D003"]

    def test_marker_absorbs_finding(self, tmp_path):
        source = self.VIOLATION.format(marker="  # repro: noqa REP-D003")
        result = check_tree(tmp_path, {"des/a.py": source})
        assert result.ok

    def test_unused_marker_is_itself_a_finding(self, tmp_path):
        result = check_tree(tmp_path, {
            "des/a.py": "x = 1  # repro: noqa REP-D003\n"
        })
        assert [f.rule_id for f in result.findings] == [UNUSED_SUPPRESSION]

    def test_marker_without_rule_id_is_malformed(self, tmp_path):
        result = check_tree(tmp_path, {"des/a.py": "x = 1  # repro: noqa\n"})
        assert [f.rule_id for f in result.findings] == [BAD_SUPPRESSION]

    def test_marker_with_unknown_rule_id_is_malformed(self, tmp_path):
        result = check_tree(tmp_path, {
            "des/a.py": "x = 1  # repro: noqa REP-Z999\n"
        })
        assert [f.rule_id for f in result.findings] == [BAD_SUPPRESSION]

    def test_marker_inside_string_is_ignored(self, tmp_path):
        # Docstrings and string literals are not comments: no marker, and
        # no unused-suppression noise either.
        result = check_tree(tmp_path, {
            "des/a.py": 'DOC = "example:  # repro: noqa REP-D003"\n'
        })
        assert result.ok


class TestRuleSelection:
    def test_only_prefix_selects_pack(self, tmp_path):
        result = check_tree(
            tmp_path,
            {"des/a.py": "import time\nt = time.time()\n"},
            only=["REP-D"],
        )
        assert not result.ok

    def test_unknown_selector_raises(self, tmp_path):
        with pytest.raises(ValueError, match="no rule matches"):
            check_tree(tmp_path, {"des/a.py": "x = 1\n"}, only=["REP-NOPE"])


class TestOutput:
    def test_json_roundtrip(self, tmp_path):
        result = check_tree(
            tmp_path, {"des/a.py": "import time\nt = time.time()\n"}
        )
        doc = json.loads(result.to_json())
        assert doc["files_checked"] == 1
        assert doc["findings"][0]["rule"] == "REP-D003"
        assert doc["findings"][0]["path"] == "des/a.py"
        assert doc["findings"][0]["line"] == 2

    def test_render_formats(self):
        f = Finding("src/a.py", 7, "REP-D003", "msg")
        assert f.render() == "src/a.py:7: [REP-D003] msg"
        assert f.render_github() == (
            "::error file=src/a.py,line=7,title=REP-D003::msg"
        )

    def test_findings_sorted_by_path_then_line(self, tmp_path):
        result = check_tree(tmp_path, {
            "des/b.py": "import time\nt = time.time()\n",
            "des/a.py": "import time\nt = time.time()\nu = time.time()\n",
        })
        keys = [(f.path, f.line) for f in result.findings]
        assert keys == sorted(keys)
