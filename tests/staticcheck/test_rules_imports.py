"""REP-I: optional-import hygiene rules on fixture modules."""

from repro.staticcheck import DEFAULT_CONFIG, run_check
from repro.staticcheck.rules_imports import IMPORT_RULES

GUARDED = (
    "try:\n"
    "    import numpy as np\n"
    "except ImportError:\n"
    "    np = None\n"
)


def findings(tmp_path, rel, source):
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source, encoding="utf-8")
    result = run_check(
        [tmp_path], IMPORT_RULES, config=DEFAULT_CONFIG, root=tmp_path
    )
    return [f.rule_id for f in result.findings]


class TestOptionalImportGuard:
    def test_unguarded_numpy_fires(self, tmp_path):
        assert findings(tmp_path, "core.py", "import numpy as np\n") == [
            "REP-I001"
        ]

    def test_unguarded_scipy_from_import_fires(self, tmp_path):
        src = "from scipy.sparse import csr_matrix\n"
        assert findings(tmp_path, "core.py", src) == ["REP-I001"]

    def test_guarded_import_is_fine(self, tmp_path):
        assert findings(tmp_path, "core.py", GUARDED) == []

    def test_type_checking_import_is_fine(self, tmp_path):
        src = (
            "from typing import TYPE_CHECKING\n"
            "if TYPE_CHECKING:\n"
            "    import numpy as np\n"
        )
        assert findings(tmp_path, "core.py", src) == []

    def test_soa_module_is_exempt(self, tmp_path):
        src = "import numpy as np\n"
        assert findings(tmp_path, "netmodel/soa.py", src) == []

    def test_stdlib_import_is_fine(self, tmp_path):
        assert findings(tmp_path, "core.py", "import json\n") == []


class TestOptionalGuardShape:
    def test_work_inside_try_fires(self, tmp_path):
        src = (
            "try:\n"
            "    import numpy as np\n"
            "    EYE = np.eye(3)\n"
            "except ImportError:\n"
            "    np = None\n"
        )
        assert findings(tmp_path, "core.py", src) == ["REP-I002"]

    def test_call_in_fallback_fires(self, tmp_path):
        src = (
            "try:\n"
            "    import numpy as np\n"
            "except ImportError:\n"
            "    print('no numpy')\n"
            "    np = None\n"
        )
        assert findings(tmp_path, "core.py", src) == ["REP-I002"]

    def test_canonical_guard_is_fine(self, tmp_path):
        assert findings(tmp_path, "core.py", GUARDED) == []

    def test_non_optional_guard_is_ignored(self, tmp_path):
        # try/except ImportError around a *project* module is out of scope.
        src = (
            "try:\n"
            "    from repro.util import thing\n"
            "    thing()\n"
            "except ImportError:\n"
            "    thing = None\n"
        )
        assert findings(tmp_path, "core.py", src) == []
