"""REP-D: each determinism rule fires on the bad shape, not the good one."""

from repro.staticcheck import DEFAULT_CONFIG, run_check
from repro.staticcheck.rules_determinism import DETERMINISM_RULES


def findings(tmp_path, rel, source):
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source, encoding="utf-8")
    result = run_check(
        [tmp_path], DETERMINISM_RULES, config=DEFAULT_CONFIG, root=tmp_path
    )
    return [f.rule_id for f in result.findings]


class TestGlobalRandom:
    def test_global_draw_fires(self, tmp_path):
        src = "import random\nx = random.random()\n"
        assert findings(tmp_path, "des/a.py", src) == ["REP-D001"]

    def test_global_seed_fires(self, tmp_path):
        src = "import random\nrandom.seed(1)\n"
        assert findings(tmp_path, "des/a.py", src) == ["REP-D001"]

    def test_seeded_instance_draw_is_fine(self, tmp_path):
        src = "import random\nrng = random.Random(7)\nx = rng.random()\n"
        assert findings(tmp_path, "des/a.py", src) == []


class TestUnseededRng:
    def test_bare_random_fires(self, tmp_path):
        src = "import random\nrng = random.Random()\n"
        assert findings(tmp_path, "netmodel/a.py", src) == ["REP-D002"]

    def test_unseeded_default_rng_fires(self, tmp_path):
        src = "import numpy as np\nrng = np.random.default_rng()\n"
        assert "REP-D002" in findings(tmp_path, "apps/a.py", src)

    def test_seeded_rng_is_fine(self, tmp_path):
        src = "import random\nrng = random.Random(seed)\n"
        assert findings(tmp_path, "netmodel/a.py", src) == []


class TestWallClock:
    def test_time_time_fires(self, tmp_path):
        src = "import time\nt0 = time.time()\n"
        assert findings(tmp_path, "cpumodel/a.py", src) == ["REP-D003"]

    def test_datetime_now_fires(self, tmp_path):
        src = "import datetime\nnow = datetime.datetime.now()\n"
        assert findings(tmp_path, "clusterserver/a.py", src) == ["REP-D003"]

    def test_out_of_scope_module_is_fine(self, tmp_path):
        src = "import time\nt0 = time.time()\n"
        assert findings(tmp_path, "analysis/a.py", src) == []


class TestMonotonicTimer:
    def test_perf_counter_fires(self, tmp_path):
        src = "import time\nt0 = time.perf_counter()\n"
        assert findings(tmp_path, "des/kernel.py", src) == ["REP-D004"]

    def test_allowlisted_stats_file_is_fine(self, tmp_path):
        src = "import time\nt0 = time.perf_counter()\n"
        assert findings(tmp_path, "des/epoch.py", src) == []
        assert findings(tmp_path, "clusterserver/sharded.py", src) == []


class TestSetIteration:
    def test_for_over_set_literal_fires(self, tmp_path):
        src = "for x in {1, 2, 3}:\n    print(x)\n"
        assert findings(tmp_path, "faults.py", src) == ["REP-D005"]

    def test_comprehension_over_set_literal_fires(self, tmp_path):
        src = "ys = [f(x) for x in {1, 2}]\n"
        assert findings(tmp_path, "des/a.py", src) == ["REP-D005"]

    def test_sorted_set_is_fine(self, tmp_path):
        src = "for x in sorted({1, 2, 3}):\n    print(x)\n"
        assert findings(tmp_path, "faults.py", src) == []

    def test_membership_test_is_fine(self, tmp_path):
        src = "ok = kind in {'a', 'b'}\n"
        assert findings(tmp_path, "des/a.py", src) == []
