"""REP-C: concurrency rules on fixture modules."""

from repro.staticcheck import DEFAULT_CONFIG, run_check
from repro.staticcheck.rules_concurrency import CONCURRENCY_RULES


def findings(tmp_path, source, rel="svc.py"):
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source, encoding="utf-8")
    result = run_check(
        [tmp_path], CONCURRENCY_RULES, config=DEFAULT_CONFIG, root=tmp_path
    )
    return [f.rule_id for f in result.findings]


class TestAsyncBlocking:
    def test_time_sleep_in_async_fires(self, tmp_path):
        src = (
            "import time\n"
            "async def f():\n"
            "    time.sleep(1)\n"
        )
        assert findings(tmp_path, src) == ["REP-C001"]

    def test_open_in_async_fires(self, tmp_path):
        src = (
            "async def f(path):\n"
            "    with open(path) as h:\n"
            "        return h.read()\n"
        )
        assert findings(tmp_path, src) == ["REP-C001"]

    def test_subprocess_in_async_fires(self, tmp_path):
        src = (
            "import subprocess\n"
            "async def f():\n"
            "    subprocess.run(['ls'])\n"
        )
        assert findings(tmp_path, src) == ["REP-C001"]

    def test_to_thread_is_fine(self, tmp_path):
        src = (
            "import asyncio\n"
            "async def f(path, port):\n"
            "    await asyncio.to_thread(write_port, path, port)\n"
        )
        assert findings(tmp_path, src) == []

    def test_sync_helper_nested_in_async_is_fine(self, tmp_path):
        # A nested *sync* def is not on the event loop when it runs.
        src = (
            "import time\n"
            "async def f():\n"
            "    def helper():\n"
            "        time.sleep(1)\n"
            "    return helper\n"
        )
        assert findings(tmp_path, src) == []

    def test_blocking_in_sync_def_is_fine(self, tmp_path):
        src = "import time\ndef f():\n    time.sleep(1)\n"
        assert findings(tmp_path, src) == []


class TestDispatchUnderLock:
    def test_submit_under_lock_fires(self, tmp_path):
        src = (
            "def f(self, job):\n"
            "    with self._lock:\n"
            "        self._executor.submit(job)\n"
        )
        assert findings(tmp_path, src) == ["REP-C002"]

    def test_put_under_lock_fires(self, tmp_path):
        src = (
            "def f(self, item):\n"
            "    with self.queue_lock:\n"
            "        self._queue.put(item)\n"
        )
        assert findings(tmp_path, src) == ["REP-C002"]

    def test_submit_after_release_is_fine(self, tmp_path):
        src = (
            "def f(self, job):\n"
            "    with self._lock:\n"
            "        ticket = self._admit(job)\n"
            "    self._executor.submit(ticket)\n"
        )
        assert findings(tmp_path, src) == []

    def test_non_lock_context_is_fine(self, tmp_path):
        src = (
            "def f(self, job):\n"
            "    with self._tracer:\n"
            "        self._executor.submit(job)\n"
        )
        assert findings(tmp_path, src) == []

    def test_closure_under_lock_is_fine(self, tmp_path):
        # A def under the lock runs later, not while the lock is held.
        src = (
            "def f(self, job):\n"
            "    with self._lock:\n"
            "        def later():\n"
            "            self._executor.submit(job)\n"
            "        self._pending.append(later)\n"
        )
        assert findings(tmp_path, src) == []


class TestSignalHandlerBody:
    def test_lambda_flag_set_is_fine(self, tmp_path):
        src = (
            "import signal\n"
            "signal.signal(signal.SIGTERM, lambda s, f: stop.set())\n"
        )
        assert findings(tmp_path, src) == []

    def test_lambda_doing_work_fires(self, tmp_path):
        src = (
            "import signal\n"
            "signal.signal(signal.SIGTERM, lambda s, f: pool.shutdown())\n"
        )
        assert findings(tmp_path, src) == ["REP-C003"]

    def test_local_def_raising_is_fine(self, tmp_path):
        src = (
            "import signal\n"
            "def _exit(signum, frame):\n"
            "    raise SystemExit(0)\n"
            "signal.signal(signal.SIGTERM, _exit)\n"
        )
        assert findings(tmp_path, src) == []

    def test_local_def_doing_io_fires(self, tmp_path):
        src = (
            "import signal\n"
            "def _handler(signum, frame):\n"
            "    with open('/tmp/x', 'w') as h:\n"
            "        h.write('bye')\n"
            "signal.signal(signal.SIGTERM, _handler)\n"
        )
        assert findings(tmp_path, src) == ["REP-C003"]

    def test_add_signal_handler_flag_is_fine(self, tmp_path):
        src = (
            "import signal\n"
            "def install(loop, stop):\n"
            "    loop.add_signal_handler(signal.SIGTERM, stop.set)\n"
        )
        assert findings(tmp_path, src) == []
