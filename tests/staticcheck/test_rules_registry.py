"""REP-R: registry/spec/docs cross-consistency rules on fixture trees."""

import dataclasses
import json

import pytest

from repro.scenario.spec import tomllib
from repro.staticcheck.engine import Project, run_check
from repro.staticcheck.rules_registry import (
    ExampleSpecsParseRule,
    RegistryDocsRule,
    SpecDocsAgreementRule,
)


class FakeRegistry:
    def __init__(self, plugins):
        self._plugins = plugins  # {kind: [names]}

    def kinds(self):
        return tuple(self._plugins)

    def names(self, kind):
        return list(self._plugins[kind])


def project_for(tmp_path, files):
    pairs = []
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source, encoding="utf-8")
        pairs.append((path, rel))
    return Project(tmp_path, sorted(pairs))


class TestRegistryDocs:
    def rule(self):
        return RegistryDocsRule(
            registry_factory=lambda: FakeRegistry(
                {"app": ["lu", "stencil"], "policy": ["static"]}
            )
        )

    def test_undocumented_plugin_fires(self, tmp_path):
        project = project_for(tmp_path, {
            "docs/index.md": "The `lu` app and the `static` policy.\n"
        })
        found = list(self.rule().check_project(project))
        assert len(found) == 1
        assert "stencil" in found[0].message
        assert found[0].rule_id == "REP-R001"

    def test_fully_documented_registry_is_fine(self, tmp_path):
        project = project_for(tmp_path, {
            "docs/index.md": "Apps: `lu`, `stencil`. Policies: `static`.\n"
        })
        assert list(self.rule().check_project(project)) == []

    def test_word_boundary_no_substring_credit(self, tmp_path):
        # 'lustrous' must not count as documenting the 'lu' app.
        project = project_for(tmp_path, {
            "docs/index.md": "lustrous stencil static\n"
        })
        found = list(self.rule().check_project(project))
        assert ["lu"] == [f.message.split("'")[1] for f in found]


class TestExampleSpecsParse:
    def test_valid_json_spec_is_fine(self, tmp_path):
        spec = {
            "name": "ok",
            "app": {"name": "lu", "options": {"n": 8, "r": 4}},
            "engine": {"name": "sim", "mode": "noalloc"},
        }
        project = project_for(tmp_path, {
            "examples/ok.json": json.dumps(spec)
        })
        assert list(ExampleSpecsParseRule().check_project(project)) == []

    def test_unknown_key_fires(self, tmp_path):
        spec = {
            "name": "bad",
            "app": {"name": "lu"},
            "engine": {"name": "sim", "mode": "noalloc"},
            "napp": {"name": "typo"},
        }
        project = project_for(tmp_path, {
            "examples/bad.json": json.dumps(spec)
        })
        found = list(ExampleSpecsParseRule().check_project(project))
        assert [f.rule_id for f in found] == ["REP-R002"]
        assert found[0].path == "examples/bad.json"

    @pytest.mark.skipif(tomllib is None, reason="TOML needs Python 3.11+")
    def test_broken_toml_fires(self, tmp_path):
        project = project_for(tmp_path, {
            "examples/bad.toml": 'name = "x"\n[engine]\nmode = 3\n'
        })
        found = list(ExampleSpecsParseRule().check_project(project))
        assert [f.rule_id for f in found] == ["REP-R002"]

    def test_non_example_files_ignored(self, tmp_path):
        project = project_for(tmp_path, {"scenarios/bad.json": "{]"})
        assert list(ExampleSpecsParseRule().check_project(project)) == []


@dataclasses.dataclass
class FakeSection:
    name: str
    budget: int = 0


class TestSpecDocsAgreement:
    def rule(self):
        return SpecDocsAgreementRule(
            section_types={"app": FakeSection}, doc_path="docs/scenarios.md"
        )

    def test_undocumented_field_fires(self, tmp_path):
        project = project_for(tmp_path, {
            "docs/scenarios.md": "The app `name` key picks the plugin.\n"
        })
        found = list(self.rule().check_project(project))
        assert [f.rule_id for f in found] == ["REP-R003"]
        assert "app.budget" in found[0].message

    def test_unknown_documented_section_fires(self, tmp_path):
        project = project_for(tmp_path, {
            "docs/scenarios.md": (
                "Keys: name, budget.\n\n```toml\n[app]\nname = 'x'\n"
                "[warp]\nname = 'y'\n```\n"
            )
        })
        found = list(self.rule().check_project(project))
        assert [f.rule_id for f in found] == ["REP-R003"]
        assert "[warp]" in found[0].message

    def test_headers_outside_toml_fences_ignored(self, tmp_path):
        # A markdown link at line start is not a schema section header.
        project = project_for(tmp_path, {
            "docs/scenarios.md": "Keys: name, budget.\n[warp](warp.md)\n"
        })
        assert list(self.rule().check_project(project)) == []

    def test_agreeing_doc_is_fine(self, tmp_path):
        project = project_for(tmp_path, {
            "docs/scenarios.md": (
                "Keys: name, budget.\n\n```toml\n[app]\nname = 'x'\n```\n"
            )
        })
        assert list(self.rule().check_project(project)) == []


def test_project_rules_run_through_engine(tmp_path):
    """run_check dispatches ProjectRules once over the whole tree."""
    (tmp_path / "docs").mkdir()
    (tmp_path / "docs" / "index.md").write_text("only lu\n", encoding="utf-8")
    rule = RegistryDocsRule(
        registry_factory=lambda: FakeRegistry({"app": ["lu", "ghost"]})
    )
    result = run_check([tmp_path], [rule], root=tmp_path)
    assert [f.rule_id for f in result.findings] == ["REP-R001"]
