"""The tree ships clean: ``repro check`` over the repo finds nothing.

This is the linter's own regression gate — a rule change that starts
flagging existing code, or a code change that violates a contract, fails
here before CI's dedicated static-analysis job sees it.
"""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.staticcheck import DEFAULT_CONFIG, all_rules, run_check

REPO = Path(__file__).resolve().parents[2]
CHECKED = [REPO / p for p in ("src", "benchmarks", "examples")]


def test_repo_tree_is_clean():
    result = run_check(
        [p for p in CHECKED if p.exists()],
        all_rules(),
        config=DEFAULT_CONFIG,
        root=REPO,
    )
    assert result.ok, "\n" + "\n".join(f.render() for f in result.findings)


def test_no_determinism_or_import_suppressions():
    """Shipped contract: zero REP-D/REP-I inline suppressions in src/.

    Scans real comment tokens (docstrings documenting the marker shape
    are not suppressions).
    """
    from repro.staticcheck.engine import _comments

    offenders = []
    for path in (REPO / "src").rglob("*.py"):
        for lineno, text in _comments(path.read_text(encoding="utf-8")):
            if "repro: noqa" in text and (
                "REP-D" in text or "REP-I" in text
            ):
                offenders.append(f"{path}:{lineno}")
    assert not offenders, offenders


class TestCli:
    def test_check_clean_exit_zero(self, capsys, monkeypatch):
        monkeypatch.chdir(REPO)
        assert main(["check", "src/repro/staticcheck"]) == 0
        out = capsys.readouterr().out
        assert "0 finding(s)" in out

    def test_check_findings_exit_one(self, tmp_path, capsys, monkeypatch):
        bad = tmp_path / "des" / "bad.py"
        bad.parent.mkdir()
        bad.write_text("import time\nt = time.time()\n", encoding="utf-8")
        monkeypatch.chdir(tmp_path)
        assert main(["check", "des"]) == 1
        assert "REP-D003" in capsys.readouterr().out

    def test_check_github_annotations(self, tmp_path, capsys, monkeypatch):
        bad = tmp_path / "des" / "bad.py"
        bad.parent.mkdir()
        bad.write_text("import time\nt = time.time()\n", encoding="utf-8")
        monkeypatch.chdir(tmp_path)
        assert main(["check", "--github", "des"]) == 1
        out = capsys.readouterr().out
        assert "::error file=des/bad.py,line=2,title=REP-D003::" in out

    def test_check_json_output(self, tmp_path, capsys, monkeypatch):
        bad = tmp_path / "des" / "bad.py"
        bad.parent.mkdir()
        bad.write_text("import time\nt = time.time()\n", encoding="utf-8")
        monkeypatch.chdir(tmp_path)
        assert main(["check", "--json", "des"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["findings"][0]["rule"] == "REP-D003"

    def test_unknown_rule_selector_exits_two(self, capsys, monkeypatch):
        monkeypatch.chdir(REPO)
        assert main(["check", "--rule", "REP-NOPE", "src"]) == 2
        assert "no rule matches" in capsys.readouterr().err

    def test_missing_path_exits_two(self, capsys, monkeypatch):
        monkeypatch.chdir(REPO)
        assert main(["check", "definitely/not/here"]) == 2

    def test_list_rules_covers_every_pack(self, capsys):
        assert main(["check", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in all_rules():
            assert rule.rule_id in out
        for pack in ("REP-D", "REP-I", "REP-C", "REP-R"):
            assert pack in out

    def test_list_plugins_matches_live_registry(self, capsys):
        from repro.scenario import default_registry

        assert main(["check", "--list-plugins"]) == 0
        out = capsys.readouterr().out
        registry = default_registry()
        for kind in registry.kinds():
            for name in registry.names(kind):
                assert f"{kind}/{name}" in out


@pytest.mark.parametrize("rule", all_rules(), ids=lambda r: r.rule_id)
def test_every_rule_has_id_and_summary(rule):
    assert rule.rule_id.startswith("REP-")
    assert rule.summary
