"""End-to-end provider modes: direct execution, measure-first-n, NOALLOC.

Unit tests cover each provider in isolation; these run whole applications
under each duration source — the Table 1 workflow at test scale.
"""

import pytest

from repro.apps.lu.app import LUApplication
from repro.apps.lu.config import LUConfig
from repro.apps.lu.costs import LUCostModel
from repro.apps.matmul import MatmulApplication, MatmulConfig
from repro.sim.modes import SimulationMode
from repro.sim.platform import PAPER_CLUSTER
from repro.sim.providers import (
    CostModelProvider,
    DirectExecutionProvider,
    HostCalibration,
    MeasureFirstNProvider,
)
from repro.sim.simulator import DPSSimulator


def matmul_app():
    return MatmulApplication(MatmulConfig(n=96, s=24, num_threads=4, num_nodes=2))


@pytest.fixture(scope="module")
def calibration():
    return HostCalibration(PAPER_CLUSTER.machine, reference_size=96)


def test_direct_execution_end_to_end(calibration):
    """Kernels really run, results verify, host time is accounted."""
    provider = DirectExecutionProvider(calibration)
    app = matmul_app()
    result = DPSSimulator(PAPER_CLUSTER, provider).run(app)
    app.verify()
    assert result.predicted_time > 0
    assert provider.host_compute_seconds > 0
    assert provider.evaluations > 0


def test_measure_first_n_end_to_end(calibration):
    """After n samples per kernel key, durations are reused averages —
    and the numerical result still verifies (kernels keep running while
    measuring; reuse kicks in only for repeated keys)."""
    provider = MeasureFirstNProvider(
        DirectExecutionProvider(calibration), n=2, run_kernels_after=True
    )
    app = matmul_app()
    DPSSimulator(PAPER_CLUSTER, provider).run(app)
    app.verify()
    # The matmul repeats identical gemm invocations: reuse must trigger.
    assert provider.reused > 0
    assert provider.measured >= 2


def test_measure_first_n_prediction_close_to_direct(calibration):
    """The hybrid's prediction stays in the direct-execution ballpark
    (the paper's justification for the measure-first-n shortcut).

    Both predictions derive from *wall timings on this host*, so the
    comparison inherits scheduler noise — the band is wide on purpose;
    the deterministic-model equivalences are asserted elsewhere.
    """
    direct_res = DPSSimulator(
        PAPER_CLUSTER, DirectExecutionProvider(calibration)
    ).run(matmul_app())
    hybrid_res = DPSSimulator(
        PAPER_CLUSTER,
        MeasureFirstNProvider(DirectExecutionProvider(calibration), n=3),
    ).run(matmul_app())
    ratio = hybrid_res.predicted_time / direct_res.predicted_time
    assert 0.4 < ratio < 2.5


def test_noalloc_and_pdexec_predict_identically():
    """Payload elision must not change predicted time (Table 1 property)."""
    common = dict(n=648, r=162, num_threads=4, num_nodes=2)
    model = LUCostModel(PAPER_CLUSTER.machine, 162)

    cfg_pd = LUConfig(mode=SimulationMode.PDEXEC, **common)
    t_pd = DPSSimulator(
        PAPER_CLUSTER, CostModelProvider(model, run_kernels=True)
    ).run(LUApplication(cfg_pd)).predicted_time

    cfg_na = LUConfig(mode=SimulationMode.PDEXEC_NOALLOC, **common)
    t_na = DPSSimulator(
        PAPER_CLUSTER, CostModelProvider(model, run_kernels=False)
    ).run(LUApplication(cfg_na)).predicted_time

    assert t_na == pytest.approx(t_pd, rel=1e-12)


def test_noalloc_simulation_uses_less_memory():
    """The NOALLOC memory saving (Table 1's 14 MB column) at test scale."""
    common = dict(n=648, r=162, num_threads=4, num_nodes=2)
    model = LUCostModel(PAPER_CLUSTER.machine, 162)

    def peak(mode, run_kernels):
        cfg = LUConfig(mode=mode, **common)
        sim = DPSSimulator(
            PAPER_CLUSTER,
            CostModelProvider(model, run_kernels=run_kernels),
            measure_memory=True,
        )
        return sim.run(LUApplication(cfg)).simulation_peak_memory

    allocating = peak(SimulationMode.PDEXEC, True)
    elided = peak(SimulationMode.PDEXEC_NOALLOC, False)
    # 648^2 doubles = 3.4 MB of matrix the elided run never allocates.
    assert elided < allocating / 2
