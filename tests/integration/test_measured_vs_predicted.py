"""Integration: the full measured-vs-predicted loop at reduced scale.

These tests run the complete paper workflow — calibrate the network on the
testbed, benchmark the kernels, simulate, measure, compare — on matrices
small enough for the test suite, asserting the paper's qualitative claims.
"""

import pytest

from repro.analysis.prediction import PredictionStudy
from repro.analysis.sweep import SweepCase, calibrated_platform, run_lu_case, sweep
from repro.apps.lu.config import LUConfig
from repro.dps.malleability import AllocationEvent, AllocationSchedule
from repro.dps.trace import TraceLevel
from repro.sim.efficiency import dynamic_efficiency, mean_efficiency
from repro.sim.modes import SimulationMode
from repro.testbed.cluster import VirtualCluster

N = 1296  # half the paper's matrix: fast, same physics
R = 162


def cfg(r=R, nodes=4, threads=None, **kw):
    return LUConfig(
        n=N,
        r=r,
        num_threads=threads or nodes,
        num_nodes=nodes,
        mode=SimulationMode.PDEXEC_NOALLOC,
        **kw,
    )


def test_prediction_accuracy_across_variants():
    cases = [
        SweepCase("basic", cfg()),
        SweepCase("P", cfg(pipelined=True)),
        SweepCase("P+FC", cfg(pipelined=True, flow_control=8)),
        SweepCase("r-coarse", cfg(r=324)),
        SweepCase("r-fine", cfg(r=108)),
    ]
    study = PredictionStudy()
    platform = calibrated_platform(VirtualCluster(num_nodes=4, seed=1))
    sweep(cases, platform=platform, study=study)
    # Every prediction within the paper's overall +-12% envelope.
    assert study.fraction_within(0.12) == 1.0
    assert study.mean_abs_error() < 0.06


def test_pipelining_improves_at_scale():
    basic = run_lu_case(SweepCase("basic", cfg(nodes=8, threads=8)))
    piped = run_lu_case(SweepCase("P", cfg(nodes=8, threads=8, pipelined=True)))
    assert piped.measured < basic.measured
    assert piped.predicted < basic.predicted


def test_dynamic_removal_measured_and_predicted_agree():
    sched = AllocationSchedule(
        events=(AllocationEvent("iter1", "workers", (4, 5, 6, 7)),), name="kill4@1"
    )
    res = run_lu_case(
        SweepCase("kill4@1", cfg(r=162, nodes=8, threads=8, schedule=sched)),
        keep_runs=True,
    )
    assert abs(res.error) < 0.12
    # Both engines record the node deallocation at the same iteration.
    for run in (res.measured_run, res.predicted_run):
        assert len(run.allocation_timeline) == 2
        assert len(run.allocation_timeline[-1][1]) == 4


def test_dynamic_efficiency_decays_and_prediction_tracks_it():
    res = run_lu_case(
        SweepCase("basic", cfg(nodes=8, threads=8)),
        trace_level=TraceLevel.SUMMARY,
        keep_runs=True,
    )
    measured = dynamic_efficiency(res.measured_run)
    predicted = dynamic_efficiency(res.predicted_run)
    assert len(measured) == N // R
    # Efficiency decreases from the first to the last iterations.
    assert measured[0].efficiency > measured[-2].efficiency
    assert predicted[0].efficiency > predicted[-2].efficiency
    # Predicted per-iteration efficiency tracks the measured one early on.
    for m, p in list(zip(measured, predicted))[:4]:
        assert p.efficiency == pytest.approx(m.efficiency, rel=0.25)


def test_fewer_nodes_higher_efficiency_lower_speed():
    small = run_lu_case(SweepCase("4n", cfg(nodes=4)), keep_runs=True)
    large = run_lu_case(SweepCase("8n", cfg(nodes=8, threads=8)), keep_runs=True)
    assert large.measured < small.measured  # more nodes: faster...
    assert mean_efficiency(large.measured_run) < mean_efficiency(
        small.measured_run
    )  # ...but less efficient


def test_measurement_noise_across_seeds_is_small():
    times = [
        run_lu_case(SweepCase("s", cfg(), seed=seed)).measured for seed in (1, 2, 3)
    ]
    spread = (max(times) - min(times)) / min(times)
    assert 0 < spread < 0.05  # noisy, but run-to-run variation is percent-level
