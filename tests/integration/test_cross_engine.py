"""Cross-engine invariants: simulator and testbed run the *same* runtime.

The paper's central design point — "the real and simulated applications
may be run identically" — implies the two engines must produce identical
*logical* executions (same operations, same data objects, same transfer
sizes) and differ only in timing.  These tests pin that property for every
application in the repository.
"""

from collections import Counter

import pytest

from repro.apps.lu.app import LUApplication
from repro.apps.lu.config import LUConfig
from repro.apps.lu.costs import LUCostModel
from repro.apps.matmul import MatmulApplication, MatmulConfig
from repro.apps.sort import SampleSortApplication, SampleSortConfig, SampleSortCostModel
from repro.apps.stencil import StencilApplication, StencilConfig, StencilCostModel
from repro.dps.trace import TraceLevel
from repro.sim.modes import SimulationMode
from repro.sim.platform import PAPER_CLUSTER
from repro.sim.providers import CostModelProvider, MachineCostModel
from repro.sim.simulator import DPSSimulator
from repro.testbed.cluster import VirtualCluster
from repro.testbed.executor import TestbedExecutor


def simulate(app_factory, cost_model):
    sim = DPSSimulator(
        PAPER_CLUSTER,
        CostModelProvider(cost_model, run_kernels=True),
        trace_level=TraceLevel.FULL,
    )
    return sim.run(app_factory()).run


def measure(app_factory, num_nodes, seed=3):
    executor = TestbedExecutor(
        VirtualCluster(num_nodes=num_nodes, seed=seed),
        trace_level=TraceLevel.FULL,
    )
    return executor.run(app_factory()).run


CASES = {
    "lu-basic": (
        lambda: LUApplication(LUConfig(n=648, r=162, num_threads=4,
                                       num_nodes=2, mode=SimulationMode.PDEXEC)),
        lambda: LUCostModel(PAPER_CLUSTER.machine, 162),
        2,
    ),
    "lu-pipelined-fc": (
        lambda: LUApplication(LUConfig(n=648, r=162, num_threads=4, num_nodes=2,
                                       pipelined=True, flow_control=4,
                                       mode=SimulationMode.PDEXEC)),
        lambda: LUCostModel(PAPER_CLUSTER.machine, 162),
        2,
    ),
    "stencil-pipelined": (
        lambda: StencilApplication(StencilConfig(n=48, stripes=4, iterations=3,
                                                 num_threads=4, num_nodes=2)),
        lambda: StencilCostModel(PAPER_CLUSTER.machine, 12, 48),
        2,
    ),
    "stencil-barrier": (
        lambda: StencilApplication(StencilConfig(n=48, stripes=4, iterations=3,
                                                 num_threads=4, num_nodes=2,
                                                 barrier=True)),
        lambda: StencilCostModel(PAPER_CLUSTER.machine, 12, 48),
        2,
    ),
    "samplesort": (
        lambda: SampleSortApplication(SampleSortConfig(m=3000, num_threads=4,
                                                       num_nodes=2)),
        lambda: SampleSortCostModel(PAPER_CLUSTER.machine, 750, 4),
        2,
    ),
    "matmul": (
        lambda: MatmulApplication(MatmulConfig(n=96, s=24, num_threads=4,
                                               num_nodes=2)),
        lambda: MachineCostModel(PAPER_CLUSTER.machine),
        2,
    ),
}


@pytest.mark.parametrize("name", sorted(CASES))
def test_same_logical_execution_on_both_engines(name):
    app_factory, model_factory, nodes = CASES[name]
    sim_run = simulate(app_factory, model_factory())
    tb_run = measure(app_factory, nodes)

    # Same atomic steps (multiset of (vertex, kernel) pairs).
    sim_steps = Counter((s.vertex, s.kernel) for s in sim_run.trace.steps)
    tb_steps = Counter((s.vertex, s.kernel) for s in tb_run.trace.steps)
    assert sim_steps == tb_steps

    # Same transfers (multiset of (kind, src, dst, size)).
    sim_tr = Counter(
        (t.kind, t.src_node, t.dst_node, round(t.size, 6))
        for t in sim_run.trace.transfers
    )
    tb_tr = Counter(
        (t.kind, t.src_node, t.dst_node, round(t.size, 6))
        for t in tb_run.trace.transfers
    )
    assert sim_tr == tb_tr

    # Same phase labels in the same order.
    assert [p[1] for p in sim_run.phases] == [p[1] for p in tb_run.phases]

    # Same local-delivery count.
    assert sim_run.trace.local_deliveries == tb_run.trace.local_deliveries


@pytest.mark.parametrize("name", sorted(CASES))
def test_simulator_is_deterministic(name):
    app_factory, model_factory, _ = CASES[name]
    model = model_factory()
    first = simulate(app_factory, model)
    second = simulate(app_factory, model)
    assert first.makespan == second.makespan
    assert first.events_executed == second.events_executed


def test_testbed_seed_controls_noise():
    app_factory, _, nodes = CASES["lu-basic"]
    same_a = measure(app_factory, nodes, seed=5).makespan
    same_b = measure(app_factory, nodes, seed=5).makespan
    other = measure(app_factory, nodes, seed=6).makespan
    assert same_a == same_b
    assert other != same_a


def test_removal_identical_allocation_timelines():
    """Dynamic allocation decisions are behavioural, not timing: both
    engines must shrink to the same node sets in the same order."""
    from repro.dps.malleability import AllocationEvent, AllocationSchedule

    sched = AllocationSchedule(
        events=(AllocationEvent("iter2", "workers", (2, 3)),), name="kill"
    )
    cfg = StencilConfig(n=48, stripes=8, iterations=4, num_threads=4,
                        num_nodes=4, barrier=True, schedule=sched)
    model = StencilCostModel(PAPER_CLUSTER.machine, cfg.rows, cfg.n)
    sim_run = simulate(lambda: StencilApplication(cfg), model)
    tb_run = measure(lambda: StencilApplication(cfg), 4)
    sim_allocs = [nodes for _, nodes in sim_run.allocation_timeline]
    tb_allocs = [nodes for _, nodes in tb_run.allocation_timeline]
    assert sim_allocs == tb_allocs
