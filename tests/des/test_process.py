"""Generator processes: timeouts, signals, AllOf."""

import pytest

from repro.des.kernel import Kernel
from repro.des.process import AllOf, Process, Signal, Timeout, WaitSignal, spawn
from repro.errors import SimulationError


def test_timeout_advances_clock(kernel):
    marks = []

    def proc():
        yield Timeout(1.5)
        marks.append(kernel.now)
        yield Timeout(0.5)
        marks.append(kernel.now)

    spawn(kernel, proc())
    kernel.run()
    assert marks == [1.5, 2.0]


def test_negative_timeout_rejected():
    with pytest.raises(SimulationError):
        Timeout(-1.0)


def test_process_result(kernel):
    def proc():
        yield Timeout(1.0)
        return 42

    p = spawn(kernel, proc())
    kernel.run()
    assert p.finished
    assert p.result == 42


def test_signal_wakes_waiters_with_value(kernel):
    sig = Signal("data")
    got = []

    def waiter():
        value = yield WaitSignal(sig)
        got.append((kernel.now, value))

    spawn(kernel, waiter())
    spawn(kernel, waiter())
    kernel.schedule(2.0, sig.fire, "hello")
    kernel.run()
    assert got == [(2.0, "hello"), (2.0, "hello")]


def test_signal_fire_twice_rejected():
    sig = Signal()
    sig.fire()
    with pytest.raises(SimulationError):
        sig.fire()


def test_wait_on_fired_signal_resumes_immediately(kernel):
    sig = Signal()
    sig.fire("v")
    got = []

    def waiter():
        value = yield WaitSignal(sig)
        got.append(value)

    spawn(kernel, waiter())
    kernel.run()
    assert got == ["v"]


def test_allof_waits_for_all_children(kernel):
    sig = Signal()
    done_at = []

    def proc():
        results = yield AllOf([Timeout(1.0), WaitSignal(sig), Timeout(3.0)])
        done_at.append((kernel.now, results[1]))

    spawn(kernel, proc())
    kernel.schedule(2.0, sig.fire, "sig-value")
    kernel.run()
    assert done_at == [(3.0, "sig-value")]


def test_allof_requires_children():
    with pytest.raises(SimulationError):
        AllOf([])


def test_process_cannot_start_twice(kernel):
    def proc():
        yield Timeout(1.0)

    p = Process(kernel, proc())
    p.start()
    with pytest.raises(SimulationError):
        p.start()


def test_unknown_descriptor_raises(kernel):
    def proc():
        yield "not-a-descriptor"

    spawn(kernel, proc())
    with pytest.raises(SimulationError, match="unknown descriptor"):
        kernel.run()
