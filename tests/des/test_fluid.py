"""Fluid pools: progress integration, reallocation, conservation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.des.fluid import FluidPool, FluidTask
from repro.des.kernel import Kernel
from repro.errors import SimulationError


def equal_share(capacity: float):
    """Allocator: split ``capacity`` evenly among active tasks."""

    def allocate(tasks):
        share = capacity / len(tasks)
        for t in tasks:
            t.rate = share

    return allocate


def test_single_task_duration(kernel):
    pool = FluidPool(kernel, equal_share(2.0))
    done = []
    pool.add(FluidTask(10.0, lambda t: done.append(kernel.now)))
    kernel.run()
    assert done == [pytest.approx(5.0)]


def test_two_tasks_share_capacity(kernel):
    pool = FluidPool(kernel, equal_share(1.0))
    done = {}
    pool.add(FluidTask(1.0, lambda t: done.setdefault("a", kernel.now)))
    pool.add(FluidTask(3.0, lambda t: done.setdefault("b", kernel.now)))
    kernel.run()
    # Both run at 0.5 until a finishes at t=2; then b alone: 2 remaining at 1.0.
    assert done["a"] == pytest.approx(2.0)
    assert done["b"] == pytest.approx(4.0)


def test_late_arrival_slows_existing_task(kernel):
    pool = FluidPool(kernel, equal_share(1.0))
    done = {}
    pool.add(FluidTask(2.0, lambda t: done.setdefault("first", kernel.now)))
    kernel.schedule(1.0, lambda: pool.add(FluidTask(0.5, lambda t: done.setdefault("second", kernel.now))))
    kernel.run()
    # first: 1 unit alone by t=1; shares 0.5/s until second ends at t=2
    # (0.5 more done), then finishes its last 0.5 alone at t=2.5.
    assert done["second"] == pytest.approx(2.0)
    assert done["first"] == pytest.approx(2.5)


def test_zero_work_completes_immediately(kernel):
    pool = FluidPool(kernel, equal_share(1.0))
    done = []
    pool.add(FluidTask(0.0, lambda t: done.append(kernel.now)))
    assert done == [0.0]
    assert len(pool) == 0


def test_starved_tasks_wait_for_membership_change(kernel):
    def starve_b(tasks):
        for t in tasks:
            t.rate = 1.0 if t.tag == "a" else 0.0

    pool = FluidPool(kernel, starve_b)
    done = {}
    pool.add(FluidTask(1.0, lambda t: done.setdefault("a", kernel.now), tag="a"))
    pool.add(FluidTask(1.0, lambda t: done.setdefault("b", kernel.now), tag="b"))
    kernel.run()
    # b starves until a completes; then b is alone but still tag "b"...
    # allocator gives rate 0 forever -> b never completes, pool retains it.
    assert done == {"a": pytest.approx(1.0)}
    assert len(pool) == 1


def test_remove_withdraws_task(kernel):
    pool = FluidPool(kernel, equal_share(1.0))
    done = []
    task = FluidTask(10.0, lambda t: done.append("late"))
    pool.add(task)
    pool.add(FluidTask(1.0, lambda t: done.append("quick")))
    kernel.schedule(0.5, lambda: pool.remove(task))
    kernel.run()
    assert done == ["quick"]
    assert not task.active


def test_remove_unknown_task_raises(kernel):
    pool = FluidPool(kernel, equal_share(1.0))
    with pytest.raises(SimulationError):
        pool.remove(FluidTask(1.0, lambda t: None))


def test_negative_rate_rejected(kernel):
    def bad(tasks):
        for t in tasks:
            t.rate = -1.0

    pool = FluidPool(kernel, bad)
    with pytest.raises(SimulationError):
        pool.add(FluidTask(1.0, lambda t: None))


def test_double_admission_rejected(kernel):
    pool = FluidPool(kernel, equal_share(1.0))
    task = FluidTask(5.0, lambda t: None)
    pool.add(task)
    with pytest.raises(SimulationError):
        pool.add(task)


def test_immediate_completion_credits_completed_work(kernel):
    """Regression: tasks drained on admission (tiny-but-positive work below
    the completion tolerance) never credited ``completed_work``, breaking
    the conservation invariant the class docstring promises."""
    pool = FluidPool(kernel, equal_share(1.0))
    tiny = 1e-13  # below the absolute completion tolerance
    done = []
    pool.add(FluidTask(tiny, lambda t: done.append(t)))
    assert done and done[0].remaining == 0.0
    assert pool.completed_tasks == 1
    assert pool.completed_work == pytest.approx(tiny)
    # Zero-work tasks stay consistent too (credit zero, count one).
    pool.add(FluidTask(0.0, lambda t: None))
    assert pool.completed_tasks == 2
    assert pool.completed_work == pytest.approx(tiny)


def test_conservation_with_immediate_completions(kernel):
    """completed_work must equal the sum of all admitted work, whether
    tasks drained through the pool or completed on admission."""
    pool = FluidPool(kernel, equal_share(1.0))
    works = [1.0, 1e-13, 2.5, 0.0, 3e-13]
    for w in works:
        pool.add(FluidTask(w, lambda t: None))
    kernel.run()
    assert pool.completed_tasks == len(works)
    assert pool.completed_work == pytest.approx(sum(works))


def test_completion_accounting(kernel):
    pool = FluidPool(kernel, equal_share(1.0))
    for w in (1.0, 2.0, 3.0):
        pool.add(FluidTask(w, lambda t: None))
    kernel.run()
    assert pool.completed_tasks == 3
    assert pool.completed_work == pytest.approx(6.0)


@settings(deadline=None, max_examples=50)
@given(
    st.lists(st.floats(min_value=0.01, max_value=100.0), min_size=1, max_size=20),
    st.floats(min_value=0.1, max_value=10.0),
)
def test_work_conservation_under_equal_share(works, capacity):
    """Total completion time x capacity == total work (conservation)."""
    kernel = Kernel()
    pool = FluidPool(kernel, equal_share(capacity))
    for w in works:
        pool.add(FluidTask(w, lambda t: None))
    end = kernel.run()
    # With all tasks admitted at t=0 and full capacity always in use,
    # the pool drains exactly sum(works)/capacity seconds later.
    assert end == pytest.approx(sum(works) / capacity, rel=1e-6)
    assert pool.completed_tasks == len(works)


@settings(deadline=None, max_examples=30)
@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=5.0),  # arrival
            st.floats(min_value=0.01, max_value=20.0),  # work
        ),
        min_size=1,
        max_size=15,
    )
)
def test_completion_order_and_times_monotonic(arrivals):
    """Later-arriving work never completes before the clock reaches it."""
    kernel = Kernel()
    pool = FluidPool(kernel, equal_share(1.0))
    finished = []

    def admit(work):
        pool.add(FluidTask(work, lambda t: finished.append(kernel.now)))

    for arrival, work in arrivals:
        kernel.schedule(arrival, admit, work)
    kernel.run()
    assert len(finished) == len(arrivals)
    assert finished == sorted(finished)
    total_work = sum(w for _, w in arrivals)
    assert kernel.now <= max(a for a, _ in arrivals) + total_work + 1e-6


def test_zeno_freeze_guard():
    """Tiny residuals at large timestamps must not freeze the clock.

    Regression: a task completing within less than one ulp of ``now``
    produced a horizon event that fired without advancing time and
    rescheduled itself forever (observed on zero-latency networks after
    ~20 simulated seconds).
    """
    kernel = Kernel()

    def equal_share(tasks):
        for t in tasks:
            t.rate = 1e8 / len(tasks)

    pool = FluidPool(kernel, equal_share)
    # Jump the clock far ahead so float resolution is coarse.
    kernel.schedule(1e6, lambda: None)
    kernel.run()
    done = []
    # A large task plus a sliver: the sliver's completion horizon is far
    # below the float64 resolution of now=1e6.
    pool.add(FluidTask(1e9, lambda t: done.append("big")))
    pool.add(FluidTask(1e-7, lambda t: done.append("sliver")))
    kernel.run(until=kernel.now + 100.0)
    assert "sliver" in done
    assert "big" in done


def test_zeno_guard_preserves_macroscopic_timing():
    """The ulp padding must not perturb normal completion times."""
    kernel = Kernel()

    def fixed_rate(tasks):
        for t in tasks:
            t.rate = 1e6

    pool = FluidPool(kernel, fixed_rate)
    finish = []
    pool.add(FluidTask(5e6, lambda t: finish.append(kernel.now)))
    kernel.run()
    assert finish[0] == pytest.approx(5.0, rel=1e-9)
