"""Epoch controller: bounds, barriers, stop conditions, accounting."""

from __future__ import annotations

from typing import Optional

from repro.des.epoch import EpochController, ShardHandle
from repro.des.kernel import Kernel


class _KernelShard(ShardHandle):
    """Minimal shard: a kernel plus a log of executed event labels."""

    def __init__(self, events: list[tuple[float, str]]) -> None:
        self.kernel = Kernel()
        self.fired: list[str] = []
        self._pending: list[str] = []
        for time, label in events:
            self.kernel.schedule_at(time, self._note, label)

    def _note(self, label: str) -> None:
        self._pending.append(label)

    def next_event_time(self) -> Optional[float]:
        return self.kernel.next_event_time()

    def begin_advance(self, until: float) -> None:
        self.kernel.run(until=until)

    def finish_advance(self):
        report, self._pending = self._pending, []
        self.fired.extend(report)
        return report


def test_epochs_follow_global_event_order():
    a = _KernelShard([(1.0, "a1"), (4.0, "a4")])
    b = _KernelShard([(2.0, "b2"), (3.0, "b3")])
    barriers = []
    controller = EpochController([a, b])
    controller.run(lambda now, reports: barriers.append((now, reports)) or True)
    assert [t for t, _ in barriers] == [1.0, 2.0, 3.0, 4.0]
    # Every shard's clock reaches every bound, firing only its own events.
    assert barriers[0][1] == [["a1"], []]
    assert barriers[1][1] == [[], ["b2"]]
    assert a.kernel.now == 4.0 and b.kernel.now == 4.0
    assert controller.stats.epochs == 4


def test_simultaneous_cross_shard_events_share_a_barrier():
    a = _KernelShard([(2.0, "a")])
    b = _KernelShard([(2.0, "b")])
    barriers = []
    EpochController([a, b]).run(
        lambda now, reports: barriers.append((now, reports)) or True
    )
    assert barriers == [(2.0, [["a"], ["b"]])]


def test_barrier_can_stop_early():
    shard = _KernelShard([(1.0, "x"), (2.0, "y")])
    seen = []
    EpochController([shard]).run(lambda now, reports: seen.append(now) and False)
    assert seen == [1.0]
    assert shard.kernel.pending_events == 1  # y never ran


def test_idle_shards_end_the_run():
    controller = EpochController([_KernelShard([])])
    calls = []
    controller.run(lambda now, reports: calls.append(now) or True)
    assert calls == []
    assert controller.stats.epochs == 0


def test_barrier_scheduled_events_extend_the_run():
    shard = _KernelShard([(1.0, "first")])
    extended = []

    def on_barrier(now, reports):
        if now == 1.0:
            shard.kernel.schedule_at(5.0, shard._note, "late")
        extended.append(now)
        return True

    EpochController([shard]).run(on_barrier)
    assert extended == [1.0, 5.0]
    assert shard.fired == ["first", "late"]
