"""The completion-horizon heap: stale entries, Zeno guards, scan equivalence.

The pool no longer scans tasks for the next completion; it maintains a lazy
min-heap of completion times, invalidating entries per dirty task when an
allocator changes a rate.  These tests pin the properties the refactor must
preserve:

* stale entries (rate changes, removals) never surface as completions;
* both Zeno guards survive: the min-step pad keeps the clock advancing, and
  sub-resolution residuals complete instead of freezing;
* the heap-derived horizon equals the linear-scan horizon after every
  operation of randomized add/remove/rate-change traces.
"""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.des.fluid import FluidPool, FluidTask
from repro.des.kernel import Kernel
from repro.errors import SimulationError


def equal_share(capacity: float):
    def allocate(tasks):
        share = capacity / len(tasks)
        for t in tasks:
            t.rate = share

    return allocate


def linear_scan_horizon(pool: FluidPool) -> float:
    """The pre-heap O(n) computation: now + min(remaining / rate)."""
    now = pool.kernel.now
    horizon = math.inf
    for task in pool.tasks:
        if task.rate > 0.0:
            horizon = min(horizon, now + task.remaining / task.rate)
    return horizon


# ---------------------------------------------------------------- staleness


def test_removed_task_entry_is_stale(kernel):
    """Removing the earliest-finishing task must advance the horizon to the
    next task, not fire a completion for the removed one."""
    pool = FluidPool(kernel, equal_share(2.0))
    done = []
    quick = FluidTask(1.0, lambda t: done.append("quick"))
    slow = FluidTask(9.0, lambda t: done.append("slow"))
    pool.add(quick)
    pool.add(slow)
    assert pool.peek_horizon() == pytest.approx(1.0)
    pool.remove(quick)
    # quick's entry is invalidated; slow alone at rate 2 → 4.5s.
    assert pool.peek_horizon() == pytest.approx(4.5)
    kernel.run()
    assert done == ["slow"]
    assert pool.horizon.stale_discards >= 1


def test_rate_change_invalidates_entry(kernel):
    """A membership change that re-rates a task must retire the entry
    computed under the old rate."""
    pool = FluidPool(kernel, equal_share(2.0))
    done = []
    first = FluidTask(2.0, lambda t: done.append("first"))
    pool.add(first)  # alone at rate 2 → finish at t=1
    assert pool.peek_horizon() == pytest.approx(1.0)
    pool.add(FluidTask(2.0, lambda t: done.append("second")))
    # Both at rate 1 → both finish at t=2; the t=1 entry is stale.
    assert pool.peek_horizon() == pytest.approx(2.0)
    kernel.run()
    assert done == ["first", "second"]
    assert kernel.now == pytest.approx(2.0)


def test_zero_rate_task_has_no_entry(kernel):
    def starve_b(tasks):
        for t in tasks:
            t.rate = 1.0 if t.tag == "a" else 0.0

    pool = FluidPool(kernel, starve_b)
    pool.add(FluidTask(1.0, lambda t: None, tag="a"))
    pool.add(FluidTask(1.0, lambda t: None, tag="b"))
    kernel.run()
    # b starves forever: after a completes the heap holds no live entry.
    assert len(pool) == 1
    assert pool.peek_horizon() == math.inf


def test_readmission_with_same_rate_completes(kernel):
    """Regression: a task removed and later re-admitted still carries its
    old rate; when the allocator assigns that same value, the pool must
    index a fresh heap entry — the equal-value short-circuit must not leave
    the re-admitted task unindexed (stuck forever)."""
    pool = FluidPool(kernel, equal_share(1.0))
    done = []
    task = FluidTask(2.0, lambda t: done.append(kernel.now))
    pool.add(task)  # alone → rate 1.0
    kernel.schedule(0.5, lambda: pool.remove(task))
    kernel.run()
    assert done == [] and task.rate == 1.0
    pool.add(task)  # equal_share assigns 1.0 again — same as the stale rate
    kernel.run()
    assert len(done) == 1
    assert len(pool) == 0


def test_direct_remaining_assignment_invalidates_entry(kernel):
    """Writing ``task.remaining`` directly must retire the old completion
    time once rates are next assigned."""
    pool = FluidPool(kernel, equal_share(1.0))
    done = []
    task = FluidTask(1.0, lambda t: done.append(kernel.now))
    pool.add(task)

    def enlarge():
        task.remaining = 5.0
        pool.reallocate()

    kernel.schedule(0.5, enlarge)
    kernel.run()
    assert done == [pytest.approx(5.5)]


# -------------------------------------------------------------- Zeno guards


def test_zeno_min_step_pad_survives_heap():
    """Regression shape of the original Zeno freeze: a sliver task at a
    large timestamp must complete rather than respawn zero-dt events."""
    kernel = Kernel()
    pool = FluidPool(kernel, equal_share(1e8))
    kernel.schedule(1e6, lambda: None)
    kernel.run()
    done = []
    pool.add(FluidTask(1e9, lambda t: done.append("big")))
    pool.add(FluidTask(1e-7, lambda t: done.append("sliver")))
    kernel.run(until=kernel.now + 100.0)
    assert "sliver" in done and "big" in done


def test_zeno_sub_resolution_residual_completes(kernel):
    """A task whose horizon is below the resolution of simulated time must
    complete via the second guard, not loop."""
    kernel.schedule(1e8, lambda: None)
    kernel.run()
    pool = FluidPool(kernel, equal_share(1.0))
    done = []
    # Horizon = 1e-12 s at now = 1e8: far below one ulp of now.
    pool.add(FluidTask(1e-12, lambda t: done.append(kernel.now)))
    events_before = kernel.events_executed
    kernel.run(until=kernel.now + 1.0)
    assert len(done) == 1
    # One horizon event, not an unbounded cascade.
    assert kernel.events_executed - events_before <= 3


def test_heap_events_bounded_under_churn():
    """The event count must stay linear in completions (no Zeno respawns
    hiding in the re-push path)."""
    kernel = Kernel()
    pool = FluidPool(kernel, equal_share(3.0))
    for i in range(50):
        kernel.schedule(i * 0.1, pool.add, FluidTask(1.0 + i % 7, lambda t: None))
    kernel.run()
    assert pool.completed_tasks == 50
    # Each event completes at least one task or reschedules once after a
    # drift re-push; 4x completions is a generous linear bound.
    assert pool.horizon.events <= 200


# ----------------------------------------------------- heap == linear scan


trace_strategy = st.lists(
    st.tuples(
        st.sampled_from(["add", "remove", "rerate"]),
        st.floats(min_value=0.01, max_value=50.0),   # work (add)
        st.floats(min_value=0.05, max_value=3.0),    # time step
        st.integers(min_value=0, max_value=10**6),   # selector
    ),
    min_size=1,
    max_size=40,
)


@settings(deadline=None, max_examples=60)
@given(trace_strategy)
def test_heap_horizon_equals_linear_scan(trace):
    """Property: after every add/remove/rate-change of a randomized trace,
    the heap-derived horizon equals the pre-heap linear scan."""
    kernel = Kernel()
    # Deterministic but irregular rates: capacity split by position weights.
    def weighted(tasks):
        total = sum(1.0 + (i % 5) for i in range(len(tasks)))
        for i, t in enumerate(tasks):
            t.rate = 4.0 * (1.0 + (i % 5)) / total

    pool = FluidPool(kernel, weighted)
    live: list[FluidTask] = []

    def check():
        expected = linear_scan_horizon(pool)
        got = pool.peek_horizon()
        if math.isinf(expected):
            assert math.isinf(got)
        else:
            assert got == pytest.approx(expected, rel=1e-12, abs=1e-12)

    for op, work, dt, selector in trace:
        kernel.run(until=kernel.now + dt)
        live[:] = [t for t in live if t.pool is pool]
        if op == "add" or not live:
            task = FluidTask(work, lambda t: None)
            pool.add(task)
            live.append(task)
        elif op == "remove":
            pool.remove(live.pop(selector % len(live)))
        else:  # rerate: force a full reallocation at the current instant
            pool.reallocate()
        check()
    kernel.run()
    live[:] = [t for t in live if t.pool is pool]
    assert len(pool) == len(live)


@settings(deadline=None, max_examples=40)
@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=5.0),
            st.floats(min_value=0.01, max_value=20.0),
        ),
        min_size=1,
        max_size=15,
    )
)
def test_heap_pool_conserves_work(arrivals):
    """Conservation under equal share is unchanged by the horizon heap."""
    kernel = Kernel()
    pool = FluidPool(kernel, equal_share(1.0))
    for arrival, work in arrivals:
        kernel.schedule(arrival, pool.add, FluidTask(work, lambda t: None))
    kernel.run()
    assert pool.completed_tasks == len(arrivals)
    assert pool.completed_work == pytest.approx(sum(w for _, w in arrivals))


def test_heap_does_less_work_than_scan_at_scale():
    """With an incremental allocator the real heap work per event must sit
    far below the hypothetical linear-scan cost."""
    from repro.netmodel.params import NetworkParams
    from repro.netmodel.star import EqualShareStarNetwork

    kernel = Kernel()
    net = EqualShareStarNetwork(kernel, NetworkParams(latency=0.0, bandwidth=1e6))
    rng = random.Random(2)
    n = 128
    spawned = 0

    def submit():
        nonlocal spawned
        spawned += 1
        src = rng.randrange(n)
        dst = (src + 1 + rng.randrange(n - 1)) % n
        net.submit(src, dst, rng.uniform(0.5e6, 1.5e6), done)

    def done(_tr):
        if spawned < 3 * n:
            submit()

    for _ in range(n):
        submit()
    kernel.run()
    horizon = net.horizon_stats
    assert horizon.scan_cost > 4 * horizon.heap_ops


def test_heap_compacts_when_stale_fraction_exceeds_three_quarters(kernel):
    """Repeated whole-pool re-rates within one burst pile up stale entries
    without ever popping them; once they exceed 3/4 of the heap the pool
    must rebuild it (counted in ``HorizonStats.compactions``) instead of
    holding its high-water mark until the next completion."""
    calls = [0]

    def jittered(tasks):
        # A slightly different rate every call so each re-rate invalidates
        # every live entry and pushes a fresh one.
        calls[0] += 1
        share = 1.0 / len(tasks) * (1.0 + 0.001 * calls[0])
        for t in tasks:
            t.rate = share

    pool = FluidPool(kernel, jittered)
    tasks = [FluidTask(1e6, lambda t: None) for _ in range(40)]
    for task in tasks:
        pool.add(task)
    assert pool.horizon.compactions == 0
    for _ in range(8):
        pool.reallocate()
    assert pool.horizon.compactions >= 1
    # After compaction the heap holds at most one live entry per task plus
    # the sub-threshold stale remainder.
    assert len(pool._heap) <= 4 * len(pool)
    # The horizon index is still exact.
    assert pool.peek_horizon() == pytest.approx(linear_scan_horizon(pool))
    # And completions still fire correctly afterwards.
    done = []
    quick = FluidTask(1e-6, lambda t: done.append(kernel.now))
    pool.add(quick)
    kernel.run(until=kernel.now + 1.0)
    assert len(done) == 1


def test_small_heaps_are_never_compacted(kernel):
    """Below the entry floor, churn must not trigger rebuilds — stale
    entries there are cheaper to discard lazily."""
    pool = FluidPool(kernel, equal_share(1.0))
    task = FluidTask(1e6, lambda t: None)
    pool.add(task)
    for _ in range(50):
        pool.reallocate()
    assert pool.horizon.compactions == 0


def test_externally_zeroed_rate_starves_instead_of_crashing(kernel):
    """Regression: a live heap entry surfacing for a task whose rate was
    zeroed via the public setter (without a reallocate) must be discarded
    as stale — the pre-heap scan skipped zero rates; it must not divide by
    zero or complete the task."""
    pool = FluidPool(kernel, equal_share(1.0))
    done = []
    task = FluidTask(2.0, lambda t: done.append(kernel.now))
    pool.add(task)  # entry at finish=2.0
    kernel.schedule(0.5, lambda: setattr(task, "rate", 0.0))
    kernel.run()
    assert done == []
    assert len(pool) == 1
    assert task.remaining == pytest.approx(1.5)
