"""Kernel: clock semantics, run loop, tracing."""

import pytest

from repro.des.kernel import Kernel
from repro.errors import SimulationError


def test_clock_starts_at_zero(kernel):
    assert kernel.now == 0.0
    assert kernel.pending_events == 0


def test_schedule_and_run(kernel):
    seen = []
    kernel.schedule(1.0, seen.append, "a")
    kernel.schedule(0.5, seen.append, "b")
    end = kernel.run()
    assert seen == ["b", "a"]
    assert end == 1.0
    assert kernel.events_executed == 2


def test_schedule_negative_delay_rejected(kernel):
    with pytest.raises(SimulationError):
        kernel.schedule(-0.1, lambda: None)


def test_schedule_at_past_rejected(kernel):
    kernel.schedule(1.0, lambda: None)
    kernel.run()
    with pytest.raises(SimulationError):
        kernel.schedule_at(0.5, lambda: None)


def test_run_until_advances_clock_exactly(kernel):
    kernel.schedule(10.0, lambda: None)
    end = kernel.run(until=3.0)
    assert end == 3.0
    assert kernel.pending_events == 1
    # resuming processes the remaining event
    assert kernel.run() == 10.0


def test_run_until_beyond_queue_advances_to_until(kernel):
    kernel.schedule(1.0, lambda: None)
    assert kernel.run(until=5.0) == 5.0


def test_events_scheduled_during_run_execute(kernel):
    seen = []

    def first():
        kernel.schedule(1.0, seen.append, "second")

    kernel.schedule(1.0, first)
    kernel.run()
    assert seen == ["second"]
    assert kernel.now == 2.0


def test_cancel_prevents_execution(kernel):
    seen = []
    handle = kernel.schedule(1.0, seen.append, "x")
    kernel.cancel(handle)
    kernel.run()
    assert seen == []


def test_max_events_budget(kernel):
    for i in range(5):
        kernel.schedule(float(i + 1), lambda: None)
    kernel.run(max_events=2)
    assert kernel.events_executed == 2
    assert kernel.pending_events == 3


def test_trace_hook_sees_every_event(kernel):
    trace = []
    kernel.trace_hook = lambda t, cb, args: trace.append(t)
    kernel.schedule(1.0, lambda: None)
    kernel.schedule(2.0, lambda: None)
    kernel.run()
    assert trace == [1.0, 2.0]


def test_reset_rewinds(kernel):
    kernel.schedule(1.0, lambda: None)
    kernel.run()
    kernel.reset()
    assert kernel.now == 0.0
    assert kernel.pending_events == 0


def test_run_not_reentrant(kernel):
    def reenter():
        with pytest.raises(SimulationError):
            kernel.run()

    kernel.schedule(1.0, reenter)
    kernel.run()


# ------------------------------------------------- single-pop run loop path
def test_run_counts_elided_peeks(kernel):
    """Each event dispatched by run() saves the peek the pre-restructure
    loop paid before its pop."""
    for i in range(4):
        kernel.schedule(float(i + 1), lambda: None)
    kernel.run()
    assert kernel.events_executed == 4
    assert kernel.peeks_elided == 4


def test_run_until_stops_without_popping_future_events(kernel):
    seen = []
    kernel.schedule(1.0, seen.append, "due")
    kernel.schedule(5.0, seen.append, "late")
    assert kernel.run(until=2.0) == 2.0
    assert seen == ["due"]
    assert kernel.pending_events == 1
    # The future event survived the fused pop-with-limit untouched.
    assert kernel.run() == 5.0
    assert seen == ["due", "late"]


def test_run_until_executes_events_at_the_exact_bound(kernel):
    seen = []
    kernel.schedule(2.0, seen.append, "at-bound")
    assert kernel.run(until=2.0) == 2.0
    assert seen == ["at-bound"]


def test_max_events_budget_with_until_advances_clock(kernel):
    kernel.schedule(1.0, lambda: None)
    kernel.schedule(10.0, lambda: None)
    # Budget drains after the first event; until lies before the next
    # event, so the clock must still advance exactly to it.
    assert kernel.run(until=5.0, max_events=1) == 5.0
    assert kernel.events_executed == 1
    assert kernel.pending_events == 1


def test_cancelled_events_do_not_block_pop_due(kernel):
    seen = []
    handle = kernel.schedule(1.0, seen.append, "cancelled")
    kernel.schedule(2.0, seen.append, "live")
    kernel.cancel(handle)
    assert kernel.run(until=3.0) == 3.0
    assert seen == ["live"]


def test_next_event_time(kernel):
    assert kernel.next_event_time() is None
    kernel.schedule(2.0, lambda: None)
    kernel.schedule(1.0, lambda: None)
    assert kernel.next_event_time() == 1.0
    kernel.run()
    assert kernel.next_event_time() is None
