"""Event queue: ordering, stability, cancellation."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.des.event_queue import EventQueue
from repro.errors import SimulationError


def test_pop_orders_by_time():
    q = EventQueue()
    order = []
    for t in (3.0, 1.0, 2.0):
        q.push(t, order.append, t)
    while q:
        h = q.pop()
        h.callback(*h.args)
    assert order == [1.0, 2.0, 3.0]


def test_fifo_tie_breaking_at_equal_times():
    q = EventQueue()
    for i in range(10):
        q.push(1.0, lambda: None)
    seqs = [q.pop().seq for _ in range(10)]
    assert seqs == sorted(seqs)


def test_cancel_skips_event():
    q = EventQueue()
    h1 = q.push(1.0, lambda: None)
    q.push(2.0, lambda: None)
    q.cancel(h1)
    assert len(q) == 1
    assert q.pop().time == 2.0


def test_cancel_is_idempotent():
    q = EventQueue()
    h = q.push(1.0, lambda: None)
    q.cancel(h)
    q.cancel(h)
    assert len(q) == 0


def test_direct_handle_cancel_updates_live_count():
    """Regression: ``EventHandle.cancel()`` called directly (not via
    ``EventQueue.cancel``) used to leave the queue's live count stale, so
    ``len(queue)``/``bool(queue)`` drifted and ``Kernel.pending_events``
    over-reported."""
    q = EventQueue()
    h1 = q.push(1.0, lambda: None)
    q.push(2.0, lambda: None)
    h1.cancel()
    assert len(q) == 1
    assert bool(q)
    assert q.pop().time == 2.0
    assert len(q) == 0
    assert not q


def test_direct_handle_cancel_is_idempotent():
    q = EventQueue()
    h = q.push(1.0, lambda: None)
    h.cancel()
    h.cancel()
    q.cancel(h)
    assert len(q) == 0


def test_mixed_cancel_paths_agree():
    """Cancelling via the handle then the queue (or vice versa) must only
    decrement the live count once."""
    q = EventQueue()
    h1 = q.push(1.0, lambda: None)
    h2 = q.push(2.0, lambda: None)
    q.push(3.0, lambda: None)
    h1.cancel()
    q.cancel(h1)
    q.cancel(h2)
    h2.cancel()
    assert len(q) == 1


def test_cancel_after_pop_does_not_corrupt_count():
    """A handle that already executed is detached; a late cancel must not
    decrement the live count of unrelated events."""
    q = EventQueue()
    h = q.push(1.0, lambda: None)
    q.push(2.0, lambda: None)
    assert q.pop() is h
    h.cancel()
    q.cancel(h)
    assert len(q) == 1


def test_cancel_after_clear_is_noop():
    q = EventQueue()
    h = q.push(1.0, lambda: None)
    q.clear()
    h.cancel()
    assert len(q) == 0


def test_peek_time_skips_cancelled():
    q = EventQueue()
    h = q.push(1.0, lambda: None)
    q.push(5.0, lambda: None)
    q.cancel(h)
    assert q.peek_time() == 5.0


def test_pop_empty_raises():
    with pytest.raises(SimulationError):
        EventQueue().pop()


def test_non_finite_time_rejected():
    q = EventQueue()
    with pytest.raises(SimulationError):
        q.push(math.inf, lambda: None)
    with pytest.raises(SimulationError):
        q.push(math.nan, lambda: None)


def test_clear_empties_queue():
    q = EventQueue()
    q.push(1.0, lambda: None)
    q.clear()
    assert not q
    assert q.peek_time() is None


@given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=200))
def test_pop_sequence_is_sorted(times):
    q = EventQueue()
    for t in times:
        q.push(t, lambda: None)
    popped = [q.pop().time for _ in range(len(times))]
    assert popped == sorted(popped)


@given(
    st.lists(st.floats(min_value=0, max_value=100), min_size=2, max_size=100),
    st.data(),
)
def test_cancellation_preserves_order_of_rest(times, data):
    q = EventQueue()
    handles = [q.push(t, lambda: None) for t in times]
    to_cancel = data.draw(
        st.sets(st.integers(min_value=0, max_value=len(times) - 1), max_size=len(times) - 1)
    )
    for i in to_cancel:
        q.cancel(handles[i])
    popped = [q.pop().time for _ in range(len(q))]
    assert popped == sorted(popped)
    assert len(popped) == len(times) - len(to_cancel)


# ------------------------------------------------------------------ pop_due
def test_pop_due_respects_limit():
    q = EventQueue()
    q.push(1.0, lambda: None)
    q.push(3.0, lambda: None)
    assert q.pop_due(0.5) is None
    handle = q.pop_due(1.0)
    assert handle is not None and handle.time == 1.0
    assert q.pop_due(2.0) is None
    assert len(q) == 1


def test_pop_due_none_limit_behaves_like_pop():
    q = EventQueue()
    q.push(2.0, lambda: None)
    assert q.pop_due(None).time == 2.0
    assert q.pop_due(None) is None


def test_pop_due_discards_cancelled_heads():
    q = EventQueue()
    first = q.push(1.0, lambda: None)
    q.push(2.0, lambda: None)
    q.cancel(first)
    handle = q.pop_due(5.0)
    assert handle.time == 2.0
    assert len(q) == 0


def test_pop_due_keeps_live_count_consistent():
    q = EventQueue()
    q.push(1.0, lambda: None)
    handle = q.pop_due(10.0)
    assert len(q) == 0
    # A late cancel of an already-popped handle must not corrupt the count.
    handle.cancel()
    assert len(q) == 0
