"""Verify-mode shadow through the full simulator/testbed stacks.

Regression: the exact-equivalence shadow used to fire spuriously when a
completion callback crossed the network/CPU coupling mid-notification —
e.g. a finished compute step submitting a transfer, whose activity
notification forces a CPU power refresh *in the same rate assignment* as
the step's departure.  The allocator now applies pending membership deltas
and the refresh together and verifies once at the end, and the network
notifies listeners before completion callbacks, so a full application run
under ``verify_incremental=True`` must complete without divergence.
"""

import pytest

from repro.apps.lu.app import LUApplication
from repro.apps.lu.config import LUConfig
from repro.apps.lu.costs import LUCostModel
from repro.sim.modes import SimulationMode
from repro.sim.platform import PAPER_CLUSTER
from repro.sim.providers import CostModelProvider
from repro.sim.simulator import DPSSimulator
from repro.testbed.cluster import VirtualCluster
from repro.testbed.executor import TestbedExecutor


def _cfg() -> LUConfig:
    return LUConfig(
        n=648, r=216, num_threads=4, num_nodes=4,
        mode=SimulationMode.PDEXEC_NOALLOC,
    )


def _provider() -> CostModelProvider:
    return CostModelProvider(LUCostModel(PAPER_CLUSTER.machine, 216))


def test_simulator_stack_verify_incremental():
    """Equal-share network + shared CPU under the shadow check."""
    sim = DPSSimulator(PAPER_CLUSTER, _provider(), verify_incremental=True)
    verified = sim.run(LUApplication(_cfg()))
    plain = DPSSimulator(PAPER_CLUSTER, _provider()).run(LUApplication(_cfg()))
    full = DPSSimulator(PAPER_CLUSTER, _provider(), incremental=False).run(
        LUApplication(_cfg())
    )
    assert plain.predicted_time == pytest.approx(full.predicted_time, rel=1e-9)
    assert verified.predicted_time == pytest.approx(full.predicted_time, rel=1e-9)


def test_testbed_stack_verify_incremental():
    """Packet network + timeslice CPU under the shadow check."""
    cluster = VirtualCluster(num_nodes=4, seed=1)
    verified = TestbedExecutor(cluster, verify_incremental=True).run(
        LUApplication(_cfg())
    )
    full = TestbedExecutor(cluster, incremental=False).run(LUApplication(_cfg()))
    assert verified.measured_time == pytest.approx(full.measured_time, rel=1e-9)
