"""Simulator facade and dynamic-efficiency computation."""

import pytest

from repro.apps.imgpipe import ImagePipelineApplication, ImagePipelineConfig
from repro.dps.trace import TraceLevel
from repro.netmodel.analytic import AnalyticNetwork
from repro.sim.efficiency import (
    dynamic_efficiency,
    mean_efficiency,
    utilization_timeline,
)
from repro.sim.platform import PAPER_CLUSTER, PlatformSpec
from repro.sim.providers import CostModelProvider, MachineCostModel
from repro.sim.simulator import DPSSimulator


def make_sim(trace_level=TraceLevel.SUMMARY, **kw):
    return DPSSimulator(
        PAPER_CLUSTER,
        CostModelProvider(MachineCostModel(PAPER_CLUSTER.machine)),
        trace_level=trace_level,
        **kw,
    )


def app(frames=4, threads=4, nodes=4):
    return ImagePipelineApplication(
        ImagePipelineConfig(frames=frames, tiles_per_frame=8, num_threads=threads, num_nodes=nodes)
    )


def test_simulation_returns_prediction_and_cost():
    res = make_sim().run(app())
    assert res.predicted_time > 0
    assert res.simulation_wall_time > 0
    assert res.events > 0
    assert res.simulation_peak_memory is None


def test_memory_measurement_optional():
    res = make_sim(measure_memory=True).run(app(frames=2))
    assert res.simulation_peak_memory is not None
    assert res.simulation_peak_memory_mb > 0


def test_simulation_is_deterministic():
    t1 = make_sim().run(app()).predicted_time
    t2 = make_sim().run(app()).predicted_time
    assert t1 == t2


def test_network_factory_override_changes_prediction():
    base = make_sim().run(app()).predicted_time
    no_contention = make_sim(network_factory=AnalyticNetwork).run(app()).predicted_time
    assert no_contention <= base


def test_faster_network_speeds_up_prediction():
    from repro.netmodel.params import GIGABIT_ETHERNET

    slow = make_sim().run(app()).predicted_time
    fast_platform = PAPER_CLUSTER.with_network(GIGABIT_ETHERNET)
    fast = DPSSimulator(
        fast_platform, CostModelProvider(MachineCostModel(fast_platform.machine))
    ).run(app()).predicted_time
    assert fast < slow


def test_dynamic_efficiency_series():
    res = make_sim().run(app(frames=6))
    series = dynamic_efficiency(res.run)
    assert len(series) == 6
    for pe in series:
        assert 0.0 <= pe.efficiency <= 1.0
        assert pe.mean_nodes == 4.0
    # The sink marks a phase per completed frame, so every interval but
    # the last (which ends exactly at the makespan) has positive width.
    for pe in series[:-1]:
        assert pe.duration > 0


def test_mean_efficiency_bounded():
    res = make_sim().run(app())
    eff = mean_efficiency(res.run)
    assert 0.0 < eff <= 1.0


def test_more_threads_lower_efficiency():
    """More parallelism on the same workload means lower efficiency."""
    small = make_sim().run(app(frames=6, threads=2, nodes=2))
    large = make_sim().run(app(frames=6, threads=8, nodes=8))
    assert mean_efficiency(large.run) < mean_efficiency(small.run)
    assert large.predicted_time < small.predicted_time


def test_utilization_timeline_requires_full_trace():
    res = make_sim().run(app())
    with pytest.raises(ValueError):
        utilization_timeline(res.run)
    res_full = make_sim(trace_level=TraceLevel.FULL).run(app())
    series = utilization_timeline(res_full.run, buckets=20)
    assert len(series) == 20
    assert all(0.0 <= u <= 1.0 + 1e-9 for _, u in series)
    # Utilization integrates to roughly total work / (N * makespan).
    total = sum(u for _, u in series) / len(series)
    expected = mean_efficiency(res_full.run)
    assert total == pytest.approx(expected, rel=0.1)
