"""Dynamic-efficiency invariants across applications and configurations."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.stencil import StencilApplication, StencilConfig, StencilCostModel
from repro.dps.trace import TraceLevel
from repro.sim.efficiency import (
    dynamic_efficiency,
    mean_efficiency,
    utilization_timeline,
)
from repro.sim.modes import SimulationMode
from repro.sim.platform import PAPER_CLUSTER
from repro.sim.providers import CostModelProvider
from repro.sim.simulator import DPSSimulator


def run_stencil(
    n=64, stripes=4, iterations=4, threads=4, nodes=2, barrier=False,
    trace_level=TraceLevel.SUMMARY,
):
    cfg = StencilConfig(
        n=n, stripes=stripes, iterations=iterations, num_threads=threads,
        num_nodes=nodes, barrier=barrier, mode=SimulationMode.PDEXEC_NOALLOC,
    )
    model = StencilCostModel(PAPER_CLUSTER.machine, cfg.rows, cfg.n)
    sim = DPSSimulator(
        PAPER_CLUSTER,
        CostModelProvider(model, run_kernels=False),
        trace_level=trace_level,
    )
    return sim.run(StencilApplication(cfg))


class TestEfficiencyBounds:
    def test_phase_efficiencies_in_unit_interval(self):
        result = run_stencil()
        for pe in dynamic_efficiency(result.run):
            assert 0.0 < pe.efficiency <= 1.0

    def test_mean_efficiency_in_unit_interval(self):
        result = run_stencil()
        assert 0.0 < mean_efficiency(result.run) <= 1.0

    def test_phase_intervals_partition_tail_of_run(self):
        result = run_stencil()
        intervals = result.run.phase_intervals()
        for (_, _, end_a), (_, start_b, _) in zip(intervals, intervals[1:]):
            assert end_a == pytest.approx(start_b)
        assert intervals[-1][2] == pytest.approx(result.run.makespan)

    def test_phase_work_sums_to_total_work(self):
        result = run_stencil(barrier=True)
        phase_work = sum(result.run.trace.phase_work.values())
        # Work before the first phase mark (start/load) is unattributed.
        assert phase_work <= result.run.total_work + 1e-12
        assert phase_work > 0.5 * result.run.total_work

    @given(
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=2, max_value=8),
    )
    @settings(max_examples=10, deadline=None)
    def test_efficiency_bounded_for_any_shape(self, nodes, stripes):
        # The barrier variant separates iterations cleanly — the same
        # reason the paper computes Fig. 11 on the basic flow graph.
        result = run_stencil(
            n=64,
            stripes=stripes if 64 % stripes == 0 else 4,
            iterations=3,
            threads=max(nodes, 2),
            nodes=nodes,
            barrier=True,
        )
        for pe in dynamic_efficiency(result.run):
            assert 0.0 <= pe.efficiency <= 1.0 + 1e-12

    def test_pipelined_phase_efficiency_is_approximate(self):
        """With pipelining, work tagged 'iter k' can spill past the phase
        boundary, so per-phase efficiency may exceed 1 — the reason the
        paper's Fig. 11 uses the basic (barrier) flow graph."""
        result = run_stencil(n=64, stripes=2, iterations=3, threads=2, nodes=1)
        values = [pe.efficiency for pe in dynamic_efficiency(result.run)]
        assert all(v <= 1.25 for v in values)  # bounded, but not by 1.0
        # Whole-run efficiency remains a true ratio.
        assert mean_efficiency(result.run) <= 1.0


class TestUtilizationTimeline:
    def test_requires_full_trace(self):
        result = run_stencil(trace_level=TraceLevel.SUMMARY)
        with pytest.raises(ValueError, match="FULL"):
            utilization_timeline(result.run)

    def test_buckets_cover_run(self):
        result = run_stencil(trace_level=TraceLevel.FULL)
        series = utilization_timeline(result.run, buckets=20)
        assert len(series) == 20
        assert series[0][0] == 0.0
        assert series[-1][0] < result.run.makespan

    def test_busy_fraction_bounded(self):
        result = run_stencil(trace_level=TraceLevel.FULL)
        for _, busy in utilization_timeline(result.run, buckets=25):
            assert 0.0 <= busy <= 1.0 + 1e-9

    def test_integrated_utilization_matches_total_work(self):
        result = run_stencil(trace_level=TraceLevel.FULL)
        buckets = 50
        series = utilization_timeline(result.run, buckets=buckets)
        width = result.run.makespan / buckets
        nodes = 2  # deployment uses 2 nodes throughout (no removal)
        integrated = sum(busy for _, busy in series) * width * nodes
        assert integrated == pytest.approx(result.run.total_work, rel=1e-6)

    def test_invalid_bucket_count(self):
        result = run_stencil(trace_level=TraceLevel.FULL)
        with pytest.raises(ValueError, match="buckets"):
            utilization_timeline(result.run, buckets=0)


class TestMoreNodesLowerEfficiency:
    def test_fixed_work_more_nodes_less_efficient(self):
        """Amdahl in action: the same stencil on more nodes wastes more."""
        eff2 = mean_efficiency(run_stencil(threads=2, nodes=2).run)
        eff4 = mean_efficiency(run_stencil(threads=4, nodes=4).run)
        assert eff4 < eff2
