"""Platform specs and simulation modes."""

import pytest

from repro.cpumodel.machines import PENTIUM4_2800, ULTRASPARC_II_440
from repro.errors import ConfigurationError
from repro.netmodel.params import GIGABIT_ETHERNET
from repro.sim.modes import SimulationMode
from repro.sim.platform import PAPER_CLUSTER, PlatformSpec


def test_paper_cluster_defaults():
    assert PAPER_CLUSTER.machine is ULTRASPARC_II_440
    assert PAPER_CLUSTER.local_delivery_delay > 0


def test_with_network_and_machine_copies():
    p = PAPER_CLUSTER.with_network(GIGABIT_ETHERNET)
    assert p.network is GIGABIT_ETHERNET
    assert p.machine is PAPER_CLUSTER.machine
    q = PAPER_CLUSTER.with_machine(PENTIUM4_2800)
    assert q.machine is PENTIUM4_2800
    assert q.network is PAPER_CLUSTER.network
    # originals untouched (frozen dataclass)
    assert PAPER_CLUSTER.machine is ULTRASPARC_II_440


def test_invalid_local_delay_rejected():
    with pytest.raises(ConfigurationError):
        PlatformSpec(local_delivery_delay=-1e-9)


@pytest.mark.parametrize(
    "mode,allocates,runs",
    [
        (SimulationMode.DIRECT, True, True),
        (SimulationMode.PDEXEC, True, True),
        (SimulationMode.PDEXEC_NOALLOC, False, False),
    ],
)
def test_mode_flags(mode, allocates, runs):
    assert mode.allocates is allocates
    assert mode.runs_kernels is runs
