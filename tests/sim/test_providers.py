"""Duration providers: cost models, direct execution, measure-first-n."""

import pytest

from repro.cpumodel.machines import ULTRASPARC_II_440
from repro.dps.operations import Compute, KernelSpec
from repro.errors import CostModelError
from repro.sim.providers import (
    CostModelProvider,
    DirectExecutionProvider,
    HostCalibration,
    MachineCostModel,
    MeasureFirstNProvider,
    TableCostModel,
)

SPEC = KernelSpec("gemm", flops=2.0 * 64**3, working_set=3 * 8 * 64 * 64)


def test_machine_cost_model_matches_profile():
    m = MachineCostModel(ULTRASPARC_II_440)
    assert m.duration(SPEC) == pytest.approx(
        ULTRASPARC_II_440.seconds_for(SPEC.flops, SPEC.working_set)
    )


def test_machine_cost_model_rate_factors_and_fixed():
    m = MachineCostModel(
        ULTRASPARC_II_440, rate_factors={"gemm": 2.0}, fixed_costs={"gemm": 0.1}
    )
    base = ULTRASPARC_II_440.seconds_for(SPEC.flops, SPEC.working_set)
    assert m.duration(SPEC) == pytest.approx(2.0 * base + 0.1)


def test_table_cost_model_entries_and_fallback():
    t = TableCostModel({"gemm": 0.5, "trsm": lambda s: s.flops * 1e-9})
    assert t.duration(SPEC) == 0.5
    assert t.duration(KernelSpec("trsm", flops=1e6)) == pytest.approx(1e-3)
    with pytest.raises(CostModelError):
        t.duration(KernelSpec("unknown"))
    t2 = TableCostModel({}, fallback=MachineCostModel(ULTRASPARC_II_440))
    assert t2.duration(SPEC) > 0


def test_cost_model_provider_skips_or_runs_kernels():
    calls = []
    compute = Compute(SPEC, lambda: calls.append(1) or "result")
    skip = CostModelProvider(MachineCostModel(ULTRASPARC_II_440))
    d, result = skip.evaluate(compute, None)
    assert result is None and not calls and d > 0
    run = CostModelProvider(MachineCostModel(ULTRASPARC_II_440), run_kernels=True)
    d2, result2 = run.evaluate(compute, None)
    assert result2 == "result" and calls == [1]
    assert d2 == pytest.approx(d)


def test_host_calibration_scale_positive():
    cal = HostCalibration(ULTRASPARC_II_440, reference_size=64, repeats=2)
    assert cal.host_seconds > 0
    assert cal.scale > 0
    assert cal.target_seconds == pytest.approx(
        ULTRASPARC_II_440.seconds_for(2.0 * 64**3, 3 * 8 * 64 * 64)
    )


def test_direct_execution_times_real_work():
    cal = HostCalibration(ULTRASPARC_II_440, reference_size=64, repeats=2)
    provider = DirectExecutionProvider(cal)

    def kernel():
        return sum(range(20000))

    duration, result = provider.evaluate(Compute(SPEC, kernel), None)
    assert result == sum(range(20000))
    assert duration > 0
    assert provider.host_compute_seconds > 0


def test_direct_execution_without_fn_costs_min_duration():
    cal = HostCalibration(ULTRASPARC_II_440, reference_size=64, repeats=1)
    provider = DirectExecutionProvider(cal, min_duration=1e-5)
    duration, result = provider.evaluate(Compute(SPEC, None), None)
    assert duration == 1e-5 and result is None


def test_measure_first_n_switches_to_average():
    cal = HostCalibration(ULTRASPARC_II_440, reference_size=64, repeats=1)
    provider = MeasureFirstNProvider(DirectExecutionProvider(cal), n=2)
    calls = []

    def kernel():
        calls.append(1)
        return len(calls)

    compute = Compute(SPEC, kernel)
    d1, r1 = provider.evaluate(compute, None)
    d2, r2 = provider.evaluate(compute, None)
    d3, r3 = provider.evaluate(compute, None)
    assert (r1, r2) == (1, 2)
    assert r3 is None  # kernel skipped after n samples
    assert len(calls) == 2
    assert d3 == pytest.approx((d1 + d2) / 2)
    assert provider.measured == 2 and provider.reused == 1


def test_measure_first_n_keys_by_params():
    cal = HostCalibration(ULTRASPARC_II_440, reference_size=64, repeats=1)
    provider = MeasureFirstNProvider(DirectExecutionProvider(cal), n=1)
    a = Compute(KernelSpec("k", flops=1, params={"r": 1}), lambda: 1)
    b = Compute(KernelSpec("k", flops=1, params={"r": 2}), lambda: 2)
    provider.evaluate(a, None)
    # Different params -> measured anew, not reused.
    _, result = provider.evaluate(b, None)
    assert result == 2
    assert provider.measured == 2


def test_measure_first_n_validation():
    cal = HostCalibration(ULTRASPARC_II_440, reference_size=64, repeats=1)
    with pytest.raises(CostModelError):
        MeasureFirstNProvider(DirectExecutionProvider(cal), n=0)
