"""Benchmark trend page: history loading, rendering, CLI."""

import json

import pytest

from repro.analysis.trend import (
    load_history,
    render_html,
    render_markdown,
    write_trend_pages,
)
from repro.cli import main
from repro.errors import ConfigurationError


def _bench_json(entries):
    return json.dumps(
        {
            "benchmarks": [
                {"name": name, "stats": {"median": median}}
                for name, median in entries.items()
            ]
        }
    )


@pytest.fixture()
def history(tmp_path):
    """Three date-stamped nightly runs with one bench appearing late."""
    for day, medians in [
        ("2026-07-25", {"test_fig08": 1.00, "test_alloc": 0.010}),
        ("2026-07-26", {"test_fig08": 1.10, "test_alloc": 0.009}),
        ("2026-07-27", {"test_fig08": 1.21, "test_alloc": 0.008,
                        "test_sharded_clusterserver_scaling": 2.5}),
    ]:
        run = tmp_path / day
        run.mkdir()
        (run / "figures.json").write_text(_bench_json(medians))
    return tmp_path


def test_load_history_orders_runs_and_collects_series(history):
    labels, series = load_history(history)
    assert labels == ["2026-07-25", "2026-07-26", "2026-07-27"]
    assert series["test_fig08"] == {
        "2026-07-25": 1.00, "2026-07-26": 1.10, "2026-07-27": 1.21,
    }
    assert list(series["test_sharded_clusterserver_scaling"]) == ["2026-07-27"]


def test_flat_json_files_count_as_runs(tmp_path):
    (tmp_path / "BENCH_a.json").write_text(_bench_json({"t": 1.0}))
    (tmp_path / "BENCH_b.json").write_text(_bench_json({"t": 2.0}))
    labels, series = load_history(tmp_path)
    assert labels == ["BENCH_a", "BENCH_b"]
    assert series["t"]["BENCH_b"] == 2.0


def test_corrupt_files_are_skipped(history, tmp_path):
    (history / "2026-07-28").mkdir()
    (history / "2026-07-28" / "figures.json").write_text("{broken")
    labels, _ = load_history(history)
    assert "2026-07-28" not in labels  # junk-only run dropped, no crash


def test_missing_or_empty_history_raises(tmp_path):
    with pytest.raises(ConfigurationError):
        load_history(tmp_path / "nope")
    with pytest.raises(ConfigurationError):
        load_history(tmp_path)


def test_markdown_render(history):
    labels, series = load_history(history)
    page = render_markdown(labels, series)
    assert "| `test_fig08` |" in page
    assert "1.00 s" in page and "1.21 s" in page
    assert "+21.0%" in page  # regression visible as first→last delta
    assert "·" in page  # missing cells for the late-appearing bench


def test_html_render_is_self_contained(history):
    labels, series = load_history(history)
    page = render_html(labels, series)
    assert page.startswith("<!DOCTYPE html>")
    assert "test_sharded_clusterserver_scaling" in page
    assert "<svg" in page  # sparkline for multi-point series
    assert "http" not in page  # no external assets


def test_write_trend_pages_and_cli(history, tmp_path, capsys):
    out = tmp_path / "out"
    md_path, html_path = write_trend_pages(history, out)
    assert md_path.is_file() and html_path.is_file()
    assert main(["trend", str(history), "--out", str(out)]) == 0
    captured = capsys.readouterr().out
    assert "3 benches over 3 run(s)" in captured


# --------------------------------------------------------------------------
# regression alerts
# --------------------------------------------------------------------------


def test_regressions_flags_first_to_last_delta(history):
    from repro.analysis.trend import regressions

    labels, series = load_history(history)
    # test_fig08 went 1.00 -> 1.21 (+21%); test_alloc improved.
    flagged = regressions(labels, series, 0.20)
    assert [name for name, _ in flagged] == ["test_fig08"]
    assert flagged[0][1] == pytest.approx(0.21)
    assert regressions(labels, series, 0.25) == []


def test_regressions_needs_two_points_and_valid_threshold(history):
    from repro.analysis.trend import regressions

    labels, series = load_history(history)
    # The sharded bench has one data point: never flagged.
    assert all(
        name != "test_sharded_clusterserver_scaling"
        for name, _ in regressions(labels, series, 0.0)
    )
    with pytest.raises(ConfigurationError):
        regressions(labels, series, -0.1)


def test_trend_cli_alert_threshold_exit_codes(history, tmp_path, capsys):
    out = tmp_path / "trend-out"
    code = main([
        "trend", str(history), "--out", str(out), "--alert-threshold", "20",
    ])
    printed = capsys.readouterr().out
    assert code == 3
    assert "::error title=bench regression::test_fig08" in printed

    code = main([
        "trend", str(history), "--out", str(out), "--alert-threshold", "25",
    ])
    printed = capsys.readouterr().out
    assert code == 0
    assert "no regressions beyond 25%" in printed
