"""Disk-persisted kernel-benchmark tables: keys, round-trips, provider."""

import json

import pytest

from repro.analysis import benchcache, calibcache
from repro.cpumodel.machines import PENTIUM4_2800, ULTRASPARC_II_440
from repro.dps.operations import Compute, KernelSpec
from repro.sim.providers import DirectExecutionProvider, HostCalibration, MeasureFirstNProvider


@pytest.fixture()
def fresh_cache(tmp_path, monkeypatch):
    """A private, empty cache directory for each test."""
    cache = tmp_path / "cache"
    monkeypatch.setenv("REPRO_CACHE_DIR", str(cache))
    return cache


def test_store_load_roundtrip(fresh_cache):
    table = {
        ("gemm", (("r", 216),)): [0.5, 0.6],
        ("trsm", ()): [0.1],
    }
    benchcache.store("key1", table)
    assert benchcache.load("key1") == table
    assert benchcache.load("missing") is None


def test_unserializable_params_are_skipped_not_fatal(fresh_cache):
    table = {
        ("ok", ()): [1.0],
        ("bad", (("fn", object()),)): [2.0],
    }
    benchcache.store("key2", table)
    assert benchcache.load("key2") == {("ok", ()): [1.0]}


def test_lossy_params_are_skipped_not_fatal(fresh_cache):
    # A tuple param value serializes fine but reloads as a list — it can
    # never rebuild the hashable key, and must not poison the entry.
    table = {
        ("gemm", (("shape", (2, 3)),)): [0.5],
        ("lu", (("n", 4),)): [0.25],
    }
    benchcache.store("key4", table)
    assert benchcache.load("key4") == {("lu", (("n", 4),)): [0.25]}


def test_corrupt_entry_is_a_miss(fresh_cache):
    benchcache.store("key3", {("k", ()): [1.0]})
    path = benchcache.entries()[0]
    path.write_text("{not json", encoding="utf-8")
    assert benchcache.load("key3") is None


def test_key_depends_on_machine_and_n():
    base = benchcache.cache_key(ULTRASPARC_II_440, 3)
    assert benchcache.cache_key(ULTRASPARC_II_440, 3) == base
    assert benchcache.cache_key(ULTRASPARC_II_440, 4) != base
    assert benchcache.cache_key(PENTIUM4_2800, 3) != base


def test_clear_touches_only_bench_entries(fresh_cache):
    benchcache.store("a", {("k", ()): [1.0]})
    from repro.netmodel.params import NetworkParams

    calibcache.store("b", NetworkParams(latency=1e-4, bandwidth=1e7))
    assert benchcache.clear() == 1
    assert benchcache.entries() == []
    assert len(calibcache.entries()) == 1


# ------------------------------------------------------- provider integration
SPEC = KernelSpec("persisted-kernel", flops=1e5, params={"r": 8})


def _provider(n=2, persist=True):
    cal = HostCalibration(ULTRASPARC_II_440, reference_size=64, repeats=1)
    return MeasureFirstNProvider(
        DirectExecutionProvider(cal), n=n, persist=persist
    )


def test_second_run_skips_warmup(fresh_cache):
    """A fresh provider (modelling a new CLI process) restores the full
    sample table and never re-measures."""
    calls = []

    def kernel():
        calls.append(1)
        return len(calls)

    compute = Compute(SPEC, kernel)
    first = _provider()
    for _ in range(3):
        first.evaluate(compute, None)
    assert first.measured == 2 and first.preloaded == 0
    assert len(benchcache.entries()) == 1

    second = _provider()
    assert second.preloaded == 1
    duration, result = second.evaluate(compute, None)
    assert second.measured == 0 and second.reused == 1
    assert result is None  # warm-up skipped: the kernel never ran
    assert len(calls) == 2
    # The reused duration is the mean of the persisted samples.
    payload = json.loads(benchcache.entries()[0].read_text(encoding="utf-8"))
    samples = payload["kernels"][0]["samples"]
    assert duration == pytest.approx(sum(samples) / len(samples))


def test_partial_tables_are_not_restored(fresh_cache):
    incomplete = {("persisted-kernel", (("r", 8),)): [0.5]}  # < n samples
    key = benchcache.cache_key(ULTRASPARC_II_440, 2)
    benchcache.store(key, incomplete)
    provider = _provider(n=2)
    assert provider.preloaded == 0


def test_persist_off_writes_nothing(fresh_cache):
    provider = _provider(persist=False)
    compute = Compute(SPEC, lambda: 1)
    for _ in range(3):
        provider.evaluate(compute, None)
    assert benchcache.entries() == []
