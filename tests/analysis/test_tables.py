"""ASCII renderers: alignment, scaling, degenerate inputs."""

import pytest

from repro.analysis.tables import ascii_bar_chart, ascii_histogram, ascii_table


class TestAsciiTable:
    def test_alignment(self):
        text = ascii_table(("a", "bb"), [("x", 1), ("longer", 22)])
        lines = text.splitlines()
        # Header, separator, two rows.
        assert len(lines) == 4
        # Columns are aligned: every 'bb'-column cell starts at the same offset.
        offset = lines[0].index("bb")
        assert lines[2][offset - 2 : offset] == "  "

    def test_title(self):
        text = ascii_table(("h",), [("v",)], title="My Title")
        assert text.splitlines()[0] == "My Title"

    def test_empty_rows(self):
        text = ascii_table(("only", "headers"), [])
        lines = text.splitlines()
        assert len(lines) == 2  # header + separator

    def test_non_string_cells_coerced(self):
        text = ascii_table(("n",), [(3.14159,), (None,)])
        assert "3.14159" in text
        assert "None" in text


class TestBarChart:
    def test_peak_gets_full_width(self):
        text = ascii_bar_chart(["a", "b"], [1.0, 2.0], width=10)
        lines = text.splitlines()
        assert lines[1].count("#") == 10
        assert lines[0].count("#") == 5

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            ascii_bar_chart(["a"], [1.0, 2.0])

    def test_all_zero_values(self):
        text = ascii_bar_chart(["a"], [0.0])
        assert "#" not in text

    def test_custom_format(self):
        text = ascii_bar_chart(["a"], [0.5], fmt="{:.0%}")
        assert "50%" in text

    def test_negative_values_use_magnitude(self):
        text = ascii_bar_chart(["neg", "pos"], [-4.0, 2.0], width=8)
        lines = text.splitlines()
        assert lines[0].count("#") == 8
        assert lines[1].count("#") == 4


class TestHistogram:
    def test_percent_labels(self):
        text = ascii_histogram([(-0.04, 0.0, 3), (0.0, 0.04, 5)])
        assert "-4.0%" in text
        assert "+4.0%" in text

    def test_raw_labels(self):
        text = ascii_histogram([(0.0, 1.0, 2)], percent=False)
        assert "[0, 1)" in text

    def test_peak_scaling(self):
        text = ascii_histogram([(0.0, 0.1, 1), (0.1, 0.2, 4)], width=8)
        lines = text.splitlines()
        assert lines[1].count("#") == 8
        assert lines[0].count("#") == 2

    def test_empty_bins(self):
        assert ascii_histogram([]) == ""
