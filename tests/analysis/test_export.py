"""Trace export: Chrome trace-event JSON and CSV round trips."""

import csv
import io
import json

import pytest

from repro.analysis.export import (
    STEP_COLUMNS,
    TRANSFER_COLUMNS,
    steps_to_csv,
    to_chrome_trace,
    transfers_to_csv,
    write_chrome_trace,
)
from repro.apps.stencil import StencilApplication, StencilConfig, StencilCostModel
from repro.dps.trace import TraceLevel
from repro.errors import SimulationError
from repro.sim.platform import PAPER_CLUSTER
from repro.sim.providers import CostModelProvider
from repro.sim.simulator import DPSSimulator


@pytest.fixture(scope="module")
def full_run():
    """One small stencil run with a FULL trace."""
    cfg = StencilConfig(n=32, stripes=4, iterations=3, num_threads=4, num_nodes=2)
    model = StencilCostModel(PAPER_CLUSTER.machine, cfg.rows, cfg.n)
    sim = DPSSimulator(
        PAPER_CLUSTER,
        CostModelProvider(model, run_kernels=True),
        trace_level=TraceLevel.FULL,
    )
    return sim.run(StencilApplication(cfg))


@pytest.fixture(scope="module")
def summary_run():
    cfg = StencilConfig(n=32, stripes=4, iterations=2, num_threads=4, num_nodes=2)
    model = StencilCostModel(PAPER_CLUSTER.machine, cfg.rows, cfg.n)
    sim = DPSSimulator(PAPER_CLUSTER, CostModelProvider(model, run_kernels=True))
    return sim.run(StencilApplication(cfg))


# --------------------------------------------------------------------------
# chrome trace
# --------------------------------------------------------------------------


class TestChromeTrace:
    def test_document_structure(self, full_run):
        doc = to_chrome_trace(full_run.run)
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        assert isinstance(doc["traceEvents"], list)
        assert doc["traceEvents"]

    def test_one_duration_event_per_step(self, full_run):
        doc = to_chrome_trace(full_run.run, include_transfers=False,
                              include_phases=False)
        durations = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(durations) == len(full_run.run.trace.steps)

    def test_transfer_events_present(self, full_run):
        doc = to_chrome_trace(full_run.run)
        transfers = [
            e for e in doc["traceEvents"] if e.get("cat") == "transfer"
        ]
        assert len(transfers) == len(full_run.run.trace.transfers)
        for event in transfers:
            assert event["args"]["size_bytes"] >= 0

    def test_phase_instants(self, full_run):
        doc = to_chrome_trace(full_run.run)
        instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert [e["name"] for e in instants] == [
            label for _, label in full_run.run.phases
        ]

    def test_timestamps_in_microseconds(self, full_run):
        doc = to_chrome_trace(full_run.run, include_transfers=False,
                              include_phases=False)
        events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        last_end = max(e["ts"] + e["dur"] for e in events)
        assert last_end == pytest.approx(
            max(s.end for s in full_run.run.trace.steps) * 1e6
        )

    def test_json_serializable(self, full_run):
        text = json.dumps(to_chrome_trace(full_run.run))
        assert json.loads(text)["traceEvents"]

    def test_write_to_file(self, full_run, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(full_run.run, str(path))
        with open(path) as handle:
            doc = json.load(handle)
        assert doc["traceEvents"]

    def test_requires_full_trace(self, summary_run):
        with pytest.raises(SimulationError, match="TraceLevel.FULL"):
            to_chrome_trace(summary_run.run)

    def test_metadata_names_nodes_and_threads(self, full_run):
        doc = to_chrome_trace(full_run.run)
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        names = {e["name"] for e in meta}
        assert "process_name" in names
        assert "thread_name" in names


# --------------------------------------------------------------------------
# CSV
# --------------------------------------------------------------------------


class TestCsv:
    def test_steps_header_and_rows(self, full_run):
        text = steps_to_csv(full_run.run.trace)
        rows = list(csv.reader(io.StringIO(text)))
        assert tuple(rows[0]) == STEP_COLUMNS
        assert len(rows) - 1 == len(full_run.run.trace.steps)

    def test_steps_numeric_roundtrip(self, full_run):
        text = steps_to_csv(full_run.run.trace)
        rows = list(csv.DictReader(io.StringIO(text)))
        for row, step in zip(rows, full_run.run.trace.steps):
            assert float(row["start"]) == pytest.approx(step.start)
            assert float(row["duration"]) == pytest.approx(step.duration, abs=1e-9)
            assert row["kernel"] == step.kernel

    def test_transfers_header_and_rows(self, full_run):
        text = transfers_to_csv(full_run.run.trace)
        rows = list(csv.reader(io.StringIO(text)))
        assert tuple(rows[0]) == TRANSFER_COLUMNS
        assert len(rows) - 1 == len(full_run.run.trace.transfers)

    def test_csv_written_to_file(self, full_run, tmp_path):
        path = tmp_path / "steps.csv"
        text = steps_to_csv(full_run.run.trace, str(path))
        assert path.read_text() == text

    def test_requires_full_trace(self, summary_run):
        with pytest.raises(SimulationError):
            steps_to_csv(summary_run.run.trace)
        with pytest.raises(SimulationError):
            transfers_to_csv(summary_run.run.trace)
