"""Timing-diagram rendering from full traces."""

import pytest

from repro.analysis.timeline import node_lanes, phase_summary, render_timeline
from repro.apps.lu.app import LUApplication
from repro.apps.lu.config import LUConfig
from repro.apps.lu.costs import LUCostModel
from repro.dps.malleability import AllocationEvent, AllocationSchedule
from repro.dps.trace import TraceLevel
from repro.errors import ConfigurationError
from repro.sim.modes import SimulationMode
from repro.sim.platform import PAPER_CLUSTER
from repro.sim.providers import CostModelProvider
from repro.sim.simulator import DPSSimulator


@pytest.fixture(scope="module")
def lu_run():
    cfg = LUConfig(
        n=192, r=48, num_threads=4, num_nodes=4, mode=SimulationMode.PDEXEC_NOALLOC
    )
    sim = DPSSimulator(
        PAPER_CLUSTER,
        CostModelProvider(LUCostModel(PAPER_CLUSTER.machine, cfg.r)),
        trace_level=TraceLevel.FULL,
    )
    return sim.run(LUApplication(cfg)).run


def test_lanes_cover_all_nodes(lu_run):
    lanes = node_lanes(lu_run, width=40)
    assert set(lanes) == {0, 1, 2, 3}
    assert all(len(cells) == 40 for cells in lanes.values())
    for cells in lanes.values():
        assert all(0.0 <= c.busy <= 1.0 for c in cells)


def test_busy_fraction_consistent_with_trace(lu_run):
    lanes = node_lanes(lu_run, width=200)
    for node, cells in lanes.items():
        approx_busy = sum(c.busy for c in cells) / len(cells)
        # Wall-clock busy fraction (stretched durations) is at least the
        # uncontended work fraction recorded in the summary.
        work_fraction = lu_run.trace.node_work.get(node, 0.0) / lu_run.makespan
        assert approx_busy >= work_fraction * 0.9 - 0.02


def test_render_contains_lanes_and_legend(lu_run):
    out = render_timeline(lu_run, width=60, title="LU")
    lines = out.splitlines()
    assert lines[0] == "LU"
    assert sum(1 for l in lines if l.startswith("node ")) == 4
    assert "legend" in lines[-1]
    assert "#" in out  # some column is busy


def test_requires_full_trace():
    cfg = LUConfig(
        n=96, r=24, num_threads=2, num_nodes=2, mode=SimulationMode.PDEXEC_NOALLOC
    )
    sim = DPSSimulator(
        PAPER_CLUSTER,
        CostModelProvider(LUCostModel(PAPER_CLUSTER.machine, cfg.r)),
        trace_level=TraceLevel.SUMMARY,
    )
    res = sim.run(LUApplication(cfg))
    with pytest.raises(ConfigurationError):
        render_timeline(res.run)


def test_invalid_window_rejected(lu_run):
    with pytest.raises(ConfigurationError):
        node_lanes(lu_run, width=0)
    with pytest.raises(ConfigurationError):
        node_lanes(lu_run, start=1.0, end=1.0)


def test_deallocated_nodes_render_blank():
    sched = AllocationSchedule(
        events=(AllocationEvent("iter1", "workers", (2, 3)),), name="kill2"
    )
    cfg = LUConfig(
        n=192, r=48, num_threads=4, num_nodes=4,
        schedule=sched, mode=SimulationMode.PDEXEC_NOALLOC,
    )
    sim = DPSSimulator(
        PAPER_CLUSTER,
        CostModelProvider(LUCostModel(PAPER_CLUSTER.machine, cfg.r)),
        trace_level=TraceLevel.FULL,
    )
    res = sim.run(LUApplication(cfg))
    out = render_timeline(res.run, width=50)
    node3 = next(l for l in out.splitlines() if l.startswith("node 3"))
    # The tail of node 3's lane is blank after deallocation.
    body = node3.split("|")[1]
    assert body.endswith("  ") or body.rstrip(" ") != body


def test_phase_summary_lines(lu_run):
    out = phase_summary(lu_run)
    lines = out.splitlines()
    assert len(lines) == 4  # one per iteration
    assert all("efficiency" in l for l in lines)
