"""Prediction-study and metric invariants (hypothesis-driven)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.metrics import (
    performance_improvement,
    relative_error,
    speedup,
)
from repro.analysis.prediction import PredictionStudy

positive = st.floats(min_value=1e-3, max_value=1e6, allow_nan=False)


class TestMetricProperties:
    @given(positive, positive)
    @settings(max_examples=50, deadline=None)
    def test_speedup_improvement_consistency(self, ref, t):
        """performance_improvement is the paper's name for speedup vs a
        reference configuration; both are the same ratio."""
        assert performance_improvement(ref, t) == pytest.approx(speedup(ref, t))

    @given(positive)
    @settings(max_examples=30, deadline=None)
    def test_self_comparison_is_neutral(self, t):
        assert speedup(t, t) == pytest.approx(1.0)
        assert relative_error(t, t) == pytest.approx(0.0)

    @given(positive, positive)
    @settings(max_examples=50, deadline=None)
    def test_relative_error_sign(self, predicted, measured):
        err = relative_error(predicted, measured)
        if predicted > measured:
            assert err > 0
        elif predicted < measured:
            assert err < 0

    @given(positive, positive)
    @settings(max_examples=50, deadline=None)
    def test_speedup_antisymmetry(self, a, b):
        assert speedup(a, b) == pytest.approx(1.0 / speedup(b, a))


class TestPredictionStudy:
    def make_study(self, pairs):
        study = PredictionStudy()
        for i, (measured, predicted) in enumerate(pairs):
            study.add(f"case{i}", measured, predicted)
        return study

    def test_perfect_predictions(self):
        study = self.make_study([(10.0, 10.0), (5.0, 5.0)])
        assert study.fraction_within(0.01) == 1.0
        assert study.max_abs_error() == 0.0
        assert study.mean_abs_error() == 0.0

    def test_fraction_within_monotone_in_tolerance(self):
        study = self.make_study(
            [(100.0, 101.0), (100.0, 104.0), (100.0, 110.0), (100.0, 120.0)]
        )
        f = [study.fraction_within(tol) for tol in (0.02, 0.05, 0.15, 0.25)]
        assert f == sorted(f)
        assert f[0] == 0.25 and f[-1] == 1.0

    @given(
        st.lists(
            st.tuples(positive, st.floats(min_value=0.8, max_value=1.2)),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_histogram_counts_every_record(self, raw):
        study = self.make_study([(m, m * f) for m, f in raw])
        hist = study.histogram(bin_width=0.04, limit=0.24)
        assert hist.total == len(raw)
        assert sum(count for _, _, count in hist.bins()) == len(raw)

    @given(
        st.lists(
            st.tuples(positive, st.floats(min_value=0.5, max_value=1.5)),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_error_bounds_consistency(self, raw):
        study = self.make_study([(m, m * f) for m, f in raw])
        errors = np.abs(study.errors)
        assert study.max_abs_error() == pytest.approx(float(errors.max()))
        assert study.mean_abs_error() == pytest.approx(float(errors.mean()))
        assert study.fraction_within(study.max_abs_error() + 1e-12) == 1.0

    def test_summary_keys(self):
        study = self.make_study([(10.0, 9.5)])
        summary = study.summary()
        assert {"count", "mean_abs", "max_abs", "within_4pct"} <= set(summary)

    def test_paper_style_bands(self):
        """Reconstruct the Fig. 13 headline statistics from raw pairs."""
        rng = np.random.default_rng(0)
        pairs = [(100.0, 100.0 * (1 + 0.03 * rng.standard_normal()))
                 for _ in range(168)]
        study = self.make_study(pairs)
        # With sigma=3%, ±4% covers most, ±12% covers everything.
        assert study.fraction_within(0.04) > 0.6
        assert study.fraction_within(0.12) > 0.95
