"""Parallel sweep runner: serial/parallel equality, calibration cache."""

import pytest

from repro.analysis.parallel import (
    ParallelSweepRunner,
    cached_platform,
    clear_platform_cache,
    platform_key,
)
from repro.analysis.prediction import PredictionStudy
from repro.analysis.sweep import SweepCase, sweep
from repro.apps.lu.config import LUConfig
from repro.errors import ConfigurationError
from repro.sim.modes import SimulationMode


def _cases():
    cfgs = [
        LUConfig(n=192, r=48, num_threads=4, num_nodes=2, mode=SimulationMode.PDEXEC_NOALLOC),
        LUConfig(n=192, r=96, num_threads=4, num_nodes=2, mode=SimulationMode.PDEXEC_NOALLOC),
        LUConfig(n=192, r=48, num_threads=4, num_nodes=4, mode=SimulationMode.PDEXEC_NOALLOC),
    ]
    return [SweepCase(f"c{i}", cfg, seed=1) for i, cfg in enumerate(cfgs)]


def test_parallel_sweep_equals_serial_case_for_case():
    cases = _cases()
    serial = sweep(cases)
    parallel = sweep(cases, jobs=2)
    assert len(serial) == len(parallel) == len(cases)
    for ser, par in zip(serial, parallel):
        assert ser.case.label == par.case.label
        assert par.measured == pytest.approx(ser.measured, rel=1e-12)
        assert par.predicted == pytest.approx(ser.predicted, rel=1e-12)


def test_parallel_runner_feeds_study_in_case_order():
    cases = _cases()
    study = PredictionStudy()
    results = ParallelSweepRunner(jobs=2).run(cases, study=study)
    assert [r.case.label for r in results] == [c.label for c in cases]
    assert [rec.label for rec in study.records] == [c.label for c in cases]


def test_platform_cache_is_memoized():
    clear_platform_cache()
    case = _cases()[0]
    key = platform_key(case)
    first = cached_platform(key)
    assert cached_platform(key) is first


def test_jobs_one_runs_in_process():
    cases = _cases()[:1]
    results = ParallelSweepRunner(jobs=1).run(cases)
    assert len(results) == 1
    assert results[0].measured > 0


def test_negative_jobs_rejected():
    with pytest.raises(ConfigurationError):
        ParallelSweepRunner(jobs=-1)


def test_empty_case_list():
    assert ParallelSweepRunner(jobs=2).run([]) == []

# --------------------------------------------------------------------------
# resident (persistent) pool lifetime: idempotent teardown, clean restart
# --------------------------------------------------------------------------


def _server_spec_dict(seed: int = 2) -> dict:
    return {
        "name": f"resident-{seed}",
        "app": {"name": "lu"},
        "engine": {"name": "server", "seed": seed},
        "cluster": {"nodes": 8, "jobs": 4, "interarrival": 10.0, "policy": "fcfs"},
    }


def test_persistent_runner_reuses_one_pool_across_calls():
    from repro.scenario.spec import ScenarioSpec

    specs = [ScenarioSpec.from_dict(_server_spec_dict(s)) for s in (1, 2)]
    with ParallelSweepRunner(jobs=2, persistent=True) as runner:
        first = runner.run_records(specs)
        pool = runner._pool
        assert pool is not None
        second = runner.run_records(specs)
        assert runner._pool is pool  # same resident workers, not a new fork
    assert runner._pool is None  # context exit released them
    for a, b in zip(first, second):
        assert a.makespan == b.makespan


def test_one_shot_runner_still_tears_down_per_call():
    from repro.scenario.spec import ScenarioSpec

    runner = ParallelSweepRunner(jobs=2)
    runner.run_records([ScenarioSpec.from_dict(_server_spec_dict())])
    assert runner._pool is None


def test_close_and_join_are_idempotent_in_any_order():
    runner = ParallelSweepRunner(jobs=2, persistent=True)
    runner._ensure_pool()
    runner.close()
    runner.close()  # second close is a no-op
    runner.join()  # join after close is a no-op
    runner.close(terminate=True)
    assert runner._pool is None


def test_runner_restarts_cleanly_after_close():
    from repro.scenario.spec import ScenarioSpec

    spec = ScenarioSpec.from_dict(_server_spec_dict())
    runner = ParallelSweepRunner(jobs=2, persistent=True)
    before = runner.run_records([spec])
    runner.close()
    # In-process restart: the next call transparently forks a new pool.
    after = runner.run_records([spec])
    runner.close()
    assert before[0].makespan == after[0].makespan


def test_submit_record_resolves_to_wire_dict():
    runner = ParallelSweepRunner(jobs=1, persistent=True)
    try:
        result = runner.submit_record(_server_spec_dict())
        record = result.get(timeout=60)
        assert record["engine"] == "server"
        assert record["makespan"] > 0
        assert "raw" not in record
    finally:
        runner.close()


def test_submit_record_validates_dict_payloads_synchronously():
    runner = ParallelSweepRunner(jobs=1, persistent=True)
    try:
        with pytest.raises(ConfigurationError, match="unknown top-level"):
            runner.submit_record(dict(_server_spec_dict(), bogus_key=1))
    finally:
        runner.close()


def test_submit_record_propagates_worker_errors():
    runner = ParallelSweepRunner(jobs=1, persistent=True)
    try:
        # Valid spec shape, but the engine is not registered — the
        # failure happens on the worker and must come back through the
        # async result and the error callback.
        bad = dict(_server_spec_dict(), engine={"name": "not-an-engine"})
        errors = []
        result = runner.submit_record(bad, error_callback=errors.append)
        with pytest.raises(ConfigurationError, match="not-an-engine"):
            result.get(timeout=60)
        assert len(errors) == 1
    finally:
        runner.close()
