"""Parallel sweep runner: serial/parallel equality, calibration cache."""

import pytest

from repro.analysis.parallel import (
    ParallelSweepRunner,
    cached_platform,
    clear_platform_cache,
    platform_key,
)
from repro.analysis.prediction import PredictionStudy
from repro.analysis.sweep import SweepCase, sweep
from repro.apps.lu.config import LUConfig
from repro.errors import ConfigurationError
from repro.sim.modes import SimulationMode


def _cases():
    cfgs = [
        LUConfig(n=192, r=48, num_threads=4, num_nodes=2, mode=SimulationMode.PDEXEC_NOALLOC),
        LUConfig(n=192, r=96, num_threads=4, num_nodes=2, mode=SimulationMode.PDEXEC_NOALLOC),
        LUConfig(n=192, r=48, num_threads=4, num_nodes=4, mode=SimulationMode.PDEXEC_NOALLOC),
    ]
    return [SweepCase(f"c{i}", cfg, seed=1) for i, cfg in enumerate(cfgs)]


def test_parallel_sweep_equals_serial_case_for_case():
    cases = _cases()
    serial = sweep(cases)
    parallel = sweep(cases, jobs=2)
    assert len(serial) == len(parallel) == len(cases)
    for ser, par in zip(serial, parallel):
        assert ser.case.label == par.case.label
        assert par.measured == pytest.approx(ser.measured, rel=1e-12)
        assert par.predicted == pytest.approx(ser.predicted, rel=1e-12)


def test_parallel_runner_feeds_study_in_case_order():
    cases = _cases()
    study = PredictionStudy()
    results = ParallelSweepRunner(jobs=2).run(cases, study=study)
    assert [r.case.label for r in results] == [c.label for c in cases]
    assert [rec.label for rec in study.records] == [c.label for c in cases]


def test_platform_cache_is_memoized():
    clear_platform_cache()
    case = _cases()[0]
    key = platform_key(case)
    first = cached_platform(key)
    assert cached_platform(key) is first


def test_jobs_one_runs_in_process():
    cases = _cases()[:1]
    results = ParallelSweepRunner(jobs=1).run(cases)
    assert len(results) == 1
    assert results[0].measured > 0


def test_negative_jobs_rejected():
    with pytest.raises(ConfigurationError):
        ParallelSweepRunner(jobs=-1)


def test_empty_case_list():
    assert ParallelSweepRunner(jobs=2).run([]) == []
