"""What-if studies: network sweeps, kernel attribution, sensitivity grids."""

import pytest

from repro.analysis.whatif import (
    kernel_speedup_study,
    latency_bandwidth_grid,
    network_sweep,
    render_grid,
    render_kernel_study,
    render_network_sweep,
)
from repro.apps.stencil import StencilApplication, StencilConfig, StencilCostModel
from repro.netmodel.params import FAST_ETHERNET, GIGABIT_ETHERNET, NetworkParams
from repro.sim.modes import SimulationMode
from repro.sim.platform import PAPER_CLUSTER


CFG = StencilConfig(
    n=256,
    stripes=8,
    iterations=4,
    num_threads=4,
    num_nodes=4,
    mode=SimulationMode.PDEXEC_NOALLOC,
)


def app_factory():
    return StencilApplication(CFG)


def model_factory():
    return StencilCostModel(PAPER_CLUSTER.machine, CFG.rows, CFG.n)


# --------------------------------------------------------------------------
# network sweep
# --------------------------------------------------------------------------


class TestNetworkSweep:
    def test_faster_network_faster_app(self):
        entries = network_sweep(
            app_factory,
            model_factory,
            PAPER_CLUSTER,
            {"fast": FAST_ETHERNET, "gigabit": GIGABIT_ETHERNET},
        )
        assert entries[0].predicted_time > entries[1].predicted_time
        assert entries[1].speedup > 1.0

    def test_baseline_speedup_is_one(self):
        entries = network_sweep(
            app_factory, model_factory, PAPER_CLUSTER,
            {"base": FAST_ETHERNET, "same": FAST_ETHERNET},
        )
        assert entries[0].speedup == pytest.approx(1.0)
        assert entries[1].speedup == pytest.approx(1.0)

    def test_render(self):
        entries = network_sweep(
            app_factory, model_factory, PAPER_CLUSTER,
            {"fast": FAST_ETHERNET},
        )
        text = render_network_sweep(entries)
        assert "interconnect sweep" in text
        assert "fast" in text


# --------------------------------------------------------------------------
# kernel speedup attribution
# --------------------------------------------------------------------------


class TestKernelStudy:
    def test_dominant_kernel_identified(self):
        entries = kernel_speedup_study(
            app_factory, model_factory, PAPER_CLUSTER,
            kernels=("jacobi", "overhead"),
            factor=0.5,
        )
        by_name = {e.kernel: e for e in entries}
        # The sweep kernel dominates a compute-heavy stencil; control
        # handling does not.
        assert by_name["jacobi"].speedup > by_name["overhead"].speedup
        assert by_name["jacobi"].worth_optimizing

    def test_speedup_never_negative(self):
        entries = kernel_speedup_study(
            app_factory, model_factory, PAPER_CLUSTER,
            kernels=("jacobi",), factor=0.25,
        )
        # Accelerating a kernel can only help (or not matter).
        assert entries[0].speedup >= 1.0 - 1e-9

    def test_slowdown_factor_allowed(self):
        entries = kernel_speedup_study(
            app_factory, model_factory, PAPER_CLUSTER,
            kernels=("jacobi",), factor=2.0,
        )
        assert entries[0].speedup < 1.0

    def test_invalid_factor_rejected(self):
        with pytest.raises(ValueError, match="factor"):
            kernel_speedup_study(
                app_factory, model_factory, PAPER_CLUSTER,
                kernels=("jacobi",), factor=0.0,
            )

    def test_render(self):
        entries = kernel_speedup_study(
            app_factory, model_factory, PAPER_CLUSTER,
            kernels=("jacobi",),
        )
        text = render_kernel_study(entries, baseline=1.0)
        assert "kernel acceleration" in text
        assert "jacobi" in text


# --------------------------------------------------------------------------
# latency/bandwidth grid
# --------------------------------------------------------------------------


class TestGrid:
    def test_grid_shape_and_monotonicity(self):
        latencies = (0.0, 1e-4)
        bandwidths = (1e7, 1e8)
        grid = latency_bandwidth_grid(
            app_factory, model_factory, PAPER_CLUSTER, latencies, bandwidths
        )
        assert set(grid) == {(l, b) for l in latencies for b in bandwidths}
        # More bandwidth and less latency can only help.
        assert grid[(0.0, 1e8)] <= grid[(1e-4, 1e7)]
        for l in latencies:
            assert grid[(l, 1e8)] <= grid[(l, 1e7)] + 1e-12
        for b in bandwidths:
            assert grid[(0.0, b)] <= grid[(1e-4, b)] + 1e-12

    def test_render(self):
        grid = latency_bandwidth_grid(
            app_factory, model_factory, PAPER_CLUSTER, (1e-4,), (1e7, 1e8)
        )
        text = render_grid(grid)
        assert "grid" in text
        assert "100 us" in text
