"""Metrics, prediction studies, tables and the sweep harness."""

import numpy as np
import pytest

from repro.analysis.metrics import (
    efficiency,
    performance_improvement,
    relative_error,
    speedup,
)
from repro.analysis.prediction import PredictionStudy
from repro.analysis.sweep import SweepCase, run_lu_case, sweep
from repro.analysis.tables import ascii_bar_chart, ascii_histogram, ascii_table
from repro.apps.lu.config import LUConfig
from repro.errors import ConfigurationError
from repro.sim.modes import SimulationMode


# ------------------------------------------------------------------ metrics
def test_speedup_and_efficiency():
    assert speedup(100.0, 25.0) == 4.0
    assert efficiency(100.0, 25.0, 8) == 0.5


def test_performance_improvement_is_papers_metric():
    # "execution time of the basic flow graph over the execution time of
    # the program incorporating the variations"
    assert performance_improvement(259.4, 72.5) == pytest.approx(3.578, rel=1e-3)


def test_relative_error_signed():
    assert relative_error(105.0, 100.0) == pytest.approx(0.05)
    assert relative_error(95.0, 100.0) == pytest.approx(-0.05)


def test_metric_validation():
    with pytest.raises(ConfigurationError):
        speedup(1.0, 0.0)
    with pytest.raises(ConfigurationError):
        relative_error(1.0, 0.0)


# ----------------------------------------------------------------- study
def test_prediction_study_summary():
    study = PredictionStudy()
    study.add("a", 100.0, 102.0)   # +2%
    study.add("b", 100.0, 95.0)    # -5%
    study.add("c", 100.0, 111.0)   # +11%
    summary = study.summary()
    assert summary["count"] == 3
    assert summary["within_4pct"] == pytest.approx(1 / 3)
    assert summary["within_6pct"] == pytest.approx(2 / 3)
    assert summary["within_12pct"] == 1.0
    assert summary["max_abs"] == pytest.approx(0.11)


def test_histogram_bins_cover_all_records():
    study = PredictionStudy()
    rng = np.random.default_rng(0)
    for i in range(100):
        err = float(rng.normal(0, 0.05))
        study.add(f"r{i}", 100.0, 100.0 * (1 + err))
    hist = study.histogram(limit=0.16, bin_width=0.02)
    assert hist.total == 100
    assert len(hist.counts) == 16
    # Outliers are clipped into the edge bins, never dropped.
    study.add("huge", 100.0, 200.0)
    assert study.histogram().total == 101


def test_empty_study_is_nan():
    study = PredictionStudy()
    assert np.isnan(study.fraction_within(0.04))
    assert np.isnan(study.max_abs_error())


# ----------------------------------------------------------------- tables
def test_ascii_table_alignment():
    out = ascii_table(["a", "bb"], [["1", "2"], ["333", "4"]], title="T")
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[1] and "bb" in lines[1]
    assert len(lines) == 5


def test_ascii_bar_chart_scales():
    out = ascii_bar_chart(["x", "y"], [1.0, 2.0], width=10)
    lines = out.splitlines()
    assert lines[1].count("#") == 10
    assert lines[0].count("#") == 5


def test_ascii_histogram_renders():
    out = ascii_histogram([(-0.02, 0.0, 5), (0.0, 0.02, 10)], width=10)
    assert "10" in out and "5" in out


def test_bar_chart_length_mismatch():
    with pytest.raises(ValueError):
        ascii_bar_chart(["a"], [1.0, 2.0])


# ------------------------------------------------------------------ sweep
def test_run_lu_case_produces_measured_and_predicted():
    cfg = LUConfig(
        n=192, r=48, num_threads=4, num_nodes=2, mode=SimulationMode.PDEXEC_NOALLOC
    )
    result = run_lu_case(SweepCase("case", cfg, seed=2))
    assert result.measured > 0
    assert result.predicted > 0
    # At small scale the models still agree reasonably.
    assert abs(result.error) < 0.5


def test_sweep_feeds_study():
    study = PredictionStudy()
    cfgs = [
        LUConfig(n=192, r=48, num_threads=4, num_nodes=2, mode=SimulationMode.PDEXEC_NOALLOC),
        LUConfig(n=192, r=96, num_threads=4, num_nodes=2, mode=SimulationMode.PDEXEC_NOALLOC),
    ]
    cases = [SweepCase(f"c{i}", cfg, seed=1) for i, cfg in enumerate(cfgs)]
    results = sweep(cases, study=study)
    assert len(results) == 2
    assert len(study.records) == 2
    assert study.records[0].label == "c0"
