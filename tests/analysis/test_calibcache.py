"""Disk-persisted calibration cache: hits, keys, corruption, clearing."""

import json

import pytest

from repro.analysis import calibcache
from repro.analysis.sweep import calibrated_platform
from repro.netmodel.packet import PacketNetworkParams
from repro.netmodel.params import NetworkParams
from repro.testbed.cluster import VirtualCluster


@pytest.fixture()
def fresh_cache(tmp_path, monkeypatch):
    """A private, empty cache directory for each test."""
    cache = tmp_path / "cache"
    monkeypatch.setenv("REPRO_CACHE_DIR", str(cache))
    return cache


def test_store_load_roundtrip(fresh_cache):
    params = NetworkParams(latency=1.5e-4, bandwidth=9.3e6, per_object_overhead=2e-5)
    calibcache.store("abc123", params)
    assert calibcache.load("abc123") == params
    assert calibcache.load("missing") is None


def test_second_calibration_hits_disk(fresh_cache, monkeypatch):
    """The expensive fit must run once; the repeat invocation (modelling a
    fresh CLI process) reads the persisted parameters instead."""
    cluster = VirtualCluster(num_nodes=4, seed=1)
    first = calibrated_platform(cluster)
    assert len(calibcache.entries()) == 1

    def boom(*args, **kwargs):  # pragma: no cover - must not run
        raise AssertionError("calibrate() ran despite a cache hit")

    import importlib

    # The package re-exports a ``sweep`` *function*, which shadows the
    # submodule under attribute access; resolve the module explicitly.
    sweep_module = importlib.import_module("repro.analysis.sweep")
    monkeypatch.setattr(sweep_module, "calibrate", boom)
    second = calibrated_platform(cluster)
    assert second.network == first.network


def test_key_depends_on_fit_inputs_only():
    """The key covers what the single-probe fit reads (network params,
    packet knobs, calibration seed) and nothing else, so sweeps over many
    cluster sizes and measurement seeds share one calibration entry."""
    cluster = VirtualCluster(num_nodes=4, seed=1)
    base = calibcache.cache_key(cluster)
    assert calibcache.cache_key(cluster) == base
    assert calibcache.cache_key(cluster.with_nodes(8)) == base
    assert calibcache.cache_key(cluster.with_seed(2)) == base
    assert calibcache.cache_key(cluster, calibration_seed=7) != base
    richer = VirtualCluster(
        num_nodes=4, seed=1, packet_params=PacketNetworkParams(mtu=9000)
    )
    assert calibcache.cache_key(richer) != base
    from repro.netmodel.params import GIGABIT_ETHERNET

    faster = VirtualCluster(num_nodes=4, seed=1, network=GIGABIT_ETHERNET)
    assert calibcache.cache_key(faster) != base


def test_corrupt_entry_is_a_miss(fresh_cache):
    calibcache.store("deadbeef", NetworkParams(latency=1e-4, bandwidth=1e6))
    path = calibcache.entries()[0]
    path.write_text("not json{", encoding="utf-8")
    assert calibcache.load("deadbeef") is None


def test_clear_removes_entries(fresh_cache):
    for key in ("k1", "k2"):
        calibcache.store(key, NetworkParams(latency=1e-4, bandwidth=1e6))
    assert len(calibcache.entries()) == 2
    assert calibcache.clear() == 2
    assert calibcache.entries() == []
    assert calibcache.clear() == 0


def test_use_disk_cache_false_bypasses(fresh_cache):
    cluster = VirtualCluster(num_nodes=2, seed=3)
    calibrated_platform(cluster, use_disk_cache=False)
    assert calibcache.entries() == []


def test_entry_payload_is_versioned(fresh_cache):
    calibcache.store("k", NetworkParams(latency=1e-4, bandwidth=1e6))
    payload = json.loads(calibcache.entries()[0].read_text(encoding="utf-8"))
    assert payload["version"] == calibcache.CACHE_VERSION
