"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.cpumodel.machines import ULTRASPARC_II_440
from repro.des.kernel import Kernel
from repro.netmodel.params import NetworkParams
from repro.sim.platform import PlatformSpec
from repro.sim.providers import CostModelProvider, MachineCostModel


@pytest.fixture(autouse=True)
def _isolated_calibration_cache(tmp_path_factory, monkeypatch):
    """Keep the on-disk calibration cache out of the user's home dir.

    Session-scoped directory: calibrations are deterministic, so sharing
    one cache across the suite is safe and keeps sweep tests fast.
    """
    cache = tmp_path_factory.getbasetemp() / "repro-calibration-cache"
    monkeypatch.setenv("REPRO_CACHE_DIR", str(cache))


@pytest.fixture
def kernel() -> Kernel:
    """A fresh discrete-event kernel."""
    return Kernel()


@pytest.fixture
def net_params() -> NetworkParams:
    """Simple network parameters: 100 us latency, 10 MB/s, no overhead."""
    return NetworkParams(latency=1e-4, bandwidth=1e7, per_object_overhead=0.0)


@pytest.fixture
def platform(net_params: NetworkParams) -> PlatformSpec:
    """Deterministic platform for runtime-level tests."""
    return PlatformSpec(machine=ULTRASPARC_II_440, network=net_params)


@pytest.fixture
def pdexec_provider() -> CostModelProvider:
    """PDEXEC provider over the UltraSparc profile (no payload execution)."""
    return CostModelProvider(MachineCostModel(ULTRASPARC_II_440))
