"""The command-line interface: parsing, each subcommand, error paths."""

import pytest

from repro.cli import build_parser, main
from repro.cli.common import MODE_NAMES, parse_kill_events, parse_mode
from repro.dps.malleability import STATIC
from repro.errors import ConfigurationError
from repro.sim.modes import SimulationMode


# --------------------------------------------------------------------------
# option parsing helpers
# --------------------------------------------------------------------------


class TestParseMode:
    def test_known_modes(self):
        assert parse_mode("direct") is SimulationMode.DIRECT
        assert parse_mode("pdexec") is SimulationMode.PDEXEC
        assert parse_mode("noalloc") is SimulationMode.PDEXEC_NOALLOC

    def test_unknown_mode(self):
        with pytest.raises(ConfigurationError):
            parse_mode("direct-but-wrong")

    def test_mode_names_cover_enum(self):
        assert set(MODE_NAMES.values()) == set(SimulationMode)


def test_matmul_direct_mode(capsys):
    code = main([
        "matmul", "--n", "96", "--s", "24", "--threads", "4", "--nodes", "2",
        "--mode", "direct", "--verify",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "verification           : OK" in out


class TestParseKill:
    def test_none_is_static(self):
        assert parse_kill_events(None) is STATIC
        assert parse_kill_events([]) is STATIC

    def test_single_event(self):
        sched = parse_kill_events(["4,5,6,7@1"])
        assert len(sched.events) == 1
        event = sched.events[0]
        assert event.after_phase == "iter1"
        assert event.group == "workers"
        assert event.thread_indices == (4, 5, 6, 7)

    def test_multiple_events(self):
        sched = parse_kill_events(["6,7@2", "4,5@3"])
        assert [e.after_phase for e in sched.events] == ["iter2", "iter3"]
        assert sched.total_removed == 4

    def test_bad_spec_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_kill_events(["4,5"])
        with pytest.raises(ConfigurationError):
            parse_kill_events(["x@1"])
        with pytest.raises(ConfigurationError):
            parse_kill_events(["@1"])


# --------------------------------------------------------------------------
# parser structure
# --------------------------------------------------------------------------


def test_parser_requires_command():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args([])


@pytest.mark.parametrize(
    "command",
    ["lu", "stencil", "sort", "matmul", "efficiency", "calibrate", "graph", "sweep"],
)
def test_all_commands_registered(command):
    parser = build_parser()
    extra = ["lu"] if command == "graph" else []
    args = parser.parse_args([command] + extra)
    assert callable(args.func)


# --------------------------------------------------------------------------
# subcommand runs (small configurations)
# --------------------------------------------------------------------------


def test_lu_sim(capsys):
    code = main([
        "lu", "--n", "648", "--r", "216", "--threads", "4", "--nodes", "2",
        "--mode", "noalloc",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "predicted running time" in out
    assert "variant=basic" in out


def test_lu_variants_and_kill(capsys):
    code = main([
        "lu", "--n", "648", "--r", "162", "--threads", "4", "--nodes", "2",
        "--pipelined", "--fc", "4", "--mode", "noalloc",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "variant=P+FC" in out

    code = main([
        "lu", "--n", "648", "--r", "162", "--threads", "4", "--nodes", "4",
        "--kill", "2,3@1", "--mode", "noalloc",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "kill 2,3@1" in out


def test_stencil_both_engines_with_verify(capsys):
    code = main([
        "stencil", "--n", "48", "--stripes", "4", "--iterations", "3",
        "--threads", "4", "--nodes", "2", "--engine", "both", "--verify",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "prediction error" in out
    assert out.count("verification           : OK") == 2


def test_stencil_kill_without_barrier_fails(capsys):
    code = main([
        "stencil", "--n", "48", "--stripes", "4", "--iterations", "3",
        "--threads", "4", "--nodes", "4", "--kill", "2,3@1",
    ])
    assert code == 2
    assert "error:" in capsys.readouterr().err


def test_sort_testbed_with_verify(capsys):
    code = main([
        "sort", "--m", "3000", "--threads", "4", "--nodes", "2",
        "--engine", "testbed", "--verify",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "measured running time" in out


def test_matmul_sim(capsys):
    code = main([
        "matmul", "--n", "96", "--s", "24", "--threads", "4", "--nodes", "2",
        "--engine", "sim", "--verify",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "verification           : OK" in out


def test_efficiency_table(capsys):
    code = main([
        "efficiency", "--n", "648", "--r", "81", "--threads", "8", "--nodes", "4",
        "--kill", "4,5,6,7@1",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "dynamic efficiency" in out
    assert "iter1" in out
    assert "whole-run efficiency" in out


def test_sweep_serial(capsys):
    code = main([
        "sweep", "--n", "192", "--r", "48,96", "--nodes", "2", "--jobs", "1",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "LU validation sweep" in out
    assert "r=48,nodes=2" in out and "r=96,nodes=2" in out
    assert "max abs prediction error" in out


def test_sweep_bad_r_list(capsys):
    code = main(["sweep", "--r", "48,oops"])
    assert code == 2
    assert "error:" in capsys.readouterr().err


def test_calibrate_star_matches_parameters(capsys):
    code = main(["calibrate", "--target", "star"])
    out = capsys.readouterr().out
    assert code == 0
    assert "fitted latency" in out
    assert "fitted bandwidth : 11.6" in out  # the paper's Fast Ethernet


def test_calibrate_testbed(capsys):
    code = main(["calibrate", "--target", "testbed", "--nodes", "2"])
    out = capsys.readouterr().out
    assert code == 0
    assert "fitted bandwidth" in out


@pytest.mark.parametrize(
    "app", ["lu", "lu-pipelined", "stencil", "stencil-barrier", "sort", "matmul"]
)
def test_graph_dump(app, capsys):
    code = main(["graph", app])
    out = capsys.readouterr().out
    assert code == 0
    assert "flow graph" in out
    assert "edges" in out


def test_graph_lu_pipelined_has_streams(capsys):
    main(["graph", "lu-pipelined"])
    out = capsys.readouterr().out
    assert "stream" in out


def test_server_all_policies(capsys):
    code = main(["server", "--jobs", "6", "--nodes", "12", "--seed", "2"])
    out = capsys.readouterr().out
    assert code == 0
    for policy in ("static", "fcfs", "fcfs+backfill", "equipartition", "adaptive"):
        assert policy in out
    assert "service rate" in out


def test_server_policy_selection(capsys):
    code = main([
        "server", "--jobs", "4", "--policy", "adaptive",
        "--workload", "mixed",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "adaptive" in out
    assert "static" not in out


def test_server_unknown_policy_fails(capsys):
    code = main(["server", "--jobs", "4", "--policy", "wishful"])
    assert code == 2
    assert "unknown policies" in capsys.readouterr().err


# --------------------------------------------------------------------------
# declarative scenarios: repro run / repro scenarios list
# --------------------------------------------------------------------------


EXAMPLES = __import__("pathlib").Path(__file__).resolve().parents[2] / "examples"

try:
    import tomllib  # noqa: F401
    _HAS_TOMLLIB = True
except ImportError:  # pragma: no cover - Python 3.10 CI leg
    _HAS_TOMLLIB = False

requires_toml = pytest.mark.skipif(
    not _HAS_TOMLLIB, reason="TOML specs need Python 3.11+ (tomllib)"
)


@requires_toml
def test_run_example_spec(capsys):
    code = main(["run", str(EXAMPLES / "lu_sim.toml")])
    out = capsys.readouterr().out
    assert code == 0
    assert "scenario 'lu-sim': app=lu engine=sim" in out
    assert "makespan" in out
    assert "per-phase dynamic efficiency" in out


def test_run_json_output(capsys):
    import json as _json

    code = main(["run", str(EXAMPLES / "matmul_packet.json"), "--json"])
    out = capsys.readouterr().out
    assert code == 0
    payload = _json.loads(out)
    assert payload["engine"] == "sim"
    assert payload["app"] == "matmul"
    assert payload["makespan"] > 0


@requires_toml
def test_run_spec_matches_legacy_subcommand(tmp_path, capsys):
    """The acceptance criterion: identical RunRecord metrics, bit-equal."""
    import json as _json

    run_path = tmp_path / "run.json"
    lu_path = tmp_path / "lu.json"
    assert main([
        "run", str(EXAMPLES / "lu_sim.toml"), "--record-json", str(run_path),
    ]) == 0
    assert main([
        "lu", "--n", "648", "--r", "216", "--threads", "4", "--nodes", "2",
        "--mode", "noalloc", "--record-json", str(lu_path),
    ]) == 0
    capsys.readouterr()
    via_spec = _json.loads(run_path.read_text())[0]
    via_legacy = _json.loads(lu_path.read_text())[0]
    assert via_spec["makespan"] == via_legacy["makespan"]
    assert via_spec["phases"] == via_legacy["phases"]
    assert via_spec["events"] == via_legacy["events"]


@requires_toml
def test_run_server_spec(capsys):
    code = main(["run", str(EXAMPLES / "server_sharded.toml")])
    out = capsys.readouterr().out
    assert code == 0
    assert "engine=server" in out
    assert "shard_epochs" in out


def test_run_missing_spec_fails(capsys):
    code = main(["run", "/nonexistent/spec.toml"])
    assert code == 2
    assert "error:" in capsys.readouterr().err


def test_scenarios_list(capsys):
    code = main(["scenarios", "list"])
    out = capsys.readouterr().out
    assert code == 0
    for line in ("app", "netmodel", "cpumodel", "provider", "engine",
                 "workload", "policy"):
        assert line in out
    assert "lu, matmul, sort, stencil" in out.replace("imgpipe, ", "")


def test_scenarios_list_kind_filter(capsys):
    code = main(["scenarios", "list", "--kind", "engine"])
    out = capsys.readouterr().out
    assert code == 0
    assert "server, sim, testbed" in out
    assert "maxmin" not in out

    code = main(["scenarios", "list", "--kind", "flavor"])
    assert code == 2
    assert "unknown plugin kind" in capsys.readouterr().err


# --------------------------------------------------------------------------
# cache info: per-family sizes and --json
# --------------------------------------------------------------------------


def test_cache_info_reports_both_families_with_sizes(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    code = main(["cache", "info"])
    out = capsys.readouterr().out
    assert code == 0
    assert "calibrations    : 0 (0 B)" in out
    assert "kernel benches  : 0 (0 B)" in out


def test_cache_info_json(tmp_path, monkeypatch, capsys):
    import json as _json

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    # Populate one calibration entry via a tiny serial sweep case.
    assert main(["calibrate", "--target", "star"]) == 0
    capsys.readouterr()
    code = main(["cache", "info", "--json"])
    out = capsys.readouterr().out
    assert code == 0
    payload = _json.loads(out)
    assert set(payload) == {"directory", "calibrations", "kernel_benches"}
    for family in ("calibrations", "kernel_benches"):
        assert {"entries", "count", "bytes"} <= set(payload[family])


# --------------------------------------------------------------------------
# persistent kernel-benchmark cache on direct-execution runs
# --------------------------------------------------------------------------


def test_direct_mode_persists_kernel_benchmarks(tmp_path, monkeypatch, capsys):
    from repro.analysis import benchcache

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    args = ["matmul", "--n", "96", "--s", "24", "--threads", "4",
            "--nodes", "2", "--mode", "direct", "--verify"]
    assert main(args) == 0
    assert benchcache.entries(), "direct run should persist sample tables"
    # The second run preloads the tables and still verifies.
    assert main(args) == 0
    out = capsys.readouterr().out
    assert out.count("verification           : OK") == 2


def test_no_persist_cache_restores_raw_direct_timing(tmp_path, monkeypatch, capsys):
    from repro.analysis import benchcache

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    assert main([
        "matmul", "--n", "96", "--s", "24", "--threads", "4", "--nodes", "2",
        "--mode", "direct", "--no-persist-cache",
    ]) == 0
    capsys.readouterr()
    assert benchcache.entries() == []
