"""The command-line interface: parsing, each subcommand, error paths."""

import pytest

from repro.cli import build_parser, main
from repro.cli.common import MODE_NAMES, parse_kill_events, parse_mode
from repro.dps.malleability import STATIC
from repro.errors import ConfigurationError
from repro.sim.modes import SimulationMode


# --------------------------------------------------------------------------
# option parsing helpers
# --------------------------------------------------------------------------


class TestParseMode:
    def test_known_modes(self):
        assert parse_mode("direct") is SimulationMode.DIRECT
        assert parse_mode("pdexec") is SimulationMode.PDEXEC
        assert parse_mode("noalloc") is SimulationMode.PDEXEC_NOALLOC

    def test_unknown_mode(self):
        with pytest.raises(ConfigurationError):
            parse_mode("direct-but-wrong")

    def test_mode_names_cover_enum(self):
        assert set(MODE_NAMES.values()) == set(SimulationMode)


def test_matmul_direct_mode(capsys):
    code = main([
        "matmul", "--n", "96", "--s", "24", "--threads", "4", "--nodes", "2",
        "--mode", "direct", "--verify",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "verification           : OK" in out


class TestParseKill:
    def test_none_is_static(self):
        assert parse_kill_events(None) is STATIC
        assert parse_kill_events([]) is STATIC

    def test_single_event(self):
        sched = parse_kill_events(["4,5,6,7@1"])
        assert len(sched.events) == 1
        event = sched.events[0]
        assert event.after_phase == "iter1"
        assert event.group == "workers"
        assert event.thread_indices == (4, 5, 6, 7)

    def test_multiple_events(self):
        sched = parse_kill_events(["6,7@2", "4,5@3"])
        assert [e.after_phase for e in sched.events] == ["iter2", "iter3"]
        assert sched.total_removed == 4

    def test_bad_spec_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_kill_events(["4,5"])
        with pytest.raises(ConfigurationError):
            parse_kill_events(["x@1"])
        with pytest.raises(ConfigurationError):
            parse_kill_events(["@1"])


# --------------------------------------------------------------------------
# parser structure
# --------------------------------------------------------------------------


def test_parser_requires_command():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args([])


@pytest.mark.parametrize(
    "command",
    ["lu", "stencil", "sort", "matmul", "efficiency", "calibrate", "graph", "sweep"],
)
def test_all_commands_registered(command):
    parser = build_parser()
    extra = ["lu"] if command == "graph" else []
    args = parser.parse_args([command] + extra)
    assert callable(args.func)


# --------------------------------------------------------------------------
# subcommand runs (small configurations)
# --------------------------------------------------------------------------


def test_lu_sim(capsys):
    code = main([
        "lu", "--n", "648", "--r", "216", "--threads", "4", "--nodes", "2",
        "--mode", "noalloc",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "predicted running time" in out
    assert "variant=basic" in out


def test_lu_variants_and_kill(capsys):
    code = main([
        "lu", "--n", "648", "--r", "162", "--threads", "4", "--nodes", "2",
        "--pipelined", "--fc", "4", "--mode", "noalloc",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "variant=P+FC" in out

    code = main([
        "lu", "--n", "648", "--r", "162", "--threads", "4", "--nodes", "4",
        "--kill", "2,3@1", "--mode", "noalloc",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "kill 2,3@1" in out


def test_stencil_both_engines_with_verify(capsys):
    code = main([
        "stencil", "--n", "48", "--stripes", "4", "--iterations", "3",
        "--threads", "4", "--nodes", "2", "--engine", "both", "--verify",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "prediction error" in out
    assert out.count("verification           : OK") == 2


def test_stencil_kill_without_barrier_fails(capsys):
    code = main([
        "stencil", "--n", "48", "--stripes", "4", "--iterations", "3",
        "--threads", "4", "--nodes", "4", "--kill", "2,3@1",
    ])
    assert code == 2
    assert "error:" in capsys.readouterr().err


def test_sort_testbed_with_verify(capsys):
    code = main([
        "sort", "--m", "3000", "--threads", "4", "--nodes", "2",
        "--engine", "testbed", "--verify",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "measured running time" in out


def test_matmul_sim(capsys):
    code = main([
        "matmul", "--n", "96", "--s", "24", "--threads", "4", "--nodes", "2",
        "--engine", "sim", "--verify",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "verification           : OK" in out


def test_efficiency_table(capsys):
    code = main([
        "efficiency", "--n", "648", "--r", "81", "--threads", "8", "--nodes", "4",
        "--kill", "4,5,6,7@1",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "dynamic efficiency" in out
    assert "iter1" in out
    assert "whole-run efficiency" in out


def test_sweep_serial(capsys):
    code = main([
        "sweep", "--n", "192", "--r", "48,96", "--nodes", "2", "--jobs", "1",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "LU validation sweep" in out
    assert "r=48,nodes=2" in out and "r=96,nodes=2" in out
    assert "max abs prediction error" in out


def test_sweep_bad_r_list(capsys):
    code = main(["sweep", "--r", "48,oops"])
    assert code == 2
    assert "error:" in capsys.readouterr().err


def test_calibrate_star_matches_parameters(capsys):
    code = main(["calibrate", "--target", "star"])
    out = capsys.readouterr().out
    assert code == 0
    assert "fitted latency" in out
    assert "fitted bandwidth : 11.6" in out  # the paper's Fast Ethernet


def test_calibrate_testbed(capsys):
    code = main(["calibrate", "--target", "testbed", "--nodes", "2"])
    out = capsys.readouterr().out
    assert code == 0
    assert "fitted bandwidth" in out


@pytest.mark.parametrize(
    "app", ["lu", "lu-pipelined", "stencil", "stencil-barrier", "sort", "matmul"]
)
def test_graph_dump(app, capsys):
    code = main(["graph", app])
    out = capsys.readouterr().out
    assert code == 0
    assert "flow graph" in out
    assert "edges" in out


def test_graph_lu_pipelined_has_streams(capsys):
    main(["graph", "lu-pipelined"])
    out = capsys.readouterr().out
    assert "stream" in out


def test_server_all_policies(capsys):
    code = main(["server", "--jobs", "6", "--nodes", "12", "--seed", "2"])
    out = capsys.readouterr().out
    assert code == 0
    for policy in ("static", "fcfs", "fcfs+backfill", "equipartition", "adaptive"):
        assert policy in out
    assert "service rate" in out


def test_server_policy_selection(capsys):
    code = main([
        "server", "--jobs", "4", "--policy", "adaptive",
        "--workload", "mixed",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "adaptive" in out
    assert "static" not in out


def test_server_unknown_policy_fails(capsys):
    code = main(["server", "--jobs", "4", "--policy", "wishful"])
    assert code == 2
    assert "unknown policies" in capsys.readouterr().err
