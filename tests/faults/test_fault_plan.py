"""The declarative fault layer: events, plans, specs, registry plumbing.

Covers the ``[faults]`` section's contract (``docs/faults.md``): lossless
TOML/JSON round-trip through the canonical spec dict, strict structural
validation, deterministic seeded target-node resolution, pluggable fault
kinds through the scenario registry, and the crash → DPS ``RemoveThreads``
compilation.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.faults import (
    BUILTIN_FAULT_KINDS,
    FaultEvent,
    FaultKind,
    FaultPlan,
    compile_dps_removals,
    event_from_dict,
    normalize_fault_event,
    resolve_fault_kind,
)
from repro.scenario.builtins import install_builtins
from repro.scenario.registry import Registry
from repro.scenario.spec import FaultsSection, ScenarioSpec


class TestEvents:
    def test_to_dict_round_trips_and_omits_defaults(self):
        ev = FaultEvent(kind="crash", at=10.0, node=3)
        payload = ev.to_dict()
        assert payload == {"kind": "crash", "at": 10.0, "node": 3}
        assert event_from_dict(payload) == ev

    def test_unknown_keys_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown"):
            normalize_fault_event({"kind": "crash", "at": 1.0, "when": 2.0})

    def test_float_keys_coerce_ints_and_int_keys_stay_strict(self):
        ev = event_from_dict({"kind": "crash", "at": 5, "node": 2})
        assert ev.at == 5.0 and isinstance(ev.at, float)
        with pytest.raises(ConfigurationError):
            normalize_fault_event({"kind": "crash", "at": 1.0, "node": 2.5})
        with pytest.raises(ConfigurationError):
            normalize_fault_event({"kind": "crash", "at": 1.0, "node": True})

    def test_builtin_validation(self):
        resolve_fault_kind("brownout").validate(
            FaultEvent(kind="brownout", at=1.0, duration=2.0)
        )
        with pytest.raises(ConfigurationError):
            resolve_fault_kind("brownout").validate(
                FaultEvent(kind="brownout", at=1.0)  # needs duration > 0
            )
        with pytest.raises(ConfigurationError):
            resolve_fault_kind("degrade").validate(
                FaultEvent(kind="degrade", at=1.0, factor=1.5)
            )
        with pytest.raises(ConfigurationError):
            resolve_fault_kind("killjob").validate(
                FaultEvent(kind="killjob", at=1.0)  # needs a job index
            )

    def test_unknown_kind_names_choices(self):
        with pytest.raises(ConfigurationError, match="crash"):
            resolve_fault_kind("meteor")


class TestSpecSection:
    def _dict_spec(self):
        return {
            "name": "faulty",
            "app": {"name": "lu"},
            "engine": {"name": "server", "seed": 11},
            "cluster": {"nodes": 8, "jobs": 4, "policy": "equipartition"},
            "faults": {
                "max_retries": 1,
                "events": [
                    {"kind": "crash", "at": 50.0, "node": 2},
                    {"kind": "degrade", "at": 10.0, "factor": 0.5,
                     "duration": 30.0},
                ],
            },
        }

    def test_dict_round_trip_is_fixed_point(self):
        spec = ScenarioSpec.from_dict(self._dict_spec())
        canonical = spec.to_dict()
        again = ScenarioSpec.from_dict(json.loads(json.dumps(canonical)))
        assert again == spec
        assert again.to_dict() == canonical

    def test_toml_and_dict_forms_agree(self):
        toml_text = """
name = "faulty"

[app]
name = "lu"

[engine]
name = "server"
seed = 11

[cluster]
nodes = 8
jobs = 4
policy = "equipartition"

[faults]
max_retries = 1

[[faults.events]]
kind = "crash"
at = 50.0
node = 2

[[faults.events]]
kind = "degrade"
at = 10.0
factor = 0.5
duration = 30.0
"""
        assert ScenarioSpec.from_toml(toml_text) == ScenarioSpec.from_dict(
            self._dict_spec()
        )

    def test_default_section_is_omitted_from_canonical_dict(self):
        # Pre-fault specs must keep their spec_key: no faults, no key.
        spec = ScenarioSpec.from_dict({"name": "plain"})
        assert spec.faults == FaultsSection()
        assert "faults" not in spec.to_dict()

    def test_bad_section_values_rejected(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpec.from_dict(
                {"name": "bad", "faults": {"max_retries": -1}}
            )
        with pytest.raises(ConfigurationError):
            # builtin kinds are semantically validated at parse time
            ScenarioSpec.from_dict(
                {"name": "bad",
                 "faults": {"events": [{"kind": "brownout", "at": 1.0}]}}
            )

    def test_unknown_kinds_parse_cleanly(self):
        # Custom registry kinds must survive spec parsing; they resolve
        # (and fail, if unregistered) when the engine builds the plan.
        spec = ScenarioSpec.from_dict(
            {"name": "custom",
             "faults": {"events": [{"kind": "flicker", "at": 1.0}]}}
        )
        assert spec.faults.events[0]["kind"] == "flicker"


class TestPlanResolution:
    def test_seeded_node_resolution_is_deterministic(self):
        plan = FaultPlan(
            events=(FaultEvent(kind="crash", at=5.0),), seed=42
        )
        a = plan.resolve(total_nodes=16)
        b = plan.resolve(total_nodes=16)
        assert a == b
        assert 0 <= a.events[0].node < 16
        other = FaultPlan(
            events=(FaultEvent(kind="crash", at=5.0),), seed=43
        ).resolve(total_nodes=10**6)
        assert other.events[0].node != a.events[0].node  # seed matters

    def test_section_seed_inherits_engine_seed(self):
        section = FaultsSection(
            events=({"kind": "crash", "at": 1.0},), max_retries=0
        )
        plan = FaultPlan.from_section(section, engine_seed=7)
        assert plan.seed == 7
        pinned = FaultPlan.from_section(
            FaultsSection(seed=3, events=({"kind": "crash", "at": 1.0},)),
            engine_seed=7,
        )
        assert pinned.seed == 3

    def test_out_of_range_node_rejected(self):
        plan = FaultPlan(events=(FaultEvent(kind="crash", at=1.0, node=9),))
        with pytest.raises(ConfigurationError):
            plan.compile(total_nodes=4)

    def test_empty_plan_compiles_to_no_entries(self):
        compiled = FaultPlan().compile(total_nodes=4)
        assert compiled.entries == ()


class TestRegistryPluggability:
    def test_builtins_registered_under_fault_kind(self):
        registry = install_builtins(Registry(name="t"))
        for name in BUILTIN_FAULT_KINDS:
            assert registry.resolve("fault", name).name == name

    def test_custom_kind_resolves_and_compiles(self):
        registry = install_builtins(Registry(name="t"))

        def _validate(ev):
            if ev.at < 0:
                raise ConfigurationError("flicker needs at >= 0")

        def _timeline(ev):
            # A one-tick brown-out: down and back up immediately after.
            return [(ev.at, "down", ev.node), (ev.at + 0.5, "up", ev.node)]

        registry.register(
            "fault",
            "flicker",
            FaultKind(
                name="flicker",
                validate=_validate,
                timeline=_timeline,
                targets_node=True,
            ),
            description="instant node flicker",
        )
        plan = FaultPlan(
            events=(FaultEvent(kind="flicker", at=3.0, node=1),)
        )
        compiled = plan.compile(total_nodes=4, registry=registry)
        ops = [(t, op, arg) for t, _seq, op, arg in compiled.entries]
        assert ops == [(3.0, "down", 1), (3.5, "up", 1)]


class TestDpsCompilation:
    def test_crash_with_after_maps_to_node_thread_removal(self):
        plan = FaultPlan(
            events=(FaultEvent(kind="crash", node=1, after=2),)
        )
        events = compile_dps_removals(plan, num_nodes=4, num_threads=8)
        assert len(events) == 1
        assert events[0].after_phase == "iter2"
        assert events[0].thread_indices == (1, 5)  # t % num_nodes == 1

    def test_non_crash_kinds_are_rejected(self):
        plan = FaultPlan(
            events=(FaultEvent(kind="brownout", at=1.0, duration=2.0),)
        )
        with pytest.raises(ConfigurationError, match="crash"):
            compile_dps_removals(plan, num_nodes=4, num_threads=8)

    def test_crash_without_after_is_rejected(self):
        plan = FaultPlan(events=(FaultEvent(kind="crash", at=1.0),))
        with pytest.raises(ConfigurationError, match="after"):
            compile_dps_removals(plan, num_nodes=4, num_threads=8)
