"""Satellite 2: fault injection — bad payloads, overload, cancels, disconnects.

Every scenario here must leave the server alive and consistent: after
each injected fault the suite asserts ``/healthz`` still answers and a
normal request still round-trips.
"""

from __future__ import annotations

import json
import socket

import pytest
from service_helpers import gate_spec, server_spec, wait_until

from repro.errors import ServiceError


class TestMalformedPayloads:
    def test_invalid_json_body_is_400(self, make_service):
        _, client = make_service()
        with pytest.raises(ServiceError) as exc:
            client._request("POST", "/run", b"{not json", expect=(200,))
        assert exc.value.status == 400
        assert "not valid JSON" in exc.value.message
        assert client.stats()["counters"]["invalid"] == 1
        assert client.healthz()["status"] == "ok"

    def test_unknown_top_level_key_gets_loader_text(self, make_service):
        _, client = make_service()
        payload = server_spec()
        payload["bogus_section"] = {"x": 1}
        with pytest.raises(ServiceError) as exc:
            client.run(payload)
        assert exc.value.status == 400
        assert "unknown top-level spec keys ['bogus_section']" in exc.value.message

    def test_unknown_section_key_gets_loader_text(self, make_service):
        _, client = make_service()
        payload = server_spec()
        payload["engine"]["warp_factor"] = 9
        with pytest.raises(ServiceError) as exc:
            client.run(payload)
        assert exc.value.status == 400
        assert "unknown keys" in exc.value.message
        assert "warp_factor" in exc.value.message

    def test_invalid_value_gets_loader_text(self, make_service):
        _, client = make_service()
        payload = server_spec()
        payload["engine"]["mode"] = "sideways"
        with pytest.raises(ServiceError) as exc:
            client.run(payload)
        assert exc.value.status == 400
        assert "unknown engine.mode" in exc.value.message

    def test_validation_failures_do_not_create_jobs(self, make_service):
        _, client = make_service()
        for _ in range(3):
            with pytest.raises(ServiceError):
                client.run({"nonsense": True})
        counters = client.stats()["counters"]
        assert counters["invalid"] == 3
        assert counters["submitted"] == 0
        # ...and the server still runs real work afterwards.
        assert client.run(server_spec())["engine"] == "server"

    def test_engine_failure_is_500_with_message(self, make_service):
        _, client = make_service()
        payload = {"name": "kaboom", "app": {"name": "lu"},
                   "engine": {"name": "boom"}}
        with pytest.raises(ServiceError) as exc:
            client.run(payload)
        assert exc.value.status == 500
        assert "engine exploded for 'kaboom'" in exc.value.message
        counters = client.stats()["counters"]
        assert counters["failed"] == 1
        assert client.healthz()["status"] == "ok"


class TestBackpressure:
    def test_queue_full_answers_429(self, make_service, gates):
        _, client = make_service(workers=1, queue_limit=2)
        client.submit(gate_spec("plug"))
        gates.wait_started("plug")
        client.submit(gate_spec("q1"))
        client.submit(gate_spec("q2"))
        with pytest.raises(ServiceError) as exc:
            client.submit(gate_spec("q3"))
        assert exc.value.status == 429
        assert "queue is full" in exc.value.message
        counters = client.stats()["counters"]
        assert counters["rejected"] == 1
        # The rejected job left no trace: queued work drains normally.
        gates.open_all()
        wait_until(
            lambda: client.stats()["counters"]["completed"] == 3
        )
        assert client.stats()["queue"]["depth"] == 0

    def test_rejected_spec_can_be_resubmitted(self, make_service, gates):
        _, client = make_service(workers=1, queue_limit=1)
        client.submit(gate_spec("plug"))
        gates.wait_started("plug")
        client.submit(gate_spec("q1"))
        with pytest.raises(ServiceError) as exc:
            client.submit(gate_spec("retry-me"))
        assert exc.value.status == 429
        gates.open("plug")
        gates.open("q1")
        wait_until(lambda: client.stats()["queue"]["depth"] == 0)
        gates.open("retry-me")
        record = client.run(gate_spec("retry-me"))
        assert record["engine"] == "gate"


class TestCancellation:
    def test_cancel_queued_job(self, make_service, gates):
        _, client = make_service(workers=1)
        client.submit(gate_spec("plug"))
        gates.wait_started("plug")
        queued = client.submit(gate_spec("victim"))
        cancelled = client.cancel(queued["id"])
        assert cancelled["state"] == "cancelled"
        assert client.job(queued["id"])["state"] == "cancelled"
        gates.open_all()
        # The cancelled job never executes.
        wait_until(lambda: client.stats()["counters"]["completed"] == 1)
        assert gates.runs["victim"] == 0
        assert client.stats()["counters"]["cancelled"] == 1

    def test_cancel_running_job_is_409(self, make_service, gates):
        _, client = make_service(workers=1)
        running = client.submit(gate_spec("busy"))
        gates.wait_started("busy")
        with pytest.raises(ServiceError) as exc:
            client.cancel(running["id"])
        assert exc.value.status == 409
        assert "cannot be interrupted" in exc.value.message
        gates.open("busy")
        wait_until(lambda: client.job(running["id"])["state"] == "done")

    def test_cancel_finished_job_is_409(self, make_service):
        _, client = make_service()
        _, job_id = client.run_with_job(server_spec())
        with pytest.raises(ServiceError) as exc:
            client.cancel(job_id)
        assert exc.value.status == 409
        assert "already done" in exc.value.message

    def test_cancel_unknown_job_is_404(self, make_service):
        _, client = make_service()
        with pytest.raises(ServiceError) as exc:
            client.cancel("j424242")
        assert exc.value.status == 404

    def test_cancel_releases_deduplicated_waiters(self, make_service, gates):
        import threading

        _, client = make_service(workers=1)
        client.submit(gate_spec("plug"))
        gates.wait_started("plug")
        queued = client.submit(gate_spec("shared"))
        errors = []

        def blocked_waiter():
            try:
                client.run(gate_spec("shared"))
            except ServiceError as exc:
                errors.append(exc)

        waiter = threading.Thread(target=blocked_waiter)
        waiter.start()
        wait_until(lambda: client.job(queued["id"])["waiters"] == 2)
        client.cancel(queued["id"])
        waiter.join(timeout=15)
        assert not waiter.is_alive()
        assert len(errors) == 1 and errors[0].status == 409
        assert "cancelled" in errors[0].message
        gates.open_all()


class TestClientDisconnects:
    def _raw_socket(self, thread) -> socket.socket:
        return socket.create_connection(("127.0.0.1", thread.port), timeout=5)

    def test_disconnect_before_request_completes(self, make_service):
        thread, client = make_service()
        sock = self._raw_socket(thread)
        sock.sendall(b"POST /run HTTP/1.1\r\ncontent-length: 9999\r\n\r\n{")
        sock.close()  # body never arrives
        assert client.healthz()["status"] == "ok"
        assert client.run(server_spec())["engine"] == "server"

    def test_garbage_request_line(self, make_service):
        thread, client = make_service()
        sock = self._raw_socket(thread)
        sock.sendall(b"\x00\xffnonsense\r\n\r\n")
        sock.close()
        assert client.healthz()["status"] == "ok"

    def test_disconnect_while_waiting_does_not_kill_job(self, make_service, gates):
        thread, client = make_service(workers=1)
        body = json.dumps(gate_spec("abandoned")).encode()
        sock = self._raw_socket(thread)
        sock.sendall(
            b"POST /run HTTP/1.1\r\ncontent-length: %d\r\n\r\n%b"
            % (len(body), body)
        )
        gates.wait_started("abandoned")  # the job is really running
        sock.close()  # ...and its requester walks away
        gates.open("abandoned")
        # The job still completes and its record is served to others.
        wait_until(lambda: client.stats()["counters"]["completed"] == 1)
        assert gates.runs["abandoned"] == 1
        assert client.healthz()["status"] == "ok"
