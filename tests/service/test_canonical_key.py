"""Satellite 4: the canonical dedup key collides exactly when it should.

Property tests over :func:`repro.service.jobs.spec_key`:

* every surface form of one scenario — partial dict (defaults implied),
  fully-expanded canonical dict, JSON round-trip, TOML round-trip,
  :class:`~repro.scenario.spec.ScenarioSpec` instance — hashes to the
  same key;
* any semantic difference (a changed seed, node count, policy, app
  option...) yields a different key.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.scenario.spec import ScenarioSpec, tomllib
from repro.service.jobs import spec_key

# ---------------------------------------------------------------- strategies

_names = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789-", min_size=1, max_size=12
)

_engine_sections = st.one_of(
    st.fixed_dictionaries(
        {"name": st.just("sim")},
        optional={
            "mode": st.sampled_from(["pdexec", "noalloc", "direct"]),
            "seed": st.integers(min_value=1, max_value=9),
        },
    ),
    st.fixed_dictionaries(
        {"name": st.just("server")},
        optional={"seed": st.integers(min_value=1, max_value=9)},
    ),
)

_cluster_sections = st.fixed_dictionaries(
    {},
    optional={
        "nodes": st.integers(min_value=1, max_value=64),
        "jobs": st.integers(min_value=1, max_value=32),
        "interarrival": st.floats(
            min_value=1.0, max_value=100.0, allow_nan=False
        ),
        "policy": st.sampled_from(["fcfs", "adaptive", "static", "backfill"]),
    },
)

_partial_specs = st.fixed_dictionaries(
    {"name": _names},
    optional={
        "app": st.fixed_dictionaries({"name": st.just("lu")}),
        "engine": _engine_sections,
        "cluster": _cluster_sections,
    },
)


def _toml_document(data: dict) -> str:
    """Render a (flat-sectioned) spec dict as TOML."""
    lines = []
    tables = []
    for key, value in data.items():
        if isinstance(value, dict):
            tables.append((key, value))
        else:
            lines.append(f"{key} = {json.dumps(value)}")
    for section, body in tables:
        lines.append(f"[{section}]")
        for key, value in body.items():
            if isinstance(value, dict):
                continue  # handled by callers that need nested tables
            lines.append(f"{key} = {json.dumps(value)}")
    return "\n".join(lines) + "\n"


# ------------------------------------------------------------------- the laws


@settings(max_examples=60, deadline=None)
@given(_partial_specs)
def test_all_surface_forms_share_one_key(partial: dict):
    spec = ScenarioSpec.from_dict(partial)
    canonical = spec.to_dict()

    keys = {
        "partial dict": spec_key(partial),
        "spec object": spec_key(spec),
        "canonical dict": spec_key(canonical),
        "json round-trip": spec_key(
            ScenarioSpec.from_json(json.dumps(canonical))
        ),
        "re-parsed canonical": spec_key(ScenarioSpec.from_dict(canonical)),
    }
    assert len(set(keys.values())) == 1, keys


@settings(max_examples=60, deadline=None)
@given(_partial_specs, _partial_specs)
def test_distinct_specs_never_collide(a: dict, b: dict):
    spec_a = ScenarioSpec.from_dict(a)
    spec_b = ScenarioSpec.from_dict(b)
    if spec_a.to_dict() == spec_b.to_dict():
        assert spec_key(a) == spec_key(b)
    else:
        assert spec_key(a) != spec_key(b)


@pytest.mark.skipif(tomllib is None, reason="tomllib needs Python >= 3.11")
@settings(max_examples=40, deadline=None)
@given(_partial_specs)
def test_toml_form_shares_the_key(partial: dict):
    document = _toml_document(partial)
    assert spec_key(ScenarioSpec.from_toml(document)) == spec_key(partial)


def test_semantic_differences_change_the_key():
    base = {
        "name": "k",
        "app": {"name": "lu"},
        "engine": {"name": "server", "seed": 2},
        "cluster": {"nodes": 8, "jobs": 4, "policy": "fcfs"},
    }
    variants = [
        {**base, "engine": {"name": "server", "seed": 3}},
        {**base, "cluster": {**base["cluster"], "nodes": 9}},
        {**base, "cluster": {**base["cluster"], "policy": "adaptive"}},
        {**base, "app": {"name": "lu", "options": {"n": 216}}},
        {**base, "name": "other"},
    ]
    keys = [spec_key(base)] + [spec_key(v) for v in variants]
    assert len(set(keys)) == len(keys)


def test_default_sections_do_not_change_the_key():
    # Spelling out a default explicitly is not a semantic difference.
    implicit = {"name": "d", "engine": {"name": "server"}}
    explicit = {
        "name": "d",
        "app": {"name": "lu"},
        "engine": {"name": "server", "seed": 1},
    }
    assert spec_key(implicit) == spec_key(explicit)


def test_key_is_stable_hex():
    key = spec_key({"name": "stable", "engine": {"name": "server"}})
    assert len(key) == 32
    int(key, 16)  # pure hex
    assert key == spec_key({"name": "stable", "engine": {"name": "server"}})
