"""Fixtures for the scenario-service tests: an in-process server harness.

The core fixture is :func:`make_service` — a factory that boots a
:class:`~repro.service.server.ServiceThread` on an ephemeral port (with
the suite's temp cache dir from the root conftest) and tears every
started server down after the test.  Services run a **gated test
registry**: alongside the builtins it registers a ``gate`` engine whose
runs block on a :class:`threading.Event` until the test releases them
(the deterministic way to hold workers busy, fill the queue, and observe
in-flight dedup) and a ``boom`` engine that always raises.
"""

from __future__ import annotations

import threading
from collections import Counter

import pytest

from repro.scenario import Registry, RunRecord
from repro.scenario.builtins import install_builtins
from repro.service import ServiceClient, ServiceThread

#: Gate engines must never block forever: a wedged test run would hang
#: interpreter shutdown (worker threads are joined at exit).
GATE_TIMEOUT_S = 30.0


class GateController:
    """Open/close gates for ``gate``-engine runs, and count executions."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._gates: dict[str, threading.Event] = {}
        self._started: dict[str, threading.Event] = {}
        self._all_open = False
        self.runs: Counter = Counter()

    def _event(self, table: dict, gate_id: str) -> threading.Event:
        with self._lock:
            if gate_id not in table:
                table[gate_id] = threading.Event()
                if table is self._gates and self._all_open:
                    table[gate_id].set()
            return table[gate_id]

    def open(self, gate_id: str) -> None:
        """Let every (current and future) run of ``gate_id`` finish."""
        self._event(self._gates, gate_id).set()

    def open_all(self) -> None:
        """Open every gate, including ones no run has reached yet."""
        with self._lock:
            self._all_open = True
            gates = list(self._gates.values())
        for gate in gates:
            gate.set()

    def wait_started(self, gate_id: str, timeout: float = GATE_TIMEOUT_S) -> bool:
        """Block until a worker actually begins executing ``gate_id``."""
        return self._event(self._started, gate_id).wait(timeout)

    def started(self, gate_id: str) -> bool:
        return self._event(self._started, gate_id).is_set()

    def run(self, spec, registry) -> RunRecord:
        """The ``gate`` engine: record the start, block, return a record."""
        gate_id = spec.engine.options.get("gate", "default")
        with self._lock:
            self.runs[gate_id] += 1
        self._event(self._started, gate_id).set()
        if not self._event(self._gates, gate_id).wait(GATE_TIMEOUT_S):
            raise RuntimeError(f"gate {gate_id!r} was never opened")
        return RunRecord(
            scenario=spec.name,
            app=spec.app.name,
            engine="gate",
            makespan=1.0,
            wall_time_s=0.0,
            events=1,
            seed=spec.engine.seed,
            metrics={"gate_runs": float(self.runs[gate_id])},
        )


def _boom_engine(spec, registry) -> RunRecord:
    raise RuntimeError(f"engine exploded for {spec.name!r}")


@pytest.fixture
def gates() -> GateController:
    return GateController()


@pytest.fixture
def test_registry(gates: GateController) -> Registry:
    """Builtins plus the blocking ``gate`` and failing ``boom`` engines."""
    registry = install_builtins(Registry(name="service-tests"))
    registry.register("engine", "gate", gates.run, description="blocks on an event")
    registry.register("engine", "boom", _boom_engine, description="always raises")
    return registry


@pytest.fixture
def make_service(test_registry: Registry, gates: GateController):
    """Factory: boot an in-process service, return (thread, client).

    Defaults to the gated test registry on a 2-worker thread pool;
    keyword arguments override any :class:`ScenarioService` parameter.
    Every started service is closed (and its gates released, so no
    worker is left blocked) at teardown.
    """
    started: list[ServiceThread] = []

    def factory(**kwargs) -> tuple[ServiceThread, ServiceClient]:
        kwargs.setdefault("workers", 2)
        kwargs.setdefault("mode", "thread")
        kwargs.setdefault("registry", test_registry)
        thread = ServiceThread(**kwargs).start()
        started.append(thread)
        return thread, ServiceClient(port=thread.port, timeout=60.0)

    yield factory
    gates.open_all()
    for thread in started:
        thread.close()


