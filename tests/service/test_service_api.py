"""HTTP contract of the scenario service: endpoints, records, lifecycle."""

from __future__ import annotations

import pytest
from service_helpers import gate_spec, server_spec, strip_wall, wait_until

from repro.errors import ServiceError
from repro.scenario import run_scenario
from repro.scenario.spec import ScenarioSpec


class TestEndpoints:
    def test_healthz(self, make_service):
        _, client = make_service()
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["uptime_s"] >= 0.0

    def test_stats_shape(self, make_service):
        _, client = make_service()
        stats = client.stats()
        assert set(stats) == {
            "server", "queue", "counters", "cache", "latency", "faults",
        }
        assert stats["faults"] == {
            "crashes": 0, "retries": 0, "deadline_kills": 0,
        }
        assert stats["server"]["pool_mode"] == "thread"
        assert stats["server"]["workers"] == 2
        assert stats["queue"] == {"depth": 0, "active": 0, "inflight_jobs": 0}
        for counter in (
            "requests", "submitted", "deduplicated", "completed", "failed",
            "cancelled", "rejected", "invalid", "executed",
        ):
            assert stats["counters"][counter] == 0
        assert stats["latency"] == {"count": 0, "p50_s": None, "p99_s": None}
        assert stats["cache"]["calibration_warm_hits"] == 0

    def test_unknown_path_404_and_bad_method_405(self, make_service):
        _, client = make_service()
        with pytest.raises(ServiceError) as exc:
            client._request("GET", "/nope")
        assert exc.value.status == 404
        with pytest.raises(ServiceError) as exc:
            client._request("DELETE", "/healthz")
        assert exc.value.status == 405
        with pytest.raises(ServiceError) as exc:
            client._request("GET", "/run")
        assert exc.value.status == 405

    def test_unknown_job_404(self, make_service):
        _, client = make_service()
        with pytest.raises(ServiceError) as exc:
            client.job("j999999")
        assert exc.value.status == 404


class TestRunRecords:
    def test_record_matches_direct_run(self, make_service, test_registry):
        _, client = make_service()
        payload = server_spec(seed=5, policy="adaptive")
        direct = run_scenario(
            ScenarioSpec.from_dict(payload), test_registry
        ).to_dict()
        record = client.run(payload)
        assert strip_wall(record) == strip_wall(direct)
        # wall time is reported, just not comparable
        assert record["wall_time_s"] >= 0.0

    def test_spec_object_and_dict_accepted(self, make_service):
        _, client = make_service()
        payload = server_spec()
        from_dict = client.run(payload)
        from_spec = client.run(ScenarioSpec.from_dict(payload))
        assert strip_wall(from_dict) == strip_wall(from_spec)

    def test_latency_tracked(self, make_service):
        _, client = make_service()
        client.run(server_spec())
        latency = client.stats()["latency"]
        assert latency["count"] == 1
        assert latency["p50_s"] > 0.0
        assert latency["p99_s"] >= latency["p50_s"]


class TestJobLifecycle:
    def test_async_submit_and_poll(self, make_service, gates):
        _, client = make_service(workers=1)
        description = client.submit(gate_spec("poll"))
        job_id = description["id"]
        assert description["state"] in ("queued", "running")
        gates.wait_started("poll")
        assert client.job(job_id)["state"] == "running"
        gates.open("poll")
        wait_until(lambda: client.job(job_id)["state"] == "done")
        final = client.job(job_id)
        assert final["record"]["engine"] == "gate"
        assert final["latency_s"] > 0.0
        assert final["queued_s"] >= 0.0

    def test_blocking_run_reports_job_id(self, make_service):
        _, client = make_service()
        record, job_id = client.run_with_job(server_spec())
        assert job_id.startswith("j")
        described = client.job(job_id)
        assert described["state"] == "done"
        assert strip_wall(described["record"]) == strip_wall(record)

    def test_priority_order_single_worker(self, make_service, gates):
        _, client = make_service(workers=1)
        client.submit(gate_spec("plug"))
        gates.wait_started("plug")
        # Both queued behind the plug; the high-priority one must start
        # first once the worker frees up.
        client.submit(gate_spec("low"), priority=0)
        client.submit(gate_spec("high"), priority=10)
        gates.open("plug")
        assert gates.wait_started("high")
        assert not gates.started("low")
        gates.open("high")
        assert gates.wait_started("low")
        gates.open("low")

    def test_inflight_dedup_shares_one_execution(self, make_service, gates):
        _, client = make_service(workers=1)
        client.submit(gate_spec("plug"))
        gates.wait_started("plug")
        first = client.submit(gate_spec("dup"))
        second = client.submit(gate_spec("dup"))
        assert first["id"] == second["id"]
        assert second["waiters"] == 2
        stats = client.stats()
        assert stats["counters"]["deduplicated"] == 1
        gates.open_all()
        wait_until(lambda: client.job(first["id"])["state"] == "done")
        assert gates.runs["dup"] == 1

    def test_history_eviction(self, make_service):
        _, client = make_service(history_limit=2)
        ids = [
            client.run_with_job(server_spec(seed=seed))[1] for seed in (1, 2, 3)
        ]
        with pytest.raises(ServiceError) as exc:
            client.job(ids[0])
        assert exc.value.status == 404
        assert client.job(ids[2])["state"] == "done"
