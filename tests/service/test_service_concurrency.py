"""Satellite 1: concurrent dup-heavy load — dedup, parity, single execution.

50 concurrent blocking requests over 5 unique scenarios (10 requests
each) against a service whose workers are first plugged with gated jobs,
so every request provably arrives while its job is still in flight:

* every response is bit-identical to a direct
  :func:`~repro.scenario.runner.run_scenario` of the same spec (modulo
  the host wall-clock fields);
* the dedup counter equals the forced collision count (45);
* no job executed twice — the pool dispatched exactly
  ``uniques + plugs`` tickets.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

from service_helpers import gate_spec, server_spec, strip_wall, wait_until

from repro.scenario import run_scenario
from repro.scenario.spec import ScenarioSpec

UNIQUES = 5
DUPES_PER_SPEC = 10
WORKERS = 2  # service workers, all plugged before the burst


def test_concurrent_dup_heavy_requests(make_service, gates, test_registry):
    service, client = make_service(workers=WORKERS, queue_limit=64)
    specs = [
        server_spec(name=f"burst-{i}", seed=i + 1, policy="adaptive")
        for i in range(UNIQUES)
    ]
    direct = {
        spec["name"]: run_scenario(ScenarioSpec.from_dict(spec), test_registry)
        .to_dict()
        for spec in specs
    }

    # Plug every worker so the burst's jobs all stay queued (and hence
    # in flight) until every duplicate has attached.
    for i in range(WORKERS):
        client.submit(gate_spec(f"plug-{i}"))
    for i in range(WORKERS):
        assert gates.wait_started(f"plug-{i}")

    requests = [spec for spec in specs for _ in range(DUPES_PER_SPEC)]
    assert len(requests) == UNIQUES * DUPES_PER_SPEC == 50
    with ThreadPoolExecutor(max_workers=len(requests)) as pool:
        futures = [pool.submit(client.run_with_job, spec) for spec in requests]
        # Release the plugs only after every request has been absorbed
        # into the job table — the dedup count is then deterministic.
        expected_submitted = UNIQUES + WORKERS
        expected_dedup = len(requests) - UNIQUES
        wait_until(
            lambda: client.stats()["counters"]["deduplicated"] == expected_dedup
        )
        gates.open_all()
        responses = [future.result(timeout=60) for future in futures]

    # Parity: every one of the 50 responses equals its direct run.
    for spec, (record, _) in zip(requests, responses):
        assert strip_wall(record) == strip_wall(direct[spec["name"]])

    # One job id per unique spec, shared by its 10 duplicates.
    ids_by_name: dict[str, set] = {}
    for spec, (_, job_id) in zip(requests, responses):
        ids_by_name.setdefault(spec["name"], set()).add(job_id)
    assert all(len(ids) == 1 for ids in ids_by_name.values())
    assert len(set().union(*ids_by_name.values())) == UNIQUES

    stats = client.stats()
    counters = stats["counters"]
    assert counters["requests"] == len(requests) + WORKERS
    assert counters["submitted"] == expected_submitted
    assert counters["deduplicated"] == expected_dedup
    assert counters["completed"] == expected_submitted
    assert counters["failed"] == 0

    # No job executed twice: the pool dispatched exactly one ticket per
    # unique job, and the gate engine observed one run per plug.
    assert counters["executed"] == expected_submitted
    assert service.service.pool.executed == expected_submitted
    assert all(gates.runs[f"plug-{i}"] == 1 for i in range(WORKERS))

    # All latencies were recorded.
    assert stats["latency"]["count"] == expected_submitted
