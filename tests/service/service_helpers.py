"""Plain helpers shared by the scenario-service tests (fixture-free)."""

from __future__ import annotations

import time


def wait_until(predicate, timeout: float = 15.0, interval: float = 0.01) -> None:
    """Poll ``predicate`` until it is truthy (AssertionError past timeout)."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    raise AssertionError("condition not reached in time")


def server_spec(
    name: str = "svc-test",
    seed: int = 2,
    nodes: int = 8,
    jobs: int = 4,
    interarrival: float = 10.0,
    policy: str = "fcfs",
) -> dict:
    """A tiny (milliseconds) cluster-server scenario in dict form."""
    return {
        "name": name,
        "app": {"name": "lu"},
        "engine": {"name": "server", "seed": seed},
        "cluster": {
            "nodes": nodes,
            "jobs": jobs,
            "interarrival": interarrival,
            "policy": policy,
        },
    }


def gate_spec(gate_id: str, name: str = "gated") -> dict:
    """A scenario that blocks on ``gate_id`` until the test opens it."""
    return {
        "name": f"{name}-{gate_id}",
        "app": {"name": "lu"},
        "engine": {"name": "gate", "options": {"gate": gate_id}},
    }


#: Metric-name fragments measured on the host clock (vary run to run);
#: every other record field is a deterministic simulated quantity.
HOST_TIME_FRAGMENTS = ("wall", "barrier_wait")


def _host_timed(key: str) -> bool:
    return any(fragment in key for fragment in HOST_TIME_FRAGMENTS)


def strip_wall(record: dict) -> dict:
    """Drop host wall-clock fields — everything else is deterministic."""
    out = {}
    for key, value in record.items():
        if _host_timed(key):
            continue
        if isinstance(value, dict):
            value = {k: v for k, v in value.items() if not _host_timed(k)}
        out[key] = value
    return out
