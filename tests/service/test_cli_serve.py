"""Satellite 5 (harness): boot ``repro serve`` as a real subprocess.

The same flow the CI ``service-smoke`` job runs: start the daemon on an
ephemeral port (``--port 0 --port-file``), drive it with
:class:`~repro.service.client.ServiceClient` over the repo's example
specs, assert records match direct in-process runs, force a dedup hit,
and shut it down with SIGTERM.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest
from service_helpers import server_spec, strip_wall, wait_until

from repro.errors import ServiceError
from repro.scenario import run_scenario
from repro.scenario.spec import ScenarioSpec
from repro.service import ServiceClient

REPO_ROOT = Path(__file__).resolve().parents[2]
EXAMPLES = ["server_eager.toml", "server_sharded.toml", "lu_sim.toml"]


def _spawn_daemon(port_file, new_session=False):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0", "--port-file", str(port_file),
            "--workers", "1", "--queue-limit", "64",
        ],
        cwd=REPO_ROOT,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        start_new_session=new_session,
    )
    deadline = time.monotonic() + 60
    while not port_file.exists():
        if proc.poll() is not None:
            raise AssertionError(
                f"repro serve died during startup:\n{proc.stdout.read()}"
            )
        if time.monotonic() > deadline:
            proc.kill()
            raise AssertionError("repro serve never wrote its port file")
        time.sleep(0.05)
    return proc, ServiceClient(port=int(port_file.read_text()), timeout=120.0)


@pytest.fixture
def serve_daemon(tmp_path):
    """A ``repro serve`` subprocess on an ephemeral port; yields a client."""
    proc, client = _spawn_daemon(tmp_path / "serve.port")
    try:
        yield proc, client
    finally:
        if proc.poll() is None:
            proc.terminate()
            proc.wait(timeout=30)


def test_serve_subprocess_end_to_end(serve_daemon):
    proc, client = serve_daemon
    assert client.healthz()["status"] == "ok"

    # The example specs round-trip with records identical to direct runs.
    for example in EXAMPLES:
        spec = ScenarioSpec.from_file(REPO_ROOT / "examples" / example)
        direct = run_scenario(spec).to_dict()
        record = client.run(spec)
        assert strip_wall(record) == strip_wall(direct), example

    # Forced dedup: saturate the single worker with slow jobs, then
    # submit the same new spec twice — both must map to one job.
    # jobs=150/interarrival=5.0 keeps each plug ~0.1s; larger streams can
    # hit seed-dependent pathological schedules in the server engine.
    for seed in (11, 12, 13):
        client.submit(server_spec(name="slow", seed=seed, jobs=150, interarrival=5.0))
    dup = server_spec(name="dup-me", seed=99)
    first = client.submit(dup)
    second = client.submit(dup)
    assert first["id"] == second["id"]
    stats = client.stats()
    assert stats["counters"]["deduplicated"] >= 1
    assert stats["server"]["pool_mode"] == "process"

    wait_until(
        lambda: client.job(first["id"])["state"] == "done", timeout=120
    )
    assert client.stats()["counters"]["failed"] == 0

    # Spec validation errors surface as 400s from the daemon too.
    with pytest.raises(ServiceError) as exc:
        client.run({"name": "bad", "nope": 1})
    assert exc.value.status == 400
    assert "unknown top-level spec keys" in exc.value.message

    # SIGTERM: clean, prompt shutdown.
    proc.send_signal(signal.SIGTERM)
    assert proc.wait(timeout=30) == 0
    assert "shut down" in proc.stdout.read()


@pytest.mark.skipif(not hasattr(os, "killpg"), reason="needs process groups")
def test_serve_group_sigterm_after_traffic(tmp_path):
    """Group-delivered SIGTERM (Ctrl-C, systemd, ``timeout``) shuts down.

    The signal reaches the pool workers too; they must ignore it and let
    the daemon terminate the pool, or ``Pool.join`` can hang on the
    worker-respawn race.  Traffic first, so the teardown happens with
    used queues — the regime where the hang reproduced.
    """
    proc, client = _spawn_daemon(tmp_path / "serve.port", new_session=True)
    try:
        spec = ScenarioSpec.from_file(REPO_ROOT / "examples" / "lu_sim.toml")
        client.run(spec)
        os.killpg(proc.pid, signal.SIGTERM)
        assert proc.wait(timeout=30) == 0
        assert "shut down" in proc.stdout.read()
    finally:
        if proc.poll() is None:
            os.killpg(proc.pid, signal.SIGKILL)
            proc.wait(timeout=10)
