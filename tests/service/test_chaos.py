"""Chaos tests: the service survives worker death, deadlines, overload.

The end-to-end crash-safety contract (``docs/faults.md``): SIGKILLing a
process-mode pool worker mid-job must not take the service down — the
job is re-dispatched under its retry budget and completes with
``attempts > 1`` visible in ``GET /jobs/<id>`` and the crash counted in
``/stats``; a job over its ``?deadline`` budget fails with a 504; and a
client configured with retries rides out 429 backpressure.
"""

from __future__ import annotations

import os
import signal
import threading

import pytest
from service_helpers import gate_spec, server_spec, wait_until

from repro.errors import ServiceError
from repro.service import ServiceClient


def _lu_spec(name: str, n: int = 1296, r: int = 162) -> dict:
    """A real sim-engine LU run: long enough to kill mid-flight."""
    return {
        "name": name,
        "app": {
            "name": "lu",
            "options": {"n": n, "r": r, "num_threads": 8, "num_nodes": 8},
        },
        "engine": {"name": "sim", "seed": 1},
    }


def _hasten(thread) -> None:
    """Tighten the pool's monitor cadence for test-speed crash detection.

    The monitor re-reads both knobs every tick, so this takes effect
    within one (old) heartbeat.
    """
    thread.service.pool.heartbeat = 0.05
    thread.service.pool.backoff = 0.05


class TestWorkerKill:
    def test_sigkilled_worker_job_retries_and_completes(self, make_service):
        thread, client = make_service(
            mode="process", registry=None, workers=2
        )
        _hasten(thread)
        attempts = 0
        for round_ in range(5):
            desc = client.submit(
                _lu_spec(f"chaos-kill-{round_}"), max_retries=3
            )
            job_id = desc["id"]
            job = thread.service.jobs.get(job_id)
            # The worker announces its pid at dispatch; the monitor tags
            # the ticket within a heartbeat.
            wait_until(
                lambda: job.ticket._pid is not None
                or job.state in ("done", "failed"),
                timeout=30.0,
            )
            pid = job.ticket._pid
            if pid is not None and job.state == "running":
                try:
                    os.kill(pid, signal.SIGKILL)
                except ProcessLookupError:
                    pass
            wait_until(
                lambda: client.job(job_id)["state"] in ("done", "failed"),
                timeout=60.0,
            )
            final = client.job(job_id)
            assert final["state"] == "done", final.get("error")
            attempts = final["attempts"]
            if attempts > 1:
                break
        assert attempts > 1, "never caught a worker mid-job in 5 rounds"
        stats = client.stats()
        assert stats["faults"]["crashes"] >= 1
        assert stats["faults"]["retries"] >= 1
        # the service is still healthy and serves fresh work
        assert client.healthz()["status"] == "ok"
        record = client.run(server_spec(seed=9))
        assert record["engine"] == "server"

    def test_deadline_kills_worker_and_returns_504(self, make_service):
        thread, client = make_service(
            mode="process", registry=None, workers=1
        )
        _hasten(thread)
        with pytest.raises(ServiceError) as exc:
            client.run(
                _lu_spec("chaos-deadline", n=2592, r=162), deadline=0.3
            )
        assert exc.value.status == 504
        assert "deadline" in str(exc.value)
        wait_until(lambda: client.stats()["faults"]["deadline_kills"] >= 1)
        assert client.stats()["faults"]["deadline_kills"] >= 1
        # the killed worker's slot was reclaimed: new work still runs
        record = client.run(server_spec(seed=10))
        assert record["engine"] == "server"


class TestThreadDeadline:
    def test_stuck_thread_job_fails_with_504(self, make_service, gates):
        # Thread mode cannot kill the worker, but the ticket must still
        # fail past its deadline (the eventual result is discarded).
        thread, client = make_service(workers=1)
        _hasten(thread)
        desc = client.submit(gate_spec("stuck"), deadline=0.3)
        job_id = desc["id"]
        wait_until(lambda: client.job(job_id)["state"] == "failed")
        final = client.job(job_id)
        assert final["failure"] == "deadline"
        assert "deadline" in final["error"]
        gates.open("stuck")
        # no process was killed — the worker thread finishes harmlessly
        assert client.stats()["faults"]["deadline_kills"] == 0


class TestClientRetries:
    def test_client_rides_out_backpressure(self, make_service, gates):
        thread, client = make_service(workers=1, queue_limit=1)
        retrying = ServiceClient(
            port=thread.port, timeout=60.0, retries=5, backoff=0.1
        )
        # Saturate: one job running, one queued — the next POST is a 429.
        client.submit(gate_spec("plug"))
        gates.wait_started("plug")
        client.submit(gate_spec("fill"))

        result: dict = {}

        def blocked_run():
            result["record"] = retrying.run(server_spec(seed=7))

        runner = threading.Thread(target=blocked_run)
        runner.start()
        # The retrying client must hit backpressure at least once...
        wait_until(lambda: client.stats()["counters"]["rejected"] >= 1)
        # ...then succeed once the queue drains.
        gates.open_all()
        runner.join(timeout=30.0)
        assert not runner.is_alive()
        assert result["record"]["engine"] == "server"

    def test_zero_retries_fails_fast(self, make_service, gates):
        _, client = make_service(workers=1, queue_limit=1)
        client.submit(gate_spec("plug"))
        gates.wait_started("plug")
        client.submit(gate_spec("fill"))
        with pytest.raises(ServiceError) as exc:
            client.run(server_spec(seed=8))
        assert exc.value.status == 429
