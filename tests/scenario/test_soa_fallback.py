"""Graceful degradation of the ``*-soa`` plugins when numpy is missing.

Runs with or without numpy installed: availability is monkeypatched at the
single point the registry consults (``repro.des.soa.np``), so both CI legs
exercise the same paths.  The contract: a spec naming an SoA backend still
runs — the factory silently builds the scalar twin after printing a
one-line hint (once per process, to stderr, not an exception).
"""

import pytest

import repro.des.soa as soa_mod
from repro.des.kernel import Kernel
from repro.netmodel.maxmin import MaxMinStarNetwork
from repro.netmodel.params import NetworkParams
from repro.scenario.registry import Registry
from repro.scenario.builtins import install_builtins


@pytest.fixture
def no_numpy(monkeypatch):
    """Make the SoA backend unavailable and re-arm the once-only hint."""
    monkeypatch.setattr(soa_mod, "np", None)
    monkeypatch.setattr(soa_mod, "_hinted", False)
    return soa_mod


@pytest.fixture
def registry():
    # A private registry so plugin factories resolve fresh under the patch.
    return install_builtins(Registry(name="fallback-test"))


PARAMS = NetworkParams(latency=1e-4, bandwidth=1e6)


def test_soa_unavailable_is_reported(no_numpy):
    assert not soa_mod.soa_available()
    assert "numpy" in soa_mod.numpy_missing_hint()


def test_netmodel_soa_falls_back_to_scalar(no_numpy, registry, capsys):
    factory = registry.resolve("netmodel", "maxmin-soa")
    net = factory(Kernel(), PARAMS)
    assert isinstance(net, MaxMinStarNetwork)
    err = capsys.readouterr().err
    assert "numpy not found" in err
    assert len(err.strip().splitlines()) == 1


def test_cpumodel_soa_falls_back_to_scalar(no_numpy, registry):
    from repro.cpumodel.shared import SharedCpuModel
    from repro.sim import PAPER_CLUSTER

    factory = registry.resolve("cpumodel", "shared-soa")
    cpu = factory(Kernel(), PAPER_CLUSTER)
    assert isinstance(cpu, SharedCpuModel)


def test_hint_printed_once_per_process(no_numpy, registry, capsys):
    factory = registry.resolve("netmodel", "maxmin-soa")
    factory(Kernel(), PARAMS)
    factory(Kernel(), PARAMS)
    err = capsys.readouterr().err
    assert err.count("numpy not found") == 1


def test_soa_runs_when_available(registry):
    """With numpy present the same plugin name builds the SoA model."""
    pytest.importorskip("numpy")
    from repro.netmodel.soa import MaxMinStarNetworkSoA

    factory = registry.resolve("netmodel", "maxmin-soa")
    net = factory(Kernel(), PARAMS)
    assert isinstance(net, MaxMinStarNetworkSoA)
