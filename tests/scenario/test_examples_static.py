"""Every shipped example spec loads through the strict ScenarioSpec
loaders without executing an engine (the static half of the
scenario-matrix CI job; REP-R002 enforces the same contract)."""

from pathlib import Path

import pytest

from repro.scenario import ScenarioSpec
from repro.scenario.spec import tomllib

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"
SPECS = sorted(
    p for p in EXAMPLES.iterdir() if p.suffix in (".toml", ".json")
)


def test_examples_directory_has_specs():
    assert SPECS, f"no example specs found under {EXAMPLES}"


@pytest.mark.parametrize("path", SPECS, ids=lambda p: p.name)
def test_example_spec_loads(path):
    if path.suffix == ".toml" and tomllib is None:
        pytest.skip("TOML specs need Python 3.11+")
    spec = ScenarioSpec.from_file(path)
    assert spec.name, f"{path.name}: spec must carry a name"
    assert spec.app.name
    assert spec.engine.name
