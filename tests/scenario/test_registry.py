"""Registry: registration, lookup, duplicate/unknown error paths."""

import pytest

from repro.errors import ConfigurationError
from repro.scenario import (
    AppPlugin,
    AppSection,
    EngineSection,
    Registry,
    ScenarioSpec,
    default_registry,
)
from repro.scenario.builtins import install_builtins


@pytest.fixture
def registry() -> Registry:
    return Registry(name="test")


class TestRegistration:
    def test_register_and_resolve(self, registry):
        sentinel = object()
        registry.register("engine", "mine", sentinel)
        assert registry.resolve("engine", "mine") is sentinel

    def test_duplicate_name_rejected(self, registry):
        registry.register("netmodel", "fabric", object())
        with pytest.raises(ConfigurationError, match="already registered"):
            registry.register("netmodel", "fabric", object())

    def test_replace_shadows_deliberately(self, registry):
        first, second = object(), object()
        registry.register("netmodel", "fabric", first)
        registry.register("netmodel", "fabric", second, replace=True)
        assert registry.resolve("netmodel", "fabric") is second

    def test_empty_name_rejected(self, registry):
        with pytest.raises(ConfigurationError, match="non-empty"):
            registry.register("app", "", object())

    def test_unknown_kind_rejected(self, registry):
        with pytest.raises(ConfigurationError, match="unknown plugin kind"):
            registry.register("flavor", "x", object())
        with pytest.raises(ConfigurationError, match="unknown plugin kind"):
            registry.names("flavor")

    def test_unknown_name_lists_choices(self, registry):
        registry.register("policy", "fifo", object())
        with pytest.raises(ConfigurationError, match=r"\['fifo'\]"):
            registry.resolve("policy", "lifo")


class TestDefaultRegistry:
    def test_builtins_present(self):
        registry = default_registry()
        assert registry.names("app") == [
            "imgpipe", "lu", "matmul", "sort", "stencil",
        ]
        assert registry.names("netmodel") == [
            "analytic", "backplane", "maxmin", "maxmin-soa",
            "packet", "packet-soa", "star", "star-soa",
        ]
        assert registry.names("cpumodel") == [
            "shared", "shared-soa", "timeslice", "timeslice-soa",
        ]
        assert registry.names("engine") == ["server", "sim", "testbed"]
        assert registry.names("workload") == [
            "bursty", "diurnal", "lu", "mixed", "poisson", "trace",
        ]
        assert registry.names("policy") == [
            "adaptive", "admission", "autoscale", "backfill",
            "equipartition", "fcfs", "static",
        ]

    def test_descriptions_exposed(self):
        registry = default_registry()
        assert "MMPP" in registry.describe("workload", "bursty")
        assert "admission" in registry.describe("policy", "admission")
        # `repro scenarios list` prints these: every model names its backend.
        assert "scalar backend" in registry.describe("netmodel", "maxmin")
        assert "soa backend" in registry.describe("netmodel", "maxmin-soa")
        assert "scalar backend" in registry.describe("cpumodel", "timeslice")
        assert "soa backend" in registry.describe("cpumodel", "shared-soa")
        assert registry.describe("engine", "sim") == ""
        with pytest.raises(ConfigurationError, match="unknown workload"):
            registry.describe("workload", "nope")

    def test_default_registry_is_memoized(self):
        assert default_registry() is default_registry()

    def test_builtins_install_into_fresh_registry(self):
        fresh = install_builtins(Registry(name="fresh"))
        assert fresh.names("app") == default_registry().names("app")


class TestAppPlugin:
    def test_make_config_folds_mode_and_options(self):
        plugin: AppPlugin = default_registry().resolve("app", "lu")
        spec = ScenarioSpec(
            app=AppSection("lu", {"n": 192, "r": 48, "num_threads": 4,
                                  "num_nodes": 2}),
            engine=EngineSection(mode="noalloc"),
        )
        cfg = plugin.make_config(spec)
        assert cfg.n == 192 and cfg.r == 48
        assert not cfg.mode.runs_kernels

    def test_make_config_rejects_unknown_option(self):
        plugin = default_registry().resolve("app", "lu")
        spec = ScenarioSpec(app=AppSection("lu", {"blocksize": 48}))
        with pytest.raises(ConfigurationError, match="invalid options"):
            plugin.make_config(spec)

    def test_events_rejected_for_schedule_free_apps(self):
        plugin = default_registry().resolve("app", "sort")
        spec = ScenarioSpec(app=AppSection("sort"), events=("1@1",))
        with pytest.raises(ConfigurationError, match="does not support"):
            plugin.make_config(spec)

    def test_events_accepted_for_lu(self):
        plugin = default_registry().resolve("app", "lu")
        spec = ScenarioSpec(
            app=AppSection("lu", {"n": 192, "r": 48, "num_threads": 4,
                                  "num_nodes": 4}),
            engine=EngineSection(mode="noalloc"),
            events=("2,3@1",),
        )
        cfg = plugin.make_config(spec)
        assert cfg.schedule.total_removed == 2
