"""Scenario-native sweeps: one fan-out spanning engines and netmodels."""

import pytest

from repro.analysis.parallel import ParallelSweepRunner
from repro.analysis.sweep import SweepCase, run_lu_case, sweep_specs
from repro.apps.lu.config import LUConfig
from repro.scenario import (
    AppSection,
    EngineSection,
    ModelSection,
    PlatformSection,
    ScenarioSpec,
    calibration_key,
)
from repro.sim.modes import SimulationMode

# Every scenario here runs a real app (LU kernels etc.) — numpy territory.
pytest.importorskip("numpy")

LU_OPTIONS = {"n": 192, "r": 48, "num_threads": 4, "num_nodes": 2}


def _cross_engine_specs() -> list[ScenarioSpec]:
    """Four specs spanning two engines and three netmodels."""
    app = AppSection("lu", dict(LU_OPTIONS))
    return [
        ScenarioSpec(
            name="sim-star", app=app,
            engine=EngineSection("sim", mode="noalloc"),
            netmodel=ModelSection("star"),
        ),
        ScenarioSpec(
            name="sim-maxmin", app=app,
            engine=EngineSection("sim", mode="noalloc"),
            netmodel=ModelSection("maxmin"),
        ),
        ScenarioSpec(
            name="sim-analytic", app=app,
            engine=EngineSection("sim", mode="noalloc"),
            netmodel=ModelSection("analytic"),
        ),
        ScenarioSpec(
            name="testbed-packet", app=app,
            engine=EngineSection("testbed", mode="noalloc", seed=1),
        ),
    ]


def test_one_sweep_spans_engines_and_netmodels():
    records = sweep_specs(_cross_engine_specs())
    assert [r.engine for r in records] == ["sim", "sim", "sim", "testbed"]
    assert all(r.makespan > 0 for r in records)
    # Contention models disagree with the contention-free baseline, so the
    # sweep really exercised distinct netmodels.
    star, maxmin, analytic, testbed = records
    assert analytic.makespan != star.makespan
    assert testbed.makespan != star.makespan


def _normalize_wall(record):
    """Zero the host-wall-clock fields (the only nondeterministic ones)."""
    import dataclasses

    metrics = {
        k: v
        for k, v in record.metrics.items()
        if k not in ("simulation_wall_time", "executor_wall_time")
    }
    return dataclasses.replace(record, wall_time_s=0.0, metrics=metrics)


def test_parallel_records_equal_serial():
    specs = _cross_engine_specs()
    serial = sweep_specs(specs, jobs=1)
    parallel = sweep_specs(specs, jobs=2)
    assert [_normalize_wall(r) for r in serial] == [
        _normalize_wall(r) for r in parallel
    ]


def test_calibrated_sim_spec_matches_legacy_lu_case():
    """The spec-based sweep pair reproduces run_lu_case bit-for-bit."""
    cfg = LUConfig(mode=SimulationMode.PDEXEC_NOALLOC, **LU_OPTIONS)
    legacy = run_lu_case(SweepCase("legacy", cfg, seed=1))
    app = AppSection("lu", dict(LU_OPTIONS))
    testbed_rec, sim_rec = sweep_specs([
        ScenarioSpec(
            name="tb", app=app,
            engine=EngineSection("testbed", mode="noalloc", seed=1),
        ),
        ScenarioSpec(
            name="sim", app=app,
            engine=EngineSection("sim", mode="noalloc", seed=1),
            platform=PlatformSection(calibrate=True),
        ),
    ])
    assert testbed_rec.makespan == legacy.measured
    assert sim_rec.makespan == legacy.predicted


def test_calibration_key_only_for_calibrated_sim_specs():
    specs = _cross_engine_specs()
    assert all(calibration_key(s) is None for s in specs)
    calibrated = ScenarioSpec(
        name="cal",
        app=AppSection("lu", dict(LU_OPTIONS)),
        engine=EngineSection("sim", mode="noalloc", seed=7),
        platform=PlatformSection(calibrate=True),
    )
    assert calibration_key(calibrated) == (2, 7)


def test_empty_spec_list():
    assert ParallelSweepRunner(jobs=2).run_records([]) == []


def test_records_order_matches_specs_under_pool():
    specs = _cross_engine_specs()
    records = ParallelSweepRunner(jobs=3).run_records(specs)
    assert [r.scenario for r in records] == [s.name for s in specs]
