"""ScenarioSpec: round trips, validation, file loading."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.scenario import (
    AppSection,
    ClusterSection,
    EngineSection,
    ModelSection,
    PlatformSection,
    ProviderSection,
    ScenarioSpec,
)
from repro.sim.modes import SimulationMode

tomllib = pytest.importorskip("tomllib", reason="TOML specs need Python 3.11+")


def _full_spec() -> ScenarioSpec:
    return ScenarioSpec(
        name="lu-full",
        app=AppSection("lu", {"n": 648, "r": 216, "num_threads": 4, "num_nodes": 2}),
        engine=EngineSection(
            name="sim", mode="noalloc", seed=3, verify=False,
            shards=1, shard_mode="auto",
        ),
        netmodel=ModelSection("maxmin", {"warm_start": True}),
        cpumodel=ModelSection("shared"),
        provider=ProviderSection("costmodel"),
        platform=PlatformSection("paper", calibrate=True),
        cluster=ClusterSection(nodes=12, jobs=6),
        events=("2,3@1",),
    )


# --------------------------------------------------------------------------
# round trips
# --------------------------------------------------------------------------


class TestRoundTrip:
    def test_dict_to_spec_to_dict_is_identity(self):
        spec = _full_spec()
        canonical = spec.to_dict()
        assert ScenarioSpec.from_dict(canonical).to_dict() == canonical

    def test_spec_to_dict_to_spec_is_identity(self):
        spec = _full_spec()
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_json_round_trip_is_identity(self):
        spec = _full_spec()
        text = spec.to_json()
        assert ScenarioSpec.from_json(text) == spec
        assert json.loads(text) == spec.to_dict()

    def test_default_spec_round_trips(self):
        spec = ScenarioSpec()
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_toml_document_expands_to_canonical_dict(self):
        text = """
            name = "lu-toml"
            events = ["2,3@1"]

            [app]
            name = "lu"

            [app.options]
            n = 648
            r = 216

            [engine]
            name = "sim"
            mode = "noalloc"
        """
        spec = ScenarioSpec.from_toml(text)
        expected = ScenarioSpec(
            name="lu-toml",
            app=AppSection("lu", {"n": 648, "r": 216}),
            engine=EngineSection(name="sim", mode="noalloc"),
            events=("2,3@1",),
        )
        assert spec == expected
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_partial_dict_gets_defaults(self):
        spec = ScenarioSpec.from_dict({"name": "tiny", "app": {"name": "sort"}})
        assert spec.engine.name == "sim"
        assert spec.netmodel.name == "star"
        assert spec.cluster.nodes == 16
        assert spec.events == ()

    def test_mode_and_schedule_helpers(self):
        spec = _full_spec()
        assert spec.mode() is SimulationMode.PDEXEC_NOALLOC
        schedule = spec.schedule()
        assert schedule.events[0].after_phase == "iter1"
        assert schedule.events[0].thread_indices == (2, 3)


# --------------------------------------------------------------------------
# validation
# --------------------------------------------------------------------------


class TestValidation:
    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown top-level"):
            ScenarioSpec.from_dict({"name": "x", "appp": {}})

    def test_unknown_section_key_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown keys"):
            ScenarioSpec.from_dict({"engine": {"nam": "sim"}})

    def test_reserved_app_options_rejected(self):
        with pytest.raises(ConfigurationError, match="reserved"):
            AppSection("lu", {"mode": "direct"})
        with pytest.raises(ConfigurationError, match="reserved"):
            AppSection("lu", {"schedule": None})

    def test_bad_engine_mode_rejected(self):
        with pytest.raises(ConfigurationError, match="engine.mode"):
            EngineSection(mode="warp")

    def test_bad_shards_rejected(self):
        with pytest.raises(ConfigurationError, match="shards"):
            EngineSection(shards=0)
        with pytest.raises(ConfigurationError, match="shard_mode"):
            EngineSection(shard_mode="quantum")

    def test_bad_events_rejected_at_construction(self):
        with pytest.raises(ConfigurationError, match="kill spec"):
            ScenarioSpec(events=("oops",))

    def test_bad_cluster_rejected(self):
        with pytest.raises(ConfigurationError):
            ClusterSection(nodes=0)
        with pytest.raises(ConfigurationError):
            ClusterSection(interarrival=0.0)

    def test_non_dict_options_rejected(self):
        with pytest.raises(ConfigurationError, match="table/dict"):
            AppSection("lu", options=[1, 2])  # type: ignore[arg-type]

    def test_invalid_json_text(self):
        with pytest.raises(ConfigurationError, match="invalid JSON"):
            ScenarioSpec.from_json("{nope")

    def test_invalid_toml_text(self):
        with pytest.raises(ConfigurationError, match="invalid TOML"):
            ScenarioSpec.from_toml("= garbage =")


# --------------------------------------------------------------------------
# open-system arrivals and the deprecated interarrival alias
# --------------------------------------------------------------------------


def _open_cluster(**arrivals):
    return {
        "name": "open",
        "engine": {"name": "server"},
        "cluster": {"nodes": 8, "arrivals": dict(arrivals)},
    }


class TestArrivalsShim:
    @pytest.fixture(autouse=True)
    def _fresh_warning_flag(self, monkeypatch):
        # The deprecation warning fires once per process; reset it so
        # each test observes (or asserts the absence of) its own copy.
        from repro.scenario import spec as spec_module

        monkeypatch.setattr(spec_module, "_INTERARRIVAL_WARNED", False)

    def test_arrivals_requires_process_name(self):
        with pytest.raises(ConfigurationError, match="'process' name"):
            ClusterSection(arrivals={"mean_interarrival": 10.0})
        with pytest.raises(ConfigurationError, match="'process' name"):
            ClusterSection(arrivals={"process": 7})

    def test_open_spec_round_trips_without_interarrival(self):
        spec = ScenarioSpec.from_dict(
            _open_cluster(process="poisson", mean_interarrival=10.0, jobs=50)
        )
        canonical = spec.to_dict()
        assert "interarrival" not in canonical["cluster"]
        assert canonical["cluster"]["arrivals"]["process"] == "poisson"
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            assert ScenarioSpec.from_dict(canonical) == spec

    def test_policy_options_round_trip(self):
        payload = _open_cluster(process="poisson", jobs=10)
        payload["cluster"]["policy"] = "admission"
        payload["cluster"]["policy_options"] = {"max_active": 4}
        spec = ScenarioSpec.from_dict(payload)
        assert spec.cluster.policy_options == {"max_active": 4}
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_legacy_interarrival_warns_once(self):
        payload = {"cluster": {"nodes": 8, "interarrival": 20.0}}
        with pytest.warns(DeprecationWarning, match="deprecated"):
            spec = ScenarioSpec.from_dict(payload)
        assert spec.cluster.interarrival == 20.0
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            ScenarioSpec.from_dict(payload)  # second load stays quiet

    def test_conflicting_interarrival_and_arrivals_rejected(self):
        payload = _open_cluster(process="poisson", mean_interarrival=5.0)
        payload["cluster"]["interarrival"] = 20.0
        with pytest.raises(ConfigurationError, match="conflicts"):
            ScenarioSpec.from_dict(payload)

    def test_consistent_interarrival_and_arrivals_accepted(self):
        payload = _open_cluster(process="poisson", mean_interarrival=20.0)
        payload["cluster"]["interarrival"] = 20.0
        with pytest.warns(DeprecationWarning):
            spec = ScenarioSpec.from_dict(payload)
        assert spec.cluster.arrivals["process"] == "poisson"


# --------------------------------------------------------------------------
# files
# --------------------------------------------------------------------------


class TestFiles:
    def test_from_file_by_suffix(self, tmp_path):
        spec = _full_spec()
        json_path = tmp_path / "spec.json"
        json_path.write_text(spec.to_json(), encoding="utf-8")
        assert ScenarioSpec.from_file(json_path) == spec

    def test_unknown_suffix_rejected(self, tmp_path):
        path = tmp_path / "spec.yaml"
        path.write_text("name: x", encoding="utf-8")
        with pytest.raises(ConfigurationError, match="unknown scenario spec format"):
            ScenarioSpec.from_file(path)

    def test_missing_file_reports_cleanly(self, tmp_path):
        with pytest.raises(ConfigurationError, match="cannot read"):
            ScenarioSpec.from_file(tmp_path / "absent.toml")

    def test_example_specs_load(self):
        from pathlib import Path

        examples = Path(__file__).resolve().parents[2] / "examples"
        for name in (
            "lu_sim.toml",
            "lu_testbed.toml",
            "matmul_packet.json",
            "server_eager.toml",
            "server_sharded.toml",
            "server_open_poisson.toml",
            "server_bursty_admission.toml",
        ):
            spec = ScenarioSpec.from_file(examples / name)
            assert ScenarioSpec.from_dict(spec.to_dict()) == spec
