"""RunRecord normalization parity: the same tiny LU scenario under every
engine, compared field-by-field against the engine-native APIs."""

import dataclasses
import json

import pytest

from repro.clusterserver import AdaptiveEfficiencyScheduler, ClusterServer
from repro.clusterserver.workload import synthetic_workload
from repro.errors import ConfigurationError
from repro.scenario import (
    AppSection,
    ClusterSection,
    EngineSection,
    ModelSection,
    ScenarioSpec,
    run_scenario,
)
from repro.sim.efficiency import dynamic_efficiency
from repro.sim.modes import SimulationMode
from repro.sim.platform import PAPER_CLUSTER
from repro.sim.providers import CostModelProvider
from repro.sim.simulator import DPSSimulator
from repro.testbed.cluster import VirtualCluster
from repro.testbed.executor import TestbedExecutor

# Every scenario here runs a real app (LU kernels etc.) — numpy territory.
pytest.importorskip("numpy")

LU_OPTIONS = {"n": 192, "r": 48, "num_threads": 4, "num_nodes": 2}


def _lu_config():
    from repro.apps.lu.config import LUConfig

    return LUConfig(mode=SimulationMode.PDEXEC_NOALLOC, **LU_OPTIONS)


def _lu_spec(engine: str, **engine_kwargs) -> ScenarioSpec:
    return ScenarioSpec(
        name="lu-tiny",
        app=AppSection("lu", dict(LU_OPTIONS)),
        engine=EngineSection(name=engine, mode="noalloc", **engine_kwargs),
    )


def _server_spec(shards: int = 1) -> ScenarioSpec:
    return ScenarioSpec(
        name="srv-tiny",
        app=AppSection("lu"),
        engine=EngineSection(
            name="server", seed=2, shards=shards, shard_mode="inprocess"
        ),
        cluster=ClusterSection(
            nodes=12, jobs=6, interarrival=20.0, policy="adaptive"
        ),
    )


# --------------------------------------------------------------------------
# per-engine parity
# --------------------------------------------------------------------------


class TestSimParity:
    def test_record_matches_native_simulator(self):
        from repro.apps.lu.app import LUApplication
        from repro.apps.lu.costs import LUCostModel

        record = run_scenario(_lu_spec("sim"))
        cfg = _lu_config()
        native = DPSSimulator(
            PAPER_CLUSTER,
            CostModelProvider(
                LUCostModel(PAPER_CLUSTER.machine, cfg.r), run_kernels=False
            ),
        ).run(LUApplication(cfg))
        assert record.engine == "sim"
        assert record.makespan == native.predicted_time
        assert record.events == native.events
        native_phases = dynamic_efficiency(native.run)
        assert len(record.phases) == len(native_phases)
        for rec_phase, nat_phase in zip(record.phases, native_phases):
            assert rec_phase.label == nat_phase.label
            assert rec_phase.efficiency == nat_phase.efficiency
            assert rec_phase.mean_nodes == nat_phase.mean_nodes

    def test_verified_flag_and_payload_modes(self):
        spec = ScenarioSpec(
            name="matmul-verify",
            app=AppSection(
                "matmul", {"n": 96, "s": 24, "num_threads": 4, "num_nodes": 2}
            ),
            engine=EngineSection(name="sim", mode="pdexec", verify=True),
        )
        record = run_scenario(spec)
        assert record.verified is True

    def test_model_overrides_run(self):
        spec = dataclasses.replace(
            _lu_spec("sim"),
            netmodel=ModelSection("maxmin"),
            cpumodel=ModelSection("timeslice", {"seed": 5}),
        )
        record = run_scenario(spec)
        assert record.makespan > 0
        # the maxmin allocator's counters surface in the metrics
        assert "net_warm_starts" in record.metrics

    def test_unknown_model_option_reports_cleanly(self):
        spec = dataclasses.replace(
            _lu_spec("sim"), netmodel=ModelSection("star", {"warp": 9})
        )
        with pytest.raises(ConfigurationError, match="netmodel star"):
            run_scenario(spec)


class TestTestbedParity:
    def test_record_matches_native_executor(self):
        from repro.apps.lu.app import LUApplication

        record = run_scenario(_lu_spec("testbed", seed=1))
        cluster = VirtualCluster(num_nodes=2, seed=1)
        native = TestbedExecutor(cluster, run_kernels=False).run(
            LUApplication(_lu_config())
        )
        assert record.engine == "testbed"
        assert record.makespan == native.measured_time
        assert record.events == native.run.events_executed
        assert [p.label for p in record.phases] == [
            p.label for p in dynamic_efficiency(native.run)
        ]

    def test_seed_changes_measurement(self):
        a = run_scenario(_lu_spec("testbed", seed=1))
        b = run_scenario(_lu_spec("testbed", seed=2))
        assert a.makespan != b.makespan


class TestServerParity:
    def test_record_matches_native_cluster_server(self):
        record = run_scenario(_server_spec(shards=1))
        specs = synthetic_workload(
            jobs=6, mean_interarrival=20.0, seed=2, max_nodes=8
        )
        native = ClusterServer(12, AdaptiveEfficiencyScheduler(0.5)).run(specs)
        assert record.engine == "server"
        assert record.makespan == native.makespan
        assert record.events == native.events
        assert record.metrics["mean_turnaround"] == native.mean_turnaround
        assert record.metrics["cluster_efficiency"] == native.cluster_efficiency
        assert record.metrics["service_rate"] == native.service_rate
        assert record.phases == ()

    def test_sharded_record_agrees_with_eager(self):
        eager = run_scenario(_server_spec(shards=1))
        sharded = run_scenario(_server_spec(shards=2))
        # The documented eager-vs-sharded agreement bound (docs/sharding.md).
        assert sharded.makespan == pytest.approx(eager.makespan, rel=1e-9)
        for key in ("mean_turnaround", "mean_slowdown", "cluster_efficiency"):
            assert sharded.metrics[key] == pytest.approx(
                eager.metrics[key], rel=1e-9
            )
        assert sharded.metrics["shard_epochs"] > 0
        assert sharded.metrics["shard_shards"] == 2

    def test_sharded_is_deterministic_across_shard_counts(self):
        two = run_scenario(_server_spec(shards=2))
        three = run_scenario(_server_spec(shards=3))
        # Bit-identical across K, per the sharding determinism contract.
        assert two.makespan == three.makespan
        assert two.metrics["mean_turnaround"] == three.metrics["mean_turnaround"]


class TestOpenSystemRecords:
    @staticmethod
    def _open_spec(shards: int = 1, **cluster_kwargs) -> ScenarioSpec:
        defaults = dict(
            nodes=16,
            policy="adaptive",
            arrivals={
                "process": "poisson",
                "mean_interarrival": 5.0,
                "jobs": 30,
            },
        )
        defaults.update(cluster_kwargs)
        return ScenarioSpec(
            name="srv-open",
            app=AppSection("lu"),
            engine=EngineSection(
                name="server", seed=2, shards=shards, shard_mode="inprocess"
            ),
            cluster=ClusterSection(**defaults),
        )

    def test_open_run_reports_slo_metrics(self):
        record = run_scenario(self._open_spec())
        metrics = record.metrics
        assert metrics["jobs"] == 30
        assert metrics["jobs_completed"] == 30
        assert metrics["jobs_rejected"] == 0
        assert metrics["rejection_rate"] == 0.0
        assert metrics["throughput"] == pytest.approx(30 / record.makespan)
        assert 0 < metrics["sojourn_p50"] <= metrics["sojourn_p99"]
        assert metrics["sojourn_mean"] > 0
        assert metrics["slowdown_mean"] >= 1.0
        assert 0 < metrics["utilization_mean"] <= 1.0

    def test_open_sharded_identical_across_shard_counts(self):
        records = {k: run_scenario(self._open_spec(shards=k)) for k in (2, 3, 4)}
        for k in (3, 4):
            # Bit-identical across K, per the sharding determinism contract.
            assert records[k].makespan == records[2].makespan
            for key in ("sojourn_mean", "sojourn_p99", "throughput"):
                assert records[k].metrics[key] == records[2].metrics[key]
        # The eager engine agrees to the documented reassociation bound.
        eager = run_scenario(self._open_spec(shards=1))
        assert records[2].makespan == pytest.approx(eager.makespan, rel=1e-9)

    def test_open_run_with_admission_policy(self):
        record = run_scenario(
            self._open_spec(
                policy="admission",
                policy_options={"max_active": 2, "inner": "adaptive"},
                arrivals={
                    "process": "bursty",
                    "mean_interarrival": 2.0,
                    "jobs": 40,
                },
            )
        )
        metrics = record.metrics
        assert metrics["jobs_completed"] + metrics["jobs_rejected"] == 40
        assert metrics["jobs_rejected"] > 0
        assert metrics["rejection_rate"] == pytest.approx(
            metrics["jobs_rejected"] / 40
        )

    def test_plain_policy_rejects_policy_options(self):
        spec = self._open_spec(policy_options={"max_active": 2})
        with pytest.raises(ConfigurationError, match="no policy_options"):
            run_scenario(spec)

    def test_stream_only_workload_rejected_on_closed_path(self):
        # The closed path resolves the workload from the app name; an
        # open-system process must be configured via cluster.arrivals.
        spec = _server_spec()
        spec = dataclasses.replace(spec, app=AppSection("poisson"))
        with pytest.raises(ConfigurationError, match="cluster.arrivals"):
            run_scenario(spec)

    def test_closed_only_workload_has_no_stream_form(self):
        from repro.scenario import Registry
        from repro.scenario.builtins import install_builtins

        registry = install_builtins(Registry(name="legacy"))
        registry.register(
            "workload",
            "legacy",
            lambda jobs, mean_interarrival, seed, max_nodes: [],
        )
        spec = self._open_spec(arrivals={"process": "legacy", "jobs": 5})
        with pytest.raises(ConfigurationError, match="arrival-stream"):
            run_scenario(spec, registry)

    def test_closed_workload_streams_via_arrivals(self):
        # lu/mixed keep a stream form too: a closed workload replayed as
        # an arrival stream makes identical scheduling decisions.
        closed = run_scenario(_server_spec())
        opened = run_scenario(
            self._open_spec(
                nodes=12,
                arrivals={
                    "process": "lu",
                    "mean_interarrival": 20.0,
                    "jobs": 6,
                },
            )
        )
        assert opened.makespan == closed.makespan
        assert opened.metrics["jobs_completed"] == 6

    def test_bad_arrivals_options_report_cleanly(self):
        spec = self._open_spec(
            arrivals={"process": "poisson", "warp": 9, "jobs": 5}
        )
        with pytest.raises(ConfigurationError, match="cluster.arrivals"):
            run_scenario(spec)


# --------------------------------------------------------------------------
# the record schema itself
# --------------------------------------------------------------------------


class TestRunRecordSchema:
    def test_to_dict_is_json_ready_and_raw_free(self):
        record = run_scenario(_lu_spec("sim"))
        payload = record.to_dict()
        text = json.dumps(payload)  # must not raise
        assert "raw" not in payload
        assert json.loads(text)["scenario"] == "lu-tiny"
        assert payload["phases"][0]["label"] == "iter1"

    def test_without_raw_preserves_equality(self):
        record = run_scenario(_lu_spec("sim"))
        stripped = record.without_raw()
        assert stripped == record  # raw is excluded from comparison
        assert stripped.raw == {}
        assert record.raw  # the in-process record keeps the native objects

    def test_mean_efficiency_property(self):
        record = run_scenario(_lu_spec("sim"))
        assert record.mean_efficiency is not None
        assert 0.0 < record.mean_efficiency <= 1.0
        server = run_scenario(_server_spec())
        assert server.mean_efficiency is None

    def test_unknown_engine_and_app_error_paths(self):
        with pytest.raises(ConfigurationError, match="unknown engine"):
            run_scenario(ScenarioSpec.from_dict({"engine": {"name": "quantum"}}))
        with pytest.raises(ConfigurationError, match="unknown app"):
            run_scenario(ScenarioSpec.from_dict({"app": {"name": "nbody"}}))

    def test_engines_reject_sections_they_do_not_use(self):
        # sim: the cluster section is server-only.
        with pytest.raises(ConfigurationError, match="does not use the 'cluster'"):
            run_scenario(dataclasses.replace(
                _lu_spec("sim"), cluster=ClusterSection(nodes=4)
            ))
        # sim/testbed: sharding is server-only.
        with pytest.raises(ConfigurationError, match="does not shard"):
            run_scenario(_lu_spec("sim", shards=2))
        # testbed: its models, provider and platform are the ground truth.
        with pytest.raises(ConfigurationError, match="does not use the 'netmodel'"):
            run_scenario(dataclasses.replace(
                _lu_spec("testbed"), netmodel=ModelSection("maxmin")
            ))
        from repro.scenario import PlatformSection

        with pytest.raises(ConfigurationError, match="does not use the 'platform'"):
            run_scenario(dataclasses.replace(
                _lu_spec("testbed"), platform=PlatformSection(calibrate=True)
            ))
        # server: no DPS models, app options, kill events, modes or verify.
        with pytest.raises(ConfigurationError, match="does not use the 'netmodel'"):
            run_scenario(dataclasses.replace(
                _server_spec(), netmodel=ModelSection("maxmin")
            ))
        with pytest.raises(ConfigurationError, match="no app options"):
            run_scenario(dataclasses.replace(
                _server_spec(), app=AppSection("lu", {"n": 648})
            ))
        with pytest.raises(ConfigurationError, match="kill events"):
            run_scenario(dataclasses.replace(_server_spec(), events=("1@1",)))
        with pytest.raises(ConfigurationError, match="unknown server engine"):
            run_scenario(dataclasses.replace(
                _server_spec(),
                engine=dataclasses.replace(
                    _server_spec().engine, options={"trace_levle": "full"}
                ),
            ))
        with pytest.raises(ConfigurationError, match="no numerical result"):
            run_scenario(dataclasses.replace(
                _server_spec(),
                engine=dataclasses.replace(_server_spec().engine, verify=True),
            ))

    def test_verify_without_verifier_rejected(self):
        spec = ScenarioSpec(
            app=AppSection("imgpipe"),
            engine=EngineSection(name="sim", mode="noalloc", verify=True),
        )
        with pytest.raises(ConfigurationError, match="no verification"):
            run_scenario(spec)
