"""Load generator and acceptance gates for the scenario service.

Drives an in-process ``repro serve`` (:class:`repro.service.server.ServiceThread`)
with N concurrent blocking clients over a dup-heavy scenario corpus, and
gates the resident-pool architecture against the naive alternative:

* **throughput gate** — the service must sustain at least
  ``MIN_SPEEDUP``x (default 5x) the request rate of a cold per-request
  subprocess (``python -m repro run spec.json``, a fresh interpreter and
  imports per request — what "no daemon" actually costs);
* **latency gate** — the server-side p99 job latency reported by
  ``GET /stats`` must stay under ``P99_BOUND_S``.

Environment overrides (CI smoke uses ``--smoke``):

=============================  =======================================
``REPRO_SERVICE_BENCH_CLIENTS``        concurrent clients (default 16)
``REPRO_SERVICE_BENCH_REQUESTS``       requests per client
``REPRO_SERVICE_BENCH_MIN_SPEEDUP``    throughput gate multiplier
``REPRO_SERVICE_BENCH_P99_BOUND``      latency gate in seconds
=============================  =======================================

Run standalone (``python benchmarks/bench_service.py [--smoke]``) or via
pytest (``test_service_load_gates``).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.service import ServiceClient, ServiceThread  # noqa: E402

CLIENTS = int(os.environ.get("REPRO_SERVICE_BENCH_CLIENTS", "16"))
MIN_SPEEDUP = float(os.environ.get("REPRO_SERVICE_BENCH_MIN_SPEEDUP", "5.0"))

#: Distinct scenarios in the corpus; every client cycles through them,
#: so concurrent requests constantly collide on in-flight jobs.
UNIQUE_SPECS = 4


def _corpus() -> list[dict]:
    """Small deterministic cluster-server scenarios (milliseconds each)."""
    return [
        {
            "name": f"bench-svc-{seed}",
            "app": {"name": "lu"},
            "engine": {"name": "server", "seed": seed},
            "cluster": {
                "nodes": 12,
                "jobs": 8,
                "interarrival": 20.0,
                "policy": "adaptive",
            },
        }
        for seed in range(1, UNIQUE_SPECS + 1)
    ]


def measure_cold_subprocess(spec: dict, runs: int = 2) -> float:
    """Seconds per request without a daemon: one subprocess per scenario."""
    with tempfile.NamedTemporaryFile(
        "w", suffix=".json", delete=False, encoding="utf-8"
    ) as handle:
        json.dump(spec, handle)
        path = handle.name
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    try:
        start = time.perf_counter()
        for _ in range(runs):
            subprocess.run(
                [sys.executable, "-m", "repro", "run", path],
                cwd=REPO_ROOT,
                env=env,
                check=True,
                stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL,
            )
        return (time.perf_counter() - start) / runs
    finally:
        os.unlink(path)


def run_service_load(
    clients: int, requests_per_client: int
) -> tuple[float, dict]:
    """Dup-heavy concurrent load; returns (elapsed_s, final /stats)."""
    corpus = _corpus()
    with ServiceThread(workers=None, mode="thread", queue_limit=256) as thread:
        client = ServiceClient(port=thread.port, timeout=300.0)

        def one_client(client_index: int) -> None:
            for request_index in range(requests_per_client):
                spec = corpus[(client_index + request_index) % len(corpus)]
                record = client.run(spec)
                assert record["engine"] == "server", record

        start = time.perf_counter()
        with ThreadPoolExecutor(max_workers=clients) as pool:
            for future in [
                pool.submit(one_client, index) for index in range(clients)
            ]:
                future.result()
        elapsed = time.perf_counter() - start
        stats = client.stats()
    return elapsed, stats


def run_bench(smoke: bool = False) -> dict:
    requests_per_client = int(
        os.environ.get("REPRO_SERVICE_BENCH_REQUESTS", "4" if smoke else "16")
    )
    p99_bound = float(
        os.environ.get(
            "REPRO_SERVICE_BENCH_P99_BOUND", "2.0" if smoke else "1.0"
        )
    )
    corpus = _corpus()

    cold_s = measure_cold_subprocess(corpus[0], runs=1 if smoke else 2)
    cold_throughput = 1.0 / cold_s

    total_requests = CLIENTS * requests_per_client
    elapsed, stats = run_service_load(CLIENTS, requests_per_client)
    throughput = total_requests / elapsed
    speedup = throughput / cold_throughput
    p99 = stats["latency"]["p99_s"]

    counters = stats["counters"]
    report = {
        "clients": CLIENTS,
        "requests": total_requests,
        "elapsed_s": round(elapsed, 3),
        "throughput_rps": round(throughput, 1),
        "cold_subprocess_s": round(cold_s, 3),
        "cold_throughput_rps": round(cold_throughput, 2),
        "speedup_vs_cold": round(speedup, 1),
        "p99_s": p99,
        "p99_bound_s": p99_bound,
        "executed": counters["executed"],
        "deduplicated": counters["deduplicated"],
        "failed": counters["failed"],
    }
    print(json.dumps(report, indent=2))

    assert counters["failed"] == 0, f"requests failed under load: {counters}"
    assert counters["completed"] == counters["submitted"]
    # Dedup must actually fire under a dup-heavy corpus: far fewer
    # executions than requests.
    assert counters["executed"] < total_requests, (
        f"no dedup: {counters['executed']} executions for "
        f"{total_requests} requests"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"service throughput {throughput:.1f} rps is only {speedup:.1f}x the "
        f"cold per-request subprocess ({cold_throughput:.2f} rps); "
        f"gate is {MIN_SPEEDUP}x"
    )
    assert p99 is not None and p99 <= p99_bound, (
        f"server-side p99 {p99}s exceeds the {p99_bound}s bound"
    )
    return report


def test_service_load_gates():
    """Pytest entry: the smoke-scaled gates (CI runs the script form)."""
    run_bench(smoke=True)


if __name__ == "__main__":
    run_bench(smoke="--smoke" in sys.argv[1:])
