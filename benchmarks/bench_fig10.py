"""Fig. 10 — impact of decomposition granularity on 8 nodes.

Paper: reference basic r=324 (84.2 s); r swept over {81, 108, 162, 216,
324} for the basic, P and P+FC strategies.  "When we increase the number
of processing nodes to eight nodes, the pipelined flow graph (P) and the
flow control (FC) improvements become more significant. [...] In all
cases, pipelining considerably improves the performance with respect to
the basic flow graph, and the conjunction of pipelining and flow control
further improves the results."
"""

from __future__ import annotations

from _common import lu_cfg, measure_and_predict
from repro.analysis.tables import ascii_table

RS = [81, 108, 162, 216, 324]
STRATEGIES = [
    ("Basic", dict()),
    ("P", dict(pipelined=True)),
    ("P+FC", dict(pipelined=True, fc=16)),
]


def run_fig10():
    ref = measure_and_predict("fig10/basic-r324", lu_cfg(324, nodes=8, threads=8))
    grid = {}
    for r in RS:
        for name, kw in STRATEGIES:
            grid[(name, r)] = measure_and_predict(
                f"fig10/{name}-r{r}", lu_cfg(r, nodes=8, threads=8, **kw)
            )
    return ref, grid


def test_fig10(benchmark):
    holder = {}
    benchmark.pedantic(
        lambda: holder.update(zip(("ref", "grid"), run_fig10())), rounds=1, iterations=1
    )
    ref, grid = holder["ref"], holder["grid"]

    rows = []
    for r in RS:
        row = [f"r={r}"]
        for name, _ in STRATEGIES:
            res = grid[(name, r)]
            row.append(
                f"{ref.measured / res.measured:.2f}/{ref.predicted / res.predicted:.2f}"
            )
        rows.append(row)
    print()
    print(
        ascii_table(
            ["Block size", "Basic meas/sim", "P meas/sim", "P+FC meas/sim"],
            rows,
            title=f"Fig. 10 — 8 nodes, improvement vs basic r=324 "
            f"(measured {ref.measured:.1f} s; paper reference 84.2 s)",
        )
    )

    # Pipelining helps at every granularity on 8 nodes (paper's headline).
    for r in RS:
        basic = grid[("Basic", r)]
        p = grid[("P", r)]
        pfc = grid[("P+FC", r)]
        assert p.measured < basic.measured
        assert p.predicted < basic.predicted
        # P+FC at least matches P (small tolerance for noise).
        assert pfc.measured <= p.measured * 1.05
    # Granularity has an interior optimum for the basic strategy.
    basic_times = {r: grid[("Basic", r)].measured for r in RS}
    best_r = min(basic_times, key=basic_times.get)
    assert best_r not in (RS[0], RS[-1])
    # Predictions within the paper's overall envelope.  The paper's own
    # distribution has a tail: ~5% of its 168 measurements exceed +-12%,
    # and Fig. 10's P/P+FC curves show visible measured-vs-sim gaps at
    # fine granularity — the heavily pipelined, communication-saturated
    # regime is the hardest to model.  Basic stays tight; pipelined
    # variants get the paper-consistent wider band.
    for (name, r), res in grid.items():
        if name == "Basic":
            assert abs(res.error) < 0.12
        else:
            assert abs(res.error) < 0.25
