"""Fig. 12 — running times of dynamic thread-removal strategies.

Paper (2592^2, r=324, basic graph, 8 column blocks): the five strategies
— 4 threads, 8 threads, kill 4 after it. 1, kill 4 after it. 4, kill 2
after it. 2 + 2 after it. 3 — all land in a ~85-105 s band.  "Using eight
nodes for the whole computation or only for the first iteration yields
almost the same running time", so deallocating four nodes after iteration
1 frees half the cluster nearly for free.
"""

from __future__ import annotations

from _common import (
    KILL2_2,
    KILL4_AFTER_1,
    KILL4_AFTER_4,
    lu_cfg,
    measure_and_predict,
)
from repro.analysis.tables import ascii_table
from repro.sim.efficiency import mean_efficiency

R = 324

STRATEGIES = [
    ("4 threads", lu_cfg(R, nodes=4, threads=4)),
    ("8 threads", lu_cfg(R, nodes=8, threads=8)),
    ("8 thr, kill 4 after it. 1", lu_cfg(R, nodes=8, threads=8, schedule=KILL4_AFTER_1)),
    ("8 thr, kill 4 after it. 4", lu_cfg(R, nodes=8, threads=8, schedule=KILL4_AFTER_4)),
    ("8 thr, kill 2@2 + 2@3", lu_cfg(R, nodes=8, threads=8, schedule=KILL2_2)),
]


def run_fig12():
    return {
        name: measure_and_predict(f"fig12/{name}", cfg, keep_runs=True)
        for name, cfg in STRATEGIES
    }


def test_fig12(benchmark):
    holder = {}
    benchmark.pedantic(lambda: holder.update(run_fig12()), rounds=1, iterations=1)

    rows = []
    for name, _ in STRATEGIES:
        res = holder[name]
        rows.append(
            (
                name,
                f"{res.measured:.1f}",
                f"{res.predicted:.1f}",
                f"{res.error * 100:+.1f}%",
                f"{mean_efficiency(res.measured_run) * 100:.1f}%",
            )
        )
    print()
    print(
        ascii_table(
            ["Strategy", "Measured [s]", "Predicted [s]", "Error", "Mean efficiency"],
            rows,
            title="Fig. 12 — dynamic thread-removal strategies "
            "(paper: all within ~85-105 s)",
        )
    )

    times = {name: holder[name].measured for name, _ in STRATEGIES}
    t8 = times["8 threads"]
    t4 = times["4 threads"]
    kill1 = times["8 thr, kill 4 after it. 1"]
    kill4 = times["8 thr, kill 4 after it. 4"]
    kill22 = times["8 thr, kill 2@2 + 2@3"]

    # All strategies land in a narrow band (paper: ~85-105 s => <25% spread).
    spread = max(times.values()) / min(times.values())
    assert spread < 1.35
    # Killing 4 after it. 1 costs little over keeping all 8 nodes.
    assert kill1 < 1.20 * t8
    # Later removal costs even less.
    assert kill4 < 1.10 * t8
    assert kill22 < 1.20 * t8
    # ...and dynamic strategies beat the static 4-thread run or match it
    # while having used extra nodes only early on.
    assert kill1 < 1.05 * t4

    # Freed capacity: mean efficiency of kill-4-after-1 beats static 8.
    eff8 = mean_efficiency(holder["8 threads"].measured_run)
    eff_kill = mean_efficiency(holder["8 thr, kill 4 after it. 1"].measured_run)
    assert eff_kill > 1.2 * eff8

    # Predictions track measurements for every strategy.
    for name, _ in STRATEGIES:
        assert abs(holder[name].error) < 0.12
