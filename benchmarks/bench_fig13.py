"""Fig. 13 — histogram of prediction errors across the whole evaluation.

Paper, over 168 measurements: "71.4% of all predictions are within ±4%
accuracy, 81.6% are within ±6% accuracy, and more than 95% are within
±12% prediction accuracy."

This bench re-runs the complete validation sweep (every configuration of
Figs. 8-12, across several measurement seeds to mirror the paper's
repeated measurements) and prints the error histogram.
"""

from __future__ import annotations

from _common import (
    KILL2_2,
    KILL4_AFTER_1,
    KILL4_AFTER_4,
    lu_cfg,
    measure_and_predict,
    study_from,
)
from repro.analysis.tables import ascii_histogram


def all_cases():
    cases = []
    # Fig. 8/9 space: 4 nodes.
    for r in (648, 324, 216, 162, 108):
        cases.append((f"basic-r{r}-4n", lu_cfg(r, nodes=4)))
    for name, kw in [
        ("PM", dict(pm=True)),
        ("P", dict(pipelined=True)),
        ("P+PM", dict(pipelined=True, pm=True)),
        ("P+FC", dict(pipelined=True, fc=8)),
        ("P+PM+FC", dict(pipelined=True, pm=True, fc=8)),
    ]:
        cases.append((f"{name}-r324-4n", lu_cfg(324, nodes=4, **kw)))
        cases.append((f"{name}-r648-4n", lu_cfg(648, nodes=4, **kw)))
    # Fig. 10 space: 8 nodes.
    for r in (81, 108, 162, 216, 324):
        cases.append((f"basic-r{r}-8n", lu_cfg(r, nodes=8, threads=8)))
        cases.append((f"P-r{r}-8n", lu_cfg(r, nodes=8, threads=8, pipelined=True)))
        cases.append(
            (f"P+FC-r{r}-8n", lu_cfg(r, nodes=8, threads=8, pipelined=True, fc=16))
        )
    # Fig. 11/12 space: removal strategies.
    cases.append(("4thr", lu_cfg(324, nodes=4, threads=4)))
    cases.append(("kill4@1", lu_cfg(324, nodes=8, threads=8, schedule=KILL4_AFTER_1)))
    cases.append(("kill4@4", lu_cfg(324, nodes=8, threads=8, schedule=KILL4_AFTER_4)))
    cases.append(("kill2@2+2@3", lu_cfg(324, nodes=8, threads=8, schedule=KILL2_2)))
    return cases


def run_fig13(seeds=(1, 2, 3, 4, 5)):
    results = []
    for seed in seeds:
        for label, cfg in all_cases():
            results.append(
                measure_and_predict(f"fig13/{label}/s{seed}", cfg, seed=seed)
            )
    return results


def test_fig13(benchmark):
    holder = {}
    benchmark.pedantic(lambda: holder.update(results=run_fig13()), rounds=1, iterations=1)
    study = study_from(holder["results"])

    summary = study.summary()
    hist = study.histogram(limit=0.16, bin_width=0.02)
    print()
    print(
        ascii_histogram(
            hist.bins(),
            title=f"Fig. 13 — prediction errors over {int(summary['count'])} "
            "measurements (paper: 168 measurements, 71.4% within ±4%, "
            ">95% within ±12%)",
        )
    )
    print(
        f"within ±4%: {summary['within_4pct'] * 100:.1f}%   "
        f"within ±6%: {summary['within_6pct'] * 100:.1f}%   "
        f"within ±12%: {summary['within_12pct'] * 100:.1f}%   "
        f"mean |err|: {summary['mean_abs'] * 100:.1f}%   "
        f"max |err|: {summary['max_abs'] * 100:.1f}%"
    )

    # Enough measurements to be comparable with the paper's 168
    # (34 configurations x 5 measurement seeds = 170).
    assert summary["count"] >= 160
    # Error distribution shape: majority small, overwhelming share <12%.
    assert summary["within_4pct"] > 0.40
    assert summary["within_6pct"] > 0.55
    assert summary["within_12pct"] > 0.80
    assert summary["max_abs"] < 0.30
    # Centered: both signs occur.
    errors = study.errors
    assert (errors > 0).any() and (errors < 0).any()
