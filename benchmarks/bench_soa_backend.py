"""Scalar-vs-SoA backend pairs for the nightly trend charts.

Each dense-churn scenario is benchmarked twice under the *same* name
pattern — ``…[<model>-scalar]`` and ``…[<model>-soa]`` — so the nightly
``--benchmark-json`` output records the pair side by side and
``repro trend`` charts their ratio across runs.  The hard speed-up gates
live in ``bench_allocator_scaling.py`` (run separately by CI); these
benches only *record*, so a slow CI machine shows up as a trend wobble
instead of a red build.

The workload matches the gated dense regime: all-to-all churn at 256
concurrent flows on the smallest node count whose pair space covers
them, scalar rows on the PR 3+ warm-start/warm-insert path.
"""

from __future__ import annotations

import pytest

from bench_allocator_scaling import run_churn

#: the gated dense regime (see SOA_SPEEDUP_GATES)
FLOWS = 256
#: enough completions for steady-state churn without dominating nightly time
COMPLETIONS = 512


def _churn(model: str, soa: bool):
    return run_churn(
        model,
        incremental=True,
        flows=FLOWS,
        completions=COMPLETIONS,
        dense=True,
        soa=soa,
        label="soa" if soa else "scalar",
    )


@pytest.mark.parametrize("backend", ["scalar", "soa"])
@pytest.mark.parametrize("model", ["maxmin", "packet"])
def test_dense_churn_backend_pair(benchmark, model, backend):
    if backend == "soa":
        pytest.importorskip("numpy")
    result = benchmark.pedantic(
        lambda: _churn(model, soa=backend == "soa"), rounds=3, iterations=1
    )
    # Sanity: the run really exercised the intended allocator path.
    assert result.events >= FLOWS + COMPLETIONS
    if backend == "soa":
        assert result.warm_starts > 0
        assert result.full_fallbacks * 10 < result.allocator_calls
