"""Ablation benches for the simulator's design choices (DESIGN.md §5).

The paper distinguishes itself from prior simulators by (a) modelling
network contention at all ("unlike other simulators which ... assume that
network contention is inexistent") and (b) charging CPU time for
communication handling.  These benches quantify what each model component
buys on the comm-heavy 8-node LU run:

* ``analytic``   — drop contention entirely (MPI-SIM/COMPASS assumption),
* ``maxmin``     — replace the paper's equal-share law by max-min fairness,
* ``free-comm``  — communications cost no CPU,
* flow-control credit sweep — how the FC limit shapes the running time.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from _common import SEED, lu_cfg, platform_for
from repro.analysis.tables import ascii_table
from repro.apps.lu.app import LUApplication
from repro.apps.lu.costs import LUCostModel
from repro.cpumodel.commcost import FREE_COMMUNICATION
from repro.netmodel.analytic import AnalyticNetwork
from repro.netmodel.maxmin import MaxMinStarNetwork
from repro.sim.providers import CostModelProvider
from repro.sim.simulator import DPSSimulator
from repro.testbed.cluster import VirtualCluster
from repro.testbed.executor import TestbedExecutor

R = 162  # fine granularity: communication matters most here


def _predict(platform, cfg, network_factory=None):
    sim = DPSSimulator(
        platform,
        CostModelProvider(LUCostModel(platform.machine, cfg.r)),
        network_factory=network_factory,
    )
    return sim.run(LUApplication(cfg)).predicted_time


def test_ablation_network_and_cpu_models(benchmark):
    cfg = lu_cfg(R, nodes=8, threads=8, pipelined=True)
    platform = platform_for(8)
    results = {}

    def run():
        measured = TestbedExecutor(
            VirtualCluster(num_nodes=8, seed=SEED), run_kernels=False
        ).run(LUApplication(cfg))
        results["measured"] = measured.measured_time
        results["paper model"] = _predict(platform, cfg)
        results["analytic (no contention)"] = _predict(
            platform, cfg, network_factory=AnalyticNetwork
        )
        results["max-min fairness"] = _predict(
            platform, cfg, network_factory=MaxMinStarNetwork
        )
        results["free communication CPU"] = _predict(
            replace(platform, comm_cost=FREE_COMMUNICATION), cfg
        )
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)

    measured = results["measured"]
    rows = [
        (name, f"{value:.1f}", f"{(value - measured) / measured * 100:+.1f}%")
        for name, value in results.items()
    ]
    print()
    print(
        ascii_table(
            ["Model", "Time [s]", "vs measured"],
            rows,
            title=f"Ablation — model components on P r={R}, 8 nodes",
        )
    )

    full = results["paper model"]
    # The paper's full model is the most accurate of the ablations.
    for name in ("analytic (no contention)", "free communication CPU"):
        assert abs(full - measured) <= abs(results[name] - measured) + 1e-9
    # Ignoring contention underpredicts on this comm-heavy configuration.
    assert results["analytic (no contention)"] < full
    # Max-min predicts faster communication than equal share (leftover
    # bandwidth is redistributed) — also an underprediction here.
    assert results["max-min fairness"] <= full + 1e-9
    # Communication CPU cost is a real component of the running time.
    assert results["free communication CPU"] < full


def test_ablation_flow_control_sweep(benchmark):
    """FC credit limit: a sweet spot between starvation and queue flooding."""
    platform = platform_for(8)
    limits = [1, 2, 4, 8, 16, 32, None]
    times = {}

    def run():
        for limit in limits:
            cfg = lu_cfg(R, nodes=8, threads=8, pipelined=True, fc=limit)
            times[limit] = _predict(platform, cfg)
        return times

    benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        (str(limit) if limit else "off", f"{t:.1f}") for limit, t in times.items()
    ]
    print()
    print(
        ascii_table(
            ["FC credit limit", "Predicted time [s]"],
            rows,
            title=f"Ablation — flow-control credits on P r={R}, 8 nodes",
        )
    )
    # Starving the pipeline with one credit is the worst setting.
    best = min(times.values())
    assert times[1] > best
    # Some finite limit is at least as good as no flow control (Fig. 6's
    # interleaving argument).
    finite_best = min(t for limit, t in times.items() if limit is not None)
    assert finite_best <= times[None] * 1.02


def test_ablation_pdexec_calibration_samples(benchmark):
    """More benchmark samples -> better PDEXEC rate factors -> lower error."""
    from repro.apps.lu.costs import benchmark_rate_factors
    from repro.testbed.noise import DEFAULT_KERNEL_BIAS

    platform = platform_for(8)
    cfg = lu_cfg(216, nodes=8, threads=8)
    errors = {}

    def run():
        measured = TestbedExecutor(
            VirtualCluster(num_nodes=8, seed=SEED), run_kernels=False
        ).run(LUApplication(cfg)).measured_time
        for samples in (1, 5, 25):
            factors = benchmark_rate_factors(
                platform.machine, cfg.r, samples=samples, seed=11
            )
            model = LUCostModel(
                platform.machine, cfg.r, rate_factors=factors
            )
            sim = DPSSimulator(platform, CostModelProvider(model))
            predicted = sim.run(LUApplication(cfg)).predicted_time
            errors[samples] = abs(predicted - measured) / measured
        return errors

    benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [(str(s), f"{e * 100:.2f}%") for s, e in errors.items()]
    print()
    print(
        ascii_table(
            ["Benchmark samples", "|prediction error|"],
            rows,
            title="Ablation — measure-first-n calibration depth (r=216, 8 nodes)",
        )
    )
    # All calibrations stay within the paper's envelope.
    assert all(e < 0.12 for e in errors.values())


def test_ablation_switch_backplane(benchmark):
    """Relax the paper's "crossbar is never a bottleneck" assumption.

    Sweeps the switch oversubscription ratio: at 1.0 (non-blocking for
    one-directional traffic) the prediction must match the paper's ideal
    model; heavy oversubscription slows the predicted run, quantifying
    how much the assumption matters for the LU workload.
    """
    from repro.netmodel.backplane import BackplaneStarNetwork

    platform = platform_for(8)
    cfg = lu_cfg(R, nodes=8, threads=8, pipelined=True)
    times = {}

    def run():
        times["ideal (paper)"] = _predict(platform, cfg)
        for ratio in (1.0, 2.0, 4.0, 8.0):
            times[f"oversubscribed {ratio:g}:1"] = _predict(
                platform,
                cfg,
                network_factory=BackplaneStarNetwork.factory(8, ratio),
            )
        return times

    benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [(name, f"{t:.1f}") for name, t in times.items()]
    print()
    print(
        ascii_table(
            ["Switch fabric", "Predicted time [s]"],
            rows,
            title=f"Ablation — switch backplane capacity on P r={R}, 8 nodes",
        )
    )
    ideal = times["ideal (paper)"]
    # A non-blocking fabric must not change the prediction materially.
    assert times["oversubscribed 1:1"] <= ideal * 1.05
    # Oversubscription monotonically hurts.
    ordered = [times[f"oversubscribed {r:g}:1"] for r in (1.0, 2.0, 4.0, 8.0)]
    assert all(a <= b + 1e-9 for a, b in zip(ordered, ordered[1:]))
    assert ordered[-1] > ideal * 1.05
