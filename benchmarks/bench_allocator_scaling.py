"""Allocator + horizon scaling — incremental vs full rate recomputation.

A fluid pool pays two costs on every membership change: the *allocator*
(assigning rates) and the *horizon* (finding the next completion).  The
full-recompute baseline re-rates every flow and the pre-heap pool scanned
every task — O(n) each, quadratic-or-worse total work as churn grows with
the pool size.  The incremental allocators bound the re-rate to the dirty
set (flows sharing a link/host — transitively for max-min — with the
changed flow), and the pool's lazy min-heap bounds the horizon work to
O(dirty · log n).

This bench drives a steady-state churn workload — ``F`` concurrent
transfers (or compute steps), each completion immediately replaced —
through both allocator modes of **all** resource models:

* networks: ``maxmin``, ``equal-share``, ``packet`` (testbed ground
  truth), ``backplane`` (finite fabric at 1.0 oversubscription);
* CPUs: ``shared-cpu`` (the paper's), ``timeslice-cpu`` (testbed).

and reports events/sec, per-change allocator work (with full-recompute
fallbacks, warm starts, and verify-shadow recomputes broken out), and
per-change horizon work — real heap operations vs the hypothetical
linear-scan cost the pre-heap implementation would have paid.

A second, *dense-traffic* regime drives the same churn through all-to-all
flows on a handful of nodes — the workload where the maxmin/packet dirty
set is one giant component and every change used to fall back to a full
solve.  There four allocator generations run side by side: the PR 2
incremental allocator without warm starts (``no-warm``), the PR 3
warm-started re-solver that ends its prefix at the first undercut round
(``pr3``), the current scalar replay with bounded insertion of
undercutting links (``warm``), and the numpy structure-of-arrays backend
(``soa``) — plus verify-mode passes shadow-checking every warm-started
and SoA solve against the from-scratch solver.  Run it as a script::

    PYTHONPATH=src python benchmarks/bench_allocator_scaling.py [--quick]
        [--flows 16,64,256] [--jobs N] [--skip-dense]

It exits non-zero unless, at >= 64 flows, (a) for every model the
incremental mode's combined allocator+horizon work per membership change
is strictly below the full-recompute/linear-scan baseline (the acceptance
bar for the sub-linear hot loop), (b) in the dense regime the
warm-started maxmin/packet allocators do strictly less work per change —
and strictly fewer full fallbacks — than with warm starts disabled, warm
inserts fire without costing fallbacks vs the PR 3 replay, and the SoA
backend's warm path carries >= 90% of solves, and (c) at >= 256 flows
the SoA backend clears the events/s ratio gates over the PR 3 scalar
baseline (``SOA_SPEEDUP_GATES``).
"""

from __future__ import annotations

import argparse
import multiprocessing
import random
import sys
import time
from dataclasses import dataclass

from repro.cpumodel.shared import SharedCpuModel
from repro.cpumodel.timeslice import TimesliceCpuModel, TimesliceParams
from repro.des.kernel import Kernel
from repro.netmodel.backplane import BackplaneStarNetwork
from repro.netmodel.maxmin import MaxMinStarNetwork
from repro.netmodel.packet import PacketNetwork
from repro.netmodel.params import NetworkParams
from repro.netmodel.star import EqualShareStarNetwork

NETWORK_MODELS = ("maxmin", "equal-share", "packet", "backplane")
CPU_MODELS = ("shared-cpu", "timeslice-cpu")
MODELS = NETWORK_MODELS + CPU_MODELS
#: Models whose component allocator supports the warm-started re-solve.
WARM_MODELS = ("maxmin", "packet")
#: Minimum events/s ratio the SoA backend must hold over the PR 3 scalar
#: baseline ("pr3" rows) in the dense all-to-all regime.  Measured on the
#: reference container: maxmin ~2.1x and packet ~3.4x at 256 flows,
#: growing to ~3.7x / ~5.2x at 1024 (the scalar solve is O(flows) per
#: event, the SoA solve near-constant); the gates sit below the measured
#: ratios to absorb machine noise.  The issue's 5x-at-256 stretch target
#: is not reachable in pure numpy at this size — per-op dispatch overhead
#: (~2-3us x ~25 ops/solve) floors the SoA constant; see
#: docs/performance.md.
SOA_SPEEDUP_GATES = {"maxmin": 1.4, "packet": 1.8}
#: Tighter gates once the pair space is large enough for the asymptotic
#: advantage (applied at >= 1024 flows, the nightly sweep).
SOA_SPEEDUP_GATES_LARGE = {"maxmin": 2.2, "packet": 3.2}


def _build_network(
    model: str,
    kernel: Kernel,
    num_nodes: int,
    incremental: bool,
    warm_start: bool = True,
    verify: bool = False,
    warm_insert: bool = True,
    soa: bool = False,
):
    params = NetworkParams(latency=0.0, bandwidth=1e6)
    if soa:
        from repro.netmodel.soa import (
            EqualShareStarNetworkSoA,
            MaxMinStarNetworkSoA,
            PacketNetworkSoA,
        )

        if model == "maxmin":
            return MaxMinStarNetworkSoA(kernel, params, verify_incremental=verify)
        if model == "equal-share":
            return EqualShareStarNetworkSoA(
                kernel, params, verify_incremental=verify
            )
        if model == "packet":
            return PacketNetworkSoA(
                kernel, params, seed=11, verify_incremental=verify
            )
        raise ValueError(f"no SoA backend for network model {model!r}")
    if model == "maxmin":
        return MaxMinStarNetwork(
            kernel, params, incremental=incremental,
            warm_start=warm_start, verify_incremental=verify,
            warm_insert=warm_insert,
        )
    if model == "equal-share":
        return EqualShareStarNetwork(kernel, params, incremental=incremental)
    if model == "packet":
        return PacketNetwork(
            kernel, params, seed=11, incremental=incremental,
            warm_start=warm_start, verify_incremental=verify,
            warm_insert=warm_insert,
        )
    if model == "backplane":
        # 1.0 oversubscription: a fabric that carries every port one-way at
        # line rate — congested only under pathological traffic, which is
        # where the shared-backplane component genuinely couples all flows.
        capacity = num_nodes * params.bandwidth
        return BackplaneStarNetwork(
            kernel, params, capacity=capacity, incremental=incremental
        )
    raise ValueError(f"unknown network model {model!r}")


def _build_cpu(model: str, kernel: Kernel, incremental: bool):
    if model == "shared-cpu":
        return SharedCpuModel(kernel, incremental=incremental)
    if model == "timeslice-cpu":
        return TimesliceCpuModel(
            kernel, TimesliceParams(), seed=11, incremental=incremental
        )
    raise ValueError(f"unknown cpu model {model!r}")


@dataclass
class ChurnResult:
    model: str
    mode: str
    flows: int
    wall_time: float
    events: int
    allocator_calls: int
    membership_changes: int
    rates_computed: int
    full_fallbacks: int
    warm_starts: int
    warm_inserts: int
    verify_recomputes: int
    heap_ops: int
    scan_cost: int

    @property
    def events_per_sec(self) -> float:
        return self.events / self.wall_time if self.wall_time > 0 else float("inf")

    @property
    def rates_per_change(self) -> float:
        return self.rates_computed / max(self.membership_changes, 1)

    @property
    def heap_ops_per_change(self) -> float:
        return self.heap_ops / max(self.membership_changes, 1)

    @property
    def scan_per_change(self) -> float:
        return self.scan_cost / max(self.membership_changes, 1)

    @property
    def work_per_change(self) -> float:
        """Combined allocator + *real* horizon work per membership change."""
        horizon = self.scan_cost if self.mode == "full" else self.heap_ops
        return (self.rates_computed + horizon) / max(self.membership_changes, 1)


def _dense_node_count(flows: int) -> int:
    """Smallest node count whose all-to-all pair space covers ``flows``."""
    n = 2
    while n * (n - 1) < flows:
        n += 1
    return n


def run_churn(
    model: str,
    incremental: bool,
    flows: int,
    completions: int,
    seed: int = 7,
    dense: bool = False,
    warm_start: bool = True,
    verify: bool = False,
    warm_insert: bool = True,
    soa: bool = False,
    label: str | None = None,
) -> ChurnResult:
    """Steady-state churn: ``flows`` concurrent tasks, replaced on completion.

    ``dense=True`` squeezes the flows onto the smallest node count whose
    all-to-all pair space covers them, making the flow/link graph one giant
    component (every change cascades).  ``warm_start=False`` is the PR 2
    baseline; ``warm_insert=False`` restores the PR 3 replay (prefix ends
    at the first undercut round); ``soa=True`` runs the numpy
    structure-of-arrays backend; ``verify=True`` shadow-checks every
    incremental solve.  ``label`` overrides the derived mode name.
    """
    kernel = Kernel()
    rng = random.Random(seed)
    num_nodes = _dense_node_count(flows) if dense else max(flows, 4)
    total = flows + completions
    spawned = 0

    if model in NETWORK_MODELS:
        resource = _build_network(
            model, kernel, num_nodes, incremental,
            warm_start=warm_start, verify=verify,
            warm_insert=warm_insert, soa=soa,
        )

        def submit() -> None:
            nonlocal spawned
            spawned += 1
            src = rng.randrange(num_nodes)
            dst = rng.randrange(num_nodes)
            while dst == src:
                dst = rng.randrange(num_nodes)
            resource.submit(src, dst, rng.uniform(0.5e6, 1.5e6), on_done)

    else:
        resource = _build_cpu(model, kernel, incremental)

        def submit() -> None:
            nonlocal spawned
            spawned += 1
            node = rng.randrange(num_nodes)
            resource.submit(node, rng.uniform(0.5, 1.5), on_done)

    def on_done(_handle) -> None:
        if spawned < total:
            submit()

    start = time.perf_counter()
    for _ in range(flows):
        submit()
    kernel.run()
    wall = time.perf_counter() - start

    mode = label or ("incremental" if incremental else "full")
    stats = resource.allocator.stats
    horizon = resource.horizon_stats
    return ChurnResult(
        model=model,
        mode=mode,
        flows=flows,
        wall_time=wall,
        events=kernel.events_executed,
        allocator_calls=stats.incremental_updates + stats.full_allocations,
        # Every task enters and leaves the drain pool exactly once.
        membership_changes=2 * spawned,
        rates_computed=stats.rates_computed,
        full_fallbacks=stats.full_fallbacks,
        warm_starts=stats.warm_starts,
        warm_inserts=stats.warm_inserts,
        verify_recomputes=stats.verify_recomputes,
        heap_ops=horizon.heap_ops,
        scan_cost=horizon.scan_cost,
    )


def _run_scenario(args_tuple) -> ChurnResult:
    return run_churn(*args_tuple)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small flow counts and fewer completions (CI smoke)",
    )
    parser.add_argument(
        "--flows", default=None, metavar="F1,F2,..",
        help="comma-separated concurrent-flow counts (overrides --quick)",
    )
    parser.add_argument(
        "--models", default=None, metavar="M1,M2,..",
        help=f"comma-separated subset of {','.join(MODELS)}",
    )
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the scenario grid (0 = one per CPU)",
    )
    parser.add_argument(
        "--skip-dense", action="store_true",
        help="skip the dense-traffic warm-start regime",
    )
    args = parser.parse_args(argv)

    if args.flows is not None:
        try:
            flow_counts = [int(v) for v in args.flows.split(",") if v.strip()]
        except ValueError as exc:
            parser.error(f"--flows expects comma-separated integers: {exc}")
        if not flow_counts:
            parser.error("--flows needs at least one value")
    elif args.quick:
        flow_counts = [16, 64]
    else:
        flow_counts = [16, 64, 256]
    churn_factor = 2 if args.quick else 4

    models = MODELS
    if args.models is not None:
        models = tuple(m.strip() for m in args.models.split(",") if m.strip())
        unknown = [m for m in models if m not in MODELS]
        if unknown:
            parser.error(f"unknown models: {','.join(unknown)}")

    scenarios = [
        (model, incremental, flows, churn_factor * flows)
        for model in models
        for flows in flow_counts
        for incremental in (False, True)
    ]
    dense_models = tuple(m for m in models if m in WARM_MODELS)
    dense_scenarios = []
    if not args.skip_dense:
        # (model, incremental, flows, completions, seed, dense,
        #  warm_start, verify, warm_insert, soa, label)
        for model in dense_models:
            for flows in flow_counts:
                comps = churn_factor * flows
                dense_scenarios += [
                    # PR 2 baseline: no warm starts at all.
                    (model, True, flows, comps, 7, True, False, False,
                     True, False, "no-warm"),
                    # PR 3 baseline: warm starts, prefix ends at the
                    # first undercut round (no insertion).
                    (model, True, flows, comps, 7, True, True, False,
                     False, False, "pr3"),
                    # Current scalar: warm starts + bounded insertion.
                    (model, True, flows, comps, 7, True, True, False,
                     True, False, "warm"),
                    # Structure-of-arrays backend.
                    (model, True, flows, comps, 7, True, True, False,
                     True, True, "soa"),
                ]
        # One shadow-checked pass per model and backend at the smallest
        # gated flow count: verify mode raises inside the run on any
        # divergence between an incremental solve (warm-started or SoA)
        # and the from-scratch solver.
        verify_flows = [f for f in flow_counts if f >= 64] or flow_counts
        vf = min(verify_flows)
        dense_scenarios += [
            (model, True, vf, churn_factor * vf,
             7, True, True, True, True, soa, label)
            for model in dense_models
            for soa, label in ((False, "warm+verify"), (True, "soa+verify"))
        ]
    all_scenarios = scenarios + dense_scenarios
    if args.jobs != 1:
        with multiprocessing.Pool(processes=args.jobs or None) as pool:
            all_results = pool.map(_run_scenario, all_scenarios)
    else:
        all_results = [_run_scenario(s) for s in all_scenarios]
    results = all_results[: len(scenarios)]
    dense_results = all_results[len(scenarios):]

    header = (
        f"{'model':<14} {'mode':<12} {'flows':>6} {'events/s':>9} "
        f"{'rates/chg':>10} {'fallbacks':>10} {'warm':>6} {'horizon/chg':>12} "
        f"{'scan/chg':>9} {'work/chg':>9} {'wall [s]':>9}"
    )

    def print_rows(rows):
        print(header)
        print("-" * len(header))
        for res in rows:
            horizon = (
                f"({res.heap_ops_per_change:.2f})"
                if res.mode == "full"
                else f"{res.heap_ops_per_change:.2f}"
            )
            print(
                f"{res.model:<14} {res.mode:<12} {res.flows:>6} "
                f"{res.events_per_sec:>9.0f} {res.rates_per_change:>10.2f} "
                f"{res.full_fallbacks:>10} {res.warm_starts:>6} {horizon:>12} "
                f"{res.scan_per_change:>9.2f} {res.work_per_change:>9.2f} "
                f"{res.wall_time:>9.3f}"
            )

    print_rows(results)
    print(
        "\nhorizon/chg = real heap pushes+pops per membership change; "
        "scan/chg = what the\npre-heap O(n) scan would have cost.  The "
        "full mode pays scan/chg (heap figures\nin parentheses are "
        "informational); work/chg combines allocator + horizon; warm = "
        "cascades\nresolved by saturation-prefix replay instead of a full "
        "fallback."
    )
    if dense_results:
        print(
            "\ndense regime — all-to-all flows on one star (one giant "
            "component; every\nchange cascades).  no-warm = PR 2 baseline "
            "(warm starts disabled); pr3 = PR 3\nbaseline (warm starts, "
            "no insertion); warm = warm starts + bounded insertion;\n"
            "soa = numpy structure-of-arrays backend; *+verify "
            "shadow-checks every solve\nagainst the from-scratch solver:"
        )
        print_rows(dense_results)

    # Acceptance: combined allocator+horizon work per membership change must
    # be strictly below the full-recompute/linear-scan baseline once
    # contention is real.
    failures = []
    by_key = {(r.model, r.flows, r.mode): r for r in results}
    for model in models:
        for flows in flow_counts:
            if flows < 64:
                continue
            inc = by_key[(model, flows, "incremental")]
            full = by_key[(model, flows, "full")]
            if not inc.rates_per_change < full.rates_per_change:
                failures.append(
                    f"{model} @ {flows} flows: incremental rates/change "
                    f"{inc.rates_per_change:.2f} >= full {full.rates_per_change:.2f}"
                )
            if not inc.work_per_change < full.work_per_change:
                failures.append(
                    f"{model} @ {flows} flows: incremental work/change "
                    f"{inc.work_per_change:.2f} >= baseline {full.work_per_change:.2f}"
                )
    # Dense-regime acceptance: warm starts must beat the warm-start-disabled
    # incremental allocator (the PR 2 full-fallback path) on allocator work
    # per change AND on full-fallback count, and must actually fire.
    dense_by_key = {(r.model, r.flows, r.mode): r for r in dense_results}
    for model in dense_models if dense_results else ():
        for flows in flow_counts:
            if flows < 64:
                continue
            warm = dense_by_key[(model, flows, "warm")]
            nowarm = dense_by_key[(model, flows, "no-warm")]
            pr3 = dense_by_key[(model, flows, "pr3")]
            soa = dense_by_key[(model, flows, "soa")]
            if not warm.warm_starts > 0:
                failures.append(
                    f"dense {model} @ {flows} flows: no warm start ever fired"
                )
            if not warm.rates_per_change < nowarm.rates_per_change:
                failures.append(
                    f"dense {model} @ {flows} flows: warm rates/change "
                    f"{warm.rates_per_change:.2f} >= no-warm "
                    f"{nowarm.rates_per_change:.2f}"
                )
            if not warm.full_fallbacks < nowarm.full_fallbacks:
                failures.append(
                    f"dense {model} @ {flows} flows: warm fallbacks "
                    f"{warm.full_fallbacks} >= no-warm {nowarm.full_fallbacks}"
                )
            # Warm-insert acceptance: insertion must fire, and must not
            # cost fallbacks relative to the PR 3 first-undercut replay.
            if not warm.warm_inserts > 0:
                failures.append(
                    f"dense {model} @ {flows} flows: no warm insert ever fired"
                )
            if not warm.full_fallbacks <= pr3.full_fallbacks:
                failures.append(
                    f"dense {model} @ {flows} flows: warm-insert fallbacks "
                    f"{warm.full_fallbacks} > pr3 {pr3.full_fallbacks}"
                )
            # SoA counter acceptance at every gated flow count: the
            # vectorized warm path must carry the load, not the scalar
            # fallback solver.
            if not soa.warm_starts > 0:
                failures.append(
                    f"dense {model} @ {flows} flows: SoA warm solve never "
                    "accepted"
                )
            if not soa.full_fallbacks * 10 < soa.allocator_calls:
                failures.append(
                    f"dense {model} @ {flows} flows: SoA fell back to the "
                    f"scalar solver on {soa.full_fallbacks}/"
                    f"{soa.allocator_calls} solves (>= 10%)"
                )
            # SoA throughput acceptance (the perf tentpole): events/s
            # against the PR 3 scalar baseline, wall-clock-gated only at
            # flow counts large enough for stable ratios.
            if flows >= 256:
                gates = (
                    SOA_SPEEDUP_GATES_LARGE if flows >= 1024
                    else SOA_SPEEDUP_GATES
                )
                ratio = soa.events_per_sec / pr3.events_per_sec
                if not ratio >= gates[model]:
                    failures.append(
                        f"dense {model} @ {flows} flows: SoA events/s only "
                        f"{ratio:.2f}x the pr3 scalar baseline "
                        f"(gate {gates[model]:.1f}x)"
                    )
    if failures:
        print("\nFAIL: hot loop not sub-linear:", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    if not any(flows >= 64 for flows in flow_counts):
        print("\nNOTE: no flow count >= 64 — sub-linearity assertion skipped.")
        return 0
    print("\nOK: incremental allocator+horizon work per change beats the "
          "full-recompute/linear-scan\nbaseline for every model at every "
          "flow count >= 64" +
          (", dense-regime warm starts beat\nthe PR 2 full-fallback path, "
           "warm inserts fire for free, and the SoA backend\nclears its "
           "events/s gates over the PR 3 baseline for maxmin/packet."
           if dense_results else "."))
    return 0


if __name__ == "__main__":
    sys.exit(main())
