"""Allocator scaling — incremental vs full rate recomputation.

A fluid network pays its allocator on every membership change.  The full
(baseline) allocators recompute every flow's rate each time — O(flows) rate
assignments per change, quadratic-or-worse total work as churn grows with
the flow count.  The incremental allocators bound the recomputation to the
flows sharing a link (directly, or transitively through chained bottlenecks
for max-min) with the changed flow.

This bench drives a steady-state churn workload — ``F`` concurrent
transfers between random node pairs, each completion immediately replaced —
through both allocator modes of :class:`MaxMinStarNetwork` and
:class:`EqualShareStarNetwork` and reports events/sec, allocator invocation
counts, and the average number of per-flow rate recomputations per
membership change.  Run it as a script::

    PYTHONPATH=src python benchmarks/bench_allocator_scaling.py [--quick]
        [--flows 16,64,256] [--jobs N]

It exits non-zero unless the incremental allocators do strictly less rate
recomputation per membership change than the full baseline at >= 64 flows
(the acceptance bar for the incremental engine).
"""

from __future__ import annotations

import argparse
import multiprocessing
import random
import sys
import time
from dataclasses import dataclass

from repro.des.kernel import Kernel
from repro.netmodel.maxmin import MaxMinStarNetwork
from repro.netmodel.params import NetworkParams
from repro.netmodel.star import EqualShareStarNetwork

MODELS = {
    "maxmin": MaxMinStarNetwork,
    "equal-share": EqualShareStarNetwork,
}


@dataclass
class ChurnResult:
    model: str
    mode: str
    flows: int
    wall_time: float
    events: int
    allocator_calls: int
    membership_changes: int
    rates_computed: int

    @property
    def events_per_sec(self) -> float:
        return self.events / self.wall_time if self.wall_time > 0 else float("inf")

    @property
    def rates_per_change(self) -> float:
        return self.rates_computed / max(self.membership_changes, 1)


def run_churn(
    model: str, incremental: bool, flows: int, completions: int, seed: int = 7
) -> ChurnResult:
    """Steady-state churn: ``flows`` concurrent transfers, replaced on completion."""
    kernel = Kernel()
    params = NetworkParams(latency=0.0, bandwidth=1e6)
    net = MODELS[model](kernel, params, incremental=incremental)
    rng = random.Random(seed)
    num_nodes = max(flows, 4)
    total = flows + completions
    spawned = 0

    def submit() -> None:
        nonlocal spawned
        spawned += 1
        src = rng.randrange(num_nodes)
        dst = rng.randrange(num_nodes)
        while dst == src:
            dst = rng.randrange(num_nodes)
        net.submit(src, dst, rng.uniform(0.5e6, 1.5e6), on_done)

    def on_done(_transfer) -> None:
        if spawned < total:
            submit()

    start = time.perf_counter()
    for _ in range(flows):
        submit()
    kernel.run()
    wall = time.perf_counter() - start

    stats = net.allocator.stats
    return ChurnResult(
        model=model,
        mode="incremental" if incremental else "full",
        flows=flows,
        wall_time=wall,
        events=kernel.events_executed,
        allocator_calls=stats.incremental_updates + stats.full_allocations,
        # Every transfer enters and leaves the drain pool exactly once.
        membership_changes=2 * spawned,
        rates_computed=stats.rates_computed,
    )


def _run_scenario(args_tuple) -> ChurnResult:
    return run_churn(*args_tuple)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small flow counts and fewer completions (CI smoke)",
    )
    parser.add_argument(
        "--flows", default=None, metavar="F1,F2,..",
        help="comma-separated concurrent-flow counts (overrides --quick)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the scenario grid (0 = one per CPU)",
    )
    args = parser.parse_args(argv)

    if args.flows is not None:
        try:
            flow_counts = [int(v) for v in args.flows.split(",") if v.strip()]
        except ValueError as exc:
            parser.error(f"--flows expects comma-separated integers: {exc}")
        if not flow_counts:
            parser.error("--flows needs at least one value")
    elif args.quick:
        flow_counts = [16, 64]
    else:
        flow_counts = [16, 64, 256]
    churn_factor = 2 if args.quick else 4

    scenarios = [
        (model, incremental, flows, churn_factor * flows)
        for model in MODELS
        for flows in flow_counts
        for incremental in (False, True)
    ]
    if args.jobs != 1:
        with multiprocessing.Pool(processes=args.jobs or None) as pool:
            results = pool.map(_run_scenario, scenarios)
    else:
        results = [_run_scenario(s) for s in scenarios]

    header = (
        f"{'model':<12} {'mode':<12} {'flows':>6} {'events/s':>10} "
        f"{'alloc calls':>12} {'rates/change':>13} {'wall [s]':>9}"
    )
    print(header)
    print("-" * len(header))
    for res in results:
        print(
            f"{res.model:<12} {res.mode:<12} {res.flows:>6} "
            f"{res.events_per_sec:>10.0f} {res.allocator_calls:>12} "
            f"{res.rates_per_change:>13.2f} {res.wall_time:>9.3f}"
        )

    # Acceptance: incremental allocator work per membership change must be
    # strictly below the full-recompute baseline once contention is real.
    failures = []
    by_key = {(r.model, r.flows, r.mode): r for r in results}
    for model in MODELS:
        for flows in flow_counts:
            if flows < 64:
                continue
            inc = by_key[(model, flows, "incremental")]
            full = by_key[(model, flows, "full")]
            if not inc.rates_per_change < full.rates_per_change:
                failures.append(
                    f"{model} @ {flows} flows: incremental "
                    f"{inc.rates_per_change:.2f} >= full {full.rates_per_change:.2f}"
                )
    if failures:
        print("\nFAIL: incremental allocator not sub-linear:", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    if not any(flows >= 64 for flows in flow_counts):
        print("\nNOTE: no flow count >= 64 — sub-linearity assertion skipped.")
        return 0
    print("\nOK: incremental rate recomputation per change beats the full "
          "baseline at every flow count >= 64.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
