"""Fig. 8 — impact of modifications on running time (4 nodes).

Paper: reference is the basic flow graph at r = 648 (259.4 s).  The
variant optimizations (PM, P, P+PM, P+FC, P+PM+FC) bring ~3% each, which
is "negligible compared with the gains obtained by simply changing the
decomposition granularity": r = 162 is best (measured 72.5 s, predicted
75.5 s, improvement ~3.6x), and "the improvement predicted by the
simulator is within a few percents of the measured improvements".
"""

from __future__ import annotations

from _common import lu_cfg, measure_and_predict
from repro.analysis.tables import ascii_table

VARIANTS = [
    ("PM", dict(pm=True)),
    ("P", dict(pipelined=True)),
    ("P+PM", dict(pipelined=True, pm=True)),
    ("P+FC", dict(pipelined=True, fc=8)),
    ("P+PM+FC", dict(pipelined=True, pm=True, fc=8)),
]
GRANULARITIES = [324, 216, 162, 108]
R_REF = 648


def run_fig08():
    ref = measure_and_predict("fig8/basic-r648", lu_cfg(R_REF, nodes=4))
    rows = []
    for name, kw in VARIANTS:
        res = measure_and_predict(f"fig8/{name}-r{R_REF}", lu_cfg(R_REF, nodes=4, **kw))
        rows.append((name + f" (r={R_REF})", res))
    for r in GRANULARITIES:
        res = measure_and_predict(f"fig8/basic-r{r}", lu_cfg(r, nodes=4))
        rows.append((f"r={r}", res))
    return ref, rows


def test_fig08(benchmark):
    holder = {}
    benchmark.pedantic(lambda: holder.update(zip(("ref", "rows"), run_fig08())), rounds=1, iterations=1)
    ref, rows = holder["ref"], holder["rows"]

    table = []
    for name, res in rows:
        table.append(
            (
                name,
                f"{ref.measured / res.measured:.3f}",
                f"{ref.predicted / res.predicted:.3f}",
                f"{res.error * 100:+.1f}%",
            )
        )
    print()
    print(
        ascii_table(
            ["Modification", "Measured improvement", "Predicted improvement", "Pred. error"],
            table,
            title=f"Fig. 8 — 4 nodes, reference basic r={R_REF}: "
            f"measured {ref.measured:.1f} s, predicted {ref.predicted:.1f} s "
            "(paper reference: 259.4 s)",
        )
    )

    improvements = {name: ref.measured / res.measured for name, res in rows}
    # Variant tweaks at r=648 are small...
    variant_best = max(improvements[n + f" (r={R_REF})"] for n, _ in VARIANTS)
    # ...while granularity changes dominate.  The paper sees up to 3.6x
    # because its 4-block reference is pathological (259.4 s, slower than
    # serial); our fluid full-duplex testbed is kinder to that case
    # (~139 s), so the headroom — and hence the ratio — is smaller.  The
    # *shape* under test: granularity buys far more than any variant.
    gran_best = max(improvements[f"r={r}"] for r in GRANULARITIES)
    assert gran_best > 1.4
    assert gran_best > variant_best + 0.25
    # An interior granularity optimum exists: the best r is not the extreme.
    best_r = max(GRANULARITIES, key=lambda r: improvements[f"r={r}"])
    assert best_r in (162, 216, 324)
    # The simulator ranks granularities like the measurements do wherever
    # the measurements clearly separate them; near-ties (< 5% apart) may
    # legitimately swap under measurement noise.
    predicted_improvement = {
        r: ref.predicted / dict(rows)[f"r={r}"].predicted for r in GRANULARITIES
    }
    for ra in GRANULARITIES:
        for rb in GRANULARITIES:
            if improvements[f"r={ra}"] > improvements[f"r={rb}"] * 1.05:
                assert predicted_improvement[ra] > predicted_improvement[rb]
    # Predictions within the paper's accuracy envelope.
    for _, res in rows:
        assert abs(res.error) < 0.12
