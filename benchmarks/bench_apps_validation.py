"""Beyond-LU validation: prediction accuracy on the other applications.

The paper validates its simulator on one application (LU).  A simulator
is only trustworthy if its accuracy generalizes, so this bench repeats the
measured-vs-predicted comparison on the repository's other workloads —
the Jacobi stencil (neighborhood exchange) and parallel sample sort
(all-to-all) — at compute-dominant granularities, and checks the errors
stay within the paper's ±12% band.
"""

from __future__ import annotations

import pytest

from _common import SEED
from repro.analysis.tables import ascii_table
from repro.apps.sort import SampleSortApplication, SampleSortConfig, SampleSortCostModel
from repro.apps.stencil import StencilApplication, StencilConfig, StencilCostModel
from repro.sim.modes import SimulationMode
from repro.sim.platform import PAPER_CLUSTER
from repro.sim.providers import CostModelProvider
from repro.sim.simulator import DPSSimulator
from repro.testbed.cluster import VirtualCluster
from repro.testbed.executor import TestbedExecutor

NOALLOC = SimulationMode.PDEXEC_NOALLOC


def stencil_case(label, **kw):
    cfg = StencilConfig(mode=NOALLOC, **kw)
    model = StencilCostModel(PAPER_CLUSTER.machine, cfg.rows, cfg.n)
    return label, cfg, model, StencilApplication


def sort_case(label, **kw):
    cfg = SampleSortConfig(mode=NOALLOC, **kw)
    model = SampleSortCostModel(
        PAPER_CLUSTER.machine, cfg.block, cfg.num_threads
    )
    return label, cfg, model, SampleSortApplication


CASES = [
    stencil_case("stencil 768² pipelined 4n",
                 n=768, stripes=8, iterations=5, num_threads=4, num_nodes=4),
    stencil_case("stencil 1296² barrier 4n",
                 n=1296, stripes=8, iterations=5, num_threads=4, num_nodes=4,
                 barrier=True),
    stencil_case("stencil 1296² pipelined 8n",
                 n=1296, stripes=8, iterations=5, num_threads=8, num_nodes=8),
    sort_case("sort 256k keys 4n", m=1 << 18, num_threads=4, num_nodes=4),
    sort_case("sort 256k keys 8n", m=1 << 18, num_threads=8, num_nodes=8),
    sort_case("sort 1M keys 4n", m=1 << 20, num_threads=4, num_nodes=4),
]


def run_cases():
    rows = []
    for label, cfg, model, app_cls in CASES:
        measured = TestbedExecutor(
            VirtualCluster(num_nodes=cfg.num_nodes, seed=SEED),
            run_kernels=False,
        ).run(app_cls(cfg))
        predicted = DPSSimulator(
            PAPER_CLUSTER, CostModelProvider(model, run_kernels=False)
        ).run(app_cls(cfg))
        error = predicted.predicted_time / measured.measured_time - 1.0
        rows.append((label, measured.measured_time,
                     predicted.predicted_time, error))
    return rows


def test_other_apps_within_paper_band(benchmark):
    holder = {}
    benchmark.pedantic(
        lambda: holder.setdefault("rows", run_cases()), rounds=1, iterations=1
    )
    rows = holder["rows"]
    print()
    print(
        ascii_table(
            ("configuration", "measured [s]", "predicted [s]", "error"),
            [
                (label, f"{m:.3f}", f"{p:.3f}", f"{e:+.1%}")
                for label, m, p, e in rows
            ],
            title="Prediction accuracy beyond LU (stencil, sample sort)",
        )
    )
    errors = [e for *_, e in rows]
    assert all(abs(e) < 0.12 for e in errors), errors
    # And the bulk of them sit in the tighter band the paper reports.
    assert sum(abs(e) < 0.06 for e in errors) >= len(errors) // 2
