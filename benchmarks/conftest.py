"""Benchmark-suite configuration.

The benches run full-size (n = 2592) experiment pairs — testbed
measurement plus simulator prediction — under PDEXEC+NOALLOC, so each pair
costs a fraction of a second of host time.  Results are cached per
configuration within the session so Fig. 13 can aggregate every comparison
made by the other benches without re-running them.
"""
