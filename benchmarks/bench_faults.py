"""Fault-layer acceptance gates (``docs/faults.md``).

Two properties of the fault subsystem are cheap to promise and easy to
regress, so they are pinned here:

* **Empty plans are free.**  ``faults=FaultPlan()`` compiles to ``None``
  and must take the *literal* fault-free code path — the gate runs the
  10k-job sharded open-system regime (``REPRO_FAULT_BENCH_JOBS``
  overrides) both ways, interleaved best-of-5, and requires the
  empty-plan wall clock within **2%** of the no-plan baseline plus a
  bit-identical result.
* **Fault replay is K-invariant at scale.**  A non-empty plan on the
  same regime must produce the identical result — fault trace, retry
  and loss accounting included — for 1 and 4 shards.
"""

from __future__ import annotations

import os
import time

from _common import SEED
from repro.analysis.tables import ascii_table
from repro.clusterserver import (
    FcfsScheduler,
    JobSpec,
    ShardedServer,
    amdahl_efficiency,
)
from repro.faults import FaultEvent, FaultPlan
from repro.util.rng import SeedSequenceFactory

FAULT_BENCH_JOBS = int(os.environ.get("REPRO_FAULT_BENCH_JOBS", "10000"))
FAULT_BENCH_NODES = 128
#: allowed empty-plan overhead over the no-plan baseline (best-of-5)
FAULT_GATE_OVERHEAD = 0.02
_REPS = 5


def open_stream(jobs: int, seed: int = SEED):
    """Lazy Poisson stream of single-node jobs (~60 concurrently active)."""
    rng = SeedSequenceFactory(seed).rng("fault-bench")
    t = 0.0
    for i in range(jobs):
        t += float(rng.exponential(1.0))
        work = float(rng.uniform(30.0, 90.0))
        yield t, JobSpec(
            name=f"job{i}",
            arrival=t,
            phase_work=(work,),
            efficiency=amdahl_efficiency(0.9),
            max_nodes=1,
            min_nodes=1,
            preferred_nodes=1,
        )


def _run(jobs: int, faults=None, shards: int = 4):
    server = ShardedServer(
        FAULT_BENCH_NODES,
        FcfsScheduler(backfill=True),
        shards=shards,
        mode="inprocess",
        faults=faults,
    )
    t0 = time.perf_counter()
    result = server.run(open_stream(jobs))
    return result, time.perf_counter() - t0


def test_empty_fault_plan_overhead(benchmark):
    """The ≤2% gate: an empty plan must cost (essentially) nothing."""
    jobs = FAULT_BENCH_JOBS
    walls: dict[str, list[float]] = {"none": [], "empty": []}
    results: dict[str, object] = {}

    def measure() -> None:
        # Interleaved repetitions decorrelate clock and cache drift from
        # the comparison; best-of-N is the low-noise point estimate.
        for _ in range(_REPS):
            for label, faults in (("none", None), ("empty", FaultPlan())):
                result, wall = _run(jobs, faults)
                walls[label].append(wall)
                results[label] = result

    benchmark.pedantic(measure, rounds=1, iterations=1)
    base = min(walls["none"])
    empty = min(walls["empty"])
    overhead = empty / base - 1.0

    print()
    print(
        ascii_table(
            ("fault plan", "best wall [s]", "median wall [s]", "overhead"),
            [
                ("none", f"{base:.3f}",
                 f"{sorted(walls['none'])[_REPS // 2]:.3f}", "-"),
                ("empty", f"{empty:.3f}",
                 f"{sorted(walls['empty'])[_REPS // 2]:.3f}",
                 f"{overhead * 100:+.2f}%"),
            ],
            title=(
                f"Empty-fault-plan overhead — {jobs} jobs on "
                f"{FAULT_BENCH_NODES} nodes, 4 in-process shards"
            ),
        )
    )

    none_result, empty_result = results["none"], results["empty"]
    # An empty plan is the fault-free code path: bits, not just stats.
    assert empty_result == none_result
    assert empty_result.fault_trace == ()
    assert overhead <= FAULT_GATE_OVERHEAD, (
        f"empty fault plan costs {overhead * 100:.2f}% "
        f"(gate {FAULT_GATE_OVERHEAD * 100:.0f}%)"
    )


def test_fault_replay_k_invariant_at_scale(benchmark):
    """Non-empty plans replay bit-identically for K in {1, 4} at 10k jobs."""
    jobs = FAULT_BENCH_JOBS
    horizon = float(jobs)  # ~1 job/s: faults land mid-stream
    plan = FaultPlan(
        events=(
            FaultEvent(kind="crash", at=0.10 * horizon, node=3),
            FaultEvent(kind="degrade", at=0.05 * horizon, node=17,
                       factor=0.5, duration=0.30 * horizon),
            FaultEvent(kind="brownout", at=0.40 * horizon, node=64,
                       duration=0.10 * horizon),
            FaultEvent(kind="crash", at=0.60 * horizon),  # seed-resolved
        ),
        max_retries=2,
        seed=SEED,
    )

    holder = {}
    benchmark.pedantic(
        lambda: holder.update(result=_run(jobs, plan, shards=4)[0]),
        rounds=1,
        iterations=1,
    )
    sharded = holder["result"]
    serial, _ = _run(jobs, plan, shards=1)

    print()
    print(
        f"fault replay at {jobs} jobs: {len(sharded.fault_trace)} trace "
        f"entries, {sharded.retries} retries, "
        f"{sharded.lost_work:.1f} work units lost, "
        f"{sharded.failed_jobs} failed"
    )

    assert sharded.fault_trace  # the plan must actually bite
    assert sharded == serial
    assert sharded.slo == serial.slo
