"""Fig. 9 — impact of the modifications at r = 324 on 4 nodes.

Paper: reference basic r=324 (101.8 s).  "Due to the well balanced
distribution of block multiplications within the reference setup, the
increased communication requirements of transmitting sub-blocks for the
parallel sub-block multiplications (PM) slows down the execution instead
of accelerating it.  On the other hand, pipelining (P) and flow control
(FC) slightly improve the performances."  Prediction errors are below 5%.
"""

from __future__ import annotations

from _common import lu_cfg, measure_and_predict
from repro.analysis.tables import ascii_bar_chart, ascii_table

VARIANTS = [
    ("PM", dict(pm=True)),
    ("P", dict(pipelined=True)),
    ("P+PM", dict(pipelined=True, pm=True)),
    ("P+FC", dict(pipelined=True, fc=8)),
    ("P+PM+FC", dict(pipelined=True, pm=True, fc=8)),
]
R = 324


def run_fig09():
    ref = measure_and_predict("fig9/basic-r324", lu_cfg(R, nodes=4))
    results = [
        (name, measure_and_predict(f"fig9/{name}", lu_cfg(R, nodes=4, **kw)))
        for name, kw in VARIANTS
    ]
    return ref, results


def test_fig09(benchmark):
    holder = {}
    benchmark.pedantic(
        lambda: holder.update(zip(("ref", "rows"), run_fig09())), rounds=1, iterations=1
    )
    ref, rows = holder["ref"], holder["rows"]

    table = [
        (
            name,
            f"{ref.measured / res.measured:.3f}",
            f"{ref.predicted / res.predicted:.3f}",
            f"{res.error * 100:+.1f}%",
        )
        for name, res in rows
    ]
    print()
    print(
        ascii_table(
            ["Variant", "Measured improvement", "Predicted improvement", "Pred. error"],
            table,
            title=f"Fig. 9 — 4 nodes, reference basic r={R}: measured "
            f"{ref.measured:.1f} s (paper reference: 101.8 s)",
        )
    )
    print()
    print(
        ascii_bar_chart(
            [name for name, _ in rows],
            [ref.measured / res.measured for _, res in rows],
            title="Measured performance improvement (1.0 = reference)",
        )
    )

    imp = {name: ref.measured / res.measured for name, res in rows}
    pred_imp = {name: ref.predicted / res.predicted for name, res in rows}
    # PM alone slows the execution down (measured and predicted).
    assert imp["PM"] < 1.0
    assert pred_imp["PM"] < 1.0
    # Pipelining and flow control improve it.
    assert imp["P"] > 1.0
    assert imp["P+FC"] >= imp["P"] - 0.03
    # PM always hurts relative to the same variant without PM.
    assert imp["P+PM"] < imp["P"]
    assert imp["P+PM+FC"] < imp["P+FC"]
    # Reference anchor within the paper's ballpark.
    assert 70 < ref.measured < 140
    # Prediction errors stay in a modest band (paper: < 5%; the convex
    # comm-CPU mismatch of the testbed widens PM variants slightly).
    for _, res in rows:
        assert abs(res.error) < 0.10
