"""Shared helpers for the benchmark suite.

Terminology follows the paper: **measured** values come from the
ground-truth virtual cluster (:mod:`repro.testbed`), **predicted** values
from the DPS simulator (:mod:`repro.sim`) using network parameters
calibrated against that cluster — the workflow a user of the paper's
system follows on real hardware.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.prediction import PredictionStudy
from repro.analysis.sweep import SweepCase, SweepResult, run_lu_case
from repro.apps.lu.config import LUConfig
from repro.dps.malleability import AllocationEvent, AllocationSchedule
from repro.dps.trace import TraceLevel
from repro.sim.modes import SimulationMode

#: paper matrix size
N = 2592
#: default measurement seed (one "run" of the real cluster)
SEED = 1

#: the paper's Fig. 12 strategies, 1-based iteration numbering
KILL4_AFTER_1 = AllocationSchedule(
    events=(AllocationEvent("iter1", "workers", (4, 5, 6, 7)),),
    name="kill 4 after it. 1",
)
KILL4_AFTER_4 = AllocationSchedule(
    events=(AllocationEvent("iter4", "workers", (4, 5, 6, 7)),),
    name="kill 4 after it. 4",
)
KILL2_2 = AllocationSchedule(
    events=(
        AllocationEvent("iter2", "workers", (6, 7)),
        AllocationEvent("iter3", "workers", (4, 5)),
    ),
    name="kill 2 after it. 2 + 2 after it. 3",
)


def pm_sub(r: int) -> int:
    """PM sub-block size used throughout the benches (r/3)."""
    return r // 3


def lu_cfg(
    r: int,
    nodes: int = 4,
    threads: Optional[int] = None,
    pipelined: bool = False,
    fc: Optional[int] = None,
    pm: bool = False,
    schedule: AllocationSchedule | None = None,
) -> LUConfig:
    """Paper-style LU configuration at full size, NOALLOC."""
    return LUConfig(
        n=N,
        r=r,
        num_threads=threads if threads is not None else nodes,
        num_nodes=nodes,
        pipelined=pipelined,
        flow_control=fc,
        pm_subblock=pm_sub(r) if pm else None,
        schedule=schedule or AllocationSchedule(),
        mode=SimulationMode.PDEXEC_NOALLOC,
    )


_CACHE: dict[tuple, SweepResult] = {}


def _cfg_key(cfg: LUConfig, seed: int) -> tuple:
    return (
        cfg.n,
        cfg.r,
        cfg.num_threads,
        cfg.num_nodes,
        cfg.pipelined,
        cfg.flow_control,
        cfg.pm_subblock,
        cfg.schedule.name,
        tuple(cfg.schedule.events),
        seed,
    )


def platform_for(nodes: int, seed: int = SEED):
    """Calibrated platform for a cluster size (shared memoized cache)."""
    from repro.analysis.parallel import cached_platform

    return cached_platform((nodes, seed))


def measure_and_predict(
    label: str,
    cfg: LUConfig,
    seed: int = SEED,
    trace_level: TraceLevel = TraceLevel.SUMMARY,
    keep_runs: bool = False,
) -> SweepResult:
    """One measured/predicted pair, cached across benches."""
    key = _cfg_key(cfg, seed) + (keep_runs,)
    if key not in _CACHE:
        _CACHE[key] = run_lu_case(
            SweepCase(label, cfg, seed=seed),
            platform=platform_for(cfg.num_nodes, seed),
            trace_level=trace_level,
            keep_runs=keep_runs,
        )
    return _CACHE[key]


def all_cached_results() -> list[SweepResult]:
    """Every comparison performed so far in this session (for Fig. 13)."""
    return list(_CACHE.values())


def study_from(results) -> PredictionStudy:
    study = PredictionStudy()
    for res in results:
        study.add(res.case.label, res.measured, res.predicted)
    return study
