"""Table 1 — simulation cost and predicted time across simulation modes.

Paper (UltraSparc II host): real 8-node run 62.3 s, serial 185.1 s; direct
execution simulation costs 193.0 s / 127 MB and predicts 60.7 s; PDEXEC
9.1 s / 124 MB predicting 60.3 s; PDEXEC+NOALLOC 6.5 s / 14 MB predicting
59.9 s.  On the 6.5x-faster Pentium 4 host the *simulation* gets faster
but PDEXEC predictions stay put (60.0 / 59.9 s) — partial direct execution
makes the simulation portable.

Reproduced shape checks:

* the testbed's serial and 8-node times anchor near 185 s / 62 s scale,
* PDEXEC is much faster to *run* than direct execution and NOALLOC uses a
  small fraction of the memory,
* predicted times agree within a few percent across all three modes, and
  are host-independent for PDEXEC by construction (host speed only enters
  through the direct-execution calibration scale).
"""

from __future__ import annotations

import pytest

from _common import N, SEED, lu_cfg, platform_for
from repro.analysis.tables import ascii_table
from repro.apps.lu.app import LUApplication
from repro.apps.lu.config import LUConfig
from repro.apps.lu.costs import LUCostModel
from repro.sim.modes import SimulationMode
from repro.sim.providers import (
    CostModelProvider,
    DirectExecutionProvider,
    HostCalibration,
    MeasureFirstNProvider,
)
from repro.sim.simulator import DPSSimulator
from repro.testbed.cluster import VirtualCluster
from repro.testbed.executor import TestbedExecutor
from repro.util.units import MB

R = 216
CFG_DIRECT = LUConfig(n=N, r=R, num_threads=8, num_nodes=8, mode=SimulationMode.DIRECT)
CFG_PDEXEC = LUConfig(n=N, r=R, num_threads=8, num_nodes=8, mode=SimulationMode.PDEXEC)
CFG_NOALLOC = LUConfig(
    n=N, r=R, num_threads=8, num_nodes=8, mode=SimulationMode.PDEXEC_NOALLOC
)


def _reference_times():
    cluster = VirtualCluster(num_nodes=8, seed=SEED)
    parallel = TestbedExecutor(cluster, run_kernels=False).run(
        LUApplication(CFG_NOALLOC)
    )
    serial_cfg = LUConfig(
        n=N, r=R, num_threads=1, num_nodes=1, mode=SimulationMode.PDEXEC_NOALLOC
    )
    serial = TestbedExecutor(
        VirtualCluster(num_nodes=1, seed=SEED), run_kernels=False
    ).run(LUApplication(serial_cfg))
    return parallel.measured_time, serial.measured_time


def _simulate(mode: SimulationMode):
    platform = platform_for(8)
    if mode is SimulationMode.DIRECT:
        calibration = HostCalibration(platform.machine, reference_size=R)
        provider = MeasureFirstNProvider(
            DirectExecutionProvider(calibration), n=2
        )
        cfg = CFG_DIRECT
    elif mode is SimulationMode.PDEXEC:
        provider = CostModelProvider(LUCostModel(platform.machine, R), run_kernels=True)
        cfg = CFG_PDEXEC
    else:
        provider = CostModelProvider(LUCostModel(platform.machine, R))
        cfg = CFG_NOALLOC
    sim = DPSSimulator(platform, provider, measure_memory=True)
    return sim.run(LUApplication(cfg))


def test_table1(benchmark):
    measured_parallel, measured_serial = _reference_times()

    results = {}

    def run_all():
        for mode in (
            SimulationMode.DIRECT,
            SimulationMode.PDEXEC,
            SimulationMode.PDEXEC_NOALLOC,
        ):
            results[mode] = _simulate(mode)
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [
        ("Real application (8 nodes)", "-", "-", f"{measured_parallel:.1f} (measured)"),
        ("Real application (1 node)", f"{measured_serial:.1f}", "-", "N/A"),
    ]
    for mode, label in [
        (SimulationMode.DIRECT, "Direct execution (sim)"),
        (SimulationMode.PDEXEC, "PDEXEC (sim)"),
        (SimulationMode.PDEXEC_NOALLOC, "PDEXEC NOALLOC (sim)"),
    ]:
        res = results[mode]
        note = ""
        if mode is SimulationMode.DIRECT:
            note = " (not representative: host != target, cf. paper's P4 row)"
        rows.append(
            (
                label,
                f"{res.simulation_wall_time:.2f}",
                f"{res.simulation_peak_memory_mb:.1f}",
                f"{res.predicted_time:.1f}{note}",
            )
        )
    print()
    print(
        ascii_table(
            ["Setting", "Sim wall time [s]", "Sim memory [MB]", "Predicted time [s]"],
            rows,
            title=f"Table 1 — LU {N}x{N}, r={R}, basic graph, 8 nodes "
            f"(paper: real 62.3 s, serial 185.1 s)",
        )
    )

    direct = results[SimulationMode.DIRECT]
    pdexec = results[SimulationMode.PDEXEC]
    noalloc = results[SimulationMode.PDEXEC_NOALLOC]

    # Anchors: same order of magnitude as the paper's testbed.
    assert 120 < measured_serial < 260
    assert 40 < measured_parallel < 110

    # PDEXEC+NOALLOC must be the cheapest simulation by a wide margin.
    assert noalloc.simulation_wall_time < pdexec.simulation_wall_time
    assert noalloc.simulation_peak_memory < 0.2 * pdexec.simulation_peak_memory
    # Allocating modes hold the 2592^2 matrix (~54 MB) plus copies.
    assert pdexec.simulation_peak_memory > 50 * MB
    assert noalloc.simulation_peak_memory < 30 * MB

    # PDEXEC predictions agree within a few percent (paper: -1.3%) and do
    # not depend on the simulation host.
    assert abs(pdexec.predicted_time - noalloc.predicted_time) / noalloc.predicted_time < 0.02
    # Direct execution on a host dissimilar from the target is *not
    # representative* — the paper's Table 1 reports "N/A" for the direct
    # execution prediction on the Pentium 4 for exactly this reason.  The
    # relative speeds of panel/trsm/gemm on a modern BLAS differ from the
    # UltraSparc profile, so only a loose sanity band applies here.
    assert 0.3 < direct.predicted_time / noalloc.predicted_time < 5.0

    # And the prediction tracks the measured parallel run.
    assert abs(noalloc.predicted_time - measured_parallel) / measured_parallel < 0.12
