"""Fig. 11 — dynamic efficiency of the LU factorization.

Paper: 2592^2, r=324, eight column blocks, basic flow graph.  "During the
first iteration, four nodes are about 50% more efficient than eight nodes
(60.2% vs 37.6%).  The relative efficiency of 4 nodes versus 8 nodes
increases up to iteration 6 where 4 nodes have twice the efficiency of 8
nodes. [...] Removing threads during execution increases the efficiency
of the subsequent iterations" (the "kill 4 after it. 1" curve).
"""

from __future__ import annotations

from _common import KILL4_AFTER_1, lu_cfg, measure_and_predict
from repro.analysis.tables import ascii_table
from repro.dps.trace import TraceLevel
from repro.sim.efficiency import dynamic_efficiency

R = 324
NB = 8


def efficiency_series(result_run):
    return {pe.label: pe.efficiency for pe in dynamic_efficiency(result_run)}


def run_fig11():
    cases = {
        "8 threads": lu_cfg(R, nodes=8, threads=8),
        "4 threads": lu_cfg(R, nodes=4, threads=4),
        "kill 4 after it. 1": lu_cfg(R, nodes=8, threads=8, schedule=KILL4_AFTER_1),
    }
    out = {}
    for name, cfg in cases.items():
        res = measure_and_predict(
            f"fig11/{name}", cfg, trace_level=TraceLevel.SUMMARY, keep_runs=True
        )
        out[name] = {
            "measured": efficiency_series(res.measured_run),
            "sim": efficiency_series(res.predicted_run),
            "result": res,
        }
    return out


def test_fig11(benchmark):
    holder = {}
    benchmark.pedantic(lambda: holder.update(run_fig11()), rounds=1, iterations=1)

    labels = [f"iter{k}" for k in range(1, NB + 1)]
    rows = []
    for label in labels:
        row = [label]
        for name in ("8 threads", "4 threads", "kill 4 after it. 1"):
            meas = holder[name]["measured"].get(label)
            sim = holder[name]["sim"].get(label)
            row.append(f"{meas * 100:.1f}/{sim * 100:.1f}")
        rows.append(row)
    print()
    print(
        ascii_table(
            ["Iteration", "8 thr meas/sim [%]", "4 thr meas/sim [%]", "kill4@1 meas/sim [%]"],
            rows,
            title="Fig. 11 — dynamic efficiency per LU iteration "
            "(paper iteration 1: 8 thr 37.6%, 4 thr 60.2%)",
        )
    )

    m8 = holder["8 threads"]["measured"]
    m4 = holder["4 threads"]["measured"]
    kill = holder["kill 4 after it. 1"]["measured"]

    # Efficiency decays over the iterations (compare early vs late).
    assert m8["iter1"] > m8["iter6"] > m8["iter8"]
    assert m4["iter1"] > m4["iter7"]
    # Four nodes are substantially more efficient than eight throughout.
    for label in labels[:6]:
        assert m4[label] > 1.3 * m8[label]
    # Paper anchors: iteration-1 efficiencies in the right neighbourhoods.
    assert 0.25 < m8["iter1"] < 0.55
    assert 0.45 < m4["iter1"] < 0.75
    # Killing 4 threads after iteration 1 lifts subsequent efficiency
    # toward the 4-node curve.
    for label in labels[2:6]:
        assert kill[label] > 1.25 * m8[label]
    # The simulator reproduces the same ordering (prediction side).
    s8 = holder["8 threads"]["sim"]
    s4 = holder["4 threads"]["sim"]
    skill = holder["kill 4 after it. 1"]["sim"]
    for label in labels[:6]:
        assert s4[label] > s8[label]
    for label in labels[2:6]:
        assert skill[label] > s8[label]
    # Per-iteration prediction error stays moderate for the early,
    # long iterations that dominate the running time.
    for name in holder:
        for label in labels[:4]:
            meas = holder[name]["measured"][label]
            sim = holder[name]["sim"][label]
            assert abs(sim - meas) / meas < 0.20
