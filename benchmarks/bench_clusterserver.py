"""Future-work bench: the cluster server with malleable jobs (paper §9).

Compares conventional rigid policies (static, FCFS, FCFS+backfill) against
malleable ones (equipartition, dynamic-efficiency-aware adaptive) on a
synthetic stream of LU-like jobs, quantifying the claim of section 8:
"the service rate of the cluster can be significantly increased if the
deallocated compute nodes are assigned to other applications."
"""

from __future__ import annotations

from _common import SEED
from repro.analysis.tables import ascii_table
from repro.clusterserver import (
    AdaptiveEfficiencyScheduler,
    ClusterServer,
    EquipartitionScheduler,
    FcfsScheduler,
    StaticScheduler,
    synthetic_workload,
)

NODES = 16


def run_policies():
    workload = synthetic_workload(
        jobs=16, mean_interarrival=25.0, seed=SEED, max_nodes=8
    )
    policies = [
        StaticScheduler(nodes_per_job=8),
        FcfsScheduler(),
        FcfsScheduler(backfill=True),
        EquipartitionScheduler(),
        AdaptiveEfficiencyScheduler(efficiency_floor=0.5),
    ]
    return {p.name: ClusterServer(NODES, p).run(workload) for p in policies}


def test_clusterserver_policies(benchmark):
    holder = {}
    benchmark.pedantic(lambda: holder.update(run_policies()), rounds=1, iterations=1)

    rows = [
        (
            name,
            f"{res.makespan:.1f}",
            f"{res.mean_turnaround:.1f}",
            f"{res.mean_wait:.1f}",
            f"{res.mean_slowdown:.2f}",
            f"{res.cluster_efficiency * 100:.1f}%",
            f"{res.service_rate:.3f}",
        )
        for name, res in holder.items()
    ]
    print()
    print(
        ascii_table(
            [
                "Policy",
                "Makespan [s]",
                "Turnaround [s]",
                "Wait [s]",
                "Slowdown",
                "Cluster eff.",
                "Service rate",
            ],
            rows,
            title=f"Cluster server — 16 LU-like malleable jobs on {NODES} nodes",
        )
    )

    static = holder["static"]
    equi = holder["equipartition"]
    adaptive = holder["adaptive"]
    # Malleable policies beat static allocation on turnaround.
    assert equi.mean_turnaround < static.mean_turnaround
    assert adaptive.mean_turnaround < static.mean_turnaround
    # And waste fewer node-seconds per unit of work.
    assert adaptive.cluster_efficiency > static.cluster_efficiency
    # Everybody finishes the same total work.
    assert abs(static.total_work - adaptive.total_work) < 1e-6
    # Backfilling can only help FCFS waits, never hurt them.
    assert (
        holder["fcfs+backfill"].mean_wait <= holder["fcfs"].mean_wait + 1e-9
    )