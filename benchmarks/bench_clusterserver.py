"""Future-work bench: the cluster server with malleable jobs (paper §9).

Compares conventional rigid policies (static, FCFS, FCFS+backfill) against
malleable ones (equipartition, dynamic-efficiency-aware adaptive) on a
synthetic stream of LU-like jobs, quantifying the claim of section 8:
"the service rate of the cluster can be significantly increased if the
deallocated compute nodes are assigned to other applications."

The *sharded scaling regime* (``test_sharded_clusterserver_scaling``) is
the acceptance gate of the sharded-simulation subsystem
(``docs/sharding.md``): one huge single scenario (10k malleable jobs by
default; ``REPRO_SHARD_BENCH_JOBS`` overrides) run three ways —

* the pre-existing single-kernel eager engine (``ClusterServer``), whose
  per-event cost is O(running jobs),
* ``ShardedServer`` with one shard (*the* single-kernel run of the
  sharded engine — the determinism baseline),
* ``ShardedServer`` with four shards.

Gate: the 4-shard run must be **>= 2x faster wall-clock** than the eager
single-kernel run *and* produce a bit-identical ``ServerResult``
(makespan, per-job turnaround/wait/slowdown, summed event counts) to the
one-shard run; against the eager engine it must agree to float
reassociation noise (1e-9 relative).  Determinism is the hard
requirement; the speedup is the gate.
"""

from __future__ import annotations

import os
import time
import tracemalloc

from _common import SEED
from repro.analysis.tables import ascii_table
from repro.clusterserver import (
    AdaptiveEfficiencyScheduler,
    ClusterServer,
    EquipartitionScheduler,
    FcfsScheduler,
    JobSpec,
    ShardedServer,
    StaticScheduler,
    amdahl_efficiency,
    synthetic_workload,
)
from repro.util.rng import SeedSequenceFactory

NODES = 16


def run_policies():
    workload = synthetic_workload(
        jobs=16, mean_interarrival=25.0, seed=SEED, max_nodes=8
    )
    policies = [
        StaticScheduler(nodes_per_job=8),
        FcfsScheduler(),
        FcfsScheduler(backfill=True),
        EquipartitionScheduler(),
        AdaptiveEfficiencyScheduler(efficiency_floor=0.5),
    ]
    return {p.name: ClusterServer(NODES, p).run(workload) for p in policies}


def test_clusterserver_policies(benchmark):
    holder = {}
    benchmark.pedantic(lambda: holder.update(run_policies()), rounds=1, iterations=1)

    rows = [
        (
            name,
            f"{res.makespan:.1f}",
            f"{res.mean_turnaround:.1f}",
            f"{res.mean_wait:.1f}",
            f"{res.mean_slowdown:.2f}",
            f"{res.cluster_efficiency * 100:.1f}%",
            f"{res.service_rate:.3f}",
        )
        for name, res in holder.items()
    ]
    print()
    print(
        ascii_table(
            [
                "Policy",
                "Makespan [s]",
                "Turnaround [s]",
                "Wait [s]",
                "Slowdown",
                "Cluster eff.",
                "Service rate",
            ],
            rows,
            title=f"Cluster server — 16 LU-like malleable jobs on {NODES} nodes",
        )
    )

    static = holder["static"]
    equi = holder["equipartition"]
    adaptive = holder["adaptive"]
    # Malleable policies beat static allocation on turnaround.
    assert equi.mean_turnaround < static.mean_turnaround
    assert adaptive.mean_turnaround < static.mean_turnaround
    # And waste fewer node-seconds per unit of work.
    assert adaptive.cluster_efficiency > static.cluster_efficiency
    # Everybody finishes the same total work.
    assert abs(static.total_work - adaptive.total_work) < 1e-6
    # Backfilling can only help FCFS waits, never hurt them.
    assert (
        holder["fcfs+backfill"].mean_wait <= holder["fcfs"].mean_wait + 1e-9
    )


# --------------------------------------------------------------------------
# sharded scaling regime (the docs/sharding.md acceptance gate)
# --------------------------------------------------------------------------

SHARD_BENCH_JOBS = int(os.environ.get("REPRO_SHARD_BENCH_JOBS", "10000"))
SHARD_BENCH_NODES = 500
SHARD_GATE_SPEEDUP = 2.0


def sharded_scenario(jobs: int = SHARD_BENCH_JOBS, seed: int = SEED):
    """One huge clusterserver scenario: a dense stream of small jobs.

    Single-node three-phase jobs at ~1 s mean interarrival keep several
    hundred jobs running concurrently — the regime where the eager
    single-kernel engine's O(running) per-event advance dominates and
    kernel partitioning pays.
    """
    rng = SeedSequenceFactory(seed).rng("sharded-bench")
    specs, t = [], 0.0
    for i in range(jobs):
        t += float(rng.exponential(1.0))
        unit = float(rng.uniform(0.5, 1.5)) * 120.0
        specs.append(
            JobSpec(
                name=f"job{i}",
                arrival=t,
                phase_work=(unit, unit, unit),
                efficiency=amdahl_efficiency(0.95),
                max_nodes=1,
                min_nodes=1,
                preferred_nodes=1,
            )
        )
    return specs


def _results_identical(a, b) -> bool:
    """Bit-equality on the gated ServerResult fields."""
    return (
        a.makespan == b.makespan
        and a.job_turnaround == b.job_turnaround
        and a.job_wait == b.job_wait
        and a.job_slowdown == b.job_slowdown
        and a.events == b.events
    )


def _max_rel_err(a: dict, b: dict) -> float:
    return max(
        abs(a[k] - b[k]) / max(abs(b[k]), 1e-30) for k in b
    ) if b else 0.0


def test_sharded_clusterserver_scaling(benchmark):
    specs = sharded_scenario()
    scheduler = lambda: FcfsScheduler(backfill=True)  # noqa: E731

    t0 = time.perf_counter()
    eager = ClusterServer(SHARD_BENCH_NODES, scheduler()).run(specs)
    eager_wall = time.perf_counter() - t0

    single = ShardedServer(
        SHARD_BENCH_NODES, scheduler(), shards=1, mode="inprocess"
    )
    serial = single.run(specs)

    sharded = ShardedServer(
        SHARD_BENCH_NODES, scheduler(), shards=4, mode="inprocess"
    )
    holder = {}
    benchmark.pedantic(
        lambda: holder.update(result=sharded.run(specs)),
        rounds=1,
        iterations=1,
    )
    result = holder["result"]
    stats = sharded.stats

    rows = [
        ("eager single-kernel", f"{eager_wall:.2f}", f"{eager.events}", "1.00"),
        (
            "sharded K=1",
            f"{single.stats.wall_s:.2f}",
            f"{serial.events}",
            f"{single.stats.speedup_vs(eager_wall):.2f}",
        ),
        (
            "sharded K=4",
            f"{stats.wall_s:.2f}",
            f"{result.events}",
            f"{stats.speedup_vs(eager_wall):.2f}",
        ),
    ]
    print()
    print(
        ascii_table(
            ("engine", "wall [s]", "events", "speedup"),
            rows,
            title=(
                f"Sharded clusterserver — {len(specs)} jobs on "
                f"{SHARD_BENCH_NODES} nodes ({stats.mode} shards)"
            ),
        )
    )
    print(
        f"epochs {stats.epochs}, reallocations {stats.allocations} "
        f"({stats.allocations_elided} elided), events/shard "
        f"{list(stats.shard_events)}, barrier wait "
        f"{stats.barrier_wait_s * 1e3:.1f} ms"
    )

    # Determinism gate (hard requirement): the 4-shard run reproduces the
    # single-kernel (K=1) run bit-for-bit, and shard event totals conserve.
    assert _results_identical(result, serial)
    assert stats.events_total == single.stats.events_total
    assert sum(stats.shard_jobs) == len(specs)
    # Cross-engine validation: the eager engine agrees to reassociation
    # noise (its per-event advance chunks progress differently).
    assert _max_rel_err(result.job_turnaround, eager.job_turnaround) < 1e-9
    assert abs(result.makespan - eager.makespan) < 1e-9 * eager.makespan
    # Speedup gate: >= 2x over the eager single-kernel engine at 4 shards.
    speedup = stats.speedup_vs(eager_wall)
    assert speedup >= SHARD_GATE_SPEEDUP, (
        f"sharded run only {speedup:.2f}x faster "
        f"({stats.wall_s:.2f}s vs {eager_wall:.2f}s)"
    )


def test_sharded_process_mode_identical(benchmark):
    """Process-pool shards produce the same bits as the in-process run.

    Kept small: on a multi-core host the pool parallelizes the per-epoch
    advance, but the determinism contract is what this pins down.
    """
    specs = sharded_scenario(jobs=min(SHARD_BENCH_JOBS, 400))
    baseline = ShardedServer(
        SHARD_BENCH_NODES, EquipartitionScheduler(), shards=1, mode="inprocess"
    ).run(specs)
    server = ShardedServer(
        SHARD_BENCH_NODES, EquipartitionScheduler(), shards=4, mode="process"
    )
    holder = {}
    benchmark.pedantic(
        lambda: holder.update(result=server.run(specs)),
        rounds=1,
        iterations=1,
    )
    assert _results_identical(holder["result"], baseline)
    assert server.stats.mode == "process"


# --------------------------------------------------------------------------
# open-system million-job regime (the docs/workloads.md acceptance gate)
# --------------------------------------------------------------------------

OPEN_BENCH_JOBS = int(os.environ.get("REPRO_OPEN_BENCH_JOBS", "1000000"))
OPEN_BENCH_NODES = 128
# ~60 active jobs at this load; a generous ceiling that is still three
# orders of magnitude below what materializing 1M JobSpecs would need.
OPEN_BENCH_PEAK_BYTES = 64 * 1024 * 1024
OPEN_BENCH_PEAK_RATIO = 3.0


def open_stream(jobs: int, seed: int = SEED):
    """A Poisson stream of single-node jobs, generated lazily.

    Mean work 60 s at 1 job/s on 128 nodes keeps utilization near 0.47
    and the *active* set near 60 jobs regardless of how many jobs the
    stream carries — the invariant the memory gate pins down.
    """
    rng = SeedSequenceFactory(seed).rng("open-bench")
    t = 0.0
    for i in range(jobs):
        t += float(rng.exponential(1.0))
        work = float(rng.uniform(30.0, 90.0))
        yield t, JobSpec(
            name=f"job{i}",
            arrival=t,
            phase_work=(work,),
            efficiency=amdahl_efficiency(0.9),
            max_nodes=1,
            min_nodes=1,
            preferred_nodes=1,
        )


def _traced_open_run(jobs: int, shards: int):
    """Run the sharded open-system engine under tracemalloc."""
    server = ShardedServer(
        OPEN_BENCH_NODES, FcfsScheduler(backfill=True),
        shards=shards, mode="inprocess",
    )
    tracemalloc.start()
    t0 = time.perf_counter()
    try:
        result = server.run(open_stream(jobs))
        wall = time.perf_counter() - t0
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return result, server.stats, wall, peak


def test_sharded_open_system_million_jobs(benchmark):
    """The million-job gate: O(active-jobs) memory, bit-identical shards.

    One million Poisson arrivals (``REPRO_OPEN_BENCH_JOBS`` overrides)
    stream through the 4-shard engine under ``tracemalloc``.  The peak
    must stay under an absolute ceiling *and* under a small multiple of
    a 10x-shorter run's peak — memory tracks the ~60-job active set,
    not the stream length.  Shard-count identity (the SLO summary
    included) is asserted on a truncated prefix so the full regime only
    runs once.
    """
    jobs = OPEN_BENCH_JOBS

    # Determinism gate first: K in {1, 2, 4} agree bit-for-bit, SLO
    # summary included, on a prefix of the same stream.
    prefix = min(jobs, 20_000)
    results = {}
    for shards in (1, 2, 4):
        server = ShardedServer(
            OPEN_BENCH_NODES, FcfsScheduler(backfill=True),
            shards=shards, mode="inprocess",
        )
        results[shards] = server.run(open_stream(prefix))
        assert sum(server.stats.shard_jobs) == prefix
    assert results[2] == results[1]
    assert results[4] == results[1]
    assert results[4].slo == results[1].slo

    # Memory gate: the short run sets the yardstick, the full run must
    # not outgrow it even with 10x (default 50x) the jobs.
    short_jobs = max(prefix, jobs // 10)
    _, _, short_wall, short_peak = _traced_open_run(short_jobs, shards=4)

    holder = {}
    benchmark.pedantic(
        lambda: holder.update(
            zip(("result", "stats", "wall", "peak"),
                _traced_open_run(jobs, shards=4))
        ),
        rounds=1,
        iterations=1,
    )
    result, stats = holder["result"], holder["stats"]
    wall, peak = holder["wall"], holder["peak"]
    slo = result.slo

    print()
    print(
        ascii_table(
            ("jobs", "wall [s]", "peak [MB]", "throughput [1/s]",
             "p50 sojourn [s]", "p99 sojourn [s]", "util"),
            [
                (f"{short_jobs}", f"{short_wall:.1f}",
                 f"{short_peak / 1e6:.2f}", "-", "-", "-", "-"),
                (f"{jobs}", f"{wall:.1f}", f"{peak / 1e6:.2f}",
                 f"{slo.throughput:.3f}", f"{slo.sojourn_p50:.1f}",
                 f"{slo.sojourn_p99:.1f}", f"{slo.utilization_mean:.2f}"),
            ],
            title=(
                f"Open-system sharded clusterserver — Poisson stream on "
                f"{OPEN_BENCH_NODES} nodes ({stats.mode} shards, K=4)"
            ),
        )
    )
    print(
        f"epochs {stats.epochs}, reallocations {stats.allocations} "
        f"({stats.allocations_elided} elided), jobs/shard "
        f"{list(stats.shard_jobs)}"
    )

    assert result.jobs_completed == jobs
    assert result.job_turnaround == {}  # per-job state retired, not kept
    assert slo.sojourn_p50 > 0 and slo.sojourn_p99 >= slo.sojourn_p50
    # The memory gate proper: O(active jobs), not O(stream length).
    assert peak < OPEN_BENCH_PEAK_BYTES, (
        f"peak {peak / 1e6:.1f} MB exceeds the "
        f"{OPEN_BENCH_PEAK_BYTES / 1e6:.0f} MB open-system ceiling"
    )
    assert peak < OPEN_BENCH_PEAK_RATIO * short_peak, (
        f"peak grew {peak / short_peak:.1f}x between {short_jobs} and "
        f"{jobs} jobs; open-system memory must be O(active jobs)"
    )