"""Legacy setup shim.

The reference environment is offline and lacks the ``wheel`` package, so
PEP 517 editable installs (which must build a wheel) fail.  Keeping the
project metadata here lets ``pip install -e .`` fall back to the legacy
``setup.py develop`` path, which works without network access.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'A simulator for parallel applications with "
        "dynamically varying compute node allocation' (Schaeli, Gerlach, "
        "Hersch; IPPS 2006)"
    ),
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    # The des/netmodel/cpumodel core runs dependency-free; numpy (and the
    # scipy triangular-solve accelerator) power the opt-in "*-soa"
    # structure-of-arrays backends and the numerical apps.
    install_requires=["networkx>=2.8"],
    extras_require={
        "fast": ["numpy>=1.23", "scipy>=1.9"],
        "test": ["pytest", "pytest-benchmark", "hypothesis"],
    },
)
