#!/usr/bin/env python
"""The paper's test application: parallel block LU factorization.

Runs the LU application in every flow-graph variant of section 6 — basic,
pipelined (P), flow-controlled (FC) and parallel sub-block multiplication
(PM) — under both execution engines:

* the **testbed** (the stand-in for the paper's real cluster) produces
  *measured* running times,
* the **simulator** produces *predictions* using network parameters
  calibrated against that testbed,

then verifies the numerical result (P @ A == L @ U) of one allocating run.

Run:  python examples/lu_factorization.py
"""

from repro import (
    CostModelProvider,
    DPSSimulator,
    LUApplication,
    LUConfig,
    LUCostModel,
    SimulationMode,
    TestbedExecutor,
    VirtualCluster,
)
from repro.analysis.sweep import calibrated_platform

N, R, NODES = 1296, 162, 4


def run_variant(name: str, platform, **variant) -> None:
    cfg = LUConfig(
        n=N, r=R, num_threads=NODES, num_nodes=NODES,
        mode=SimulationMode.PDEXEC_NOALLOC, **variant,
    )
    measured = TestbedExecutor(
        VirtualCluster(num_nodes=NODES, seed=1), run_kernels=False
    ).run(LUApplication(cfg))
    predicted = DPSSimulator(
        platform, CostModelProvider(LUCostModel(platform.machine, cfg.r))
    ).run(LUApplication(cfg))
    err = (predicted.predicted_time - measured.measured_time) / measured.measured_time
    print(
        f"  {name:10s} measured {measured.measured_time:7.2f} s   "
        f"predicted {predicted.predicted_time:7.2f} s   error {err * 100:+5.1f}%"
    )


def main() -> None:
    print(f"LU factorization of a {N}x{N} matrix, r={R}, {NODES} nodes")
    print("calibrating the simulator's network parameters on the testbed...")
    platform = calibrated_platform(VirtualCluster(num_nodes=NODES, seed=1))
    print(
        f"  -> latency {platform.network.latency * 1e6:.0f} us, "
        f"bandwidth {platform.network.bandwidth / 1e6:.2f} MB/s"
    )
    print()
    run_variant("basic", platform)
    run_variant("P", platform, pipelined=True)
    run_variant("P+FC", platform, pipelined=True, flow_control=8)
    run_variant("PM", platform, pm_subblock=R // 3)
    run_variant("P+PM+FC", platform, pipelined=True, pm_subblock=R // 3, flow_control=8)

    print()
    print("verifying numerics (smaller allocating run)...")
    cfg = LUConfig(
        n=240, r=48, num_threads=4, num_nodes=4, mode=SimulationMode.PDEXEC
    )
    app = LUApplication(cfg)
    sim = DPSSimulator(
        platform, CostModelProvider(LUCostModel(platform.machine, cfg.r), run_kernels=True)
    )
    result = sim.run(app)
    residual = app.verify(result.runtime)
    print(f"  P @ A == L @ U, relative residual {residual:.2e}  (OK)")


if __name__ == "__main__":
    main()
