#!/usr/bin/env python
"""Dynamic node allocation: the paper's headline experiment (Figs. 11-12).

The LU factorization's per-iteration work decays cubically, so late
iterations waste most of an 8-node allocation.  This example reproduces
the paper's strategy comparison: keep 8 nodes, keep 4, or *remove* nodes
mid-run ("kill 4 after iteration 1"), printing running time, per-iteration
dynamic efficiency and the allocation timeline.

Run:  python examples/dynamic_allocation.py
"""

from repro import (
    AllocationEvent,
    AllocationSchedule,
    CostModelProvider,
    DPSSimulator,
    LUApplication,
    LUConfig,
    LUCostModel,
    SimulationMode,
    dynamic_efficiency,
    mean_efficiency,
)
from repro.analysis.sweep import calibrated_platform
from repro.testbed.cluster import VirtualCluster

N, R = 2592, 324

STRATEGIES = {
    "8 nodes, static": dict(num_threads=8, num_nodes=8),
    "4 nodes, static": dict(num_threads=4, num_nodes=4),
    "kill 4 after it. 1": dict(
        num_threads=8,
        num_nodes=8,
        schedule=AllocationSchedule(
            events=(AllocationEvent("iter1", "workers", (4, 5, 6, 7)),),
            name="kill4@1",
        ),
    ),
    "kill 2@2 + 2@3": dict(
        num_threads=8,
        num_nodes=8,
        schedule=AllocationSchedule(
            events=(
                AllocationEvent("iter2", "workers", (6, 7)),
                AllocationEvent("iter3", "workers", (4, 5)),
            ),
            name="kill2+2",
        ),
    ),
}


def main() -> None:
    platform = calibrated_platform(VirtualCluster(num_nodes=8, seed=1))
    print(f"LU {N}x{N}, r={R}, basic flow graph (simulator predictions)\n")
    for name, kw in STRATEGIES.items():
        cfg = LUConfig(n=N, r=R, mode=SimulationMode.PDEXEC_NOALLOC, **kw)
        sim = DPSSimulator(
            platform, CostModelProvider(LUCostModel(platform.machine, cfg.r))
        )
        result = sim.run(LUApplication(cfg))
        print(f"{name}")
        print(f"  running time    : {result.predicted_time:7.1f} s")
        print(f"  mean efficiency : {mean_efficiency(result.run) * 100:6.1f}%")
        timeline = " -> ".join(
            f"{len(nodes)} nodes @ {t:.1f}s"
            for t, nodes in result.run.allocation_timeline
        )
        print(f"  allocation      : {timeline}")
        effs = dynamic_efficiency(result.run)
        series = "  ".join(f"{pe.efficiency * 100:4.1f}" for pe in effs)
        print(f"  efficiency/iter : {series}")
        print()
    print(
        "Reading: removing half the nodes after iteration 1 costs little\n"
        "time but returns 4 nodes to the cluster for ~75% of the run —\n"
        "the service-rate argument of the paper's section 8."
    )


if __name__ == "__main__":
    main()
