#!/usr/bin/env python
"""All-to-all exchange: parallel sample sort, measured vs predicted.

Sample sort stresses the simulator's star-contention model: after the
splitter broadcast, every worker sends a run to every other worker at
once, so each node's full-duplex link is shared by many concurrent
transfers.  This example sorts the same keys on the virtual cluster
("measurement") and under the simulator ("prediction"), verifies the
result against ``numpy.sort``, and reports the prediction error — the
per-configuration quantity behind the paper's Fig. 13 histogram.

Run:  python examples/sample_sort.py
"""

from repro import (
    CostModelProvider,
    DPSSimulator,
    PAPER_CLUSTER,
    SampleSortApplication,
    SampleSortConfig,
    SampleSortCostModel,
    TestbedExecutor,
    VirtualCluster,
)

KEYS = 1 << 18


def main() -> None:
    print(f"parallel sample sort of {KEYS} keys (all-to-all exchange)\n")
    print(f"{'workers':>8s} {'measured':>10s} {'predicted':>10s} {'error':>8s}")
    for workers in (2, 4, 8):
        cfg = SampleSortConfig(m=KEYS, num_threads=workers, num_nodes=workers)

        app = SampleSortApplication(cfg)
        measured = TestbedExecutor(
            VirtualCluster(num_nodes=workers, seed=1)
        ).run(app)
        app.verify()  # distributed result == numpy.sort

        model = SampleSortCostModel(
            PAPER_CLUSTER.machine, cfg.block, cfg.num_threads
        )
        predicted = DPSSimulator(
            PAPER_CLUSTER, CostModelProvider(model, run_kernels=True)
        ).run(SampleSortApplication(cfg))

        error = predicted.predicted_time / measured.measured_time - 1.0
        print(
            f"{workers:>8d} {measured.measured_time:>9.3f}s "
            f"{predicted.predicted_time:>9.3f}s {error:>+8.1%}"
        )
    print("\nall runs verified against numpy.sort")


if __name__ == "__main__":
    main()
