#!/usr/bin/env python
"""Quickstart: define a DPS application, simulate it, read the prediction.

Builds the classic split -> parallel processing -> merge flow graph of the
paper's Fig. 1 (here: an image-processing farm), runs it under the DPS
simulator on the paper's cluster profile (440 MHz UltraSparc II nodes on
Fast Ethernet), and prints the predicted running time plus the per-frame
dynamic efficiency.

Run:  python examples/quickstart.py
"""

from repro import (
    CostModelProvider,
    DPSSimulator,
    ImagePipelineApplication,
    ImagePipelineConfig,
    MachineCostModel,
    PAPER_CLUSTER,
    dynamic_efficiency,
    mean_efficiency,
)


def main() -> None:
    # An application object carries everything an execution engine needs:
    # flow graph, deployment and initial data objects.
    config = ImagePipelineConfig(
        frames=12,
        tiles_per_frame=16,
        tile_pixels=256 * 256,
        num_threads=8,
        num_nodes=4,
    )
    app = ImagePipelineApplication(config)

    # Partial direct execution: operation durations come from a cost model
    # over the target machine profile — the simulation runs in milliseconds
    # on this machine while predicting seconds on the 1996 cluster.
    simulator = DPSSimulator(
        PAPER_CLUSTER,
        CostModelProvider(MachineCostModel(PAPER_CLUSTER.machine)),
    )
    result = simulator.run(app)

    print(f"flow graph        : split -> denoise -> sharpen -> merge")
    print(f"deployment        : {config.num_threads} worker threads on "
          f"{config.num_nodes} nodes")
    print(f"predicted time    : {result.predicted_time:.2f} s "
          f"for {config.frames} frames")
    print(f"simulation cost   : {result.simulation_wall_time * 1e3:.1f} ms wall, "
          f"{result.events} events")
    print(f"mean efficiency   : {mean_efficiency(result.run) * 100:.1f}%")
    print()
    print("dynamic efficiency (per completed frame):")
    for pe in dynamic_efficiency(result.run):
        bar = "#" * int(pe.efficiency * 40)
        print(f"  {pe.label:8s} {bar} {pe.efficiency * 100:5.1f}%")


if __name__ == "__main__":
    main()
