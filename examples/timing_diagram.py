#!/usr/bin/env python
"""Timing diagrams: see the schedule the simulator reconstructs.

Renders paper-Fig.-2-style per-node lanes for three LU runs — basic,
pipelined, and basic with "kill 2 nodes after iteration 1" — so the
pipelining gain and the deallocation staircase are visible directly.

Run:  python examples/timing_diagram.py
"""

from repro import (
    AllocationEvent,
    AllocationSchedule,
    CostModelProvider,
    DPSSimulator,
    LUApplication,
    LUConfig,
    LUCostModel,
    PAPER_CLUSTER,
    SimulationMode,
    TraceLevel,
)
from repro.analysis.timeline import phase_summary, render_timeline

N, R = 1296, 216  # 6 iterations


def run(title: str, **kw):
    cfg = LUConfig(
        n=N, r=R, num_threads=4, num_nodes=4,
        mode=SimulationMode.PDEXEC_NOALLOC, **kw,
    )
    sim = DPSSimulator(
        PAPER_CLUSTER,
        CostModelProvider(LUCostModel(PAPER_CLUSTER.machine, cfg.r)),
        trace_level=TraceLevel.FULL,
    )
    result = sim.run(LUApplication(cfg))
    print(render_timeline(result.run, width=76, title=f"{title} "
          f"(predicted {result.predicted_time:.1f} s)"))
    print()
    print(phase_summary(result.run))
    print()


def main() -> None:
    run("basic flow graph")
    run("pipelined (P) flow graph", pipelined=True)
    run(
        "basic + kill 2 nodes after iteration 1",
        schedule=AllocationSchedule(
            events=(AllocationEvent("iter1", "workers", (2, 3)),),
            name="kill2@1",
        ),
    )


if __name__ == "__main__":
    main()
