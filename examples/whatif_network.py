#!/usr/bin/env python
"""What-if studies with the parametric model (paper section 4).

"One may modify the bandwidth and latency parameters to evaluate the
benefits of a faster network, or reduce the duration of various operations
to identify the ones that should be optimized.  The simulator then becomes
a powerful tool for the optimization of parallel applications."

This example uses :mod:`repro.analysis.whatif` to sweep the interconnect
from Fast Ethernet to Gigabit and a zero-latency ideal, asks "which LU
kernel is worth optimizing?", and prints a (latency, bandwidth)
sensitivity grid — all without touching the application code.

Run:  python examples/whatif_network.py
"""

from repro import (
    FAST_ETHERNET,
    GIGABIT_ETHERNET,
    LUApplication,
    LUConfig,
    LUCostModel,
    NetworkParams,
    PAPER_CLUSTER,
    SimulationMode,
)
from repro.analysis.whatif import (
    kernel_speedup_study,
    latency_bandwidth_grid,
    network_sweep,
    render_grid,
    render_kernel_study,
    render_network_sweep,
)

CFG = LUConfig(
    n=2592, r=162, num_threads=8, num_nodes=8,
    pipelined=True, mode=SimulationMode.PDEXEC_NOALLOC,
)


def app_factory():
    return LUApplication(CFG)


def model_factory():
    return LUCostModel(PAPER_CLUSTER.machine, CFG.r)


def main() -> None:
    print(f"pipelined LU {CFG.n}x{CFG.n}, r={CFG.r}, 8 nodes\n")

    sweep = network_sweep(
        app_factory,
        model_factory,
        PAPER_CLUSTER,
        {
            "Fast Ethernet (paper)": FAST_ETHERNET,
            "Gigabit Ethernet": GIGABIT_ETHERNET,
            "Gigabit, zero latency": NetworkParams(
                latency=0.0, bandwidth=GIGABIT_ETHERNET.bandwidth
            ),
        },
    )
    print(render_network_sweep(sweep))
    print()

    baseline = sweep[0].predicted_time
    study = kernel_speedup_study(
        app_factory,
        model_factory,
        PAPER_CLUSTER,
        kernels=("gemm", "trsm", "panel_lu", "rowswap"),
        factor=0.5,
    )
    print(render_kernel_study(study, baseline=baseline))
    print()

    grid = latency_bandwidth_grid(
        app_factory,
        model_factory,
        PAPER_CLUSTER,
        latencies=(0.0, 80e-6, 500e-6),
        bandwidths=(FAST_ETHERNET.bandwidth, GIGABIT_ETHERNET.bandwidth),
    )
    print(render_grid(grid))
    print()
    print("Reading: the multiplication kernel dominates — optimizing gemm")
    print("pays; optimizing row swaps does not.  The network sweep bounds")
    print("the value of a hardware upgrade before buying it.")


if __name__ == "__main__":
    main()
