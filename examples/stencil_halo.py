#!/usr/bin/env python
"""Neighborhood exchange: the Jacobi stencil under pipelined halo exchange.

The paper notes that DPS routing functions make "communication patterns
such as neighborhood exchanges" easy to express.  This example runs an
iterative Jacobi relaxation whose stripes trade halo rows with their
vertical neighbours each iteration, and contrasts:

* the *pipelined* variant (halos flow directly worker-to-worker through
  keyed-stream gates) against the *barrier* variant (each iteration
  synchronizes through the main node), and
* static allocation against mid-run node removal — which, unlike the LU
  application's shrinking tail, always costs time here because the
  stencil's per-iteration work is constant.

Run:  python examples/stencil_halo.py
"""

from repro import (
    AllocationEvent,
    AllocationSchedule,
    CostModelProvider,
    DPSSimulator,
    PAPER_CLUSTER,
    SimulationMode,
    StencilApplication,
    StencilConfig,
    StencilCostModel,
)

N, STRIPES, ITERATIONS = 1296, 8, 12


def predict(cfg: StencilConfig) -> tuple[float, list[tuple[str, float]]]:
    """Simulate one configuration; return (time, per-iteration durations)."""
    model = StencilCostModel(PAPER_CLUSTER.machine, cfg.rows, cfg.n)
    simulator = DPSSimulator(PAPER_CLUSTER, CostModelProvider(model))
    result = simulator.run(StencilApplication(cfg))
    durations = [
        (label, end - start)
        for label, start, end in result.run.phase_intervals()
    ]
    return result.predicted_time, durations


def main() -> None:
    common = dict(
        n=N,
        stripes=STRIPES,
        iterations=ITERATIONS,
        num_threads=4,
        num_nodes=4,
        mode=SimulationMode.PDEXEC_NOALLOC,
    )

    print(f"Jacobi stencil {N}x{N}, {STRIPES} stripes, {ITERATIONS} "
          f"iterations on 4 nodes (simulator predictions)\n")

    t_pipe, _ = predict(StencilConfig(barrier=False, **common))
    t_barrier, _ = predict(StencilConfig(barrier=True, **common))
    print(f"pipelined halo exchange : {t_pipe:.3f} s")
    print(f"barrier (via main node) : {t_barrier:.3f} s "
          f"({(t_barrier / t_pipe - 1) * 100:+.1f}%)")

    kill = AllocationSchedule(
        events=(AllocationEvent("iter4", "workers", (2, 3)),),
        name="kill 2 after it. 4",
    )
    t_kill, durations = predict(StencilConfig(barrier=True, schedule=kill, **common))
    print(f"barrier, kill 2 @ it. 4 : {t_kill:.3f} s "
          f"({(t_kill / t_barrier - 1) * 100:+.1f}% — constant work, "
          f"so removal costs time)")

    print("\nper-iteration durations under the removal schedule:")
    for label, duration in durations:
        bar = "#" * int(duration / max(d for _, d in durations) * 40)
        print(f"  {label:7s} {bar} {duration * 1e3:6.1f} ms")


if __name__ == "__main__":
    main()
