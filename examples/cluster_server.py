#!/usr/bin/env python
"""The paper's future work: a cluster serving malleable applications.

Jobs shaped like the paper's LU runs (cubically decaying per-phase work)
arrive over time; three allocation policies compete:

* static     — every job gets 8 nodes for its whole life (the baseline),
* equipartition — nodes divided evenly among running jobs,
* adaptive   — dynamic-efficiency-aware: jobs are shrunk once extra nodes
  stop paying for themselves (exactly what the DPS simulator's
  dynamic-efficiency output enables an operator to decide).

Run:  python examples/cluster_server.py
"""

from repro import (
    AdaptiveEfficiencyScheduler,
    ClusterServer,
    EquipartitionScheduler,
    StaticScheduler,
    synthetic_workload,
)

NODES = 16


def main() -> None:
    workload = synthetic_workload(jobs=20, mean_interarrival=20.0, seed=3, max_nodes=8)
    total_work = sum(j.total_work for j in workload)
    print(
        f"{len(workload)} LU-like malleable jobs, {total_work:.0f} node-seconds "
        f"of work, {NODES}-node cluster\n"
    )
    print(f"{'policy':16s} {'makespan':>9s} {'mean turnaround':>16s} "
          f"{'cluster efficiency':>19s}")
    for scheduler in (
        StaticScheduler(nodes_per_job=8),
        EquipartitionScheduler(),
        AdaptiveEfficiencyScheduler(efficiency_floor=0.5),
    ):
        result = ClusterServer(NODES, scheduler).run(workload)
        print(
            f"{result.scheduler:16s} {result.makespan:8.1f}s "
            f"{result.mean_turnaround:15.1f}s "
            f"{result.cluster_efficiency * 100:18.1f}%"
        )
    print()
    print("Reading: malleable policies finish the same work with fewer")
    print("wasted node-seconds and shorter turnaround — the cluster-level")
    print("payoff of dynamically varying compute node allocation.")


if __name__ == "__main__":
    main()
