"""Benchmark trend page: render nightly bench artifacts into a dashboard.

The nightly workflow (``.github/workflows/nightly.yml``) uploads
pytest-benchmark JSON files (``figures.json``, ``sharded_clusterserver.json``)
for every run.  This module turns a *history* of those artifacts into a
static trend page — one markdown table and one self-contained HTML file
with per-bench sparklines — so regressions are visible at a glance without
any external tooling.

History layout: the input directory holds one entry per nightly run,
either

* a subdirectory per run (e.g. ``2026-07-28/figures.json``) — the
  natural shape after ``gh run download`` of successive artifacts — or
* bare ``*.json`` files, each treated as its own run.

Run labels sort lexicographically, so date-stamped directory names give
chronological order.  Every JSON file is expected to follow the
pytest-benchmark format: a top-level ``benchmarks`` list of entries with
``name`` and ``stats.median``.  Files that do not parse are skipped (a
partial artifact must not break the page).

CLI: ``repro trend HISTORY_DIR --out OUT_DIR`` writes ``trend.md`` and
``trend.html``; the nightly job publishes them inside the bench artifact.
"""

from __future__ import annotations

import html
import json
from pathlib import Path
from typing import Optional

from repro.errors import ConfigurationError

#: Most recent runs shown in the tables (older history still feeds deltas).
MAX_RUNS = 12

_SPARK_GLYPHS = "▁▂▃▄▅▆▇█"


# --------------------------------------------------------------------------
# history loading
# --------------------------------------------------------------------------


def _read_medians(path: Path) -> dict[str, float]:
    """``{bench name: median seconds}`` of one result file ({} on junk)."""
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
        return {
            str(entry["name"]): float(entry["stats"]["median"])
            for entry in payload["benchmarks"]
        }
    except (OSError, ValueError, KeyError, TypeError):
        return {}


def load_history(root: Path) -> tuple[list[str], dict[str, dict[str, float]]]:
    """Collect ``(run labels, {bench name: {run label: median}})``.

    Labels are subdirectory names (every ``*.json`` inside contributes) or
    bare file stems, sorted lexicographically.
    """
    root = Path(root)
    if not root.is_dir():
        raise ConfigurationError(f"bench history directory {root} not found")
    runs: dict[str, list[Path]] = {}
    for entry in sorted(root.iterdir()):
        if entry.is_dir():
            files = sorted(entry.rglob("*.json"))
            if files:
                runs[entry.name] = files
        elif entry.suffix == ".json":
            runs[entry.stem] = [entry]
    series: dict[str, dict[str, float]] = {}
    labels: list[str] = []
    for label, files in runs.items():
        medians: dict[str, float] = {}
        for path in files:
            medians.update(_read_medians(path))
        if not medians:
            continue
        labels.append(label)
        for name, value in medians.items():
            series.setdefault(name, {})[label] = value
    if not labels:
        raise ConfigurationError(
            f"no readable benchmark JSON under {root} (expected "
            "pytest-benchmark files, e.g. figures.json)"
        )
    return labels, series


# --------------------------------------------------------------------------
# rendering
# --------------------------------------------------------------------------


def _fmt_seconds(value: float) -> str:
    if value >= 1.0:
        return f"{value:.2f} s"
    if value >= 1e-3:
        return f"{value * 1e3:.1f} ms"
    return f"{value * 1e6:.0f} µs"


def _sparkline(values: list[float]) -> str:
    """Unicode sparkline of a series (empty cells skipped)."""
    present = [v for v in values if v is not None]
    if not present:
        return ""
    lo, hi = min(present), max(present)
    span = hi - lo
    glyphs = []
    for v in values:
        if v is None:
            glyphs.append(" ")
            continue
        frac = 0.5 if span <= 0 else (v - lo) / span
        glyphs.append(_SPARK_GLYPHS[min(int(frac * 8), 7)])
    return "".join(glyphs)


def _delta_pct(values: list[float]) -> str:
    present = [v for v in values if v is not None]
    if len(present) < 2 or present[0] <= 0:
        return "—"
    return f"{(present[-1] / present[0] - 1.0) * 100:+.1f}%"


def regressions(
    labels: list[str],
    series: dict[str, dict[str, float]],
    threshold: float,
) -> list[tuple[str, float]]:
    """Benches whose first→last delta exceeds ``threshold`` (a fraction).

    The alert the nightly job gates on: over the *whole* loaded history
    (not just the rows shown), a bench whose most recent median is more
    than ``threshold`` above its earliest median is a regression.
    Benches with fewer than two data points never alert.  Returns
    ``(bench name, delta fraction)`` pairs, worst first.
    """
    if threshold < 0:
        raise ConfigurationError(f"threshold must be >= 0, got {threshold!r}")
    flagged = []
    for name, by_run in series.items():
        present = [by_run[label] for label in labels if label in by_run]
        if len(present) < 2 or present[0] <= 0:
            continue
        delta = present[-1] / present[0] - 1.0
        if delta > threshold:
            flagged.append((name, delta))
    return sorted(flagged, key=lambda item: -item[1])


def render_markdown(
    labels: list[str], series: dict[str, dict[str, float]]
) -> str:
    """Markdown trend table over the most recent :data:`MAX_RUNS` runs."""
    shown = labels[-MAX_RUNS:]
    lines = [
        "# Benchmark trend",
        "",
        f"{len(series)} benches over {len(labels)} runs "
        f"(showing last {len(shown)}); medians, lower is better.",
        "",
        "| bench | trend | " + " | ".join(shown) + " | Δ first→last |",
        "|---|---|" + "---|" * (len(shown) + 1),
    ]
    for name in sorted(series):
        by_run = series[name]
        values = [by_run.get(label) for label in shown]
        cells = [
            _fmt_seconds(v) if v is not None else "·" for v in values
        ]
        lines.append(
            f"| `{name}` | {_sparkline(values)} | "
            + " | ".join(cells)
            + f" | {_delta_pct(values)} |"
        )
    lines.append("")
    return "\n".join(lines)


def _svg_sparkline(values: list[float], width: int = 160, height: int = 28) -> str:
    present = [(i, v) for i, v in enumerate(values) if v is not None]
    if len(present) < 2:
        return ""
    lo = min(v for _, v in present)
    hi = max(v for _, v in present)
    span = (hi - lo) or 1.0
    n = max(len(values) - 1, 1)
    points = " ".join(
        f"{2 + i * (width - 4) / n:.1f},"
        f"{height - 3 - (v - lo) / span * (height - 6):.1f}"
        for i, v in present
    )
    return (
        f'<svg width="{width}" height="{height}" viewBox="0 0 {width} {height}">'
        f'<polyline fill="none" stroke="currentColor" stroke-width="1.5" '
        f'points="{points}"/></svg>'
    )


def render_html(labels: list[str], series: dict[str, dict[str, float]]) -> str:
    """Self-contained HTML trend page (no external assets)."""
    shown = labels[-MAX_RUNS:]
    head = "".join(f"<th>{html.escape(label)}</th>" for label in shown)
    rows = []
    for name in sorted(series):
        by_run = series[name]
        values = [by_run.get(label) for label in shown]
        cells = "".join(
            f"<td>{_fmt_seconds(v)}</td>" if v is not None else "<td>·</td>"
            for v in values
        )
        rows.append(
            f"<tr><td class='name'>{html.escape(name)}</td>"
            f"<td class='spark'>{_svg_sparkline(values)}</td>"
            f"{cells}<td>{_delta_pct(values)}</td></tr>"
        )
    return f"""<!DOCTYPE html>
<html lang="en"><head><meta charset="utf-8">
<title>Benchmark trend</title>
<style>
 body {{ font: 14px/1.5 system-ui, sans-serif; margin: 2rem; color: #1a1a1a; }}
 table {{ border-collapse: collapse; }}
 th, td {{ padding: 0.3rem 0.7rem; border-bottom: 1px solid #ddd;
           text-align: right; white-space: nowrap; }}
 th {{ border-bottom: 2px solid #888; }}
 td.name {{ text-align: left; font-family: ui-monospace, monospace; }}
 td.spark {{ color: #3566b0; }}
</style></head><body>
<h1>Benchmark trend</h1>
<p>{len(series)} benches over {len(labels)} runs (showing last
{len(shown)}); medians, lower is better.</p>
<table>
<thead><tr><th style="text-align:left">bench</th><th>trend</th>{head}
<th>Δ first→last</th></tr></thead>
<tbody>
{chr(10).join(rows)}
</tbody></table>
</body></html>
"""


def write_trend_pages(
    history_dir: Path,
    out_dir: Path,
    history: Optional[tuple[list[str], dict[str, dict[str, float]]]] = None,
) -> tuple[Path, Path]:
    """Render ``trend.md`` and ``trend.html`` from a history directory.

    ``history`` accepts a pre-loaded :func:`load_history` result so
    callers that already parsed the files (e.g. the CLI, for its summary
    line) do not parse them twice.
    """
    labels, series = history if history is not None else load_history(history_dir)
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    md_path = out_dir / "trend.md"
    html_path = out_dir / "trend.html"
    md_path.write_text(render_markdown(labels, series), encoding="utf-8")
    html_path.write_text(render_html(labels, series), encoding="utf-8")
    return md_path, html_path
