"""Parameter-sweep harness: run measured + predicted LU configurations.

Every validation figure of the paper is a sweep over (variant, block size,
node count, allocation strategy) with a measured and a predicted series.
:func:`run_lu_case` performs one such pair — testbed measurement plus
simulator prediction with testbed-calibrated network parameters — and
:func:`sweep` maps it over a case list, feeding a
:class:`~repro.analysis.prediction.PredictionStudy`.

The cases of a sweep are independent, so :func:`sweep` accepts ``jobs``:
``jobs=1`` (the default) runs serially in-process; any other value fans the
cases out over a :class:`~repro.analysis.parallel.ParallelSweepRunner`
process pool (``jobs=None``/``0`` → one worker per CPU).  Either way, the
per-platform calibration is memoized in a shared cache keyed by
``(cluster size, seed)`` — repeated sweeps never recalibrate, and parallel
runs calibrate each distinct platform exactly once before fanning out.
Results are case-for-case identical between serial and parallel runs.  The
``repro sweep`` CLI subcommand exposes the same workflow via ``--jobs``.

Sweeps also consume declarative scenarios directly: :func:`sweep_specs`
maps a list of :class:`~repro.scenario.spec.ScenarioSpec` over the same
runner, so one sweep can span engines (sim/testbed/server) and network
models in a single fan-out — each point comes back as a normalized
:class:`~repro.scenario.runner.RunRecord`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.prediction import PredictionStudy
from repro.apps.lu.app import LUApplication
from repro.apps.lu.config import LUConfig
from repro.apps.lu.costs import LUCostModel
from repro.dps.runtime import RunResult
from repro.netmodel.calibration import calibrate
from repro.netmodel.packet import PacketNetwork
from repro.sim.platform import PlatformSpec
from repro.sim.providers import CostModelProvider
from repro.sim.simulator import DPSSimulator
from repro.dps.trace import TraceLevel
from repro.testbed.cluster import VirtualCluster
from repro.testbed.executor import TestbedExecutor


@dataclass(frozen=True)
class SweepCase:
    """One point of a validation sweep."""

    label: str
    cfg: LUConfig
    seed: int = 1


@dataclass
class SweepResult:
    """Measured and predicted outcome of one case."""

    case: SweepCase
    measured: float
    predicted: float
    measured_run: Optional[RunResult] = None
    predicted_run: Optional[RunResult] = None

    @property
    def error(self) -> float:
        """Signed relative prediction error."""
        return (self.predicted - self.measured) / self.measured


def calibrated_platform(
    cluster: VirtualCluster,
    calibration_seed: int = 99,
    use_disk_cache: bool = True,
) -> PlatformSpec:
    """Characterize the testbed's network and package it for the simulator.

    This is the paper's workflow: latency and bandwidth "must be measured
    or estimated separately for each target parallel machine" — here they
    are measured by running the standard calibration experiment against
    the ground-truth network model.

    The fit is persisted in the on-disk cache of
    :mod:`repro.analysis.calibcache` (keyed by a hash of every parameter
    it depends on), so repeated CLI invocations skip calibration entirely;
    ``use_disk_cache=False`` forces a fresh measurement.
    """
    from repro.analysis import calibcache

    key = calibcache.cache_key(cluster, calibration_seed)
    if use_disk_cache:
        cached = calibcache.load(key)
        if cached is not None:
            return PlatformSpec(machine=cluster.machine, network=cached)
    result = calibrate(
        lambda kernel: PacketNetwork(
            kernel, cluster.network, cluster.packet_params, seed=calibration_seed
        )
    )
    params = result.as_params()
    if use_disk_cache:
        calibcache.store(key, params)
    return PlatformSpec(machine=cluster.machine, network=params)


def run_lu_case(
    case: SweepCase,
    platform: Optional[PlatformSpec] = None,
    trace_level: TraceLevel = TraceLevel.SUMMARY,
    keep_runs: bool = False,
) -> SweepResult:
    """Measure (testbed) and predict (simulator) one LU configuration."""
    cfg = case.cfg
    cluster = VirtualCluster(num_nodes=cfg.num_nodes, seed=case.seed)
    if platform is None:
        from repro.analysis.parallel import cached_platform, platform_key

        platform = cached_platform(platform_key(case))
    run_kernels = cfg.mode.runs_kernels

    measurement = TestbedExecutor(
        cluster, run_kernels=run_kernels, trace_level=trace_level
    ).run(LUApplication(cfg))

    cost_model = LUCostModel(platform.machine, cfg.r)
    simulator = DPSSimulator(
        platform,
        CostModelProvider(cost_model, run_kernels=run_kernels),
        trace_level=trace_level,
    )
    prediction = simulator.run(LUApplication(cfg))

    return SweepResult(
        case=case,
        measured=measurement.measured_time,
        predicted=prediction.predicted_time,
        measured_run=measurement.run if keep_runs else None,
        predicted_run=prediction.run if keep_runs else None,
    )


def sweep(
    cases: list[SweepCase],
    platform: Optional[PlatformSpec] = None,
    study: Optional[PredictionStudy] = None,
    trace_level: TraceLevel = TraceLevel.SUMMARY,
    keep_runs: bool = False,
    jobs: int = 1,
) -> list[SweepResult]:
    """Run every case; feed measured/predicted pairs into ``study``.

    ``jobs=1`` (the default) runs serially in-process; any other value
    fans out over a process pool (``None``/``0`` → one worker per CPU)
    with case-for-case identical results.  Both paths go through
    :class:`~repro.analysis.parallel.ParallelSweepRunner`.
    """
    from repro.analysis.parallel import ParallelSweepRunner

    runner = ParallelSweepRunner(
        jobs=jobs, trace_level=trace_level, keep_runs=keep_runs
    )
    return runner.run(cases, study=study, platform=platform)


def sweep_specs(specs, jobs: int = 1):
    """Run a list of scenario specs; normalized records in spec order.

    The scenario-native sweep: specs may mix engines, apps and models
    freely (the cross-engine validation sweep is just a list alternating
    ``testbed`` and calibrated ``sim`` specs).  ``jobs`` works exactly
    like :func:`sweep`'s.
    """
    from repro.analysis.parallel import ParallelSweepRunner

    return ParallelSweepRunner(jobs=jobs).run_records(specs)
