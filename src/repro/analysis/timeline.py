"""ASCII timing diagrams from full execution traces.

The paper explains its simulator with timing diagrams (Figs. 2 and 4):
per-node lanes showing atomic steps and the transfers between nodes.  This
module renders the same view from a ``TraceLevel.FULL`` run, which makes
the simulator's schedule inspectable — e.g. to *see* the pipelining gain
of the P variant or the idle tail that motivates node removal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.dps.runtime import RunResult
from repro.dps.trace import StepRecord, TraceLevel, TransferRecord
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class LaneActivity:
    """Aggregated activity of one node over one rendering column."""

    busy: float  # fraction of the column spent computing
    transfers: int  # transfers overlapping the column


def _overlap(a0: float, a1: float, b0: float, b1: float) -> float:
    return max(0.0, min(a1, b1) - max(a0, b0))


def node_lanes(
    result: RunResult,
    width: int = 80,
    start: float = 0.0,
    end: Optional[float] = None,
) -> dict[int, list[LaneActivity]]:
    """Bucket compute/transfer activity per node into ``width`` columns."""
    if result.trace.level < TraceLevel.FULL:
        raise ConfigurationError("timing diagrams need TraceLevel.FULL traces")
    if width < 1:
        raise ConfigurationError("width must be >= 1")
    end = end if end is not None else result.makespan
    if end <= start:
        raise ConfigurationError("empty time window")
    span = (end - start) / width
    nodes = sorted(
        {s.node for s in result.trace.steps}
        | {t.src_node for t in result.trace.transfers}
        | {t.dst_node for t in result.trace.transfers}
    )
    busy = {n: [0.0] * width for n in nodes}
    xfer = {n: [0] * width for n in nodes}
    for step in result.trace.steps:
        c0 = max(0, int((step.start - start) / span))
        c1 = min(width - 1, int((step.end - start) / span))
        for c in range(c0, c1 + 1):
            lo, hi = start + c * span, start + (c + 1) * span
            busy[step.node][c] += _overlap(step.start, step.end, lo, hi) / span
    for tr in result.trace.transfers:
        c0 = max(0, int((tr.start - start) / span))
        c1 = min(width - 1, int((tr.end - start) / span))
        for c in range(c0, c1 + 1):
            xfer[tr.src_node][c] += 1
            xfer[tr.dst_node][c] += 1
    return {
        n: [
            LaneActivity(busy=min(1.0, busy[n][c]), transfers=xfer[n][c])
            for c in range(width)
        ]
        for n in nodes
    }


def _cell(activity: LaneActivity) -> str:
    if activity.busy >= 0.66:
        return "#"
    if activity.busy >= 0.15:
        return "+"
    if activity.transfers > 0:
        return "~"
    return "."


def render_timeline(
    result: RunResult,
    width: int = 80,
    start: float = 0.0,
    end: Optional[float] = None,
    title: Optional[str] = None,
) -> str:
    """Render per-node lanes: ``#`` busy, ``+`` partial, ``~`` comm, ``.`` idle.

    The allocation timeline is honoured: columns after a node's
    deallocation render as blanks, making removal strategies visible at a
    glance (the shrinking staircase of the paper's Fig. 12 experiments).
    """
    lanes = node_lanes(result, width=width, start=start, end=end)
    end_t = end if end is not None else result.makespan
    span = (end_t - start) / width
    lines = []
    if title:
        lines.append(title)
    lines.append(
        f"t = {start:.2f} s {'-' * max(0, width - 22)} {end_t:.2f} s"
    )
    for node, cells in lanes.items():
        row = []
        for c, activity in enumerate(cells):
            t_mid = start + (c + 0.5) * span
            if node not in result.active_nodes_at(t_mid):
                row.append(" ")
            else:
                row.append(_cell(activity))
        lines.append(f"node {node:<3d} |{''.join(row)}|")
    lines.append("legend: '#' computing  '+' partially busy  '~' communicating  '.' idle  ' ' deallocated")
    return "\n".join(lines)


def phase_summary(result: RunResult) -> str:
    """One line per phase: duration, work, mean allocation (Fig. 11 view)."""
    from repro.sim.efficiency import dynamic_efficiency

    rows = []
    for pe in dynamic_efficiency(result):
        rows.append(
            f"{pe.label:>8s}  {pe.duration:8.3f} s  work {pe.work:8.3f} s  "
            f"nodes {pe.mean_nodes:4.1f}  efficiency {pe.efficiency * 100:5.1f}%"
        )
    return "\n".join(rows)
