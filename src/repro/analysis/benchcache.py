"""Disk-persisted kernel-benchmark tables.

:class:`~repro.sim.providers.MeasureFirstNProvider` implements the paper's
hybrid mode: really execute the first ``n`` instances of every kernel,
then reuse the averaged measurement.  Those first ``n`` executions are the
warm-up cost a *repeated* direct-execution run pays again on every CLI
invocation — exactly the shape of problem the calibration cache
(:mod:`repro.analysis.calibcache`) already solves for network fits.  This
module persists the measured sample tables the same way: one JSON file per
``(target machine profile, n)`` key under the shared user-cache directory
(``$REPRO_CACHE_DIR``, else ``$XDG_CACHE_HOME/repro-schaeli06``, else
``~/.cache/repro-schaeli06``), written atomically so concurrent runs are
harmless, and managed by ``repro cache clear|info`` alongside the
calibration entries.

Samples are stored in *target seconds* (already scaled by the host
calibration), keyed inside the entry by kernel identity — the kernel name
plus its ``params`` items, matching
``MeasureFirstNProvider._key``.  The cache key deliberately excludes the
host-speed calibration scale: the stored values are target-machine times,
so runs on differently loaded hosts still share a table.  Entries whose
kernel params are not JSON-representable are skipped rather than failing
the run — like the calibration cache, this is an optimization, never a
dependency.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Optional

from repro.analysis.calibcache import cache_dir
from repro.cpumodel.machines import MachineProfile

#: Bump when the sample-table format or measurement semantics change.
CACHE_VERSION = 1

#: A kernel identity: ``(name, ((param, value), ...))`` with sorted params.
SampleKey = tuple[str, tuple[tuple[str, Any], ...]]


def cache_key(machine: MachineProfile, n: int) -> str:
    """Content hash of what a sample table depends on.

    Samples are target-seconds, so the table depends on the target
    machine profile and the sample count ``n`` — not on the simulation
    host, measurement seed, or application mix (unknown kernels simply
    miss inside the entry).
    """
    payload = {
        "version": CACHE_VERSION,
        "machine": dataclasses.asdict(machine),
        "n": n,
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:32]


def _entry_path(key: str) -> Path:
    return cache_dir() / f"kernelbench-{key}.json"


def load(key: str) -> Optional[dict[SampleKey, list[float]]]:
    """The cached sample table for ``key``, or None on miss.

    Unreadable or malformed entries count as misses — the caller simply
    re-measures and overwrites them.
    """
    path = _entry_path(key)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
        kernels = payload["kernels"]
    except (OSError, ValueError, KeyError, TypeError):
        return None
    table: dict[SampleKey, list[float]] = {}
    for entry in kernels:
        # Per-entry guard: one malformed kernel entry (e.g. an unhashable
        # param value) must not discard the whole table.
        try:
            sample_key = (
                str(entry["name"]),
                tuple((str(k), v) for k, v in entry["params"]),
            )
            table[sample_key] = [float(s) for s in entry["samples"]]
        except (ValueError, KeyError, TypeError):
            continue
    return table


def store(key: str, samples: dict[SampleKey, list[float]]) -> None:
    """Persist a sample table under ``key`` (atomic; failures ignored).

    Kernel identities whose params do not round-trip through JSON —
    unserializable values, but also serializable-yet-lossy ones such as
    tuples (reloaded as lists, which cannot rebuild the hashable key) —
    are silently skipped: they could never match on reload anyway.
    """
    kernels = []
    for (name, params), values in samples.items():
        entry = {
            "name": name,
            "params": [[k, v] for k, v in params],
            "samples": list(values),
        }
        try:
            roundtrip = json.loads(json.dumps(entry))
        except (TypeError, ValueError):
            continue
        if roundtrip != entry:
            continue
        kernels.append(entry)
    payload = {"version": CACHE_VERSION, "kernels": kernels}
    path = _entry_path(key)
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
            os.replace(tmp_name, path)
        except BaseException:
            os.unlink(tmp_name)
            raise
    except OSError:
        pass


def entries() -> list[Path]:
    """Existing kernel-benchmark entry files (empty when absent)."""
    try:
        return sorted(cache_dir().glob("kernelbench-*.json"))
    except OSError:
        return []


def clear() -> int:
    """Delete every kernel-benchmark entry; returns files removed."""
    removed = 0
    for path in entries():
        try:
            path.unlink()
            removed += 1
        except OSError:
            pass
    return removed
