"""Plain-text renderers for paper-style tables and figures.

The benches print their reproduced tables/figures to stdout; these helpers
keep the formatting consistent and dependency-free.
"""

from __future__ import annotations

from typing import Optional, Sequence


def ascii_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render a simple aligned table."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]

    def fmt(row: Sequence[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(row, widths))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt(cells[0]))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt(row) for row in cells[1:])
    return "\n".join(lines)


def ascii_bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    title: Optional[str] = None,
    fmt: str = "{:.3f}",
) -> str:
    """Render horizontal bars scaled to the largest value."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have the same length")
    peak = max((abs(v) for v in values), default=1.0) or 1.0
    label_width = max((len(l) for l in labels), default=0)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        bar = "#" * max(0, int(round(abs(value) / peak * width)))
        lines.append(f"{label.ljust(label_width)}  {bar} {fmt.format(value)}")
    return "\n".join(lines)


def ascii_histogram(
    bins: Sequence[tuple[float, float, int]],
    width: int = 40,
    title: Optional[str] = None,
    percent: bool = True,
) -> str:
    """Render a histogram of (low, high, count) bins."""
    peak = max((count for _, _, count in bins), default=1) or 1
    lines = [title] if title else []
    for low, high, count in bins:
        bar = "#" * int(round(count / peak * width))
        if percent:
            label = f"[{low * 100:+6.1f}%, {high * 100:+6.1f}%)"
        else:
            label = f"[{low:g}, {high:g})"
        lines.append(f"{label}  {bar} {count}")
    return "\n".join(lines)
