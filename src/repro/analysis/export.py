"""Trace export: Chrome trace-event JSON and CSV.

A :class:`~repro.dps.trace.RuntimeTrace` captured at ``TraceLevel.FULL``
can be exported for external tooling:

* :func:`to_chrome_trace` produces the Chrome/Perfetto trace-event format
  (open ``chrome://tracing`` or https://ui.perfetto.dev and load the JSON)
  — compute steps appear as duration events on per-node/per-thread rows
  and transfers as flow-style rows per node pair, recreating the paper's
  Fig. 2 timing diagram interactively;
* :func:`steps_to_csv` / :func:`transfers_to_csv` produce flat tables for
  spreadsheet or pandas analysis.

All timestamps are exported in microseconds (the trace-event convention);
the simulation's own unit is seconds.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Any, Optional

from repro.dps.runtime import RunResult
from repro.dps.trace import RuntimeTrace, TraceLevel
from repro.errors import SimulationError

_US = 1e6  # seconds -> microseconds


def _require_full(trace: RuntimeTrace, what: str) -> None:
    if trace.level < TraceLevel.FULL:
        raise SimulationError(
            f"{what} requires TraceLevel.FULL (got {trace.level.name}); "
            "re-run with trace_level=TraceLevel.FULL"
        )


def to_chrome_trace(
    result: RunResult,
    include_transfers: bool = True,
    include_phases: bool = True,
) -> dict[str, Any]:
    """Convert a run into a Chrome trace-event document (a JSON dict).

    Rows (``pid``/``tid``) map to virtual nodes and DPS threads; transfer
    rows live under a per-link pseudo-process.  Phase boundaries become
    instant events on the global track.
    """
    _require_full(result.trace, "chrome trace export")
    events: list[dict[str, Any]] = []
    seen_threads: set[tuple[int, str]] = set()
    for step in result.trace.steps:
        pid = step.node
        tid = str(step.thread)
        if (pid, tid) not in seen_threads:
            seen_threads.add((pid, tid))
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": tid},
                }
            )
        events.append(
            {
                "name": f"{step.vertex}:{step.kernel}",
                "cat": "compute",
                "ph": "X",
                "pid": pid,
                "tid": tid,
                "ts": step.start * _US,
                "dur": step.duration * _US,
                "args": {
                    "work_s": step.work,
                    "stretch": step.stretch,
                    "phase": step.phase,
                },
            }
        )
    if include_transfers:
        for i, tr in enumerate(result.trace.transfers):
            events.append(
                {
                    "name": tr.kind,
                    "cat": "transfer",
                    "ph": "X",
                    "pid": f"net {tr.src_node}->{tr.dst_node}",
                    "tid": i % 8,  # spread concurrent transfers over rows
                    "ts": tr.start * _US,
                    "dur": tr.duration * _US,
                    "args": {"size_bytes": tr.size, "phase": tr.phase},
                }
            )
    if include_phases:
        for time, label in result.phases:
            events.append(
                {
                    "name": label,
                    "cat": "phase",
                    "ph": "i",
                    "s": "g",  # global-scope instant
                    "pid": 0,
                    "tid": 0,
                    "ts": time * _US,
                }
            )
    for node, names in _node_names(result).items():
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": node,
                "args": {"name": names},
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def _node_names(result: RunResult) -> dict[int, str]:
    nodes = {step.node for step in result.trace.steps}
    return {node: f"node {node}" for node in sorted(nodes)}


def write_chrome_trace(result: RunResult, path: str, **kwargs: Any) -> None:
    """Serialize :func:`to_chrome_trace` output to ``path``."""
    document = to_chrome_trace(result, **kwargs)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle)


# --------------------------------------------------------------------------
# CSV
# --------------------------------------------------------------------------

STEP_COLUMNS = (
    "vertex",
    "thread",
    "node",
    "kernel",
    "start",
    "end",
    "duration",
    "work",
    "stretch",
    "phase",
)

TRANSFER_COLUMNS = (
    "kind",
    "src_node",
    "dst_node",
    "size",
    "start",
    "end",
    "duration",
    "phase",
)


def steps_to_csv(trace: RuntimeTrace, path: Optional[str] = None) -> str:
    """Render the compute steps as CSV; optionally also write ``path``."""
    _require_full(trace, "step CSV export")
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(STEP_COLUMNS)
    for s in trace.steps:
        # repr() keeps full float precision for exact round trips.
        writer.writerow(
            (
                s.vertex,
                str(s.thread),
                s.node,
                s.kernel,
                repr(s.start),
                repr(s.end),
                repr(s.duration),
                repr(s.work),
                repr(s.stretch),
                s.phase or "",
            )
        )
    text = buffer.getvalue()
    if path is not None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)
    return text


def transfers_to_csv(trace: RuntimeTrace, path: Optional[str] = None) -> str:
    """Render the transfers as CSV; optionally also write ``path``."""
    _require_full(trace, "transfer CSV export")
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(TRANSFER_COLUMNS)
    for t in trace.transfers:
        writer.writerow(
            (
                t.kind,
                t.src_node,
                t.dst_node,
                repr(t.size),
                repr(t.start),
                repr(t.end),
                repr(t.duration),
                t.phase or "",
            )
        )
    text = buffer.getvalue()
    if path is not None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)
    return text
