"""What-if studies over the parametric model (paper section 4).

"Since parametric models allow the different performance factors to be
isolated from one another, they are very convenient for studying the
behavior of a system.  One may modify the bandwidth and latency parameters
to evaluate the benefits of a faster network, or reduce the duration of
various operations to identify the ones that should be optimized.  The
simulator then becomes a powerful tool for the optimization of parallel
applications."

Three structured studies implement that paragraph:

* :func:`network_sweep` — predicted time under alternative interconnects;
* :func:`kernel_speedup_study` — which kernel is worth optimizing: the
  predicted time when each kernel (alone) is accelerated by a given
  factor;
* :func:`latency_bandwidth_grid` — a 2-D sensitivity map over (l, b).

Every study takes *factories* (fresh application and cost model per run —
runs mutate application state) and returns plain result records with an
ASCII rendering, so they compose with any app in :mod:`repro.apps`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Optional, Sequence

from repro.analysis.tables import ascii_table
from repro.apps.base import Application
from repro.dps.runtime import DurationProvider
from repro.netmodel.params import NetworkParams
from repro.sim.platform import PlatformSpec
from repro.sim.providers import CostModelProvider, MachineCostModel
from repro.sim.simulator import DPSSimulator

AppFactory = Callable[[], Application]
ModelFactory = Callable[[], MachineCostModel]


def _predict(
    platform: PlatformSpec, app_factory: AppFactory, model: MachineCostModel
) -> float:
    provider: DurationProvider = CostModelProvider(model)
    return DPSSimulator(platform, provider).run(app_factory()).predicted_time


# --------------------------------------------------------------------------
# network sweep
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class NetworkSweepEntry:
    """Prediction under one interconnect."""

    label: str
    network: NetworkParams
    predicted_time: float
    speedup: float  # relative to the first (baseline) entry


def network_sweep(
    app_factory: AppFactory,
    model_factory: ModelFactory,
    platform: PlatformSpec,
    networks: Mapping[str, NetworkParams],
) -> list[NetworkSweepEntry]:
    """Predict the application's running time under each interconnect.

    The first entry of ``networks`` is the baseline for the speedup
    column.
    """
    entries: list[NetworkSweepEntry] = []
    baseline: Optional[float] = None
    for label, network in networks.items():
        time = _predict(platform.with_network(network), app_factory, model_factory())
        if baseline is None:
            baseline = time
        entries.append(
            NetworkSweepEntry(label, network, time, baseline / time)
        )
    return entries


def render_network_sweep(entries: Sequence[NetworkSweepEntry]) -> str:
    """ASCII table of a :func:`network_sweep` result."""
    rows = [
        (
            e.label,
            f"{e.network.latency * 1e6:.0f} us",
            f"{e.network.bandwidth / 1e6:.1f} MB/s",
            f"{e.predicted_time:.2f} s",
            f"{e.speedup:.2f}x",
        )
        for e in entries
    ]
    return ascii_table(
        ("network", "latency", "bandwidth", "predicted", "speedup"),
        rows,
        title="what-if: interconnect sweep",
    )


# --------------------------------------------------------------------------
# kernel speedup attribution
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class KernelSpeedupEntry:
    """Prediction with one kernel accelerated."""

    kernel: str
    factor: float  # duration multiplier applied to this kernel (< 1: faster)
    predicted_time: float
    speedup: float  # whole-application speedup it buys

    @property
    def worth_optimizing(self) -> bool:
        """Did accelerating this kernel speed the application up at all?"""
        return self.speedup > 1.005


def kernel_speedup_study(
    app_factory: AppFactory,
    model_factory: ModelFactory,
    platform: PlatformSpec,
    kernels: Sequence[str],
    factor: float = 0.5,
) -> list[KernelSpeedupEntry]:
    """Accelerate each kernel in turn; report the application-level gain.

    ``factor`` multiplies the kernel's modelled duration (0.5 = twice as
    fast).  Kernels whose acceleration does not move the total identify
    non-bottleneck operations — "the ones that should be optimized" are
    the others.
    """
    if factor <= 0:
        raise ValueError(f"factor must be > 0, got {factor}")
    baseline = _predict(platform, app_factory, model_factory())
    entries = []
    for kernel in kernels:
        model = model_factory()
        model.rate_factors[kernel] = model.rate_factors.get(kernel, 1.0) * factor
        time = _predict(platform, app_factory, model)
        entries.append(
            KernelSpeedupEntry(kernel, factor, time, baseline / time)
        )
    return entries


def render_kernel_study(
    entries: Sequence[KernelSpeedupEntry], baseline: Optional[float] = None
) -> str:
    """ASCII table of a :func:`kernel_speedup_study` result."""
    rows = [
        (
            e.kernel,
            f"{1.0 / e.factor:.1f}x faster",
            f"{e.predicted_time:.2f} s",
            f"{e.speedup:.2f}x",
            "yes" if e.worth_optimizing else "no",
        )
        for e in entries
    ]
    title = "what-if: kernel acceleration"
    if baseline is not None:
        title += f" (baseline {baseline:.2f} s)"
    return ascii_table(
        ("kernel", "change", "predicted", "app speedup", "bottleneck?"),
        rows,
        title=title,
    )


# --------------------------------------------------------------------------
# latency/bandwidth sensitivity grid
# --------------------------------------------------------------------------


def latency_bandwidth_grid(
    app_factory: AppFactory,
    model_factory: ModelFactory,
    platform: PlatformSpec,
    latencies: Sequence[float],
    bandwidths: Sequence[float],
) -> dict[tuple[float, float], float]:
    """Predicted time for every (latency, bandwidth) combination.

    Returns ``{(l, b): seconds}`` — the raw sensitivity surface behind a
    "should we buy the faster switch?" decision.
    """
    grid: dict[tuple[float, float], float] = {}
    for latency in latencies:
        for bandwidth in bandwidths:
            network = NetworkParams(latency=latency, bandwidth=bandwidth)
            grid[(latency, bandwidth)] = _predict(
                platform.with_network(network), app_factory, model_factory()
            )
    return grid


def render_grid(
    grid: Mapping[tuple[float, float], float],
) -> str:
    """ASCII matrix of a :func:`latency_bandwidth_grid` (rows: latency)."""
    latencies = sorted({l for l, _ in grid})
    bandwidths = sorted({b for _, b in grid})
    headers = ["lat \\ bw"] + [f"{b / 1e6:.0f} MB/s" for b in bandwidths]
    rows = []
    for latency in latencies:
        rows.append(
            [f"{latency * 1e6:.0f} us"]
            + [f"{grid[(latency, b)]:.2f} s" for b in bandwidths]
        )
    return ascii_table(headers, rows, title="what-if: (latency, bandwidth) grid")
