"""Disk-persisted calibration cache.

Characterizing a platform's network (the ``t = l + s/b`` fit of
:func:`repro.netmodel.calibration.calibrate`) is the one expensive step a
sweep repeats across CLI invocations: the in-process memo of
:mod:`repro.analysis.parallel` dies with the process.  This module persists
each fitted :class:`~repro.netmodel.params.NetworkParams` under a
user-cache directory, keyed by a content hash of the parameters the fit
actually depends on — network parameters, packet-fidelity knobs, and the
calibration seed (see :func:`cache_key`) — so a repeated ``repro sweep``
(or any :func:`~repro.analysis.sweep.calibrated_platform` call) skips
calibration entirely, and sweeps over many cluster sizes share one entry.

The cache directory resolves, in order, to ``$REPRO_CACHE_DIR``,
``$XDG_CACHE_HOME/repro-schaeli06``, or ``~/.cache/repro-schaeli06``.
Entries are single JSON files written atomically (temp file + rename), so
concurrent sweep workers racing on the same key are harmless.  ``repro
cache clear`` / ``repro cache info`` manage the directory from the CLI.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Optional

from repro.netmodel.params import NetworkParams

#: Bump when the calibration procedure or the entry format changes — old
#: entries then miss naturally instead of being misread.
CACHE_VERSION = 1


def cache_dir() -> Path:
    """The user-cache directory holding calibration entries."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro-schaeli06"


def cache_key(cluster, calibration_seed: int = 99) -> str:
    """Content hash of the parameters the calibration fit depends on.

    The fit probes a single ``0 → 1`` transfer through the packet network,
    so it depends only on the network parameters, the packet-fidelity
    knobs, and the calibration seed — *not* on the cluster size,
    measurement seed, or machine profile.  Keying on the true inputs lets
    a sweep over many cluster sizes and seeds share one calibration.
    """
    payload = {
        "version": CACHE_VERSION,
        "calibration_seed": calibration_seed,
        "network": dataclasses.asdict(cluster.network),
        "packet": dataclasses.asdict(cluster.packet_params),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:32]


def _entry_path(key: str) -> Path:
    return cache_dir() / f"calibration-{key}.json"


def load(key: str) -> Optional[NetworkParams]:
    """The cached fitted parameters for ``key``, or None on miss.

    Unreadable or malformed entries count as misses — the caller simply
    recalibrates and overwrites them.
    """
    path = _entry_path(key)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
        return NetworkParams(
            latency=float(payload["latency"]),
            bandwidth=float(payload["bandwidth"]),
            per_object_overhead=float(payload.get("per_object_overhead", 0.0)),
        )
    except (OSError, ValueError, KeyError, TypeError):
        return None


def store(key: str, params: NetworkParams) -> None:
    """Persist fitted parameters under ``key`` (atomic; failures ignored).

    A read-only or unwritable cache directory must never break a sweep —
    the cache is an optimization, not a dependency.
    """
    payload = {
        "version": CACHE_VERSION,
        "latency": params.latency,
        "bandwidth": params.bandwidth,
        "per_object_overhead": params.per_object_overhead,
    }
    path = _entry_path(key)
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
            os.replace(tmp_name, path)
        except BaseException:
            os.unlink(tmp_name)
            raise
    except OSError:
        pass


def entries() -> list[Path]:
    """Existing cache entry files (empty when the directory is absent)."""
    try:
        return sorted(cache_dir().glob("calibration-*.json"))
    except OSError:
        return []


def clear() -> int:
    """Delete every cache entry; returns the number of files removed."""
    removed = 0
    for path in entries():
        try:
            path.unlink()
            removed += 1
        except OSError:
            pass
    return removed
