"""Measured-vs-predicted bookkeeping and the Fig. 13 error histogram.

The paper reports, over its 168 measurements: "71.4% of all predictions
are within ±4% accuracy, 81.6% are within ±6% accuracy, and more than 95%
are within ±12% prediction accuracy."  :class:`PredictionStudy` accumulates
(measured, predicted) pairs across experiments and reproduces those summary
statistics and the histogram.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

try:
    import numpy as np
except ImportError:  # no-numpy install: this module fails at use, not import
    np = None  # type: ignore[assignment]

from repro.analysis.metrics import relative_error


@dataclass(frozen=True)
class PredictionRecord:
    """One measured-vs-predicted pair, labelled by experiment."""

    label: str
    measured: float
    predicted: float

    @property
    def error(self) -> float:
        """Signed relative error of the prediction."""
        return relative_error(self.predicted, self.measured)


@dataclass
class ErrorHistogram:
    """Binned prediction errors (the Fig. 13 presentation)."""

    edges: tuple[float, ...]
    counts: tuple[int, ...]

    @property
    def total(self) -> int:
        return sum(self.counts)

    def bins(self) -> list[tuple[float, float, int]]:
        """(low, high, count) triples."""
        return [
            (self.edges[i], self.edges[i + 1], self.counts[i])
            for i in range(len(self.counts))
        ]


class PredictionStudy:
    """Accumulates prediction records across experiments."""

    def __init__(self) -> None:
        self.records: list[PredictionRecord] = []

    def add(self, label: str, measured: float, predicted: float) -> PredictionRecord:
        """Record one comparison; returns the record."""
        record = PredictionRecord(label, float(measured), float(predicted))
        self.records.append(record)
        return record

    def extend(self, records: Iterable[PredictionRecord]) -> None:
        self.records.extend(records)

    # ------------------------------------------------------------- queries
    @property
    def errors(self) -> np.ndarray:
        """Signed relative errors of every record."""
        return np.array([r.error for r in self.records])

    def fraction_within(self, tolerance: float) -> float:
        """Fraction of predictions with ``|error| <= tolerance``."""
        if not self.records:
            return float("nan")
        errs = np.abs(self.errors)
        return float(np.mean(errs <= tolerance))

    def max_abs_error(self) -> float:
        """Largest absolute relative error."""
        if not self.records:
            return float("nan")
        return float(np.max(np.abs(self.errors)))

    def mean_abs_error(self) -> float:
        """Mean absolute relative error."""
        if not self.records:
            return float("nan")
        return float(np.mean(np.abs(self.errors)))

    def histogram(
        self, limit: float = 0.16, bin_width: float = 0.02
    ) -> ErrorHistogram:
        """Bin the errors like the paper's Fig. 13 (±16%, 2% bins)."""
        if bin_width <= 0 or limit <= 0:
            raise ValueError("limit and bin_width must be positive")
        nbins = int(round(2 * limit / bin_width))
        edges = np.linspace(-limit, limit, nbins + 1)
        clipped = np.clip(self.errors, -limit + 1e-12, limit - 1e-12)
        counts, _ = np.histogram(clipped, bins=edges)
        return ErrorHistogram(
            edges=tuple(float(e) for e in edges),
            counts=tuple(int(c) for c in counts),
        )

    def summary(self) -> dict[str, float]:
        """The paper's headline accuracy numbers."""
        return {
            "count": float(len(self.records)),
            "within_4pct": self.fraction_within(0.04),
            "within_6pct": self.fraction_within(0.06),
            "within_12pct": self.fraction_within(0.12),
            "mean_abs": self.mean_abs_error(),
            "max_abs": self.max_abs_error(),
        }
