"""Scalar performance metrics used throughout the evaluation.

The paper's headline comparison metric: "we use the relative performance
improvement metric, defined as the execution time of the basic flow graph
(reference time) over the execution time of the program incorporating one
or several of the proposed variations." (section 8)
"""

from __future__ import annotations

from repro.errors import ConfigurationError


def speedup(serial_time: float, parallel_time: float) -> float:
    """Classic speedup ``T_1 / T_N``."""
    if parallel_time <= 0:
        raise ConfigurationError("parallel_time must be > 0")
    return serial_time / parallel_time


def efficiency(serial_time: float, parallel_time: float, nodes: int) -> float:
    """Parallel efficiency ``T_1 / (N * T_N)``."""
    if nodes <= 0:
        raise ConfigurationError("nodes must be > 0")
    return speedup(serial_time, parallel_time) / nodes


def performance_improvement(reference_time: float, time: float) -> float:
    """The paper's metric: reference time over variant time (>1 is faster)."""
    if time <= 0:
        raise ConfigurationError("time must be > 0")
    return reference_time / time


def relative_error(predicted: float, measured: float) -> float:
    """Signed prediction error ``(predicted - measured) / measured``."""
    if measured <= 0:
        raise ConfigurationError("measured must be > 0")
    return (predicted - measured) / measured
