"""Parallel execution of validation sweeps.

The validation sweeps are embarrassingly parallel: every
:class:`~repro.analysis.sweep.SweepCase` is an independent
measurement/prediction pair.  :class:`ParallelSweepRunner` fans
:func:`~repro.analysis.sweep.run_lu_case` out over a
:mod:`multiprocessing` pool while keeping the expensive per-platform
calibration shared: distinct ``(cluster size, seed)`` keys are calibrated
exactly once (themselves in parallel) through a memoized cache, and each
worker receives the ready-made :class:`~repro.sim.platform.PlatformSpec`
with its case instead of re-calibrating.

The runner also consumes declarative scenarios directly:
:meth:`ParallelSweepRunner.run_records` maps a list of
:class:`~repro.scenario.spec.ScenarioSpec` over the same pool, so one
sweep may span *engines* (simulator vs. testbed vs. cluster server) and
*models* (any registered netmodel/cpumodel) — each spec is executed by
:func:`~repro.scenario.runner.run_scenario` and comes back as a
normalized :class:`~repro.scenario.runner.RunRecord`.  Calibrated
platforms named by sim specs are prewarmed exactly once, like the legacy
path.

Results are returned in case order and are identical to a serial
:func:`~repro.analysis.sweep.sweep` — the simulations are deterministic and
share no state across cases.

Two pool lifetimes are supported.  The historical **one-shot** form
(``persistent=False``, the default) creates the process pool inside each
``run``/``run_records`` call and tears it down before returning — exactly
the old behavior.  The **resident** form (``persistent=True``) keeps the
workers alive across calls, which is what a long-lived service wants:
worker processes keep their warm in-process calibration memos and their
imported module state, so repeated scenarios are mostly cache hits.
Resident runners additionally accept asynchronous single-spec submissions
via :meth:`ParallelSweepRunner.submit_record` (the primitive
:class:`repro.service.pool.ResidentPool` builds on).  ``close``/``join``
are idempotent and fully release the pool — worker processes and their
handles on the on-disk cache directory are torn down — so a runner can be
closed and restarted any number of times in one process.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.pool
import os
import signal
from typing import Callable, Optional

from repro.analysis.prediction import PredictionStudy
from repro.dps.trace import TraceLevel
from repro.errors import ConfigurationError
from repro.sim.platform import PlatformSpec
from repro.testbed.cluster import VirtualCluster

#: Platform key: (cluster size, measurement seed).
PlatformKey = tuple[int, int]

#: Process-wide memoized calibrations, shared by serial and parallel runs.
#: Backed by the on-disk cache of :mod:`repro.analysis.calibcache`, so the
#: memo survives process boundaries: a repeated CLI invocation hits disk
#: instead of recalibrating.
_PLATFORM_CACHE: dict[PlatformKey, PlatformSpec] = {}


def platform_key(case) -> PlatformKey:
    """The calibration cache key of a sweep case."""
    return (case.cfg.num_nodes, case.seed)


def cached_platform(key: PlatformKey) -> PlatformSpec:
    """Calibrate the platform for ``key`` once; reuse it afterwards."""
    from repro.analysis.sweep import calibrated_platform

    platform = _PLATFORM_CACHE.get(key)
    if platform is None:
        num_nodes, seed = key
        platform = calibrated_platform(VirtualCluster(num_nodes=num_nodes, seed=seed))
        _PLATFORM_CACHE[key] = platform
    return platform


def clear_platform_cache() -> None:
    """Drop memoized calibrations (tests and long-lived sessions)."""
    _PLATFORM_CACHE.clear()


# -------------------------------------------------------------- worker side
def _worker_exit_cleanly(signum, frame):
    # SystemExit unwinds the worker's ``with inqueue._rlock:`` block, so
    # the shared queue lock is released on the way out (a raw
    # signal-death strands it, see _worker_ignore_signals).
    raise SystemExit(0)


def _worker_ignore_signals() -> None:
    """Pool-worker initializer: shutdown signals must not strand locks.

    Ctrl-C and service managers (systemd, ``timeout``) deliver
    SIGINT/SIGTERM to the whole process group, workers included.  An
    idle worker sits blocked on the pool's task queue *holding the
    queue's reader lock*; dying abruptly there leaves the lock acquired
    forever, and the parent's ``Pool.terminate`` then deadlocks in
    ``_help_stuff_finish`` waiting for it.  So workers ignore SIGINT
    outright (interruption is the parent's decision) and turn SIGTERM
    into a ``SystemExit`` that releases the lock on exit — which also
    keeps them reapable by ``Pool.terminate``'s own SIGTERM.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    if hasattr(signal, "SIGTERM"):
        signal.signal(signal.SIGTERM, _worker_exit_cleanly)


#: Worker-side notes channel (set by the pool initializer): each tagged
#: submission announces ``(tag, pid)`` here before it starts executing,
#: which is what lets the parent map in-flight work to worker processes
#: and notice when one dies mid-job (see :class:`repro.service.pool.ResidentPool`).
_NOTES = None


def _worker_announce(notes) -> None:
    """Pool-worker initializer: signal handling plus the notes channel."""
    global _NOTES
    _worker_ignore_signals()
    _NOTES = notes


def _calibrate_worker(key: PlatformKey) -> tuple[PlatformKey, PlatformSpec]:
    return key, cached_platform(key)


def _case_worker(payload):
    from repro.analysis.sweep import run_lu_case

    index, case, platform, trace_level, keep_runs = payload
    result = run_lu_case(
        case, platform=platform, trace_level=trace_level, keep_runs=keep_runs
    )
    return index, result


def _record_worker(payload):
    from repro.scenario import run_scenario

    index, spec = payload
    # Engine-native result objects (runtimes, kernels) do not pickle;
    # records cross the pool stripped of them, so serial and parallel
    # sweeps return value-identical results.
    return index, run_scenario(spec).without_raw()


def _spec_record_worker(payload: dict) -> dict:
    """Run one spec (dict form) and return the record's wire-format dict.

    The service's process-mode workers speak dicts in both directions:
    the spec's canonical dict form in, ``RunRecord.to_dict()`` out —
    both JSON-clean, so nothing engine-native ever crosses the pool.
    """
    from repro.scenario import run_scenario
    from repro.scenario.spec import ScenarioSpec

    return run_scenario(ScenarioSpec.from_dict(payload)).to_dict()


def _tagged_record_worker(payload: tuple) -> dict:
    """Like :func:`_spec_record_worker`, announcing ``(tag, pid)`` first.

    The announcement is the very first statement so the liveness window
    in which a crash is invisible to the parent is as small as the
    interpreter allows.
    """
    tag, spec_dict = payload
    if _NOTES is not None:
        _NOTES.put((tag, os.getpid()))
    return _spec_record_worker(spec_dict)


class ParallelSweepRunner:
    """Run sweep cases across a process pool with shared calibrations.

    Parameters
    ----------
    jobs:
        Worker processes.  ``None`` or 0 means one per CPU; 1 runs
        everything in-process (no pool), which is handy under debuggers.
    trace_level, keep_runs:
        Forwarded to :func:`~repro.analysis.sweep.run_lu_case`.  Run records
        requested via ``keep_runs`` must survive pickling when ``jobs > 1``.
    persistent:
        Keep the worker pool alive across calls (resident-executor mode).
        The caller owns the lifetime: call :meth:`close` (idempotent) or
        use the runner as a context manager.  One-shot runners (the
        default) still create and destroy a pool per call.
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        trace_level: TraceLevel = TraceLevel.SUMMARY,
        keep_runs: bool = False,
        persistent: bool = False,
    ) -> None:
        if jobs is not None and jobs < 0:
            raise ConfigurationError(f"jobs must be >= 0, got {jobs!r}")
        self.jobs = jobs or os.cpu_count() or 1
        self.trace_level = trace_level
        self.keep_runs = keep_runs
        self.persistent = persistent
        self._pool: Optional[multiprocessing.pool.Pool] = None
        self._notes = None  # worker-liveness channel, persistent pools only

    # ------------------------------------------------------- pool lifetime
    def _ensure_pool(
        self, size_hint: Optional[int] = None
    ) -> multiprocessing.pool.Pool:
        """The live worker pool, created on first use.

        Persistent runners size the pool at ``jobs`` once and reuse it;
        one-shot calls pass a ``size_hint`` so tiny batches do not fork
        more workers than they have cases (the historical behavior).
        """
        if self._pool is None:
            processes = self.jobs
            if not self.persistent and size_hint is not None:
                processes = max(1, min(self.jobs, size_hint))
            if self.persistent:
                # Resident pools carry the liveness channel: tagged
                # submissions announce their worker pid so the parent
                # can detect mid-job worker deaths and retry.
                self._notes = multiprocessing.SimpleQueue()
                self._pool = multiprocessing.Pool(
                    processes=processes,
                    initializer=_worker_announce,
                    initargs=(self._notes,),
                )
            else:
                self._pool = multiprocessing.Pool(
                    processes=processes, initializer=_worker_ignore_signals
                )
        return self._pool

    def close(self, terminate: bool = False) -> None:
        """Tear the worker pool down; safe to call repeatedly.

        Joins (or, with ``terminate=True``, kills) every worker process,
        which releases their handles on the on-disk calibration and
        kernel-benchmark cache directory — after ``close`` the runner
        holds no process or file resources, and the next ``run``/
        ``submit_record`` transparently forks a fresh pool, so resident
        runners restart cleanly any number of times in one process.
        """
        pool, self._pool = self._pool, None
        notes, self._notes = self._notes, None
        if pool is None:
            return
        if terminate:
            pool.terminate()
        else:
            pool.close()
        pool.join()
        if notes is not None:
            notes.close()

    def join(self) -> None:
        """Alias for :meth:`close` — both are idempotent, in any order."""
        self.close()

    def __enter__(self) -> "ParallelSweepRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -------------------------------------------------- async submissions
    def submit_record(
        self,
        spec,
        callback: Optional[Callable[[dict], None]] = None,
        error_callback: Optional[Callable[[BaseException], None]] = None,
        tag: Optional[int] = None,
    ) -> "multiprocessing.pool.AsyncResult":
        """Submit one scenario for asynchronous execution on the pool.

        The resident-executor primitive: the spec runs on a (persistent)
        worker and the returned ``AsyncResult`` resolves to the record's
        JSON-ready dict (``RunRecord.to_dict()``).  ``callback`` /
        ``error_callback`` fire on the pool's result-handler thread, like
        :meth:`multiprocessing.pool.Pool.apply_async`.  Unlike the batch
        entry points this always uses a pool, even at ``jobs == 1``.

        A non-None ``tag`` makes the worker announce ``(tag, pid)`` on
        the liveness channel as its first act — drain with
        :meth:`note_pids`, check with :meth:`worker_alive`.  Tags need a
        persistent runner (one-shot pools have no channel).
        """
        from repro.scenario.spec import ScenarioSpec

        if not isinstance(spec, ScenarioSpec):
            spec = ScenarioSpec.from_dict(spec)
        pool = self._ensure_pool()
        if tag is not None:
            if self._notes is None:
                raise ConfigurationError(
                    "tagged submissions need a persistent runner "
                    "(ParallelSweepRunner(persistent=True))"
                )
            return pool.apply_async(
                _tagged_record_worker,
                ((tag, spec.to_dict()),),
                callback=callback,
                error_callback=error_callback,
            )
        return pool.apply_async(
            _spec_record_worker,
            (spec.to_dict(),),
            callback=callback,
            error_callback=error_callback,
        )

    def note_pids(self) -> list[tuple[int, int]]:
        """Drain the liveness channel: ``(tag, worker pid)`` per started job.

        Single-consumer nonblocking drain; call it from one monitor
        thread only.
        """
        notes = self._notes
        out: list[tuple[int, int]] = []
        if notes is None:
            return out
        try:
            while not notes.empty():
                out.append(notes.get())
        except (OSError, EOFError):  # channel torn down under us
            pass
        return out

    def worker_alive(self, pid: int) -> bool:
        """Whether ``pid`` is a live worker of the current pool.

        A worker that died (crash, SIGKILL, OOM) leaves the pool's
        process list — either reaped and replaced by the pool's
        maintenance thread or still listed with a set exitcode; both
        read as dead here.
        """
        pool = self._pool
        if pool is None:
            return False
        return any(
            p.pid == pid and p.is_alive() for p in pool._pool
        )

    def run(
        self,
        cases,
        study: Optional[PredictionStudy] = None,
        platform: Optional[PlatformSpec] = None,
    ):
        """Run every case; returns results in case order.

        Feeds measured/predicted pairs into ``study`` when given, exactly
        like the serial :func:`~repro.analysis.sweep.sweep`.  An explicit
        ``platform`` overrides the per-case calibration cache.
        """
        cases = list(cases)
        results = [None] * len(cases)
        if not cases:
            return []

        def case_platform(case) -> PlatformSpec:
            return platform if platform is not None else cached_platform(platform_key(case))

        if self.jobs == 1:
            for i, case in enumerate(cases):
                _, results[i] = _case_worker(
                    (i, case, case_platform(case), self.trace_level, self.keep_runs)
                )
        else:
            pool = self._ensure_pool(len(cases))
            try:
                if platform is None:
                    # Calibrate each distinct platform once, in parallel, and
                    # memoize in the parent so later runs reuse them for free.
                    keys = sorted({platform_key(case) for case in cases})
                    missing = [k for k in keys if k not in _PLATFORM_CACHE]
                    for key, calibrated in pool.map(_calibrate_worker, missing):
                        _PLATFORM_CACHE[key] = calibrated
                payloads = [
                    (i, case, case_platform(case), self.trace_level, self.keep_runs)
                    for i, case in enumerate(cases)
                ]
                for index, result in pool.imap_unordered(_case_worker, payloads):
                    results[index] = result
            finally:
                if not self.persistent:
                    self.close()
        if study is not None:
            for result in results:
                study.add(result.case.label, result.measured, result.predicted)
        return results

    def run_records(self, specs):
        """Run declarative scenarios; records come back in spec order.

        Each :class:`~repro.scenario.spec.ScenarioSpec` executes through
        :func:`~repro.scenario.runner.run_scenario`, so one sweep may mix
        engines and models freely.  Calibrated sim platforms are
        prewarmed once per distinct ``(cluster size, seed)`` key before
        the fan-out; records are returned without their engine-native
        ``raw`` objects.  Serial and parallel runs are value-identical in
        every simulated quantity — only the host wall-clock fields
        (``wall_time_s`` and the ``*_wall_time`` metrics) vary.
        """
        from repro.scenario import calibration_key, run_scenario

        specs = list(specs)
        if not specs:
            return []
        results = [None] * len(specs)
        if self.jobs == 1:
            for i, spec in enumerate(specs):
                results[i] = run_scenario(spec).without_raw()
            return results
        pool = self._ensure_pool(len(specs))
        try:
            keys = sorted(
                {
                    key
                    for key in (calibration_key(spec) for spec in specs)
                    if key is not None
                }
            )
            missing = [k for k in keys if k not in _PLATFORM_CACHE]
            for key, calibrated in pool.map(_calibrate_worker, missing):
                # Workers reload the fit from the shared disk cache; the
                # parent memo makes later in-process runs free as well.
                _PLATFORM_CACHE[key] = calibrated
            payloads = list(enumerate(specs))
            for index, record in pool.imap_unordered(_record_worker, payloads):
                results[index] = record
        finally:
            if not self.persistent:
                self.close()
        return results
