"""Parallel execution of validation sweeps.

The validation sweeps are embarrassingly parallel: every
:class:`~repro.analysis.sweep.SweepCase` is an independent
measurement/prediction pair.  :class:`ParallelSweepRunner` fans
:func:`~repro.analysis.sweep.run_lu_case` out over a
:mod:`multiprocessing` pool while keeping the expensive per-platform
calibration shared: distinct ``(cluster size, seed)`` keys are calibrated
exactly once (themselves in parallel) through a memoized cache, and each
worker receives the ready-made :class:`~repro.sim.platform.PlatformSpec`
with its case instead of re-calibrating.

The runner also consumes declarative scenarios directly:
:meth:`ParallelSweepRunner.run_records` maps a list of
:class:`~repro.scenario.spec.ScenarioSpec` over the same pool, so one
sweep may span *engines* (simulator vs. testbed vs. cluster server) and
*models* (any registered netmodel/cpumodel) — each spec is executed by
:func:`~repro.scenario.runner.run_scenario` and comes back as a
normalized :class:`~repro.scenario.runner.RunRecord`.  Calibrated
platforms named by sim specs are prewarmed exactly once, like the legacy
path.

Results are returned in case order and are identical to a serial
:func:`~repro.analysis.sweep.sweep` — the simulations are deterministic and
share no state across cases.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Optional

from repro.analysis.prediction import PredictionStudy
from repro.dps.trace import TraceLevel
from repro.errors import ConfigurationError
from repro.sim.platform import PlatformSpec
from repro.testbed.cluster import VirtualCluster

#: Platform key: (cluster size, measurement seed).
PlatformKey = tuple[int, int]

#: Process-wide memoized calibrations, shared by serial and parallel runs.
#: Backed by the on-disk cache of :mod:`repro.analysis.calibcache`, so the
#: memo survives process boundaries: a repeated CLI invocation hits disk
#: instead of recalibrating.
_PLATFORM_CACHE: dict[PlatformKey, PlatformSpec] = {}


def platform_key(case) -> PlatformKey:
    """The calibration cache key of a sweep case."""
    return (case.cfg.num_nodes, case.seed)


def cached_platform(key: PlatformKey) -> PlatformSpec:
    """Calibrate the platform for ``key`` once; reuse it afterwards."""
    from repro.analysis.sweep import calibrated_platform

    platform = _PLATFORM_CACHE.get(key)
    if platform is None:
        num_nodes, seed = key
        platform = calibrated_platform(VirtualCluster(num_nodes=num_nodes, seed=seed))
        _PLATFORM_CACHE[key] = platform
    return platform


def clear_platform_cache() -> None:
    """Drop memoized calibrations (tests and long-lived sessions)."""
    _PLATFORM_CACHE.clear()


# -------------------------------------------------------------- worker side
def _calibrate_worker(key: PlatformKey) -> tuple[PlatformKey, PlatformSpec]:
    return key, cached_platform(key)


def _case_worker(payload):
    from repro.analysis.sweep import run_lu_case

    index, case, platform, trace_level, keep_runs = payload
    result = run_lu_case(
        case, platform=platform, trace_level=trace_level, keep_runs=keep_runs
    )
    return index, result


def _record_worker(payload):
    from repro.scenario import run_scenario

    index, spec = payload
    # Engine-native result objects (runtimes, kernels) do not pickle;
    # records cross the pool stripped of them, so serial and parallel
    # sweeps return value-identical results.
    return index, run_scenario(spec).without_raw()


class ParallelSweepRunner:
    """Run sweep cases across a process pool with shared calibrations.

    Parameters
    ----------
    jobs:
        Worker processes.  ``None`` or 0 means one per CPU; 1 runs
        everything in-process (no pool), which is handy under debuggers.
    trace_level, keep_runs:
        Forwarded to :func:`~repro.analysis.sweep.run_lu_case`.  Run records
        requested via ``keep_runs`` must survive pickling when ``jobs > 1``.
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        trace_level: TraceLevel = TraceLevel.SUMMARY,
        keep_runs: bool = False,
    ) -> None:
        if jobs is not None and jobs < 0:
            raise ConfigurationError(f"jobs must be >= 0, got {jobs!r}")
        self.jobs = jobs or os.cpu_count() or 1
        self.trace_level = trace_level
        self.keep_runs = keep_runs

    def run(
        self,
        cases,
        study: Optional[PredictionStudy] = None,
        platform: Optional[PlatformSpec] = None,
    ):
        """Run every case; returns results in case order.

        Feeds measured/predicted pairs into ``study`` when given, exactly
        like the serial :func:`~repro.analysis.sweep.sweep`.  An explicit
        ``platform`` overrides the per-case calibration cache.
        """
        cases = list(cases)
        results = [None] * len(cases)
        if not cases:
            return []

        def case_platform(case) -> PlatformSpec:
            return platform if platform is not None else cached_platform(platform_key(case))

        if self.jobs == 1:
            for i, case in enumerate(cases):
                _, results[i] = _case_worker(
                    (i, case, case_platform(case), self.trace_level, self.keep_runs)
                )
        else:
            with multiprocessing.Pool(processes=min(self.jobs, len(cases))) as pool:
                if platform is None:
                    # Calibrate each distinct platform once, in parallel, and
                    # memoize in the parent so later runs reuse them for free.
                    keys = sorted({platform_key(case) for case in cases})
                    missing = [k for k in keys if k not in _PLATFORM_CACHE]
                    for key, calibrated in pool.map(_calibrate_worker, missing):
                        _PLATFORM_CACHE[key] = calibrated
                payloads = [
                    (i, case, case_platform(case), self.trace_level, self.keep_runs)
                    for i, case in enumerate(cases)
                ]
                for index, result in pool.imap_unordered(_case_worker, payloads):
                    results[index] = result
        if study is not None:
            for result in results:
                study.add(result.case.label, result.measured, result.predicted)
        return results

    def run_records(self, specs):
        """Run declarative scenarios; records come back in spec order.

        Each :class:`~repro.scenario.spec.ScenarioSpec` executes through
        :func:`~repro.scenario.runner.run_scenario`, so one sweep may mix
        engines and models freely.  Calibrated sim platforms are
        prewarmed once per distinct ``(cluster size, seed)`` key before
        the fan-out; records are returned without their engine-native
        ``raw`` objects.  Serial and parallel runs are value-identical in
        every simulated quantity — only the host wall-clock fields
        (``wall_time_s`` and the ``*_wall_time`` metrics) vary.
        """
        from repro.scenario import calibration_key, run_scenario

        specs = list(specs)
        if not specs:
            return []
        results = [None] * len(specs)
        if self.jobs == 1:
            for i, spec in enumerate(specs):
                results[i] = run_scenario(spec).without_raw()
            return results
        with multiprocessing.Pool(processes=min(self.jobs, len(specs))) as pool:
            keys = sorted(
                {
                    key
                    for key in (calibration_key(spec) for spec in specs)
                    if key is not None
                }
            )
            missing = [k for k in keys if k not in _PLATFORM_CACHE]
            for key, calibrated in pool.map(_calibrate_worker, missing):
                # Workers reload the fit from the shared disk cache; the
                # parent memo makes later in-process runs free as well.
                _PLATFORM_CACHE[key] = calibrated
            payloads = list(enumerate(specs))
            for index, record in pool.imap_unordered(_record_worker, payloads):
                results[index] = record
        return results
