"""Analysis utilities: metrics, prediction errors, sweeps and rendering."""

from repro.analysis.metrics import (
    performance_improvement,
    relative_error,
    speedup,
)
from repro.analysis.prediction import (
    ErrorHistogram,
    PredictionRecord,
    PredictionStudy,
)
from repro.analysis.export import (
    steps_to_csv,
    to_chrome_trace,
    transfers_to_csv,
    write_chrome_trace,
)
from repro.analysis.parallel import ParallelSweepRunner, cached_platform, clear_platform_cache
from repro.analysis.sweep import SweepCase, SweepResult, run_lu_case, sweep
from repro.analysis.tables import ascii_bar_chart, ascii_histogram, ascii_table
from repro.analysis.timeline import node_lanes, phase_summary, render_timeline
from repro.analysis.whatif import (
    KernelSpeedupEntry,
    NetworkSweepEntry,
    kernel_speedup_study,
    latency_bandwidth_grid,
    network_sweep,
    render_grid,
    render_kernel_study,
    render_network_sweep,
)

__all__ = [
    "speedup",
    "performance_improvement",
    "relative_error",
    "PredictionRecord",
    "PredictionStudy",
    "ErrorHistogram",
    "SweepCase",
    "SweepResult",
    "run_lu_case",
    "sweep",
    "ParallelSweepRunner",
    "cached_platform",
    "clear_platform_cache",
    "ascii_table",
    "ascii_bar_chart",
    "ascii_histogram",
    "node_lanes",
    "render_timeline",
    "phase_summary",
    "to_chrome_trace",
    "write_chrome_trace",
    "steps_to_csv",
    "transfers_to_csv",
    "NetworkSweepEntry",
    "KernelSpeedupEntry",
    "network_sweep",
    "kernel_speedup_study",
    "latency_bandwidth_grid",
    "render_network_sweep",
    "render_kernel_study",
    "render_grid",
]
