"""REP-C: concurrency contracts of the service and pool layers.

Three invariants the PR 8/PR 9 post-mortems hardened dynamically, now
statically checkable:

* **the event loop never blocks** — an ``async def`` body must not call
  synchronous sleeps, subprocesses, the blocking
  :class:`~repro.service.client.ServiceClient`, or file I/O; marshal
  such work through ``asyncio.to_thread``/executors instead;
* **no dispatch under a lock** — calling ``.submit()``/``.put()`` while
  lexically holding a ``threading.Lock`` invites the completion-under-
  submit-lock deadlock the resident pool's ``_dispatch`` docstring
  documents; release the lock first (or dispatch from a method that the
  caller invokes after releasing);
* **signal handlers only set flags** — a handler registered via
  ``signal.signal``/``add_signal_handler`` runs at arbitrary
  interpreter points (or on the loop) and must confine itself to flag
  sets (``event.set()``), simple assignments, or ``raise`` — the
  PR 8 SIGTERM pool deadlock came from a worker dying mid-lock.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.staticcheck.engine import Finding, ModuleUnit, Rule
from repro.staticcheck.rules_determinism import dotted

#: Exact dotted calls that block the calling thread.
BLOCKING_CALLS = frozenset({
    "time.sleep",
    "os.replace", "os.rename", "os.remove", "os.unlink",
    "subprocess.run", "subprocess.call", "subprocess.check_call",
    "subprocess.check_output", "subprocess.Popen",
})

#: Bare names whose call blocks (builtins / blocking client types).
BLOCKING_NAMES = frozenset({"open", "ServiceClient"})

#: Method names that are file I/O wherever they appear.
BLOCKING_METHODS = frozenset({
    "read_text", "write_text", "read_bytes", "write_bytes",
})

#: Methods that hand work to an executor/queue (deadlock bait under a lock).
DISPATCH_METHODS = frozenset({"submit", "submit_record", "put", "put_nowait"})


def _walk_in_function(root: ast.AST) -> Iterator[ast.AST]:
    """Walk ``root``'s body without descending into nested function defs."""
    stack = list(ast.iter_child_nodes(root))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))


class AsyncBlockingCallRule(Rule):
    """REP-C001: no blocking calls on the event loop."""

    rule_id = "REP-C001"
    summary = (
        "async def bodies must not call blocking primitives (time.sleep, "
        "subprocess, ServiceClient, file I/O); use asyncio.to_thread"
    )

    def check(self, unit: ModuleUnit) -> Iterator[Finding]:
        for node in ast.walk(unit.tree):
            if not isinstance(node, ast.AsyncFunctionDef):
                continue
            for sub in _walk_in_function(node):
                if not isinstance(sub, ast.Call):
                    continue
                blocked = self._blocking_name(sub)
                if blocked is not None:
                    yield unit.finding(
                        self.rule_id, sub,
                        f"{blocked} blocks the event loop inside "
                        f"'async def {node.name}'; await "
                        "asyncio.to_thread(...) (or an executor) instead",
                    )

    @staticmethod
    def _blocking_name(call: ast.Call) -> Optional[str]:
        name = dotted(call.func)
        if name is None:
            return None
        if name in BLOCKING_CALLS or name in BLOCKING_NAMES:
            return f"{name}()"
        if name.split(".")[0] == "subprocess":
            return f"{name}()"
        if isinstance(call.func, ast.Attribute) and (
            call.func.attr in BLOCKING_METHODS
        ):
            return f".{call.func.attr}()"
        return None


def _is_lock_expr(expr: ast.expr) -> bool:
    """Heuristic: a with-context that is (an attribute ending in) a lock."""
    name = dotted(expr)
    if name is None:
        return False
    terminal = name.rsplit(".", 1)[-1].lower()
    return terminal.endswith("lock") or terminal.endswith("mutex")


class DispatchUnderLockRule(Rule):
    """REP-C002: no executor/queue dispatch while lexically holding a lock.

    Completion callbacks of an executor may run synchronously in the
    submitting thread (warm results), re-entering code that needs the
    very lock being held — the resident pool documents the pattern.
    Dispatch after releasing, or from a dedicated method invoked outside
    the ``with`` block.
    """

    rule_id = "REP-C002"
    summary = (
        "no .submit()/.put() lexically inside a 'with <lock>:' block "
        "(completion callbacks can deadlock on the held lock)"
    )

    def check(self, unit: ModuleUnit) -> Iterator[Finding]:
        for node in ast.walk(unit.tree):
            if not isinstance(node, (ast.With, ast.AsyncWith)):
                continue
            if not any(
                _is_lock_expr(item.context_expr) for item in node.items
            ):
                continue
            for stmt in node.body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue  # a def under the lock runs later, not now
                for sub in _walk_in_function(stmt):
                    if (
                        isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Attribute)
                        and sub.func.attr in DISPATCH_METHODS
                    ):
                        yield unit.finding(
                            self.rule_id, sub,
                            f".{sub.func.attr}() while holding a lock can "
                            "deadlock (completions may run in the "
                            "submitting thread); dispatch after releasing",
                        )

    # NB: _walk_in_function on each body statement still descends into
    # nested with-blocks; nested function defs are skipped on purpose —
    # a closure defined under the lock runs later, not while it is held.


#: Statement types a signal-handler body may contain besides flag calls.
_HANDLER_SIMPLE = (ast.Pass, ast.Raise, ast.Global, ast.Nonlocal,
                   ast.Assign, ast.AnnAssign, ast.AugAssign)


def _is_flag_call(stmt: ast.stmt) -> bool:
    """``something.set()`` / ``os._exit(n)`` / ``sys.exit(n)`` style."""
    if not isinstance(stmt, ast.Expr) or not isinstance(stmt.value, ast.Call):
        return False
    call = stmt.value
    name = dotted(call.func)
    if name is None:
        return False
    return name.endswith(".set") or name in ("os._exit", "sys.exit")


def _is_docstring(stmt: ast.stmt) -> bool:
    return (
        isinstance(stmt, ast.Expr)
        and isinstance(stmt.value, ast.Constant)
        and isinstance(stmt.value.value, str)
    )


class SignalHandlerBodyRule(Rule):
    """REP-C003: signal-handler bodies are flag sets, nothing more."""

    rule_id = "REP-C003"
    summary = (
        "signal handlers may only set flags/raise (no locks, I/O, or "
        "pool teardown from an async-signal context)"
    )

    def check(self, unit: ModuleUnit) -> Iterator[Finding]:
        defs = {
            node.name: node
            for node in ast.walk(unit.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        for node in ast.walk(unit.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted(node.func)
            handler: Optional[ast.expr] = None
            if name == "signal.signal" and len(node.args) >= 2:
                handler = node.args[1]
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "add_signal_handler"
                and len(node.args) >= 2
            ):
                handler = node.args[1]
            if handler is None:
                continue
            yield from self._check_handler(unit, handler, defs)

    def _check_handler(self, unit, handler, defs) -> Iterator[Finding]:
        if isinstance(handler, ast.Lambda):
            body = ast.Expr(value=handler.body)
            ast.copy_location(body, handler.body)
            if not (_is_flag_call(body) or isinstance(
                handler.body, ast.Constant
            )):
                yield unit.finding(
                    self.rule_id, handler,
                    "signal-handler lambda must only set a flag "
                    "(e.g. event.set())",
                )
            return
        if isinstance(handler, ast.Name) and handler.id in defs:
            fn = defs[handler.id]
            for stmt in fn.body:
                if _is_docstring(stmt) or _is_flag_call(stmt):
                    continue
                if isinstance(stmt, _HANDLER_SIMPLE):
                    continue
                yield unit.finding(
                    self.rule_id, stmt,
                    f"signal handler {fn.name!r} does more than set flags "
                    f"({type(stmt).__name__}); handlers run at arbitrary "
                    "interpreter points — set an event and return",
                )
        # Attribute handlers (stop.set, signal.SIG_IGN) are either flag
        # sets already or opaque; only locally resolvable defs are checked.


CONCURRENCY_RULES = (
    AsyncBlockingCallRule(),
    DispatchUnderLockRule(),
    SignalHandlerBodyRule(),
)
