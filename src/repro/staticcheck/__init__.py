"""``repro check``: the AST-based invariant linter.

The codebase's core contracts — seed-determinism of every result, a
numpy-free ``import repro``, a deadlock-free service layer, and
registry/spec/docs agreement — are enforced dynamically by the test
suite; this package makes them *statically* checkable so a violating
line fails at diff time instead of whenever a test happens to exercise
it.  See ``docs/staticcheck.md`` for the rule catalogue and the
suppression policy.

Usage::

    from repro.staticcheck import all_rules, run_check, DEFAULT_CONFIG
    result = run_check(["src"], all_rules(), DEFAULT_CONFIG)
    assert result.ok, [f.render() for f in result.findings]

or, from the command line: ``repro check src/ benchmarks/ examples/``.
"""

from __future__ import annotations

from repro.staticcheck.config import DEFAULT_CONFIG, CheckConfig, RuleScope
from repro.staticcheck.engine import (
    BAD_SUPPRESSION,
    SYNTAX_ERROR,
    UNUSED_SUPPRESSION,
    CheckResult,
    Finding,
    Project,
    ProjectRule,
    Rule,
    glob_match,
    run_check,
)
from repro.staticcheck.rules_concurrency import CONCURRENCY_RULES
from repro.staticcheck.rules_determinism import DETERMINISM_RULES
from repro.staticcheck.rules_imports import IMPORT_RULES
from repro.staticcheck.rules_registry import REGISTRY_RULES


def all_rules() -> tuple[Rule, ...]:
    """The shipped rule pack, in catalogue order."""
    return (
        DETERMINISM_RULES + IMPORT_RULES + CONCURRENCY_RULES + REGISTRY_RULES
    )


__all__ = [
    "BAD_SUPPRESSION",
    "CheckConfig",
    "CheckResult",
    "DEFAULT_CONFIG",
    "Finding",
    "Project",
    "ProjectRule",
    "Rule",
    "RuleScope",
    "SYNTAX_ERROR",
    "UNUSED_SUPPRESSION",
    "all_rules",
    "glob_match",
    "run_check",
]
