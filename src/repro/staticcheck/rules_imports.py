"""REP-I: optional-dependency import hygiene.

``import repro`` must work on a numpy-less install (the ``tests-no-numpy``
CI leg); numpy and scipy power the opt-in ``*-soa`` backends and the
numerical apps only.  The contract these rules encode:

* outside the dedicated ``*/soa.py`` backend modules, every
  ``import numpy`` / ``import scipy`` sits under ``try/except
  ImportError`` (with a ``None`` fallback) or ``if TYPE_CHECKING:``;
* an optional-import guard does nothing *but* import — no module-level
  work may ride inside the ``try`` (it would run only when numpy is
  present, silently forking module behaviour), and the ``except``
  fallback stays declarative (assignments/pass/raise).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.staticcheck.engine import Finding, ModuleUnit, Rule
from repro.staticcheck.rules_determinism import dotted

#: Top-level distributions that are optional dependencies of the core.
OPTIONAL_MODULES = frozenset({"numpy", "scipy"})

#: Modules allowed to import numpy/scipy unconditionally: the dedicated
#: structure-of-arrays backends, which only ever load behind
#: ``soa_available()``.
SOA_EXEMPT = ("**/soa.py",)


def _optional_targets(node: ast.stmt) -> list[str]:
    """The numpy/scipy module names imported by ``node`` (if any)."""
    names: list[str] = []
    if isinstance(node, ast.Import):
        names = [alias.name for alias in node.names]
    elif isinstance(node, ast.ImportFrom) and node.module:
        names = [node.module]
    return [
        name for name in names
        if name.split(".")[0] in OPTIONAL_MODULES
    ]


def _catches_import_error(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    types = (
        handler.type.elts
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    for t in types:
        name = dotted(t)
        if name in ("ImportError", "ModuleNotFoundError", "Exception"):
            return True
    return False


def _is_type_checking_test(test: ast.expr) -> bool:
    name = dotted(test)
    return name is not None and name.endswith("TYPE_CHECKING")


class _GuardIndex:
    """Which statements sit under an ImportError guard / TYPE_CHECKING."""

    def __init__(self, tree: ast.Module) -> None:
        self.guarded: set[int] = set()
        self.guards: list[ast.Try] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.Try):
                if any(_catches_import_error(h) for h in node.handlers):
                    self.guards.append(node)
                    for stmt in node.body:
                        self._mark(stmt)
            elif isinstance(node, ast.If) and _is_type_checking_test(node.test):
                for stmt in node.body:
                    self._mark(stmt)

    def _mark(self, stmt: ast.stmt) -> None:
        for sub in ast.walk(stmt):
            self.guarded.add(id(sub))


class OptionalImportGuardRule(Rule):
    """REP-I001: numpy/scipy imports outside ``*/soa.py`` must be guarded."""

    rule_id = "REP-I001"
    summary = (
        "import numpy/scipy outside */soa.py must sit under try/except "
        "ImportError or TYPE_CHECKING (the core imports numpy-free)"
    )
    exclude = SOA_EXEMPT

    def check(self, unit: ModuleUnit) -> Iterator[Finding]:
        index = _GuardIndex(unit.tree)
        for node in ast.walk(unit.tree):
            if not isinstance(node, (ast.Import, ast.ImportFrom)):
                continue
            targets = _optional_targets(node)
            if not targets or id(node) in index.guarded:
                continue
            yield unit.finding(
                self.rule_id, node,
                f"unguarded optional import of {', '.join(targets)}; wrap "
                "in try/except ImportError with a None fallback (or "
                "TYPE_CHECKING) so numpy-less installs still import",
            )


class OptionalGuardShapeRule(Rule):
    """REP-I002: optional-import guards import, assign a fallback — nothing
    else.

    The ``try`` body of a numpy/scipy guard must contain only import
    statements: any other module-level work would execute exactly when
    the dependency is present, silently forking behaviour between
    installs.  The ``except`` fallback must stay declarative —
    assignments (``np = None``), ``pass``, or ``raise``.
    """

    rule_id = "REP-I002"
    summary = (
        "an optional-import guard's try body may only import, and its "
        "except fallback may only assign/pass/raise"
    )

    _FALLBACK_OK = (ast.Assign, ast.AnnAssign, ast.Pass, ast.Raise,
                    ast.Import, ast.ImportFrom)

    def check(self, unit: ModuleUnit) -> Iterator[Finding]:
        index = _GuardIndex(unit.tree)
        for guard in index.guards:
            if not any(
                _optional_targets(stmt)
                for stmt in guard.body
                if isinstance(stmt, (ast.Import, ast.ImportFrom))
            ):
                continue  # a guard, but not an optional-dependency one
            for stmt in guard.body:
                if not isinstance(stmt, (ast.Import, ast.ImportFrom)):
                    yield unit.finding(
                        self.rule_id, stmt,
                        "module-level work inside an optional-import guard "
                        "runs only when the dependency is present; move it "
                        "out of the try body",
                    )
            for handler in guard.handlers:
                for stmt in handler.body:
                    if not isinstance(stmt, self._FALLBACK_OK):
                        yield unit.finding(
                            self.rule_id, stmt,
                            "an optional-import fallback must stay "
                            "declarative (assignment/pass/raise); found "
                            f"{type(stmt).__name__}",
                        )


IMPORT_RULES = (
    OptionalImportGuardRule(),
    OptionalGuardShapeRule(),
)
