"""Path-scoped rule configuration for ``repro check``.

A :class:`CheckConfig` maps rule ids to include/exclude glob scopes
(``**`` spans directories; a single ``*`` never crosses ``/`` — see
:func:`~repro.staticcheck.engine.glob_match`).  Rules carry their own
default scope; the config overrides per rule id, which is how the
project pins its invariants — e.g. the wall-clock-stats allowlist of
``REP-D004`` — in one reviewable place instead of inline suppressions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

from repro.staticcheck.rules_determinism import (
    RESULT_SCOPE,
    WALLCLOCK_STATS_ALLOWLIST,
)


@dataclass(frozen=True)
class RuleScope:
    """One rule's path scope: checked iff include matches and exclude
    does not."""

    include: tuple[str, ...] = ("**",)
    exclude: tuple[str, ...] = ()


@dataclass(frozen=True)
class CheckConfig:
    """Per-rule scope overrides handed to the engine."""

    scopes: Mapping[str, RuleScope] = field(default_factory=dict)

    def scope_for(
        self, rule_id: str
    ) -> Optional[tuple[tuple[str, ...], tuple[str, ...]]]:
        scope = self.scopes.get(rule_id)
        if scope is None:
            return None
        return scope.include, scope.exclude


#: The project's invariants, spelled out: REP-D confined to the
#: result-producing packages with the wall-clock-stats allowlist on the
#: monotonic-timer rule; REP-I exempting the dedicated ``*/soa.py``
#: numpy backends; REP-C and REP-R everywhere.  (Scopes match the rule
#: classes' own defaults today; the config exists so the project can
#: narrow or widen them without touching rule code.)
DEFAULT_CONFIG = CheckConfig(scopes={
    "REP-D001": RuleScope(include=RESULT_SCOPE),
    "REP-D002": RuleScope(include=RESULT_SCOPE),
    "REP-D003": RuleScope(include=RESULT_SCOPE),
    "REP-D004": RuleScope(
        include=RESULT_SCOPE, exclude=WALLCLOCK_STATS_ALLOWLIST
    ),
    "REP-D005": RuleScope(include=RESULT_SCOPE),
    "REP-I001": RuleScope(exclude=("**/soa.py",)),
})
