"""REP-R: registry / spec / docs cross-consistency.

Project-wide rules (they run once per invocation, not per file) that
keep the three descriptions of the scenario vocabulary — the live
:class:`~repro.scenario.registry.Registry`, the
:class:`~repro.scenario.spec.ScenarioSpec` dataclasses, and the
documentation — from drifting apart:

* every plugin registered in the default registry is mentioned in some
  ``docs/*.md`` page (the inventory comes from the *live* registry —
  ``repro check --list-plugins`` prints the same list);
* every ``examples/*.toml|json`` spec parses through the unknown-key-
  rejecting :class:`~repro.scenario.spec.ScenarioSpec` loaders (no
  engine runs: parse only);
* every spec-section dataclass field appears in ``docs/scenarios.md``,
  and every ``[section]`` table the doc's schema example shows is a
  real spec section.

Constructor arguments exist only for the rule-pack's own tests (a fake
registry, a fake docs tree); production use takes the defaults.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Any, Callable, Iterator, Mapping, Optional

from repro.staticcheck.engine import Finding, Project, ProjectRule


def _word_pattern(name: str) -> "re.Pattern[str]":
    """``name`` as a standalone word (dashes/underscores kept intact)."""
    return re.compile(rf"(?<![\w-]){re.escape(name)}(?![\w-])")


def _docs_corpus(root: Path) -> Optional[str]:
    docs = root / "docs"
    if not docs.is_dir():
        return None
    pages = sorted(docs.glob("*.md"))
    if not pages:
        return None
    return "\n".join(p.read_text(encoding="utf-8") for p in pages)


class RegistryDocsRule(ProjectRule):
    """REP-R001: every registered plugin is mentioned in a docs page."""

    rule_id = "REP-R001"
    summary = (
        "every plugin in the live default registry must be mentioned "
        "in a docs/*.md page"
    )

    def __init__(
        self, registry_factory: Optional[Callable[[], Any]] = None
    ) -> None:
        self._registry_factory = registry_factory

    def _registry(self) -> Any:
        if self._registry_factory is not None:
            return self._registry_factory()
        from repro.scenario import default_registry

        return default_registry()

    def check_project(self, project: Project) -> Iterator[Finding]:
        corpus = _docs_corpus(project.root)
        if corpus is None:
            return  # no docs tree to check against (fixture trees)
        registry = self._registry()
        for kind in registry.kinds():
            for name in registry.names(kind):
                if not _word_pattern(name).search(corpus):
                    yield Finding(
                        "docs/index.md", 1, self.rule_id,
                        f"registered {kind} plugin {name!r} is not "
                        "mentioned in any docs/*.md page; document it "
                        "(registry inventory: repro check --list-plugins)",
                    )


class ExampleSpecsParseRule(ProjectRule):
    """REP-R002: every example spec parses through the strict loaders.

    Parsing a spec never executes an engine, so this is safe (and
    fast) to run on every check: a drifted key or type in an
    ``examples/`` file fails here instead of in the scenario-matrix CI
    job that actually runs engines.
    """

    rule_id = "REP-R002"
    summary = (
        "examples/*.toml|json must load via ScenarioSpec.from_file "
        "(unknown keys reject; engines never run)"
    )

    def check_project(self, project: Project) -> Iterator[Finding]:
        specs = project.matching("**/examples/*.toml") + project.matching(
            "**/examples/*.json"
        )
        if not specs:
            return
        from repro.errors import ConfigurationError
        from repro.scenario.spec import ScenarioSpec, tomllib

        for path, rel in sorted(specs):
            if path.suffix == ".toml" and tomllib is None:
                continue  # Python 3.10: TOML parsing unavailable
            try:
                ScenarioSpec.from_file(path)
            except ConfigurationError as exc:
                yield Finding(
                    rel, 1, self.rule_id,
                    f"example spec does not load: {exc}",
                )


#: ``[section]`` / ``[section.sub]`` / ``[[section.array]]`` headers in
#: the schema example of docs/scenarios.md.
_TOML_HEADER_RE = re.compile(r"^\[\[?(\w+)[\w.]*\]\]?", re.MULTILINE)


class SpecDocsAgreementRule(ProjectRule):
    """REP-R003: spec dataclass fields and documented keys agree."""

    rule_id = "REP-R003"
    summary = (
        "docs/scenarios.md must mention every spec-section field, and "
        "every [section] it documents must exist on ScenarioSpec"
    )

    def __init__(
        self,
        section_types: Optional[Mapping[str, type]] = None,
        doc_path: str = "docs/scenarios.md",
    ) -> None:
        self._section_types = section_types
        self._doc_path = doc_path

    def _sections(self) -> Mapping[str, type]:
        if self._section_types is not None:
            return self._section_types
        from repro.scenario.spec import _SECTION_TYPES

        return _SECTION_TYPES

    def check_project(self, project: Project) -> Iterator[Finding]:
        import dataclasses

        doc = project.root / self._doc_path
        if not doc.is_file():
            return  # no schema page to check against (fixture trees)
        text = doc.read_text(encoding="utf-8")
        sections = self._sections()
        for section, cls in sorted(sections.items()):
            for f in dataclasses.fields(cls):
                if not _word_pattern(f.name).search(text):
                    yield Finding(
                        self._doc_path, 1, self.rule_id,
                        f"spec field {section}.{f.name} is not documented "
                        f"in {self._doc_path}",
                    )
        for fence in re.finditer(r"```toml\n(.*?)```", text, re.DOTALL):
            for match in _TOML_HEADER_RE.finditer(fence.group(1)):
                if match.group(1) not in sections:
                    line = text.count(
                        "\n", 0, fence.start(1) + match.start()
                    ) + 1
                    yield Finding(
                        self._doc_path, line, self.rule_id,
                        f"documented section [{match.group(1)}] is not a "
                        "ScenarioSpec section; the schema drifted",
                    )


REGISTRY_RULES = (
    RegistryDocsRule(),
    ExampleSpecsParseRule(),
    SpecDocsAgreementRule(),
)
