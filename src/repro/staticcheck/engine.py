"""The ``repro check`` rule engine: discovery, dispatch, suppressions.

The engine is deliberately small and stdlib-only: it discovers files
under the requested paths, parses each Python module once, dispatches
every enabled rule whose path scope matches (see
:class:`~repro.staticcheck.config.CheckConfig`), and post-processes the
findings against inline suppression markers.

Two rule families plug in:

* **module rules** (:class:`Rule`) see one parsed file at a time — an
  AST plus its source — and yield :class:`Finding`s;
* **project rules** (:class:`ProjectRule`) run once per invocation over
  the whole :class:`Project` (discovered files + repository root) and
  encode cross-file contracts: registry/docs/spec agreement.

Suppressions are inline comments naming the rule they silence::

    t0 = time.time()  # repro: noqa REP-D003

A marker must name at least one rule id; a marker whose rules never
fired on its line is itself reported (``REP-X001``), so stale
suppressions cannot accumulate.  Malformed or unknown-id markers report
as ``REP-X002``.
"""

from __future__ import annotations

import ast
import fnmatch
import io
import json
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Optional, Sequence

#: Engine-level pseudo-rules (reported by the engine, not a rule class).
UNUSED_SUPPRESSION = "REP-X001"
BAD_SUPPRESSION = "REP-X002"
SYNTAX_ERROR = "REP-X003"

#: The marker shape: ``repro: noqa <RULE-ID>`` after a hash (ids comma-
#: or space-separated).
_MARKER_RE = re.compile(r"#\s*repro:\s*noqa\b(?P<ids>[^#]*)")
_RULE_ID_RE = re.compile(r"[A-Z]+-[A-Z0-9]+")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation: where it is and what contract it breaks."""

    path: str
    line: int
    rule_id: str
    message: str

    def to_dict(self) -> dict:
        return {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }

    def render(self) -> str:
        """The human one-liner: ``path:line: [rule] message``."""
        return f"{self.path}:{self.line}: [{self.rule_id}] {self.message}"

    def render_github(self) -> str:
        """A GitHub Actions ``::error`` annotation for this finding."""
        return (
            f"::error file={self.path},line={self.line},"
            f"title={self.rule_id}::{self.message}"
        )


class ModuleUnit:
    """One parsed Python file handed to module rules."""

    def __init__(self, path: Path, rel: str, source: str) -> None:
        self.path = path
        self.rel = rel
        self.source = source
        self.tree: ast.Module = ast.parse(source)

    def finding(self, rule_id: str, node: ast.AST, message: str) -> Finding:
        """A :class:`Finding` anchored at ``node``'s line."""
        return Finding(self.rel, getattr(node, "lineno", 1), rule_id, message)


class Project:
    """The whole checked tree, handed to project rules.

    ``files`` is every discovered file (Python or not) as
    ``(absolute path, relative path)``; ``root`` anchors repo-level
    resources (``docs/``) that cross-file rules consult even when the
    invocation only named ``src/``.
    """

    def __init__(self, root: Path, files: Sequence[tuple[Path, str]]) -> None:
        self.root = root
        self.files = tuple(files)

    def matching(self, pattern: str) -> list[tuple[Path, str]]:
        """Discovered files whose relative path matches ``pattern``."""
        return [(p, rel) for p, rel in self.files if glob_match(rel, pattern)]


class Rule:
    """One statically checkable contract, dispatched per parsed module."""

    rule_id: str = "REP-000"
    summary: str = ""
    #: Default path scope; :class:`CheckConfig` may override per rule.
    include: tuple[str, ...] = ("**",)
    exclude: tuple[str, ...] = ()

    def check(self, unit: ModuleUnit) -> Iterator[Finding]:
        raise NotImplementedError


class ProjectRule(Rule):
    """A cross-file contract, dispatched once over the whole project."""

    def check(self, unit: ModuleUnit) -> Iterator[Finding]:
        return iter(())

    def check_project(self, project: Project) -> Iterator[Finding]:
        raise NotImplementedError


# --------------------------------------------------------------------------
# path scoping
# --------------------------------------------------------------------------


def glob_match(rel: str, pattern: str) -> bool:
    """Segment-wise glob match; ``**`` spans any number of segments.

    Unlike :func:`fnmatch.fnmatch` on the whole string, a single ``*``
    never crosses a ``/`` — ``**/des/*`` matches ``src/repro/des/a.py``
    but not ``modes/a.py``.
    """
    return _match_segments(rel.split("/"), pattern.split("/"))


def _match_segments(parts: Sequence[str], pats: Sequence[str]) -> bool:
    if not pats:
        return not parts
    head, rest = pats[0], pats[1:]
    if head == "**":
        return any(
            _match_segments(parts[i:], rest) for i in range(len(parts) + 1)
        )
    if not parts:
        return False
    return fnmatch.fnmatchcase(parts[0], head) and _match_segments(
        parts[1:], rest
    )


def in_scope(rel: str, include: Iterable[str], exclude: Iterable[str]) -> bool:
    """Whether a relative path falls inside an include/exclude scope."""
    if not any(glob_match(rel, pat) for pat in include):
        return False
    return not any(glob_match(rel, pat) for pat in exclude)


# --------------------------------------------------------------------------
# suppressions
# --------------------------------------------------------------------------


class _Suppressions:
    """Inline ``# repro: noqa RULE-ID`` markers of one module."""

    def __init__(self, unit: ModuleUnit, known_ids: set[str]) -> None:
        self.by_line: dict[int, set[str]] = {}
        self.bad: list[Finding] = []
        self._used: set[tuple[int, str]] = set()
        for lineno, text in _comments(unit.source):
            match = _MARKER_RE.search(text)
            if match is None:
                continue
            ids = set(_RULE_ID_RE.findall(match.group("ids")))
            if not ids:
                self.bad.append(Finding(
                    unit.rel, lineno, BAD_SUPPRESSION,
                    "suppression names no rule: write "
                    "'# repro: noqa RULE-ID[, RULE-ID...]'",
                ))
                continue
            unknown = sorted(ids - known_ids)
            if unknown:
                self.bad.append(Finding(
                    unit.rel, lineno, BAD_SUPPRESSION,
                    f"suppression names unknown rule(s) {unknown}",
                ))
            known = ids & known_ids
            if known:
                self.by_line[lineno] = known

    def absorbs(self, finding: Finding) -> bool:
        """True (and marks the marker used) when ``finding`` is silenced."""
        if finding.rule_id in self.by_line.get(finding.line, ()):
            self._used.add((finding.line, finding.rule_id))
            return True
        return False

    def unused(self, rel: str, enabled_ids: set[str]) -> Iterator[Finding]:
        """Markers that silenced nothing (only for rules actually run)."""
        for lineno, ids in sorted(self.by_line.items()):
            for rule_id in sorted(ids & enabled_ids):
                if (lineno, rule_id) not in self._used:
                    yield Finding(
                        rel, lineno, UNUSED_SUPPRESSION,
                        f"unused suppression: {rule_id} did not fire on "
                        "this line — remove the marker",
                    )


def _comments(source: str) -> Iterator[tuple[int, str]]:
    """``(lineno, text)`` of each real comment token in ``source``.

    Tokenizing (rather than scanning raw lines) keeps marker-shaped text
    inside strings and docstrings from registering as suppressions.
    """
    readline = io.StringIO(source).readline
    try:
        for tok in tokenize.generate_tokens(readline):
            if tok.type == tokenize.COMMENT:
                yield tok.start[0], tok.string
    except (tokenize.TokenError, IndentationError):  # pragma: no cover
        return  # unparsable tail; the file already failed SYNTAX_ERROR


# --------------------------------------------------------------------------
# discovery + the run
# --------------------------------------------------------------------------

_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".pytest_cache"}


def discover(paths: Sequence[Path]) -> list[Path]:
    """Files under ``paths``: explicit files verbatim, directories walked."""
    found: list[Path] = []
    for path in paths:
        if path.is_file():
            found.append(path)
            continue
        if not path.is_dir():
            raise FileNotFoundError(f"no such file or directory: {path}")
        for sub in sorted(path.rglob("*")):
            if sub.is_dir():
                continue
            rel_parts = sub.relative_to(path).parts
            if any(
                part in _SKIP_DIRS or part.startswith(".")
                for part in rel_parts
            ):
                continue
            found.append(sub)
    return found


def _relative(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


@dataclass
class CheckResult:
    """Outcome of one engine run."""

    findings: list[Finding]
    files_checked: int

    @property
    def ok(self) -> bool:
        return not self.findings

    def to_json(self) -> str:
        return json.dumps(
            {
                "files_checked": self.files_checked,
                "findings": [f.to_dict() for f in self.findings],
            },
            indent=2,
        )


def run_check(
    paths: Sequence["str | Path"],
    rules: Sequence[Rule],
    config: Optional["CheckConfigLike"] = None,
    root: Optional["str | Path"] = None,
    only: Optional[Sequence[str]] = None,
) -> CheckResult:
    """Run ``rules`` over ``paths``; returns sorted, suppression-filtered
    findings.

    ``config`` narrows each rule's path scope (falling back to the
    rule's own ``include``/``exclude``); ``root`` anchors relative paths
    and repo-level resources (default: the current directory); ``only``
    restricts to rules whose id matches one of the given ids or id
    prefixes (``REP-D`` selects the whole determinism pack).
    """
    root = Path(root) if root is not None else Path.cwd()
    enabled = _select(rules, only)
    enabled_ids = {rule.rule_id for rule in enabled}
    known_ids = {rule.rule_id for rule in rules} | {
        UNUSED_SUPPRESSION, BAD_SUPPRESSION, SYNTAX_ERROR
    }
    files = discover([Path(p) for p in paths])
    rel_files = [(path, _relative(path, root)) for path in files]

    findings: list[Finding] = []
    py_files = [(p, rel) for p, rel in rel_files if rel.endswith(".py")]
    for path, rel in py_files:
        try:
            unit = ModuleUnit(path, rel, path.read_text(encoding="utf-8"))
        except SyntaxError as exc:
            findings.append(Finding(
                rel, exc.lineno or 1, SYNTAX_ERROR,
                f"file does not parse: {exc.msg}",
            ))
            continue
        suppressions = _Suppressions(unit, known_ids)
        findings.extend(suppressions.bad)
        for rule in enabled:
            if isinstance(rule, ProjectRule):
                continue
            include, exclude = _scope(rule, config)
            if not in_scope(rel, include, exclude):
                continue
            for finding in rule.check(unit):
                if not suppressions.absorbs(finding):
                    findings.append(finding)
        findings.extend(suppressions.unused(rel, enabled_ids))

    project = Project(root, rel_files)
    for rule in enabled:
        if isinstance(rule, ProjectRule):
            findings.extend(rule.check_project(project))

    return CheckResult(sorted(findings), len(rel_files))


def _select(rules: Sequence[Rule], only: Optional[Sequence[str]]) -> list[Rule]:
    if not only:
        return list(rules)
    selected = [
        rule
        for rule in rules
        if any(rule.rule_id == o or rule.rule_id.startswith(o) for o in only)
    ]
    if not selected:
        known = sorted(rule.rule_id for rule in rules)
        raise ValueError(f"no rule matches {list(only)}; known rules: {known}")
    return selected


def _scope(rule: Rule, config) -> tuple[tuple[str, ...], tuple[str, ...]]:
    if config is not None:
        scoped = config.scope_for(rule.rule_id)
        if scoped is not None:
            return scoped
    return rule.include, rule.exclude


class CheckConfigLike:
    """Protocol: anything with ``scope_for(rule_id) -> (include, exclude)``."""

    def scope_for(self, rule_id: str):  # pragma: no cover - protocol stub
        raise NotImplementedError
