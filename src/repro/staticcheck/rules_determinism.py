"""REP-D: determinism rules for result-producing code.

The repository's core guarantee is that every result is a pure function
of the spec and its seeds: bit-identical across shard counts, run
orders, and machines.  These rules reject the constructs that break
that — ambient randomness, wall-clock reads feeding simulated state,
and iteration orders Python does not define.

Scoped (by the default :class:`~repro.staticcheck.config.CheckConfig`)
to the result-producing packages: ``des/``, ``netmodel/``,
``cpumodel/``, ``clusterserver/``, ``faults.py`` and ``apps/``.
Wall-clock *stats* (shard wall-time, barrier-wait counters) live in an
explicit per-file allowlist rather than in suppressions.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.staticcheck.engine import Finding, ModuleUnit, Rule

#: The scope every REP-D rule shares (see module docstring).
RESULT_SCOPE = (
    "**/des/**",
    "**/netmodel/**",
    "**/cpumodel/**",
    "**/clusterserver/**",
    "**/faults.py",
    "**/apps/**",
)

#: Files allowed to read monotonic timers: they feed *wall-clock stats*
#: (``ShardStats.wall_s``, ``EpochStats.barrier_wait_s``), never results.
WALLCLOCK_STATS_ALLOWLIST = (
    "**/des/epoch.py",
    "**/clusterserver/sharded.py",
)


def dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


#: Module-level functions of :mod:`random` that draw from the *global*
#: (process-shared, effectively unseeded) generator.
GLOBAL_RANDOM_FUNCS = frozenset({
    "random", "randint", "randrange", "randbytes", "getrandbits",
    "choice", "choices", "shuffle", "sample", "uniform", "triangular",
    "gauss", "normalvariate", "lognormvariate", "expovariate",
    "betavariate", "gammavariate", "paretovariate", "vonmisesvariate",
    "weibullvariate", "binomialvariate", "seed",
})

#: Wall-clock reads (calendar time: differs per run by construction).
WALL_CLOCK_CALLS = frozenset({
    "time.time", "time.time_ns", "time.localtime", "time.gmtime",
    "datetime.now", "datetime.utcnow", "datetime.today", "date.today",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

#: Monotonic timers: legitimate for wall-clock stats, nowhere else.
MONOTONIC_CALLS = frozenset({
    "time.perf_counter", "time.perf_counter_ns",
    "time.monotonic", "time.monotonic_ns", "time.process_time",
    "time.process_time_ns",
})


class GlobalRandomRule(Rule):
    """REP-D001: no draws from the process-global ``random`` generator."""

    rule_id = "REP-D001"
    summary = (
        "result-producing code must not call the global random.* "
        "functions; draw from an explicitly seeded random.Random(seed)"
    )
    include = RESULT_SCOPE

    def check(self, unit: ModuleUnit) -> Iterator[Finding]:
        for node in ast.walk(unit.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted(node.func)
            if name is None:
                continue
            module, _, func = name.rpartition(".")
            if module == "random" and func in GLOBAL_RANDOM_FUNCS:
                yield unit.finding(
                    self.rule_id, node,
                    f"{name}() draws from the process-global RNG; results "
                    "must come from an explicitly seeded random.Random(seed)",
                )


class UnseededRngRule(Rule):
    """REP-D002: every constructed RNG must be given a seed."""

    rule_id = "REP-D002"
    summary = (
        "random.Random() / numpy default_rng() constructed without a "
        "seed is nondeterministic; pass the component's derived seed"
    )
    include = RESULT_SCOPE

    def check(self, unit: ModuleUnit) -> Iterator[Finding]:
        for node in ast.walk(unit.tree):
            if not isinstance(node, ast.Call) or node.args or node.keywords:
                continue
            name = dotted(node.func)
            if name is None:
                continue
            if name.endswith("random.Random") or name.endswith(
                ".default_rng"
            ) or name == "Random":
                yield unit.finding(
                    self.rule_id, node,
                    f"{name}() without a seed is entropy-seeded; pass the "
                    "component's derived seed explicitly",
                )


class WallClockRule(Rule):
    """REP-D003: no calendar-time reads in result-producing code."""

    rule_id = "REP-D003"
    summary = (
        "time.time()/datetime.now() in result-producing code make "
        "results depend on when they ran"
    )
    include = RESULT_SCOPE

    def check(self, unit: ModuleUnit) -> Iterator[Finding]:
        for node in ast.walk(unit.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted(node.func)
            if name in WALL_CLOCK_CALLS:
                yield unit.finding(
                    self.rule_id, node,
                    f"{name}() reads the wall clock; simulated time must "
                    "come from the kernel, never the host calendar",
                )


class MonotonicTimerRule(Rule):
    """REP-D004: monotonic timers only in the wall-clock-stats allowlist.

    ``time.perf_counter`` is how the engines report *their own* cost
    (``wall_s``, ``barrier_wait_s``) — that is measurement, not
    simulation, and it is confined to the allowlisted files.  Anywhere
    else in the result-producing packages a timer read is a red flag:
    either dead measurement code or host timing leaking into results.
    """

    rule_id = "REP-D004"
    summary = (
        "perf_counter/monotonic reads outside the wall-clock-stats "
        "allowlist (engine wall_s/barrier accounting files)"
    )
    include = RESULT_SCOPE
    exclude = WALLCLOCK_STATS_ALLOWLIST

    def check(self, unit: ModuleUnit) -> Iterator[Finding]:
        for node in ast.walk(unit.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted(node.func)
            if name in MONOTONIC_CALLS:
                yield unit.finding(
                    self.rule_id, node,
                    f"{name}() outside the wall-clock-stats allowlist; "
                    "host timers may only feed the engines' wall_s/"
                    "barrier_wait_s accounting",
                )


class SetIterationRule(Rule):
    """REP-D005: no iteration over bare set literals.

    Set iteration order is unrelated to insertion order and may vary
    across interpreters; a ``for`` loop (or comprehension) over a set
    literal feeding result state is order-nondeterminism waiting to
    happen.  Iterate a tuple, or ``sorted({...})`` when dedup is the
    point.
    """

    rule_id = "REP-D005"
    summary = (
        "iterating a bare set literal has unspecified order; use a "
        "tuple or sorted(...)"
    )
    include = RESULT_SCOPE

    def check(self, unit: ModuleUnit) -> Iterator[Finding]:
        for node in ast.walk(unit.tree):
            iters: list[ast.AST] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                iters.extend(gen.iter for gen in node.generators)
            for it in iters:
                if isinstance(it, ast.Set):
                    yield unit.finding(
                        self.rule_id, it,
                        "iteration over a bare set literal has unspecified "
                        "order; use a tuple, or sorted({...}) if dedup is "
                        "intended",
                    )


DETERMINISM_RULES = (
    GlobalRandomRule(),
    UnseededRngRule(),
    WallClockRule(),
    MonotonicTimerRule(),
    SetIterationRule(),
)
