"""Deterministic random-number-generator management.

Every stochastic component of the testbed takes an explicit seed.  To keep
independent components decorrelated while remaining reproducible, seeds are
derived from a root :class:`numpy.random.SeedSequence` keyed by a stable
string label (e.g. ``"node-3/os-noise"``).
"""

from __future__ import annotations

import zlib

try:
    import numpy as np
except ImportError:  # degraded no-numpy install: fail at .rng() call time
    np = None  # type: ignore[assignment]


def _label_key(label: str) -> int:
    """Map a string label to a stable 32-bit integer key."""
    return zlib.crc32(label.encode("utf-8")) & 0xFFFFFFFF


class SeedSequenceFactory:
    """Derives independent, reproducible RNG streams from one root seed.

    Parameters
    ----------
    seed:
        Root seed.  Two factories with the same seed produce identical
        streams for identical labels.
    """

    def __init__(self, seed: int = 0) -> None:
        self._root = int(seed)

    @property
    def seed(self) -> int:
        """The root seed this factory was built from."""
        return self._root

    def rng(self, label: str) -> "np.random.Generator":
        """Return a :class:`numpy.random.Generator` keyed by ``label``."""
        if np is None:
            raise ImportError(
                "numpy is required for seeded noise streams; "
                "install the 'fast' extra (pip install repro[fast])"
            )
        ss = np.random.SeedSequence([self._root, _label_key(label)])
        return np.random.Generator(np.random.PCG64(ss))

    def child(self, label: str) -> "SeedSequenceFactory":
        """Return a sub-factory whose streams are independent of the parent's."""
        return SeedSequenceFactory(
            (self._root * 0x9E3779B1 + _label_key(label)) & 0x7FFFFFFFFFFFFFFF
        )


def derive_rng(seed: int | None, label: str) -> np.random.Generator:
    """One-shot helper: RNG stream for ``label`` under ``seed`` (0 if None)."""
    return SeedSequenceFactory(0 if seed is None else seed).rng(label)
