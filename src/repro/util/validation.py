"""Argument-validation helpers shared by the model constructors.

Each helper returns the validated value so it can be used inline::

    self.bandwidth = check_positive("bandwidth", bandwidth)
"""

from __future__ import annotations

import math
from typing import Any, TypeVar

from repro.errors import ConfigurationError

T = TypeVar("T")


def check_type(name: str, value: Any, expected: type | tuple[type, ...]) -> Any:
    """Raise :class:`ConfigurationError` unless ``value`` is an ``expected`` instance."""
    if not isinstance(value, expected):
        exp = (
            expected.__name__
            if isinstance(expected, type)
            else " or ".join(t.__name__ for t in expected)
        )
        raise ConfigurationError(
            f"{name} must be of type {exp}, got {type(value).__name__}"
        )
    return value


def check_finite(name: str, value: float) -> float:
    """Require a finite real number."""
    value = float(value)
    if not math.isfinite(value):
        raise ConfigurationError(f"{name} must be finite, got {value!r}")
    return value


def check_positive(name: str, value: float) -> float:
    """Require a strictly positive finite number."""
    value = check_finite(name, value)
    if value <= 0.0:
        raise ConfigurationError(f"{name} must be > 0, got {value!r}")
    return value


def check_non_negative(name: str, value: float) -> float:
    """Require a finite number >= 0."""
    value = check_finite(name, value)
    if value < 0.0:
        raise ConfigurationError(f"{name} must be >= 0, got {value!r}")
    return value


def check_in_range(
    name: str,
    value: float,
    low: float,
    high: float,
    *,
    inclusive: bool = True,
) -> float:
    """Require ``low <= value <= high`` (or strict bounds if ``inclusive=False``)."""
    value = check_finite(name, value)
    if inclusive:
        ok = low <= value <= high
        rel = "<="
    else:
        ok = low < value < high
        rel = "<"
    if not ok:
        raise ConfigurationError(
            f"{name} must satisfy {low} {rel} {name} {rel} {high}, got {value!r}"
        )
    return value
