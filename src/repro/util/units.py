"""Unit constants and human-readable formatting helpers.

The whole package uses **seconds** for time and **bytes** for data sizes.
These constants make call sites self-documenting::

    NetworkParams(latency=80 * MICROSECOND, bandwidth=mbit_per_s(100))
"""

from __future__ import annotations

# --- data sizes (bytes) -----------------------------------------------------
KB: int = 1024
MB: int = 1024 * 1024
GB: int = 1024 * 1024 * 1024

# --- durations (seconds) ----------------------------------------------------
MICROSECOND: float = 1e-6
MILLISECOND: float = 1e-3
SECOND: float = 1.0


def mbit_per_s(mbits: float) -> float:
    """Convert a link speed in megabits/second to bytes/second.

    Uses the networking convention of 10^6 bits per megabit.
    """
    return mbits * 1e6 / 8.0


def mbyte_per_s(mbytes: float) -> float:
    """Convert a throughput in binary megabytes/second to bytes/second."""
    return mbytes * float(MB)


def format_bytes(size: float) -> str:
    """Render a byte count as a short human-readable string."""
    size = float(size)
    neg = size < 0
    size = abs(size)
    for unit, name in ((GB, "GB"), (MB, "MB"), (KB, "KB")):
        if size >= unit:
            value = size / unit
            return f"{'-' if neg else ''}{value:.2f} {name}"
    return f"{'-' if neg else ''}{size:.0f} B"


def format_duration(seconds: float) -> str:
    """Render a duration in the most natural unit (s, ms or us)."""
    seconds = float(seconds)
    neg = seconds < 0
    mag = abs(seconds)
    if mag >= 1.0:
        return f"{'-' if neg else ''}{mag:.3f} s"
    if mag >= 1e-3:
        return f"{'-' if neg else ''}{mag * 1e3:.3f} ms"
    return f"{'-' if neg else ''}{mag * 1e6:.1f} us"
