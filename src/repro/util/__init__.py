"""Small shared utilities: units, validation, RNG handling and statistics."""

from repro.util.units import (
    KB,
    MB,
    GB,
    MICROSECOND,
    MILLISECOND,
    SECOND,
    format_bytes,
    format_duration,
    mbit_per_s,
    mbyte_per_s,
)
from repro.util.validation import (
    check_finite,
    check_in_range,
    check_non_negative,
    check_positive,
    check_type,
)
from repro.util.rng import SeedSequenceFactory, derive_rng
from repro.util.stats import OnlineStats, percentile, summarize

__all__ = [
    "KB",
    "MB",
    "GB",
    "MICROSECOND",
    "MILLISECOND",
    "SECOND",
    "format_bytes",
    "format_duration",
    "mbit_per_s",
    "mbyte_per_s",
    "check_finite",
    "check_in_range",
    "check_non_negative",
    "check_positive",
    "check_type",
    "SeedSequenceFactory",
    "derive_rng",
    "OnlineStats",
    "percentile",
    "summarize",
]
