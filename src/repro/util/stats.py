"""Lightweight statistics helpers used by the analysis and testbed layers."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence


class OnlineStats:
    """Streaming mean/variance accumulator (Welford's algorithm).

    Suitable for long simulations where storing every sample would defeat the
    memory savings of partial direct execution.
    """

    def __init__(self) -> None:
        self._n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf

    def add(self, x: float) -> None:
        """Fold one sample into the accumulator."""
        x = float(x)
        self._n += 1
        delta = x - self._mean
        self._mean += delta / self._n
        self._m2 += delta * (x - self._mean)
        self._min = min(self._min, x)
        self._max = max(self._max, x)

    def extend(self, xs: Iterable[float]) -> None:
        """Fold many samples into the accumulator."""
        for x in xs:
            self.add(x)

    @property
    def count(self) -> int:
        """Number of samples folded in."""
        return self._n

    @property
    def mean(self) -> float:
        """Sample mean (NaN while empty)."""
        return self._mean if self._n else math.nan

    @property
    def variance(self) -> float:
        """Sample variance (n-1 denominator)."""
        if self._n < 2:
            return math.nan
        return self._m2 / (self._n - 1)

    @property
    def stddev(self) -> float:
        """Sample standard deviation (NaN below two samples)."""
        v = self.variance
        return math.sqrt(v) if v == v else math.nan

    @property
    def minimum(self) -> float:
        """Smallest sample seen (NaN while empty)."""
        return self._min if self._n else math.nan

    @property
    def maximum(self) -> float:
        """Largest sample seen (NaN while empty)."""
        return self._max if self._n else math.nan

    def merge(self, other: "OnlineStats") -> "OnlineStats":
        """Return a new accumulator equal to folding both sample sets."""
        out = OnlineStats()
        n = self._n + other._n
        if n == 0:
            return out
        delta = other._mean - self._mean
        out._n = n
        out._mean = self._mean + delta * (other._n / n)
        out._m2 = self._m2 + other._m2 + delta * delta * self._n * other._n / n
        out._min = min(self._min, other._min)
        out._max = max(self._max, other._max)
        return out


class StreamingQuantile:
    """Mergeable reservoir quantile estimator for unbounded streams.

    Holds at most ``capacity`` samples.  Below capacity the buffer *is*
    the sample set, so :meth:`quantile` equals :func:`percentile` of
    everything seen — exact.  Beyond capacity it switches to reservoir
    sampling (Algorithm R) driven by an internal 64-bit LCG, so the same
    insertion sequence always yields the same estimate: no global RNG
    state, fully deterministic, picklable.

    :meth:`merge` supports shard fan-in: two estimators combine into one
    whose buffer is either the exact concatenation (when it fits) or a
    deterministic evenly-spaced subsample of each side, sized
    proportionally to the observed counts.
    """

    _LCG_A = 6364136223846793005
    _LCG_C = 1442695040888963407
    _MASK = (1 << 64) - 1

    def __init__(self, capacity: int = 512) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._buffer: list[float] = []
        self._count = 0
        self._state = 0x9E3779B97F4A7C15

    @property
    def count(self) -> int:
        """Number of samples offered to the estimator."""
        return self._count

    def add(self, x: float) -> None:
        """Offer one sample to the reservoir."""
        x = float(x)
        self._count += 1
        if len(self._buffer) < self.capacity:
            self._buffer.append(x)
            return
        self._state = (self._state * self._LCG_A + self._LCG_C) & self._MASK
        j = self._state % self._count
        if j < self.capacity:
            self._buffer[j] = x

    def extend(self, xs: Iterable[float]) -> None:
        """Offer many samples to the reservoir."""
        for x in xs:
            self.add(x)

    def quantile(self, q: float) -> float:
        """The ``q``-th percentile estimate, ``q`` in [0, 100].

        Exact while fewer than ``capacity`` samples have been seen.
        """
        return percentile(self._buffer, q)

    def merge(self, other: "StreamingQuantile") -> "StreamingQuantile":
        """A new estimator summarizing both sample sets (deterministic).

        When the combined buffers fit in ``capacity`` the merge is exact
        (concatenation); otherwise each side contributes an evenly-spaced
        subsample of its sorted buffer, sized proportionally to its
        observed count.
        """
        out = StreamingQuantile(max(self.capacity, other.capacity))
        out._count = self._count + other._count
        out._state = (
            self._state * self._LCG_A + other._state
        ) & self._MASK
        if len(self._buffer) + len(other._buffer) <= out.capacity:
            out._buffer = list(self._buffer) + list(other._buffer)
            return out
        total = self._count + other._count
        k_self = min(
            len(self._buffer),
            max(0, round(out.capacity * self._count / total)),
        )
        k_other = min(len(other._buffer), out.capacity - k_self)
        k_self = min(len(self._buffer), out.capacity - k_other)
        out._buffer = self._subsample(k_self) + other._subsample(k_other)
        return out

    def _subsample(self, k: int) -> list[float]:
        """``k`` evenly-spaced order statistics of the sorted buffer."""
        data = sorted(self._buffer)
        if k >= len(data):
            return data
        return [data[int((i + 0.5) * len(data) / k)] for i in range(k)]


def percentile(xs: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile of ``xs`` for ``q`` in [0, 100]."""
    if not xs:
        return math.nan
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q}")
    data = sorted(float(x) for x in xs)
    if len(data) == 1:
        return data[0]
    pos = (len(data) - 1) * q / 100.0
    lo = int(math.floor(pos))
    hi = int(math.ceil(pos))
    if lo == hi:
        return data[lo]
    frac = pos - lo
    return data[lo] * (1.0 - frac) + data[hi] * frac


@dataclass(frozen=True)
class Summary:
    """Five-number-plus summary of a sample set."""

    count: int
    mean: float
    stddev: float
    minimum: float
    p50: float
    p95: float
    maximum: float


def summarize(xs: Sequence[float]) -> Summary:
    """Compute a :class:`Summary` of the sample set ``xs``."""
    acc = OnlineStats()
    acc.extend(xs)
    return Summary(
        count=acc.count,
        mean=acc.mean,
        stddev=acc.stddev,
        minimum=acc.minimum,
        p50=percentile(xs, 50.0),
        p95=percentile(xs, 95.0),
        maximum=acc.maximum,
    )
