"""Lightweight statistics helpers used by the analysis and testbed layers."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence


class OnlineStats:
    """Streaming mean/variance accumulator (Welford's algorithm).

    Suitable for long simulations where storing every sample would defeat the
    memory savings of partial direct execution.
    """

    def __init__(self) -> None:
        self._n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf

    def add(self, x: float) -> None:
        """Fold one sample into the accumulator."""
        x = float(x)
        self._n += 1
        delta = x - self._mean
        self._mean += delta / self._n
        self._m2 += delta * (x - self._mean)
        self._min = min(self._min, x)
        self._max = max(self._max, x)

    def extend(self, xs: Iterable[float]) -> None:
        """Fold many samples into the accumulator."""
        for x in xs:
            self.add(x)

    @property
    def count(self) -> int:
        """Number of samples folded in."""
        return self._n

    @property
    def mean(self) -> float:
        """Sample mean (NaN while empty)."""
        return self._mean if self._n else math.nan

    @property
    def variance(self) -> float:
        """Sample variance (n-1 denominator)."""
        if self._n < 2:
            return math.nan
        return self._m2 / (self._n - 1)

    @property
    def stddev(self) -> float:
        """Sample standard deviation (NaN below two samples)."""
        v = self.variance
        return math.sqrt(v) if v == v else math.nan

    @property
    def minimum(self) -> float:
        """Smallest sample seen (NaN while empty)."""
        return self._min if self._n else math.nan

    @property
    def maximum(self) -> float:
        """Largest sample seen (NaN while empty)."""
        return self._max if self._n else math.nan

    def merge(self, other: "OnlineStats") -> "OnlineStats":
        """Return a new accumulator equal to folding both sample sets."""
        out = OnlineStats()
        n = self._n + other._n
        if n == 0:
            return out
        delta = other._mean - self._mean
        out._n = n
        out._mean = self._mean + delta * (other._n / n)
        out._m2 = self._m2 + other._m2 + delta * delta * self._n * other._n / n
        out._min = min(self._min, other._min)
        out._max = max(self._max, other._max)
        return out


def percentile(xs: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile of ``xs`` for ``q`` in [0, 100]."""
    if not xs:
        return math.nan
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q}")
    data = sorted(float(x) for x in xs)
    if len(data) == 1:
        return data[0]
    pos = (len(data) - 1) * q / 100.0
    lo = int(math.floor(pos))
    hi = int(math.ceil(pos))
    if lo == hi:
        return data[lo]
    frac = pos - lo
    return data[lo] * (1.0 - frac) + data[hi] * frac


@dataclass(frozen=True)
class Summary:
    """Five-number-plus summary of a sample set."""

    count: int
    mean: float
    stddev: float
    minimum: float
    p50: float
    p95: float
    maximum: float


def summarize(xs: Sequence[float]) -> Summary:
    """Compute a :class:`Summary` of the sample set ``xs``."""
    acc = OnlineStats()
    acc.extend(xs)
    return Summary(
        count=acc.count,
        mean=acc.mean,
        stddev=acc.stddev,
        minimum=acc.minimum,
        p50=percentile(xs, 50.0),
        p95=percentile(xs, 95.0),
        maximum=acc.maximum,
    )
