"""Discrete-event simulation kernel.

This subpackage is the shared substrate for both the paper's simulator
(:mod:`repro.sim`) and the ground-truth virtual cluster
(:mod:`repro.testbed`).  It provides

* :class:`~repro.des.event_queue.EventQueue` — a cancellable binary-heap
  event queue with stable FIFO tie-breaking,
* :class:`~repro.des.kernel.Kernel` — the simulation clock and run loop,
* generator-based processes (:mod:`repro.des.process`), and
* fluid (rate-based) task pools (:mod:`repro.des.fluid`) used by the
  contention-aware network and CPU models.
"""

from repro.des.event_queue import EventHandle, EventQueue
from repro.des.kernel import Kernel
from repro.des.process import AllOf, Process, Signal, Timeout, WaitSignal
from repro.des.fluid import FluidPool, FluidTask

__all__ = [
    "EventHandle",
    "EventQueue",
    "Kernel",
    "Process",
    "Signal",
    "Timeout",
    "WaitSignal",
    "AllOf",
    "FluidPool",
    "FluidTask",
]
