"""The discrete-event kernel: simulation clock plus run loop.

The kernel is deliberately minimal — callbacks and a clock.  Higher-level
conveniences (generator processes, fluid pools) are layered on top so that
performance-critical models can talk to the kernel directly, as the
optimization guide recommends: keep the hot loop simple and measurable.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.des.event_queue import EventHandle, EventQueue
from repro.errors import SimulationError


class Kernel:
    """Simulation clock, scheduler and run loop.

    The kernel advances time by executing events in timestamp order.  Time
    never moves backwards; scheduling an event in the past raises
    :class:`SimulationError`.

    A ``trace_hook`` — ``hook(time, callback, args)`` — may be installed to
    observe every dispatched event (used by tests and by the simulator's
    event trace).
    """

    def __init__(self) -> None:
        self._queue = EventQueue()
        self._now = 0.0
        self._running = False
        self._executed = 0
        self._peeks_elided = 0
        self.trace_hook: Optional[Callable[[float, Callable[..., None], tuple], None]] = None

    # ------------------------------------------------------------------ time
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Number of events dispatched so far (cost metric for Table 1)."""
        return self._executed

    @property
    def peeks_elided(self) -> int:
        """Heap peeks the single-pop run loop avoided.

        The pre-restructure loop paid a ``peek_time()`` *and* a ``pop()``
        per dispatched event — two traversals of the heap top.  Each event
        dispatched through :meth:`run`'s fused pop-with-limit path counts
        one elided peek here; together with :attr:`events_executed` this
        quantifies the saved heap work.
        """
        return self._peeks_elided

    @property
    def pending_events(self) -> int:
        """Number of live events still scheduled."""
        return len(self._queue)

    def next_event_time(self) -> Optional[float]:
        """Timestamp of the earliest pending event, or ``None`` when idle.

        The shard-safe lookahead hook: an epoch controller reads every
        shard kernel's next event time to compute a global epoch bound
        without popping anything (see :mod:`repro.des.epoch`).
        """
        return self._queue.peek_time()

    # ------------------------------------------------------------ scheduling
    def schedule(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0.0:
            raise SimulationError(f"cannot schedule into the past (delay={delay!r})")
        return self._queue.push(self._now + delay, callback, *args)

    def schedule_at(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute simulation ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule into the past (t={time!r} < now={self._now!r})"
            )
        return self._queue.push(time, callback, *args)

    def cancel(self, handle: EventHandle) -> None:
        """Cancel a scheduled event (idempotent)."""
        self._queue.cancel(handle)

    # -------------------------------------------------------------- run loop
    def _dispatch(self, handle: EventHandle) -> None:
        """Advance the clock to ``handle`` and execute its callback."""
        if handle.time < self._now:  # pragma: no cover - defensive
            raise SimulationError("event queue returned an event from the past")
        self._now = handle.time
        self._executed += 1
        if self.trace_hook is not None:
            self.trace_hook(self._now, handle.callback, handle.args)
        handle.callback(*handle.args)

    def step(self) -> bool:
        """Execute the next event; return ``False`` if the queue was empty."""
        if not self._queue:
            return False
        self._dispatch(self._queue.pop())
        return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run until the queue drains, ``until`` is reached, or ``max_events``.

        Returns the simulation time at which the loop stopped.  When
        ``until`` is given and the queue still holds later events, the clock
        is advanced exactly to ``until``.

        The loop pops each due event in a single heap traversal
        (:meth:`~repro.des.event_queue.EventQueue.pop_due` folds the
        ``until`` check into the pop); the per-event peek this replaces is
        counted in :attr:`peeks_elided`.
        """
        if self._running:
            raise SimulationError("kernel.run() is not reentrant")
        self._running = True
        budget = max_events if max_events is not None else -1
        try:
            while self._queue:
                if budget == 0:
                    # Budget exhaustion is a once-per-run exit, so a peek
                    # here (to honour the until-advance contract) is cheap.
                    next_time = self._queue.peek_time()
                    if until is not None and (
                        next_time is None or next_time > until
                    ):
                        self._now = max(self._now, until)
                    break
                handle = self._queue.pop_due(until)
                if handle is None:
                    # Queue is non-empty (the while guard) and nothing was
                    # due: the earliest live event lies beyond ``until``.
                    self._now = max(self._now, until)
                    break
                self._peeks_elided += 1
                self._dispatch(handle)
                if budget > 0:
                    budget -= 1
            else:
                if until is not None and until > self._now:
                    self._now = until
        finally:
            self._running = False
        return self._now

    def reset(self) -> None:
        """Clear the queue and rewind the clock to zero."""
        if self._running:
            raise SimulationError("cannot reset a running kernel")
        self._queue.clear()
        self._now = 0.0
        self._executed = 0
        self._peeks_elided = 0
