"""The discrete-event kernel: simulation clock plus run loop.

The kernel is deliberately minimal — callbacks and a clock.  Higher-level
conveniences (generator processes, fluid pools) are layered on top so that
performance-critical models can talk to the kernel directly, as the
optimization guide recommends: keep the hot loop simple and measurable.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.des.event_queue import EventHandle, EventQueue
from repro.errors import SimulationError


class Kernel:
    """Simulation clock, scheduler and run loop.

    The kernel advances time by executing events in timestamp order.  Time
    never moves backwards; scheduling an event in the past raises
    :class:`SimulationError`.

    A ``trace_hook`` — ``hook(time, callback, args)`` — may be installed to
    observe every dispatched event (used by tests and by the simulator's
    event trace).
    """

    def __init__(self) -> None:
        self._queue = EventQueue()
        self._now = 0.0
        self._running = False
        self._executed = 0
        self.trace_hook: Optional[Callable[[float, Callable[..., None], tuple], None]] = None

    # ------------------------------------------------------------------ time
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Number of events dispatched so far (cost metric for Table 1)."""
        return self._executed

    @property
    def pending_events(self) -> int:
        """Number of live events still scheduled."""
        return len(self._queue)

    # ------------------------------------------------------------ scheduling
    def schedule(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0.0:
            raise SimulationError(f"cannot schedule into the past (delay={delay!r})")
        return self._queue.push(self._now + delay, callback, *args)

    def schedule_at(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute simulation ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule into the past (t={time!r} < now={self._now!r})"
            )
        return self._queue.push(time, callback, *args)

    def cancel(self, handle: EventHandle) -> None:
        """Cancel a scheduled event (idempotent)."""
        self._queue.cancel(handle)

    # -------------------------------------------------------------- run loop
    def step(self) -> bool:
        """Execute the next event; return ``False`` if the queue was empty."""
        if not self._queue:
            return False
        handle = self._queue.pop()
        if handle.time < self._now:  # pragma: no cover - defensive
            raise SimulationError("event queue returned an event from the past")
        self._now = handle.time
        self._executed += 1
        if self.trace_hook is not None:
            self.trace_hook(self._now, handle.callback, handle.args)
        handle.callback(*handle.args)
        return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run until the queue drains, ``until`` is reached, or ``max_events``.

        Returns the simulation time at which the loop stopped.  When
        ``until`` is given and the queue still holds later events, the clock
        is advanced exactly to ``until``.
        """
        if self._running:
            raise SimulationError("kernel.run() is not reentrant")
        self._running = True
        budget = max_events if max_events is not None else -1
        try:
            while self._queue:
                next_time = self._queue.peek_time()
                if until is not None and next_time is not None and next_time > until:
                    self._now = max(self._now, until)
                    break
                if budget == 0:
                    break
                self.step()
                if budget > 0:
                    budget -= 1
            else:
                if until is not None and until > self._now:
                    self._now = until
        finally:
            self._running = False
        return self._now

    def reset(self) -> None:
        """Clear the queue and rewind the clock to zero."""
        if self._running:
            raise SimulationError("cannot reset a running kernel")
        self._queue.clear()
        self._now = 0.0
        self._executed = 0
