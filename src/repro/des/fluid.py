"""Fluid (rate-based) task pools.

The paper's network and CPU models are *fluid* models: a data transfer is a
quantity of bytes drained at a rate that changes whenever the set of
concurrent transfers changes, and an atomic compute step is a quantity of
work drained at a rate set by the processing power left over after
communication handling.  :class:`FluidPool` implements this pattern exactly
once so both models share it:

* tasks carry ``remaining`` work in arbitrary units,
* an *allocator* callback assigns a rate to every active task,
* rates are piecewise-constant: they are recomputed only when pool
  membership changes (or when an external coupling invalidates them),
* the pool schedules a single kernel event at the earliest completion time.

This is event-driven exact integration of piecewise-linear progress — no
time-stepping, which keeps large simulations cheap (the optimization guide's
"compute less" rule).

The allocator protocol (dirty-set contract)
-------------------------------------------

Allocators come in two flavours:

* a plain callable ``allocate(tasks)`` — the pool invokes it with the full
  task collection on every membership change (full recompute);
* a :class:`RateAllocator` object — the pool additionally tracks the *dirty
  set* of tasks added and removed since the last rate assignment and hands
  it to :meth:`RateAllocator.update`, so the allocator may recompute rates
  only for the tasks whose rates can actually have changed (e.g. flows
  sharing a link — directly or transitively — with the changed flow).

The contract an incremental allocator must implement:

* after ``update(tasks, added, removed)`` returns, every task in ``tasks``
  carries the same rate a full :meth:`RateAllocator.allocate` would assign
  (within float reassociation noise, bounded by ~1e-9 relative);
* ``removed`` tasks are no longer rate-bearing; the allocator must drop any
  internal bookkeeping it holds for them, even when ``tasks`` is empty;
* :meth:`RateAllocator.refresh` handles *external* invalidations (e.g. the
  CPU model's coupling to network activity) and may use the ``hint``
  argument to bound the recomputation;
* the full path (:meth:`RateAllocator._full`) must rebuild any internal
  index from scratch — it must never depend on the incremental bookkeeping
  being in sync, because verify mode and fallbacks run it mid-stream;
* construction with ``verify=True`` enables the exact-equivalence mode:
  every incremental update is shadowed by a full recomputation and any
  disagreement beyond ``VERIFY_RTOL`` raises — the mode the equivalence
  test-suite runs under.

Shared implementations of the two dirty-set geometries live next to the
models: :class:`repro.netmodel.base.StarFlowAllocator` (per-node indices,
single-hop dirty sets) and :class:`repro.netmodel.base.LinkComponentAllocator`
(link→flow index, BFS over connected components, cascade fallback) for
networks, and :class:`repro.cpumodel.base.NodeSlicedAllocator` (per-host
slice groups with cached available power) for CPU models.  New models
should subclass one of those rather than re-implementing the bookkeeping.

Sub-linear completion horizon
-----------------------------

The pool does **not** scan tasks to find the next completion.  Progress is
integrated lazily — each task records the remaining work and the timestamp
at which it was last synced, and the true remaining work is derived on
demand from the current rate — and completion times are indexed in a lazy
min-heap:

* assigning a task a new rate (via the ``task.rate`` setter) syncs its
  progress under the old rate and invalidates its heap entry;
* after the allocator runs, the pool pushes one fresh entry per re-rated
  task (``O(dirty · log n)``) and schedules the kernel event at the heap
  top;
* stale entries are discarded lazily when they surface at the top.

Together with an incremental allocator this makes the per-event cost of the
whole hot loop ``O(dirty · log n)`` instead of ``O(n)``.
:class:`HorizonStats` counts the real heap work plus the hypothetical cost
of the pre-heap linear scan, which ``benchmarks/bench_allocator_scaling.py``
uses to demonstrate the gap.

:class:`AllocatorStats` counts full recomputations, incremental updates,
full-recompute *fallbacks* (e.g. max-min cascades whose warm-start prefix
check failed), warm starts, verify-mode shadow recomputes, and per-task
rate assignments.

Documentation: ``docs/allocator_protocol.md`` is the contract (dirty
sets, the shared geometry bases, the warm-start invariants);
``docs/performance.md`` is the design and measurement story (solver
complexity, counters, the scaling bench).
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Any, Callable, Collection, Optional, Sequence, Union

from repro.des.event_queue import EventHandle
from repro.des.kernel import Kernel
from repro.errors import SimulationError

#: Relative tolerance under which remaining work counts as drained.
_COMPLETION_RTOL = 1e-9
#: Absolute tolerance for tasks whose total work is tiny or zero.
_COMPLETION_ATOL = 1e-12

#: Tolerance of the exact-equivalence (``verify=True``) shadow check.
VERIFY_RTOL = 1e-9

#: Below this heap size, stale entries are too cheap to be worth compacting.
_COMPACT_MIN_ENTRIES = 64


class FluidTask:
    """A quantity of work drained at a pool-assigned rate.

    Parameters
    ----------
    work:
        Total work in pool units (bytes for networks, seconds-at-full-power
        for CPU models).  Zero-work tasks complete immediately on admission.
    on_complete:
        Callback invoked (with the task) when the work is fully drained.
    tag:
        Arbitrary payload for the allocator (e.g. source/destination node).

    Progress is integrated lazily: ``_remaining`` holds the remaining work
    as of ``_synced_at``; the :attr:`remaining` property derives the current
    value from the rate, so the pool never has to touch untouched tasks.
    """

    __slots__ = (
        "work",
        "_remaining",
        "_synced_at",
        "_rate",
        "_entry",
        "_seq",
        "on_complete",
        "tag",
        "pool",
        "started_at",
        "finished_at",
    )

    def __init__(
        self,
        work: float,
        on_complete: Callable[["FluidTask"], None],
        tag: Any = None,
    ) -> None:
        if work < 0.0 or not math.isfinite(work):
            raise SimulationError(f"task work must be finite and >= 0, got {work!r}")
        self.work = float(work)
        self._remaining = float(work)
        self._synced_at = math.nan
        self._rate = 0.0
        #: id of this task's live horizon-heap entry (None = no entry)
        self._entry: Optional[int] = None
        #: pool admission order — the heap tie-breaker, so simultaneous
        #: completions fire in the same deterministic order the pre-heap
        #: linear scan produced
        self._seq = 0
        self.on_complete = on_complete
        self.tag = tag
        self.pool: Optional["FluidPool"] = None
        self.started_at: float = math.nan
        self.finished_at: float = math.nan

    # ------------------------------------------------------------- progress
    @property
    def remaining(self) -> float:
        """Remaining work, lazily integrated to the pool's current time."""
        if self.pool is not None and self._rate > 0.0:
            dt = self.pool.kernel.now - self._synced_at
            if dt > 0.0:
                return max(0.0, self._remaining - self._rate * dt)
        return self._remaining

    @remaining.setter
    def remaining(self, value: float) -> None:
        self._remaining = value
        if self.pool is not None:
            self._synced_at = self.pool.kernel.now
            # The completion time encoded in the heap entry is now wrong.
            self.pool._note_rated(self)

    def _sync(self, now: float) -> None:
        """Materialize the lazy progress integral at ``now``."""
        if self._rate > 0.0:
            dt = now - self._synced_at
            if dt > 0.0:
                self._remaining = max(0.0, self._remaining - self._rate * dt)
        self._synced_at = now

    @property
    def rate(self) -> float:
        """Current drain rate (pool units per second)."""
        return self._rate

    @rate.setter
    def rate(self, value: float) -> None:
        pool = self.pool
        if pool is None:
            self._rate = value
            return
        if not (math.isfinite(value) and value >= 0.0):
            raise SimulationError(
                f"pool {pool.name!r}: allocator set invalid rate {value!r}"
            )
        if value == self._rate and (value == 0.0 or self._entry is not None):
            # Same rate with a live entry (or starved) → the existing heap
            # state stays exact; nothing to invalidate.  A same-rate task
            # *without* an entry (e.g. re-admitted after removal with its
            # old rate still set) must still be indexed.
            return
        self._sync(pool.kernel.now)
        self._rate = value
        pool._note_rated(self)

    @property
    def active(self) -> bool:
        """Whether the task is currently admitted to a pool."""
        return self.pool is not None

    def _drained(self) -> bool:
        return self.remaining <= max(
            _COMPLETION_ATOL, self.work * _COMPLETION_RTOL
        )

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"FluidTask(work={self.work!r}, remaining={self.remaining!r}, "
            f"rate={self.rate!r}, tag={self.tag!r})"
        )


#: A legacy allocator receives the active tasks and sets ``task.rate`` on each.
Allocator = Callable[[Collection[FluidTask]], None]


@dataclass
class AllocatorStats:
    """Work counters for allocator benchmarking and regression tests.

    ``full_fallbacks`` and ``warm_starts`` partition the cascade events of
    a component allocator: a cascade either warm-starts (the previous
    solve's saturation prefix replays, only the suffix is re-solved and
    counted in ``rates_computed``) or falls back to a full solve (every
    rate is recomputed).  See ``docs/allocator_protocol.md``.
    """

    #: full recomputations over the whole task list (pool-requested)
    full_allocations: int = 0
    #: incremental (dirty-set-bounded) updates
    incremental_updates: int = 0
    #: incremental updates that *fell back* to a real full recompute
    #: (e.g. a max-min cascade whose warm-start prefix check failed, or
    #: baseline mode)
    full_fallbacks: int = 0
    #: cascades resolved by replaying the previous solve's saturation
    #: prefix and re-solving only the suffix (never also counted as a
    #: fallback)
    warm_starts: int = 0
    #: rounds *inserted* into the cached saturation order during a warm
    #: replay (an affected link undercut a cached round and was frozen in
    #: place instead of ending the prefix) — see ``warm_insert``
    warm_inserts: int = 0
    #: component-restricted re-solves that *repaired* the cached
    #: saturation order in place (dirty component's rounds replaced and
    #: share-merged) instead of invalidating it
    warm_merges: int = 0
    #: verify-mode shadow recomputes (diagnostics only — not real work the
    #: production configuration would perform)
    verify_recomputes: int = 0
    #: external-coupling refreshes
    refreshes: int = 0
    #: per-task rate assignments actually performed
    rates_computed: int = 0

    def reset(self) -> None:
        self.full_allocations = 0
        self.incremental_updates = 0
        self.full_fallbacks = 0
        self.warm_starts = 0
        self.warm_inserts = 0
        self.warm_merges = 0
        self.verify_recomputes = 0
        self.refreshes = 0
        self.rates_computed = 0


@dataclass
class HorizonStats:
    """Cost counters of the completion-horizon index.

    ``scan_cost`` accumulates what the pre-heap implementation would have
    paid: one pass over every active task at each rate assignment and at
    each horizon event.  Comparing it with ``heap_pushes + heap_pops``
    demonstrates the sub-linear hot loop.
    """

    #: horizon-heap entries pushed
    heap_pushes: int = 0
    #: horizon-heap entries popped (valid and stale)
    heap_pops: int = 0
    #: popped entries that were stale (invalidated by a rate change/removal)
    stale_discards: int = 0
    #: horizon events fired
    events: int = 0
    #: hypothetical cost of the O(n)-scan baseline over the same run
    scan_cost: int = 0
    #: heap rebuilds triggered by the stale-entry fraction exceeding 3/4
    #: (each costs O(live entries) and bounds heap memory within a burst)
    compactions: int = 0

    @property
    def heap_ops(self) -> int:
        """Total real horizon work (pushes + pops)."""
        return self.heap_pushes + self.heap_pops

    def reset(self) -> None:
        self.heap_pushes = 0
        self.heap_pops = 0
        self.stale_discards = 0
        self.events = 0
        self.scan_cost = 0
        self.compactions = 0


def pool_horizon_stats(model: Any) -> Optional[HorizonStats]:
    """The :class:`HorizonStats` of a model's backing :class:`FluidPool`.

    Resource models conventionally keep their pool in ``_pool``; models
    without one (e.g. the contention-free analytic network) yield ``None``.
    Shared by the ``horizon_stats`` properties on the network/CPU model
    bases.
    """
    pool = getattr(model, "_pool", None)
    return None if pool is None else pool.horizon


class RateAllocator:
    """Base class for allocators that can update rates incrementally.

    Subclasses must implement :meth:`_full` (full recompute) and may
    override :meth:`_update` / :meth:`_refresh` with dirty-set-bounded
    versions.  The public entry points wrap those with stats accounting and
    the ``verify=True`` exact-equivalence shadow check.
    """

    def __init__(self, verify: bool = False) -> None:
        self.verify = verify
        self.stats = AllocatorStats()

    # ---------------------------------------------------------- subclass api
    def _full(self, tasks: Collection[FluidTask]) -> None:
        """Assign a rate to every task (full recompute)."""
        raise NotImplementedError

    def _update(
        self,
        tasks: Collection[FluidTask],
        added: Sequence[FluidTask],
        removed: Sequence[FluidTask],
    ) -> None:
        """Incremental membership update; default falls back to full."""
        self._full(tasks)
        self.stats.rates_computed += len(tasks)

    def _refresh(self, tasks: Collection[FluidTask], hint: Any = None) -> None:
        """External invalidation (cross-pool coupling); default full."""
        self._full(tasks)
        self.stats.rates_computed += len(tasks)

    # ------------------------------------------------------------ pool entry
    def allocate(self, tasks: Collection[FluidTask]) -> None:
        """Assign every task's rate from scratch — O(n) at minimum.

        The non-incremental entry point (legacy callables, baseline
        mode); counted in ``stats.full_allocations``.
        """
        self.stats.full_allocations += 1
        self.stats.rates_computed += len(tasks)
        self._full(tasks)

    def update(
        self,
        tasks: Collection[FluidTask],
        added: Sequence[FluidTask],
        removed: Sequence[FluidTask],
    ) -> None:
        """Deliver a membership delta (thin wrapper over :meth:`apply`).

        Dirty-set contract: on return every task in ``tasks`` carries the
        rate a full recompute would assign (within ~1e-9 relative), and
        all bookkeeping for ``removed`` tasks is dropped.  Cost is
        implementation-defined but bounded by the dirty set for the
        shared geometry bases (see ``docs/allocator_protocol.md``), not
        by ``len(tasks)``.
        """
        self.apply(tasks, added, removed)

    def refresh(self, tasks: Collection[FluidTask], hint: Any = None) -> None:
        """Deliver an external refresh (thin wrapper over :meth:`apply`).

        ``hint`` bounds the recomputation (e.g. the node ids whose
        transfer counts changed); ``None`` means unknown — refresh
        everything the law depends on.
        """
        self.apply(tasks, (), (), refresh=True, hint=hint)

    def apply(
        self,
        tasks: Collection[FluidTask],
        added: Sequence[FluidTask],
        removed: Sequence[FluidTask],
        refresh: bool = False,
        hint: Any = None,
    ) -> None:
        """Deliver pending membership deltas and/or an external refresh.

        The pool's entry point: when a membership change and an external
        invalidation land in the same rate assignment (e.g. a completed
        compute step's callback submits a transfer, whose activity
        notification forces a power refresh), the verify-mode shadow must
        run once, *after* both are applied — mid-stream the incremental
        state legitimately differs from a full recompute that reads the
        already-changed external state.
        """
        if added or removed:
            self.stats.incremental_updates += 1
            self._update(tasks, added, removed)
        if refresh and tasks:
            self.stats.refreshes += 1
            self._refresh(tasks, hint)
        if self.verify and tasks and (added or removed or refresh):
            # Nothing delivered → rates unchanged → shadowing would be a
            # pure-waste O(n) recompute (and would over-count the counter).
            self._verify_equivalence(tasks)

    # -------------------------------------------------------------- internals
    def _verify_equivalence(self, tasks: Collection[FluidTask]) -> None:
        """Shadow every incremental result with a full recompute."""
        self.stats.verify_recomputes += 1
        incremental = [t.rate for t in tasks]
        self._full(tasks)
        for task, inc_rate in zip(tasks, incremental):
            scale = max(abs(task.rate), abs(inc_rate), 1.0)
            if abs(task.rate - inc_rate) > VERIFY_RTOL * scale:
                raise SimulationError(
                    f"incremental allocation diverged from full recompute: "
                    f"task {task!r} incremental={inc_rate!r} full={task.rate!r}"
                )


class FullRecomputeAllocator(RateAllocator):
    """Mixin forcing every update/refresh through the full recompute.

    Mix in *before* an incremental allocator class to get its full path on
    every change — the benchmark baseline mode.
    """

    def _update(
        self,
        tasks: Collection[FluidTask],
        added: Sequence[FluidTask],
        removed: Sequence[FluidTask],
    ) -> None:
        self.stats.full_fallbacks += 1
        self.stats.rates_computed += len(tasks)
        self._full(tasks)

    def _refresh(self, tasks: Collection[FluidTask], hint: Any = None) -> None:
        self.stats.full_fallbacks += 1
        self.stats.rates_computed += len(tasks)
        self._full(tasks)


class _CallableAllocator(RateAllocator):
    """Adapter giving legacy callable allocators the object interface."""

    def __init__(self, fn: Allocator) -> None:
        super().__init__(verify=False)
        self._fn = fn

    def _full(self, tasks: Collection[FluidTask]) -> None:
        self._fn(tasks)


class FluidPool:
    """A set of fluid tasks sharing capacity under an allocator policy.

    The allocator must assign a **non-negative finite** rate to every task;
    a zero rate starves the task (legal — e.g. a compute step on a node whose
    power is fully consumed by communication handling).

    ``allocator`` may be a plain callable (full recompute on every change)
    or a :class:`RateAllocator`, in which case the pool tracks the dirty set
    of added/removed tasks between rate assignments and dispatches
    membership changes through :meth:`RateAllocator.update`.

    Completion times are indexed in a lazy min-heap (see the module
    docstring); :attr:`horizon` exposes its work counters.
    """

    def __init__(
        self,
        kernel: Kernel,
        allocator: Union[Allocator, RateAllocator],
        name: str = "",
    ) -> None:
        self.kernel = kernel
        if isinstance(allocator, RateAllocator):
            self.allocator = allocator
            self._incremental = True
        else:
            self.allocator = _CallableAllocator(allocator)
            self._incremental = False
        self.name = name or "fluid-pool"
        # Insertion-ordered membership (dict-as-set) for O(1) removal while
        # preserving the deterministic iteration order allocators rely on.
        self._tasks: dict[FluidTask, None] = {}
        self._last_update = kernel.now
        self._event: Optional[EventHandle] = None
        # Dirty set: membership deltas since the allocator last ran.
        self._added: list[FluidTask] = []
        self._removed: list[FluidTask] = []
        # Tasks whose rate changed during the current allocator run and
        # therefore need a fresh horizon-heap entry.
        self._retimed: dict[FluidTask, None] = {}
        # Lazy min-heap of (finish_time, admission_seq, entry_id, task); an
        # entry is live iff the task is still in this pool and
        # task._entry == entry_id.  Ties on finish time resolve by admission
        # order — the order the pre-heap linear scan iterated — keeping
        # completion-callback order deterministic and independent of the
        # (possibly hash-ordered) order in which an allocator assigns rates.
        self._heap: list[tuple[float, int, int, FluidTask]] = []
        self._entry_counter = 0
        self._admission_counter = 0
        #: horizon-index work counters (benchmarks, regression tests)
        self.horizon = HorizonStats()
        #: total completed work, for conservation checks in tests
        self.completed_work = 0.0
        self.completed_tasks = 0

    # ------------------------------------------------------------ membership
    @property
    def tasks(self) -> tuple[FluidTask, ...]:
        """Snapshot of the active tasks."""
        return tuple(self._tasks)

    def add(self, task: FluidTask) -> FluidTask:
        """Admit a task; zero-work tasks complete immediately (synchronously)."""
        if task.pool is not None:
            raise SimulationError("task is already admitted to a pool")
        self._advance()
        task.pool = self
        task.started_at = self.kernel.now
        task._synced_at = self.kernel.now
        self._admission_counter += 1
        task._seq = self._admission_counter
        if task._drained():
            # Complete without ever occupying capacity.  Still credit the
            # (possibly tiny but positive) work so conservation holds.
            task.pool = None
            task._remaining = 0.0
            task.finished_at = self.kernel.now
            self.completed_work += task.work
            self.completed_tasks += 1
            task.on_complete(task)
            # Membership may have changed re-entrantly; reallocate anyway.
            self._reallocate()
            return task
        self._tasks[task] = None
        self._added.append(task)
        self._reallocate()
        return task

    def remove(self, task: FluidTask) -> None:
        """Withdraw a task before completion (e.g. a cancelled transfer)."""
        if task.pool is not self:
            raise SimulationError("task is not admitted to this pool")
        self._advance()
        task._sync(self.kernel.now)
        del self._tasks[task]
        task.pool = None
        task._entry = None
        self._retimed.pop(task, None)
        self._note_removed(task)
        self._reallocate()

    def reallocate(self, hint: Any = None) -> None:
        """Force a rate recomputation (for cross-pool couplings).

        The CPU model calls this when the *network* pool's membership
        changes, because communication handling consumes processing power.
        ``hint`` is forwarded to an incremental allocator's
        :meth:`RateAllocator.refresh` so it can bound the recomputation
        (e.g. to the nodes whose transfer counts changed).
        """
        self._advance()
        self._reallocate(refresh=True, hint=hint)

    def peek_horizon(self) -> float:
        """Absolute completion time of the earliest live heap entry.

        ``math.inf`` when every task is starved (no live entries).  Test
        hook: equals ``now + min(remaining / rate)`` over rated tasks.
        """
        top = self._peek_valid()
        return math.inf if top is None else top[0]

    # -------------------------------------------------------------- internals
    def _note_removed(self, task: FluidTask) -> None:
        """Record a departure in the dirty set (cancelling a pending add)."""
        if task in self._added:
            self._added.remove(task)
        else:
            self._removed.append(task)

    def _note_rated(self, task: FluidTask) -> None:
        """Record a rate change; the entry is re-pushed after the allocator."""
        self._retimed[task] = None

    def _advance(self) -> None:
        """Advance the pool clock (progress itself is integrated lazily)."""
        now = self.kernel.now
        if now < self._last_update:  # pragma: no cover - defensive
            raise SimulationError(f"pool {self.name!r}: time went backwards")
        self._last_update = now

    def _reallocate(self, refresh: bool = False, hint: Any = None) -> None:
        if self._event is not None:
            self.kernel.cancel(self._event)
            self._event = None
        added, removed = self._added, self._removed
        if added or removed:
            self._added, self._removed = [], []
        if not self._tasks and not (self._incremental and (added or removed)):
            self._retimed.clear()
            return
        if self._incremental:
            # Deliver pending membership deltas and any refresh in one
            # shot (the allocator applies deltas first so its internal
            # indices are current, and verifies once at the end).
            self.allocator.apply(
                self._tasks, added, removed, refresh=refresh, hint=hint
            )
        else:
            self.allocator.allocate(self._tasks)
        # What the pre-heap implementation would have paid right here: one
        # validation-plus-horizon scan over every active task.
        self.horizon.scan_cost += len(self._tasks)
        if not self._tasks:
            self._retimed.clear()
            return
        self._flush_retimed()
        self._schedule_next()

    def _flush_retimed(self) -> None:
        """Push fresh heap entries for every task the allocator re-rated."""
        if not self._retimed:
            return
        retimed, self._retimed = self._retimed, {}
        for task in retimed:
            if task.pool is not self:
                continue
            if task._rate > 0.0:
                self._entry_counter += 1
                task._entry = self._entry_counter
                finish = task._synced_at + task._remaining / task._rate
                heapq.heappush(
                    self._heap, (finish, task._seq, self._entry_counter, task)
                )
                self.horizon.heap_pushes += 1
            else:
                task._entry = None
        # Compaction: within one event burst the heap never pops below its
        # high-water mark of stale entries; rebuild it when stale entries
        # dominate.  Live entries number at most len(tasks) (one per rated
        # task), so heap > 4 * len(tasks) implies a stale fraction > 3/4.
        # Amortized O(1): a rebuild costs O(live) and at least 3 * live
        # pushes must happen before the next one can trigger.
        if (
            len(self._heap) >= _COMPACT_MIN_ENTRIES
            and len(self._heap) > 4 * len(self._tasks)
        ):
            self._compact_heap()

    def _compact_heap(self) -> None:
        """Drop every stale heap entry and re-heapify the live ones."""
        live = [
            entry
            for entry in self._heap
            if entry[3].pool is self and entry[3]._entry == entry[2]
        ]
        # Each discarded entry would otherwise have cost one counted pop
        # when it surfaced; charge the rebuild the same way so heap_ops
        # keeps reflecting real horizon work (and stale_discards stays a
        # subset of heap_pops, as documented).
        discarded = len(self._heap) - len(live)
        self.horizon.heap_pops += discarded
        self.horizon.stale_discards += discarded
        heapq.heapify(live)
        self._heap = live
        self.horizon.compactions += 1

    def _peek_valid(self) -> Optional[tuple[float, int, int, FluidTask]]:
        """Top live heap entry, lazily discarding stale ones."""
        heap = self._heap
        while heap:
            _, _, entry_id, task = heap[0]
            if task.pool is self and task._entry == entry_id:
                return heap[0]
            heapq.heappop(heap)
            self.horizon.heap_pops += 1
            self.horizon.stale_discards += 1
        return None

    def _schedule_next(self) -> None:
        top = self._peek_valid()
        if top is None:
            # Every task is starved; progress resumes only on membership
            # change.
            return
        now = self.kernel.now
        # The horizon must *advance the clock*: at large timestamps a tiny
        # residual's horizon can fall below the float64 resolution of
        # ``now``, and an event that fires at the same instant would drain
        # nothing and reschedule itself forever (a Zeno freeze).  Padding
        # to a few ulps of ``now`` overruns true completion by a relatively
        # negligible amount and keeps progress strictly monotone.
        min_step = max(_COMPLETION_ATOL, abs(now) * 1e-15)
        # Schedule at the *absolute* horizon, not by delay: ``now +
        # (finish - now)`` is not bit-equal to ``finish``, so a delay-based
        # event time would depend on when the last reschedule happened —
        # i.e. on what other tasks share the pool — breaking the
        # shard-partitioning determinism contract (a job's trajectory must
        # not depend on its pool-mates' event times).
        self._event = self.kernel.schedule_at(
            max(top[0], now + min_step), self._on_horizon
        )

    def _on_horizon(self) -> None:
        self._event = None
        self._advance()
        now = self.kernel.now
        self.horizon.events += 1
        finished: list[FluidTask] = []
        while True:
            top = self._peek_valid()
            if top is None or top[0] > now:
                break
            task = top[3]
            heapq.heappop(self._heap)
            self.horizon.heap_pops += 1
            task._entry = None
            if task._rate <= 0.0:
                # The rate was externally zeroed without a reallocate, so
                # the entry id was never superseded: the task is starved,
                # not finished (the pre-heap scan skipped zero rates too).
                self.horizon.stale_discards += 1
                continue
            task._sync(now)
            if task._drained():
                finished.append(task)
            elif now + task._remaining / task._rate == now:
                # Second Zeno guard: a task whose remaining horizon can no
                # longer advance the clock is complete for all purposes —
                # its residual is below the resolution of simulated time.
                finished.append(task)
            else:
                # Float drift left a real residual; re-index at the updated
                # completion time.  The min-step pad in ``_schedule_next``
                # keeps the clock advancing, so this cannot loop forever.
                self._entry_counter += 1
                task._entry = self._entry_counter
                heapq.heappush(
                    self._heap,
                    (
                        now + task._remaining / task._rate,
                        task._seq,
                        self._entry_counter,
                        task,
                    ),
                )
                self.horizon.heap_pushes += 1
        # The pre-heap implementation scanned every task here for drained
        # residuals; account the hypothetical cost for the benchmark.
        self.horizon.scan_cost += len(self._tasks)
        if not finished:
            self._schedule_next()
            return
        for task in finished:
            del self._tasks[task]
            task.pool = None
            self.completed_work += task.work
            self.completed_tasks += 1
            task._remaining = 0.0
            task.finished_at = now
            self._retimed.pop(task, None)
            self._note_removed(task)
        # Run completion callbacks *after* detaching all finished tasks so a
        # callback that admits new work sees a consistent pool.
        for task in finished:
            task.on_complete(task)
        self._advance()
        self._reallocate()

    def __len__(self) -> int:
        return len(self._tasks)
