"""Fluid (rate-based) task pools.

The paper's network and CPU models are *fluid* models: a data transfer is a
quantity of bytes drained at a rate that changes whenever the set of
concurrent transfers changes, and an atomic compute step is a quantity of
work drained at a rate set by the processing power left over after
communication handling.  :class:`FluidPool` implements this pattern exactly
once so both models share it:

* tasks carry ``remaining`` work in arbitrary units,
* an *allocator* callback assigns a rate to every active task,
* rates are piecewise-constant: they are recomputed only when pool
  membership changes (or when an external coupling invalidates them),
* the pool schedules a single kernel event at the earliest completion time.

This is event-driven exact integration of piecewise-linear progress — no
time-stepping, which keeps large simulations cheap (the optimization guide's
"compute less" rule).
"""

from __future__ import annotations

import math
from typing import Any, Callable, Optional

from repro.des.event_queue import EventHandle
from repro.des.kernel import Kernel
from repro.errors import SimulationError

#: Relative tolerance under which remaining work counts as drained.
_COMPLETION_RTOL = 1e-9
#: Absolute tolerance for tasks whose total work is tiny or zero.
_COMPLETION_ATOL = 1e-12


class FluidTask:
    """A quantity of work drained at a pool-assigned rate.

    Parameters
    ----------
    work:
        Total work in pool units (bytes for networks, seconds-at-full-power
        for CPU models).  Zero-work tasks complete immediately on admission.
    on_complete:
        Callback invoked (with the task) when the work is fully drained.
    tag:
        Arbitrary payload for the allocator (e.g. source/destination node).
    """

    __slots__ = ("work", "remaining", "rate", "on_complete", "tag", "pool", "started_at", "finished_at")

    def __init__(
        self,
        work: float,
        on_complete: Callable[["FluidTask"], None],
        tag: Any = None,
    ) -> None:
        if work < 0.0 or not math.isfinite(work):
            raise SimulationError(f"task work must be finite and >= 0, got {work!r}")
        self.work = float(work)
        self.remaining = float(work)
        self.rate = 0.0
        self.on_complete = on_complete
        self.tag = tag
        self.pool: Optional["FluidPool"] = None
        self.started_at: float = math.nan
        self.finished_at: float = math.nan

    @property
    def active(self) -> bool:
        """Whether the task is currently admitted to a pool."""
        return self.pool is not None

    def _drained(self) -> bool:
        return self.remaining <= max(
            _COMPLETION_ATOL, self.work * _COMPLETION_RTOL
        )

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"FluidTask(work={self.work!r}, remaining={self.remaining!r}, "
            f"rate={self.rate!r}, tag={self.tag!r})"
        )


#: An allocator receives the active tasks and must set ``task.rate`` on each.
Allocator = Callable[[list[FluidTask]], None]


class FluidPool:
    """A set of fluid tasks sharing capacity under an allocator policy.

    The allocator must assign a **non-negative finite** rate to every task;
    a zero rate starves the task (legal — e.g. a compute step on a node whose
    power is fully consumed by communication handling).
    """

    def __init__(self, kernel: Kernel, allocator: Allocator, name: str = "") -> None:
        self.kernel = kernel
        self.allocator = allocator
        self.name = name or "fluid-pool"
        self._tasks: list[FluidTask] = []
        self._last_update = kernel.now
        self._event: Optional[EventHandle] = None
        #: total completed work, for conservation checks in tests
        self.completed_work = 0.0
        self.completed_tasks = 0

    # ------------------------------------------------------------ membership
    @property
    def tasks(self) -> tuple[FluidTask, ...]:
        """Snapshot of the active tasks."""
        return tuple(self._tasks)

    def add(self, task: FluidTask) -> FluidTask:
        """Admit a task; zero-work tasks complete immediately (synchronously)."""
        if task.pool is not None:
            raise SimulationError("task is already admitted to a pool")
        self._advance()
        task.pool = self
        task.started_at = self.kernel.now
        if task._drained():
            # Complete without ever occupying capacity.
            task.pool = None
            task.remaining = 0.0
            task.finished_at = self.kernel.now
            self.completed_tasks += 1
            task.on_complete(task)
            # Membership may have changed re-entrantly; reallocate anyway.
            self._reallocate()
            return task
        self._tasks.append(task)
        self._reallocate()
        return task

    def remove(self, task: FluidTask) -> None:
        """Withdraw a task before completion (e.g. a cancelled transfer)."""
        if task.pool is not self:
            raise SimulationError("task is not admitted to this pool")
        self._advance()
        self._tasks.remove(task)
        task.pool = None
        self._reallocate()

    def reallocate(self) -> None:
        """Force a rate recomputation (for cross-pool couplings).

        The CPU model calls this when the *network* pool's membership
        changes, because communication handling consumes processing power.
        """
        self._advance()
        self._reallocate()

    # -------------------------------------------------------------- internals
    def _advance(self) -> None:
        """Integrate progress since the last rate assignment."""
        now = self.kernel.now
        dt = now - self._last_update
        if dt < 0.0:  # pragma: no cover - defensive
            raise SimulationError(f"pool {self.name!r}: time went backwards")
        if dt > 0.0:
            for task in self._tasks:
                if task.rate > 0.0:
                    task.remaining = max(0.0, task.remaining - task.rate * dt)
        self._last_update = now

    def _reallocate(self) -> None:
        if self._event is not None:
            self.kernel.cancel(self._event)
            self._event = None
        if not self._tasks:
            return
        self.allocator(self._tasks)
        horizon = math.inf
        for task in self._tasks:
            if not math.isfinite(task.rate) or task.rate < 0.0:
                raise SimulationError(
                    f"pool {self.name!r}: allocator set invalid rate {task.rate!r}"
                )
            if task.rate > 0.0:
                horizon = min(horizon, task.remaining / task.rate)
        if math.isinf(horizon):
            # Every task is starved; progress resumes only on membership change.
            return
        # The horizon must *advance the clock*: at large timestamps a tiny
        # residual's horizon can fall below the float64 resolution of
        # ``now``, and an event that fires at the same instant would drain
        # nothing and reschedule itself forever (a Zeno freeze).  Padding
        # to a few ulps of ``now`` overruns true completion by a relatively
        # negligible amount and keeps progress strictly monotone.
        min_step = max(_COMPLETION_ATOL, abs(self.kernel.now) * 1e-15)
        self._event = self.kernel.schedule(max(horizon, min_step), self._on_horizon)

    def _on_horizon(self) -> None:
        self._event = None
        self._advance()
        finished = [t for t in self._tasks if t._drained()]
        if not finished:
            # Second Zeno guard: a task whose remaining horizon can no
            # longer advance the clock is complete for all purposes —
            # its residual is below the resolution of simulated time.
            now = self.kernel.now
            finished = [
                t
                for t in self._tasks
                if t.rate > 0.0 and now + t.remaining / t.rate == now
            ]
            if not finished:
                self._reallocate()
                return
        for task in finished:
            self._tasks.remove(task)
            task.pool = None
            self.completed_work += task.work
            self.completed_tasks += 1
            task.remaining = 0.0
            task.finished_at = self.kernel.now
        # Run completion callbacks *after* detaching all finished tasks so a
        # callback that admits new work sees a consistent pool.
        for task in finished:
            task.on_complete(task)
        self._advance()
        self._reallocate()

    def __len__(self) -> int:
        return len(self._tasks)
