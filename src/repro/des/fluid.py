"""Fluid (rate-based) task pools.

The paper's network and CPU models are *fluid* models: a data transfer is a
quantity of bytes drained at a rate that changes whenever the set of
concurrent transfers changes, and an atomic compute step is a quantity of
work drained at a rate set by the processing power left over after
communication handling.  :class:`FluidPool` implements this pattern exactly
once so both models share it:

* tasks carry ``remaining`` work in arbitrary units,
* an *allocator* callback assigns a rate to every active task,
* rates are piecewise-constant: they are recomputed only when pool
  membership changes (or when an external coupling invalidates them),
* the pool schedules a single kernel event at the earliest completion time.

This is event-driven exact integration of piecewise-linear progress — no
time-stepping, which keeps large simulations cheap (the optimization guide's
"compute less" rule).

Incremental allocation contract
-------------------------------

Allocators come in two flavours:

* a plain callable ``allocate(tasks)`` — the pool invokes it with the full
  task list on every membership change (full recompute);
* a :class:`RateAllocator` object — the pool additionally tracks the *dirty
  set* of tasks added and removed since the last rate assignment and hands
  it to :meth:`RateAllocator.update`, so the allocator may recompute rates
  only for the tasks whose rates can actually have changed (e.g. flows
  sharing a link — directly or transitively — with the changed flow).

The contract for an incremental allocator is:

* after ``update(tasks, added, removed)`` returns, every task in ``tasks``
  carries the same rate a full :meth:`RateAllocator.allocate` would assign
  (within float reassociation noise, bounded by ~1e-9 relative);
* ``removed`` tasks are no longer rate-bearing; the allocator must drop any
  internal bookkeeping it holds for them, even when ``tasks`` is empty;
* :meth:`RateAllocator.refresh` handles *external* invalidations (e.g. the
  CPU model's coupling to network activity) and may use the ``hint``
  argument to bound the recomputation;
* construction with ``verify=True`` enables the exact-equivalence mode:
  every incremental update is shadowed by a full recomputation and any
  disagreement beyond ``VERIFY_RTOL`` raises — the mode the equivalence
  test-suite runs under.

:class:`AllocatorStats` counts full recomputations, incremental updates and
per-task rate assignments, which ``benchmarks/bench_allocator_scaling.py``
uses to demonstrate sub-linear allocator work per membership change.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence, Union

from repro.des.event_queue import EventHandle
from repro.des.kernel import Kernel
from repro.errors import SimulationError

#: Relative tolerance under which remaining work counts as drained.
_COMPLETION_RTOL = 1e-9
#: Absolute tolerance for tasks whose total work is tiny or zero.
_COMPLETION_ATOL = 1e-12

#: Tolerance of the exact-equivalence (``verify=True``) shadow check.
VERIFY_RTOL = 1e-9


class FluidTask:
    """A quantity of work drained at a pool-assigned rate.

    Parameters
    ----------
    work:
        Total work in pool units (bytes for networks, seconds-at-full-power
        for CPU models).  Zero-work tasks complete immediately on admission.
    on_complete:
        Callback invoked (with the task) when the work is fully drained.
    tag:
        Arbitrary payload for the allocator (e.g. source/destination node).
    """

    __slots__ = ("work", "remaining", "rate", "on_complete", "tag", "pool", "started_at", "finished_at")

    def __init__(
        self,
        work: float,
        on_complete: Callable[["FluidTask"], None],
        tag: Any = None,
    ) -> None:
        if work < 0.0 or not math.isfinite(work):
            raise SimulationError(f"task work must be finite and >= 0, got {work!r}")
        self.work = float(work)
        self.remaining = float(work)
        self.rate = 0.0
        self.on_complete = on_complete
        self.tag = tag
        self.pool: Optional["FluidPool"] = None
        self.started_at: float = math.nan
        self.finished_at: float = math.nan

    @property
    def active(self) -> bool:
        """Whether the task is currently admitted to a pool."""
        return self.pool is not None

    def _drained(self) -> bool:
        return self.remaining <= max(
            _COMPLETION_ATOL, self.work * _COMPLETION_RTOL
        )

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"FluidTask(work={self.work!r}, remaining={self.remaining!r}, "
            f"rate={self.rate!r}, tag={self.tag!r})"
        )


#: A legacy allocator receives the active tasks and sets ``task.rate`` on each.
Allocator = Callable[[list[FluidTask]], None]


@dataclass
class AllocatorStats:
    """Work counters for allocator benchmarking and regression tests."""

    #: full recomputations over the whole task list
    full_allocations: int = 0
    #: incremental (dirty-set-bounded) updates
    incremental_updates: int = 0
    #: external-coupling refreshes
    refreshes: int = 0
    #: per-task rate assignments actually performed
    rates_computed: int = 0

    def reset(self) -> None:
        self.full_allocations = 0
        self.incremental_updates = 0
        self.refreshes = 0
        self.rates_computed = 0


class RateAllocator:
    """Base class for allocators that can update rates incrementally.

    Subclasses must implement :meth:`_full` (full recompute) and may
    override :meth:`_update` / :meth:`_refresh` with dirty-set-bounded
    versions.  The public entry points wrap those with stats accounting and
    the ``verify=True`` exact-equivalence shadow check.
    """

    def __init__(self, verify: bool = False) -> None:
        self.verify = verify
        self.stats = AllocatorStats()

    # ---------------------------------------------------------- subclass api
    def _full(self, tasks: list[FluidTask]) -> None:
        """Assign a rate to every task (full recompute)."""
        raise NotImplementedError

    def _update(
        self,
        tasks: list[FluidTask],
        added: Sequence[FluidTask],
        removed: Sequence[FluidTask],
    ) -> None:
        """Incremental membership update; default falls back to full."""
        self._full(tasks)
        self.stats.rates_computed += len(tasks)

    def _refresh(self, tasks: list[FluidTask], hint: Any = None) -> None:
        """External invalidation (cross-pool coupling); default full."""
        self._full(tasks)
        self.stats.rates_computed += len(tasks)

    # ------------------------------------------------------------ pool entry
    def allocate(self, tasks: list[FluidTask]) -> None:
        self.stats.full_allocations += 1
        self.stats.rates_computed += len(tasks)
        self._full(tasks)

    def update(
        self,
        tasks: list[FluidTask],
        added: Sequence[FluidTask],
        removed: Sequence[FluidTask],
    ) -> None:
        self.stats.incremental_updates += 1
        self._update(tasks, added, removed)
        if self.verify:
            self._verify_equivalence(tasks)

    def refresh(self, tasks: list[FluidTask], hint: Any = None) -> None:
        self.stats.refreshes += 1
        self._refresh(tasks, hint)
        if self.verify:
            self._verify_equivalence(tasks)

    # -------------------------------------------------------------- internals
    def _verify_equivalence(self, tasks: list[FluidTask]) -> None:
        """Shadow every incremental result with a full recompute."""
        incremental = [t.rate for t in tasks]
        self._full(tasks)
        for task, inc_rate in zip(tasks, incremental):
            scale = max(abs(task.rate), abs(inc_rate), 1.0)
            if abs(task.rate - inc_rate) > VERIFY_RTOL * scale:
                raise SimulationError(
                    f"incremental allocation diverged from full recompute: "
                    f"task {task!r} incremental={inc_rate!r} full={task.rate!r}"
                )


class FullRecomputeAllocator(RateAllocator):
    """Mixin forcing every update/refresh through the full recompute.

    Mix in *before* an incremental allocator class to get its full path on
    every change — the benchmark baseline mode.
    """

    def _update(
        self,
        tasks: list[FluidTask],
        added: Sequence[FluidTask],
        removed: Sequence[FluidTask],
    ) -> None:
        self.stats.rates_computed += len(tasks)
        self._full(tasks)

    def _refresh(self, tasks: list[FluidTask], hint: Any = None) -> None:
        self.stats.rates_computed += len(tasks)
        self._full(tasks)


class _CallableAllocator(RateAllocator):
    """Adapter giving legacy callable allocators the object interface."""

    def __init__(self, fn: Allocator) -> None:
        super().__init__(verify=False)
        self._fn = fn

    def _full(self, tasks: list[FluidTask]) -> None:
        self._fn(tasks)


class FluidPool:
    """A set of fluid tasks sharing capacity under an allocator policy.

    The allocator must assign a **non-negative finite** rate to every task;
    a zero rate starves the task (legal — e.g. a compute step on a node whose
    power is fully consumed by communication handling).

    ``allocator`` may be a plain callable (full recompute on every change)
    or a :class:`RateAllocator`, in which case the pool tracks the dirty set
    of added/removed tasks between rate assignments and dispatches
    membership changes through :meth:`RateAllocator.update`.
    """

    def __init__(
        self,
        kernel: Kernel,
        allocator: Union[Allocator, RateAllocator],
        name: str = "",
    ) -> None:
        self.kernel = kernel
        if isinstance(allocator, RateAllocator):
            self.allocator = allocator
            self._incremental = True
        else:
            self.allocator = _CallableAllocator(allocator)
            self._incremental = False
        self.name = name or "fluid-pool"
        self._tasks: list[FluidTask] = []
        self._last_update = kernel.now
        self._event: Optional[EventHandle] = None
        # Dirty set: membership deltas since the allocator last ran.
        self._added: list[FluidTask] = []
        self._removed: list[FluidTask] = []
        #: total completed work, for conservation checks in tests
        self.completed_work = 0.0
        self.completed_tasks = 0

    # ------------------------------------------------------------ membership
    @property
    def tasks(self) -> tuple[FluidTask, ...]:
        """Snapshot of the active tasks."""
        return tuple(self._tasks)

    def add(self, task: FluidTask) -> FluidTask:
        """Admit a task; zero-work tasks complete immediately (synchronously)."""
        if task.pool is not None:
            raise SimulationError("task is already admitted to a pool")
        self._advance()
        task.pool = self
        task.started_at = self.kernel.now
        if task._drained():
            # Complete without ever occupying capacity.  Still credit the
            # (possibly tiny but positive) work so conservation holds.
            task.pool = None
            task.remaining = 0.0
            task.finished_at = self.kernel.now
            self.completed_work += task.work
            self.completed_tasks += 1
            task.on_complete(task)
            # Membership may have changed re-entrantly; reallocate anyway.
            self._reallocate()
            return task
        self._tasks.append(task)
        self._added.append(task)
        self._reallocate()
        return task

    def remove(self, task: FluidTask) -> None:
        """Withdraw a task before completion (e.g. a cancelled transfer)."""
        if task.pool is not self:
            raise SimulationError("task is not admitted to this pool")
        self._advance()
        self._tasks.remove(task)
        task.pool = None
        self._note_removed(task)
        self._reallocate()

    def reallocate(self, hint: Any = None) -> None:
        """Force a rate recomputation (for cross-pool couplings).

        The CPU model calls this when the *network* pool's membership
        changes, because communication handling consumes processing power.
        ``hint`` is forwarded to an incremental allocator's
        :meth:`RateAllocator.refresh` so it can bound the recomputation
        (e.g. to the nodes whose transfer counts changed).
        """
        self._advance()
        self._reallocate(refresh=True, hint=hint)

    # -------------------------------------------------------------- internals
    def _note_removed(self, task: FluidTask) -> None:
        """Record a departure in the dirty set (cancelling a pending add)."""
        if task in self._added:
            self._added.remove(task)
        else:
            self._removed.append(task)

    def _advance(self) -> None:
        """Integrate progress since the last rate assignment."""
        now = self.kernel.now
        dt = now - self._last_update
        if dt < 0.0:  # pragma: no cover - defensive
            raise SimulationError(f"pool {self.name!r}: time went backwards")
        if dt > 0.0:
            for task in self._tasks:
                if task.rate > 0.0:
                    task.remaining = max(0.0, task.remaining - task.rate * dt)
        self._last_update = now

    def _reallocate(self, refresh: bool = False, hint: Any = None) -> None:
        if self._event is not None:
            self.kernel.cancel(self._event)
            self._event = None
        added, removed = self._added, self._removed
        if added or removed:
            self._added, self._removed = [], []
        if not self._tasks and not (self._incremental and (added or removed)):
            return
        if self._incremental:
            # Deliver pending membership deltas first so the allocator's
            # internal indices are current, then apply any refresh.
            if added or removed:
                self.allocator.update(self._tasks, added, removed)
            if refresh and self._tasks:
                self.allocator.refresh(self._tasks, hint)
        else:
            self.allocator.allocate(self._tasks)
        if not self._tasks:
            return
        horizon = math.inf
        for task in self._tasks:
            if not math.isfinite(task.rate) or task.rate < 0.0:
                raise SimulationError(
                    f"pool {self.name!r}: allocator set invalid rate {task.rate!r}"
                )
            if task.rate > 0.0:
                horizon = min(horizon, task.remaining / task.rate)
        if math.isinf(horizon):
            # Every task is starved; progress resumes only on membership change.
            return
        # The horizon must *advance the clock*: at large timestamps a tiny
        # residual's horizon can fall below the float64 resolution of
        # ``now``, and an event that fires at the same instant would drain
        # nothing and reschedule itself forever (a Zeno freeze).  Padding
        # to a few ulps of ``now`` overruns true completion by a relatively
        # negligible amount and keeps progress strictly monotone.
        min_step = max(_COMPLETION_ATOL, abs(self.kernel.now) * 1e-15)
        self._event = self.kernel.schedule(max(horizon, min_step), self._on_horizon)

    def _on_horizon(self) -> None:
        self._event = None
        self._advance()
        finished = [t for t in self._tasks if t._drained()]
        if not finished:
            # Second Zeno guard: a task whose remaining horizon can no
            # longer advance the clock is complete for all purposes —
            # its residual is below the resolution of simulated time.
            now = self.kernel.now
            finished = [
                t
                for t in self._tasks
                if t.rate > 0.0 and now + t.remaining / t.rate == now
            ]
            if not finished:
                self._reallocate()
                return
        for task in finished:
            self._tasks.remove(task)
            task.pool = None
            self.completed_work += task.work
            self.completed_tasks += 1
            task.remaining = 0.0
            task.finished_at = self.kernel.now
            self._note_removed(task)
        # Run completion callbacks *after* detaching all finished tasks so a
        # callback that admits new work sees a consistent pool.
        for task in finished:
            task.on_complete(task)
        self._advance()
        self._reallocate()

    def __len__(self) -> int:
        return len(self._tasks)
