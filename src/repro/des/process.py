"""Generator-based processes on top of the event kernel.

A process is a Python generator that yields *wait descriptors*:

* :class:`Timeout` — resume after a simulated delay,
* :class:`WaitSignal` — resume when a :class:`Signal` fires (receiving the
  fired value), and
* :class:`AllOf` — resume when every child descriptor has completed.

The DPS runtime expresses operation bodies this way; each ``yield`` is also
an atomic-step boundary, mirroring the paper's suspension of DPS execution
threads at points where an operation posts a data object or blocks.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Iterable, Optional

from repro.des.kernel import Kernel
from repro.errors import SimulationError

ProcessGen = Generator[Any, Any, Any]


class Timeout:
    """Wait descriptor: resume the process after ``delay`` seconds."""

    __slots__ = ("delay",)

    def __init__(self, delay: float) -> None:
        if delay < 0.0:
            raise SimulationError(f"Timeout delay must be >= 0, got {delay!r}")
        self.delay = float(delay)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Timeout({self.delay!r})"


class Signal:
    """A broadcast one-to-many wake-up primitive.

    Processes wait via ``yield WaitSignal(sig)``; ``sig.fire(value)`` resumes
    every current waiter with ``value``.  Callbacks may also subscribe.
    """

    __slots__ = ("name", "_waiters", "_fired", "_value")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._waiters: list[Callable[[Any], None]] = []
        self._fired = False
        self._value: Any = None

    @property
    def fired(self) -> bool:
        """Whether the signal has already fired (waiters resume immediately)."""
        return self._fired

    @property
    def value(self) -> Any:
        """The value the signal fired with (``None`` before firing)."""
        return self._value

    def subscribe(self, callback: Callable[[Any], None]) -> None:
        """Invoke ``callback(value)`` on fire — immediately if already fired."""
        if self._fired:
            callback(self._value)
        else:
            self._waiters.append(callback)

    def fire(self, value: Any = None) -> None:
        """Fire the signal, waking every waiter.  Firing twice is an error."""
        if self._fired:
            raise SimulationError(f"signal {self.name!r} fired twice")
        self._fired = True
        self._value = value
        waiters, self._waiters = self._waiters, []
        for callback in waiters:
            callback(value)


class WaitSignal:
    """Wait descriptor: resume when ``signal`` fires; yields the fired value."""

    __slots__ = ("signal",)

    def __init__(self, signal: Signal) -> None:
        self.signal = signal


class AllOf:
    """Wait descriptor: resume when all child descriptors complete.

    Children may be :class:`Timeout` or :class:`WaitSignal` instances.  The
    process resumes with a list of child results in declaration order.
    """

    __slots__ = ("children",)

    def __init__(self, children: Iterable[Any]) -> None:
        self.children = list(children)
        if not self.children:
            raise SimulationError("AllOf requires at least one child descriptor")


class Process:
    """Drives a generator over the kernel, one wait descriptor at a time."""

    def __init__(self, kernel: Kernel, gen: ProcessGen, name: str = "") -> None:
        self.kernel = kernel
        self.name = name or getattr(gen, "__name__", "process")
        self._gen = gen
        self.done = Signal(f"{self.name}.done")
        self._started = False

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> "Process":
        """Begin executing at the current simulation time (asynchronously)."""
        if self._started:
            raise SimulationError(f"process {self.name!r} started twice")
        self._started = True
        self.kernel.schedule(0.0, self._advance, None)
        return self

    @property
    def finished(self) -> bool:
        return self.done.fired

    @property
    def result(self) -> Any:
        """Return value of the generator (``None`` until finished)."""
        return self.done.value

    # -- internals -------------------------------------------------------
    def _advance(self, send_value: Any) -> None:
        try:
            descriptor = self._gen.send(send_value)
        except StopIteration as stop:
            self.done.fire(stop.value)
            return
        self._arm(descriptor, self._advance)

    def _arm(self, descriptor: Any, resume: Callable[[Any], None]) -> None:
        if isinstance(descriptor, Timeout):
            self.kernel.schedule(descriptor.delay, resume, None)
        elif isinstance(descriptor, WaitSignal):
            descriptor.signal.subscribe(resume)
        elif isinstance(descriptor, AllOf):
            self._arm_all(descriptor, resume)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded an unknown descriptor: {descriptor!r}"
            )

    def _arm_all(self, descriptor: AllOf, resume: Callable[[Any], None]) -> None:
        results: list[Any] = [None] * len(descriptor.children)
        remaining = len(descriptor.children)

        def make_child_resume(index: int) -> Callable[[Any], None]:
            def child_resume(value: Any) -> None:
                nonlocal remaining
                results[index] = value
                remaining -= 1
                if remaining == 0:
                    resume(results)

            return child_resume

        for i, child in enumerate(descriptor.children):
            self._arm(child, make_child_resume(i))


def spawn(kernel: Kernel, gen: ProcessGen, name: str = "") -> Process:
    """Create and start a :class:`Process` in one call."""
    return Process(kernel, gen, name=name).start()
