"""Structure-of-arrays fluid engine: the numpy backend of the fluid layer.

:class:`~repro.des.fluid.FluidPool` plus a :class:`~repro.des.fluid.RateAllocator`
is an object-per-task design: every horizon event and every rate update
touches Python objects one at a time.  PRs 2-3 made the *algorithm*
sub-linear (dirty sets, warm-started water-filling), after which the dense
all-to-all regime of ``benchmarks/bench_allocator_scaling.py`` is bound by
per-object interpreter constants, not by operation counts.

:class:`SoaFluidEngine` removes those constants by fusing the pool and the
allocator into one engine that stores every task as a row of parallel numpy
arrays (work, remaining, rate, completion threshold, admission sequence) and
expresses the hot paths — progress integration, completion detection, the
next-horizon scan, and (in subclasses) the rate solve itself — as masked
array operations.  Task identity is a slot index; the per-slot ``tag`` is
the only Python object kept per task.

The engine mirrors :class:`~repro.des.fluid.FluidPool` semantics exactly:

* the same completion tolerances (``remaining <= max(1e-12, work * 1e-9)``)
  and both Zeno guards (the min-step event pad and the
  ``now + remaining/rate == now`` resolution test);
* completions dispatch in ``(finish_time, admission order)`` order, all
  tasks are detached *before* any completion callback runs, and a callback
  that re-enters :meth:`add` triggers an immediate solve that delivers the
  removals and the new admission as one combined delta;
* zero-work admissions complete synchronously without occupying capacity;
* one kernel event is scheduled at the earliest completion horizon and
  re-scheduled on every membership change.

It also exposes the same observability surface — ``stats``
(:class:`~repro.des.fluid.AllocatorStats`) and ``horizon``
(:class:`~repro.des.fluid.HorizonStats`) — so ``RunRecord`` model metrics
and the benchmarks read SoA and scalar backends identically.  (There is no
heap in this engine; the heap counters stay zero and ``scan_cost`` /
``events`` keep their meanings.)

numpy is an *optional* dependency (``pip install repro[fast]``): this module
imports without it, :func:`soa_available` reports whether the backend can
run, and the scenario registry falls back to the scalar models with a
one-line hint when it cannot.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

try:  # soft dependency: the core package must import without numpy
    import numpy as np
except ImportError:  # pragma: no cover - exercised via monkeypatch in tests
    np = None  # type: ignore[assignment]

from repro.des.fluid import (
    _COMPLETION_ATOL,
    _COMPLETION_RTOL,
    AllocatorStats,
    HorizonStats,
)
from repro.des.kernel import Kernel
from repro.errors import ConfigurationError, SimulationError

_NO_NUMPY_HINT = (
    "hint: numpy not found - structure-of-arrays backends need it; "
    "install the optional extra (pip install 'repro[fast]') or keep the "
    "scalar backend"
)

_hinted = False


def soa_available() -> bool:
    """Whether the numpy structure-of-arrays backend can run."""
    return np is not None


def numpy_missing_hint() -> str:
    """The one-line hint printed when a spec selects SoA without numpy."""
    return _NO_NUMPY_HINT


def emit_numpy_hint_once(emit: Callable[[str], None]) -> None:
    """Emit the missing-numpy hint at most once per process (not an error)."""
    global _hinted
    if not _hinted:
        _hinted = True
        emit(_NO_NUMPY_HINT)


class SoaFluidEngine:
    """Fused fluid pool + rate allocator over parallel numpy arrays.

    Subclasses supply the allocation law by overriding three hooks, each of
    which must write ``self.rate`` for every slot whose rate changed:

    * :meth:`_solve_update` — apply a membership delta (slot index lists);
    * :meth:`_solve_refresh` — recompute after an external coupling change
      (the CPU models' reaction to network membership);
    * :meth:`_verify_full` — shadow the incremental state with a reference
      solve and raise :class:`~repro.errors.SimulationError` on divergence
      (``verify=True`` mode).

    Completion is reported through the ``on_complete(tag)`` callable given
    at construction; ``tag`` is the per-slot payload passed to :meth:`add`.
    """

    def __init__(
        self,
        kernel: Kernel,
        name: str,
        on_complete: Callable[[Any], None],
        verify: bool = False,
        initial_slots: int = 64,
    ) -> None:
        if np is None:
            raise ConfigurationError(
                f"engine {name!r}: numpy is required for the SoA backend "
                "(install repro[fast])"
            )
        self.kernel = kernel
        self.name = name
        self.verify = verify
        self._on_complete = on_complete
        self.stats = AllocatorStats()
        self.horizon = HorizonStats()
        self.completed_work = 0.0
        self.completed_tasks = 0
        n = max(1, int(initial_slots))
        self.work = np.zeros(n)
        self.remaining = np.zeros(n)
        self.rate = np.zeros(n)
        self.thresh = np.zeros(n)
        self.live = np.zeros(n, dtype=bool)
        self.seq = np.zeros(n, dtype=np.int64)
        self.tags: list[Any] = [None] * n
        self._free = list(range(n - 1, -1, -1))
        self._nlive = 0
        self._synced_at = kernel.now
        self._admissions = 0
        self._event = None
        self._added: list[int] = []
        self._removed: list[int] = []

    # ------------------------------------------------------------ membership
    def __len__(self) -> int:
        return self._nlive

    @property
    def task_count(self) -> int:
        """Number of active tasks (live slots)."""
        return self._nlive

    def _grow(self) -> None:
        old = self.work.shape[0]
        new = old * 2
        for attr in ("work", "remaining", "rate", "thresh"):
            arr = np.zeros(new)
            arr[:old] = getattr(self, attr)
            setattr(self, attr, arr)
        live = np.zeros(new, dtype=bool)
        live[:old] = self.live
        self.live = live
        seq = np.zeros(new, dtype=np.int64)
        seq[:old] = self.seq
        self.seq = seq
        self.tags.extend([None] * (new - old))
        self._free.extend(range(new - 1, old - 1, -1))
        self._grow_slots(old, new)

    def _grow_slots(self, old: int, new: int) -> None:
        """Subclass hook: grow per-slot arrays alongside the base ones."""

    def _admit(self, work: float, tag: Any) -> int:
        """Admit a task; returns its slot, or -1 if it completed at once.

        Mirrors :meth:`FluidPool.add`: zero-work tasks (work at or below
        their own completion threshold) complete synchronously without
        occupying capacity, and a solve still runs afterwards because the
        completion callback may have changed membership re-entrantly.
        """
        work = float(work)
        if not work >= 0.0:
            raise SimulationError(
                f"engine {self.name!r}: invalid task work {work!r}"
            )
        self._admissions += 1
        thresh = max(_COMPLETION_ATOL, work * _COMPLETION_RTOL)
        if work <= thresh:
            self.completed_work += work
            self.completed_tasks += 1
            self._on_complete(tag)
            self._solve_pending()
            return -1
        if not self._free:
            self._grow()
        slot = self._free.pop()
        self.work[slot] = work
        self.remaining[slot] = work
        self.rate[slot] = 0.0
        self.thresh[slot] = thresh
        self.seq[slot] = self._admissions
        self.live[slot] = True
        self.tags[slot] = tag
        self._nlive += 1
        return slot

    def add(self, work: float, tag: Any) -> int:
        """Admit a task and solve; returns the slot (-1 when synchronous)."""
        slot = self._admit(work, tag)
        if slot < 0:
            return slot
        self._register(slot)
        self._added.append(slot)
        self._solve_pending()
        return slot

    def _register(self, slot: int) -> None:
        """Subclass hook: record a new slot's topology (links, node, ...)."""

    def remove(self, slot: int) -> None:
        """Withdraw a live task before completion."""
        if not (0 <= slot < self.live.shape[0]) or not self.live[slot]:
            raise SimulationError(
                f"engine {self.name!r}: slot {slot} is not a live task"
            )
        self._sync_all()
        self._detach(slot)
        self._solve_pending()

    def reallocate(self, hint: Any = None) -> None:
        """Force a rate refresh (cross-pool couplings), like FluidPool's."""
        self._solve_pending(refresh=True, hint=hint)

    def peek_horizon(self) -> float:
        """Absolute completion time of the earliest rated task (test hook)."""
        assert np is not None
        rated = self.live & (self.rate > 0.0)
        if not rated.any():
            return float("inf")
        horizon = self.remaining[rated] / self.rate[rated]
        return float(self._synced_at + horizon.min())

    # -------------------------------------------------------------- internals
    def _detach(self, slot: int) -> None:
        """Drop a slot from the live set and stage it in the removal delta."""
        self.live[slot] = False
        self.rate[slot] = 0.0
        self._nlive -= 1
        if slot in self._added:
            # Mirrors FluidPool._note_removed: a departure cancels a
            # pending admission instead of reporting both.
            self._added.remove(slot)
            self._release([slot])
        else:
            self._removed.append(slot)

    def _release(self, slots: list[int]) -> None:
        """Return processed slots to the free list."""
        for slot in slots:
            self.tags[slot] = None
            self._free.append(slot)

    def _sync_all(self) -> None:
        """Integrate progress for every live task up to the current time."""
        assert np is not None
        now = self.kernel.now
        dt = now - self._synced_at
        if dt < 0.0:  # pragma: no cover - defensive, kernel time is monotone
            raise SimulationError(f"engine {self.name!r}: time went backwards")
        if dt > 0.0 and self._nlive:
            # Dead slots carry rate 0, so a full-array update is safe and
            # cheaper than masking.
            self.remaining -= self.rate * dt
            np.maximum(self.remaining, 0.0, out=self.remaining)
        self._synced_at = now

    def _solve_pending(self, refresh: bool = False, hint: Any = None) -> None:
        """Deliver pending deltas (and any refresh) in one solve.

        The SoA analogue of ``FluidPool._reallocate``: cancel the pending
        horizon event, hand the combined added/removed delta to the
        allocation law, verify once at the end when shadowing is on, and
        re-schedule the horizon.
        """
        if self._event is not None:
            self.kernel.cancel(self._event)
            self._event = None
        added, removed = self._added, self._removed
        if added or removed:
            self._added, self._removed = [], []
        elif self._nlive == 0:
            return
        self._sync_all()
        if added or removed:
            self.stats.incremental_updates += 1
            self._solve_update(added, removed)
            self._release(removed)
        if refresh and self._nlive:
            self.stats.refreshes += 1
            self._solve_refresh(hint)
        if self.verify and self._nlive and (added or removed or refresh):
            self.stats.verify_recomputes += 1
            self._verify_full()
        # Same accounting as FluidPool: what a validation-plus-horizon scan
        # over the active tasks would cost right here.
        self.horizon.scan_cost += self._nlive
        if self._nlive:
            self._schedule_next()

    def _schedule_next(self) -> None:
        assert np is not None
        rated = self.live & (self.rate > 0.0)
        if not rated.any():
            return  # every task is starved; progress resumes on membership change
        horizon = float((self.remaining[rated] / self.rate[rated]).min())
        now = self.kernel.now
        # Zeno pad: the horizon event must advance the clock (see the
        # matching comment in FluidPool._schedule_next).
        min_step = max(_COMPLETION_ATOL, abs(now) * 1e-15)
        self._event = self.kernel.schedule(
            max(horizon, min_step), self._on_horizon
        )

    def _on_horizon(self) -> None:
        assert np is not None
        self._event = None
        now = self.kernel.now
        self.horizon.events += 1
        rated = self.live & (self.rate > 0.0)
        # Completion candidates: tasks whose projected finish (from the last
        # sync, i.e. what FluidPool's heap entries record) has been reached.
        finish = np.full(self.rate.shape[0], np.inf)
        if rated.any():
            finish[rated] = (
                self._synced_at + self.remaining[rated] / self.rate[rated]
            )
        due = np.flatnonzero(finish <= now)
        self._sync_all()
        finished: Any = None
        if due.size:
            rem = self.remaining[due]
            # Drained, or below the resolution of simulated time (the
            # second Zeno guard); anything else keeps a real residual and
            # is re-scheduled below.
            done = (rem <= self.thresh[due]) | (
                now + rem / self.rate[due] == now
            )
            finished = due[done]
            if finished.size:
                order = np.lexsort((self.seq[finished], finish[finished]))
                finished = finished[order]
        self.horizon.scan_cost += self._nlive
        if finished is None or not finished.size:
            self._schedule_next()
            return
        tags = [self.tags[slot] for slot in finished]
        for slot in finished:
            self.completed_work += self.work[slot]
            self.completed_tasks += 1
            self.remaining[slot] = 0.0
            self._detach(int(slot))
        # Callbacks run after every finished task is detached, in
        # completion order; a callback that admits new work solves
        # immediately and consumes the staged removals with it.
        for tag in tags:
            self._on_complete(tag)
        self._solve_pending()

    # ---------------------------------------------------------------- hooks
    def _solve_update(self, added: list[int], removed: list[int]) -> None:
        raise NotImplementedError

    def _solve_refresh(self, hint: Any) -> None:
        raise NotImplementedError

    def _verify_full(self) -> None:
        raise NotImplementedError
