"""A cancellable, stable binary-heap event queue.

Events scheduled for the same timestamp pop in FIFO scheduling order, which
makes simulations deterministic regardless of heap internals.  Cancellation
is O(1): the handle is flagged and lazily discarded on pop, the standard
technique for heaps that do not support random removal.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Any, Callable, Optional

from repro.errors import SimulationError


class EventHandle:
    """Handle to a scheduled event; lets the owner cancel or inspect it."""

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "_queue")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., None],
        args: tuple[Any, ...],
        queue: "Optional[EventQueue]" = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self._queue = queue

    def cancel(self) -> None:
        """Mark the event so it will be skipped when it reaches the heap top.

        Idempotent, and keeps the owning queue's live-event count in sync
        whether cancellation goes through this method or
        :meth:`EventQueue.cancel` — both are the same code path.  Cancelling
        a handle that already executed (or whose queue was cleared) is a
        no-op for the accounting.
        """
        if self.cancelled:
            return
        self.cancelled = True
        # Drop references early: a cancelled transfer-completion event may
        # otherwise pin a large payload in memory until it pops.
        self.callback = _cancelled_callback
        self.args = ()
        queue = self._queue
        if queue is not None:
            self._queue = None
            queue._live -= 1

    def __lt__(self, other: "EventHandle") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        state = "cancelled" if self.cancelled else "pending"
        return f"EventHandle(t={self.time!r}, seq={self.seq}, {state})"


def _cancelled_callback(*_args: Any) -> None:  # pragma: no cover - never called
    raise SimulationError("cancelled event executed")


class EventQueue:
    """Priority queue of timestamped callbacks with stable ordering."""

    def __init__(self) -> None:
        self._heap: list[EventHandle] = []
        self._counter = itertools.count()
        self._live = 0

    def push(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute ``time``; returns a handle."""
        if not math.isfinite(time):
            raise SimulationError(f"event time must be finite, got {time!r}")
        handle = EventHandle(float(time), next(self._counter), callback, args, queue=self)
        heapq.heappush(self._heap, handle)
        self._live += 1
        return handle

    def cancel(self, handle: EventHandle) -> None:
        """Cancel a previously pushed event (idempotent)."""
        handle.cancel()

    def pop(self) -> EventHandle:
        """Remove and return the earliest live event.

        Raises :class:`SimulationError` when empty.
        """
        while self._heap:
            handle = heapq.heappop(self._heap)
            if not handle.cancelled:
                self._live -= 1
                # Detach so a late cancel() of an executed event cannot
                # corrupt the live count.
                handle._queue = None
                return handle
        raise SimulationError("pop from an empty event queue")

    def peek_time(self) -> Optional[float]:
        """Timestamp of the earliest live event, or ``None`` when empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def pop_due(self, limit: Optional[float]) -> Optional[EventHandle]:
        """Pop the earliest live event iff its time is ``<= limit``.

        ``None`` for the limit means "any time" — equivalent to :meth:`pop`
        on a non-empty queue.  Returns ``None`` when the queue is empty or
        the earliest live event lies beyond ``limit``; the event stays
        queued.  This is the single-traversal path of the kernel run loop:
        one sift over the heap serves both the ``until`` check and the pop,
        where the peek-then-pop sequence paid two.
        """
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
        if not heap:
            return None
        if limit is not None and heap[0].time > limit:
            return None
        handle = heapq.heappop(heap)
        self._live -= 1
        # Detach so a late cancel() of an executed event cannot corrupt
        # the live count.
        handle._queue = None
        return handle

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def clear(self) -> None:
        """Drop every event (used when tearing a simulation down)."""
        for handle in self._heap:
            handle._queue = None
        self._heap.clear()
        self._live = 0
