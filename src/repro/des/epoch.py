"""Conservative epoch synchronization over shard-local kernels.

Partitioned (sharded) simulation of one scenario runs K independent
:class:`~repro.des.kernel.Kernel` instances and advances them in lockstep
*epochs*.  The scheme is classic conservative parallel DES specialized to
fluid models:

* between two global decision points every shard's rates are
  piecewise-constant, so each shard's pending event times are valid
  *lookahead* — no event another shard produces can land before the
  earliest of them;
* the controller therefore computes the epoch bound as the minimum next
  event time across shards, advances every shard with
  ``kernel.run(until=bound)`` (shards without a due event just move their
  clock), and invokes a barrier callback that replays the scenario's
  global decisions (e.g. the cluster scheduler's reallocation) before the
  next epoch begins.

The controller is deliberately transport-agnostic: a
:class:`ShardHandle` may wrap an in-process shard or a proxy speaking to a
worker process over a pipe.  ``begin_advance``/``finish_advance`` are
split so process-backed shards overlap their work — the controller sends
every shard its bound before it blocks on the first reply, and the time it
spends blocked is accounted in :attr:`EpochStats.barrier_wait_s`.

The cluster-server binding of this machinery (job shards, scheduler
replay, the determinism contract) lives in
:mod:`repro.clusterserver.sharded` and is documented in
``docs/sharding.md``.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence


class ShardHandle(ABC):
    """One shard as seen by the epoch controller.

    Implementations wrap either a local shard object (direct calls) or a
    worker-process proxy (pipe messages).  The contract:

    * :meth:`next_event_time` — earliest pending event in the shard's
      kernel, or ``None`` when it is idle; must reflect every update the
      barrier callback applied to the shard;
    * :meth:`begin_advance` — start advancing the shard to ``until``
      (non-blocking for proxies);
    * :meth:`finish_advance` — block until the advance completes and
      return the shard's report for the epoch (arrivals, completions —
      the controller treats it as opaque and hands it to the barrier
      callback).
    """

    @abstractmethod
    def next_event_time(self) -> Optional[float]:
        """Earliest pending event time, or ``None`` when idle."""

    @abstractmethod
    def begin_advance(self, until: float) -> None:
        """Start advancing the shard's kernel to ``until``."""

    @abstractmethod
    def finish_advance(self) -> Any:
        """Wait for the advance and return the shard's epoch report."""


@dataclass
class EpochStats:
    """Work counters of one epoch-controller run."""

    #: epochs executed (== barriers reached)
    epochs: int = 0
    #: wall seconds the controller spent blocked on shard advancement
    barrier_wait_s: float = 0.0

    def reset(self) -> None:
        self.epochs = 0
        self.barrier_wait_s = 0.0


class EpochController:
    """Advance a set of shards epoch-by-epoch until no events remain.

    ``on_barrier(bound, reports)`` runs after every epoch with the epoch
    bound (the global minimum next-event time, now every shard's clock)
    and the per-shard reports in shard order.  It applies the scenario's
    global decisions and returns ``False`` to stop early.

    The loop ends when every shard is idle (no pending events anywhere) —
    a scenario that still holds unfinished work at that point is starved,
    which the caller detects from its own state.
    """

    def __init__(self, shards: Sequence[ShardHandle]) -> None:
        self.shards = list(shards)
        self.stats = EpochStats()

    def run(
        self,
        on_barrier: Callable[[float, list[Any]], bool],
        lookahead: Optional[Callable[[], Optional[float]]] = None,
    ) -> None:
        """Run epochs until every shard drains or the callback stops.

        ``lookahead``, when given, supplies an additional controller-side
        bound each epoch — e.g. the next pending arrival of an open
        workload stream (:mod:`repro.clusterserver.arrivals`), which no
        shard kernel knows about.  It is folded into the epoch bound like
        another shard: the epoch never advances past it, so the barrier
        callback observes the event exactly on time.  Returning ``None``
        means no pending controller event.
        """
        shards = self.shards
        while True:
            bound: Optional[float] = None
            for shard in shards:
                t = shard.next_event_time()
                if t is not None and (bound is None or t < bound):
                    bound = t
            if lookahead is not None:
                t = lookahead()
                if t is not None and (bound is None or t < bound):
                    bound = t
            if bound is None:
                return
            for shard in shards:
                shard.begin_advance(bound)
            t0 = time.perf_counter()
            reports = [shard.finish_advance() for shard in shards]
            self.stats.barrier_wait_s += time.perf_counter() - t0
            self.stats.epochs += 1
            if not on_barrier(bound, reports):
                return
