"""The ``run_scenario`` facade and the unified :class:`RunRecord` schema.

One entry point for every engine: :func:`run_scenario` takes a
:class:`~repro.scenario.spec.ScenarioSpec`, resolves the named plugins
from a :class:`~repro.scenario.registry.Registry`, executes the scenario
under the requested engine, and normalizes the engine-native result —
:class:`~repro.sim.simulator.SimulationResult`,
:class:`~repro.testbed.executor.Measurement` or
:class:`~repro.clusterserver.server.ServerResult` — into one
:class:`RunRecord`: makespan, per-phase efficiency, event counts,
allocator/horizon/shard statistics, all JSON-exportable via
:meth:`RunRecord.to_dict`.

The equivalence contract: for the same spec, the record's metrics are
bit-identical regardless of *how* the scenario was launched (legacy CLI
subcommand, ``repro run spec.toml``, a sweep worker process) — the spec is
the whole truth, and nothing about the launcher leaks into the results.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.errors import ConfigurationError
from repro.scenario.registry import AppPlugin, Registry, default_registry
from repro.scenario.spec import ScenarioSpec
from repro.sim.modes import SimulationMode


# --------------------------------------------------------------------------
# the unified result schema
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class PhaseRecord:
    """Per-phase efficiency of a run (the paper's dynamic efficiency)."""

    label: str
    start: float
    end: float
    work: float
    mean_nodes: float
    efficiency: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class RunRecord:
    """The engine-independent outcome of one scenario run.

    ``makespan`` is the engine's headline time: the simulator's
    *predicted* running time, the testbed's *measured* running time, or
    the cluster server's workload makespan.  ``metrics`` holds flat
    engine-specific scalars (turnaround/efficiency aggregates, allocator
    and horizon work counters, shard statistics); ``raw`` keeps the
    engine-native objects for in-process callers and is excluded from
    serialization and equality.
    """

    scenario: str
    app: str
    engine: str
    makespan: float
    wall_time_s: float
    events: int
    seed: int
    phases: tuple[PhaseRecord, ...] = ()
    metrics: dict[str, float] = field(default_factory=dict)
    verified: Optional[bool] = None
    raw: dict[str, Any] = field(default_factory=dict, compare=False, repr=False)

    @property
    def mean_efficiency(self) -> Optional[float]:
        """Whole-run efficiency over the recorded phases (None if none)."""
        denom = sum(p.mean_nodes * p.duration for p in self.phases)
        if denom <= 0:
            return None
        return sum(p.work for p in self.phases) / denom

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready dict of everything except ``raw``."""
        return {
            "scenario": self.scenario,
            "app": self.app,
            "engine": self.engine,
            "makespan": self.makespan,
            "wall_time_s": self.wall_time_s,
            "events": self.events,
            "seed": self.seed,
            "verified": self.verified,
            "phases": [dataclasses.asdict(p) for p in self.phases],
            "metrics": dict(self.metrics),
        }

    def without_raw(self) -> "RunRecord":
        """A copy with the engine-native objects dropped (picklable)."""
        return dataclasses.replace(self, raw={})


# --------------------------------------------------------------------------
# shared assembly helpers
# --------------------------------------------------------------------------


def _platform(spec: ScenarioSpec, num_nodes: int):
    """Resolve the spec's platform (optionally testbed-calibrated)."""
    from repro.sim.platform import PAPER_CLUSTER

    if spec.platform.name != "paper":
        raise ConfigurationError(
            f"unknown platform {spec.platform.name!r}; choose from ['paper']"
        )
    if spec.platform.calibrate:
        from repro.analysis.parallel import cached_platform

        platform = cached_platform((num_nodes, spec.engine.seed))
    else:
        platform = PAPER_CLUSTER
    options = dict(spec.platform.options)
    if options:
        known = {"latency", "bandwidth"}
        unknown = sorted(set(options) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown platform options {unknown}; valid: {sorted(known)}"
            )
        platform = platform.with_network(
            dataclasses.replace(platform.network, **options)
        )
    return platform


def calibration_key(
    spec: ScenarioSpec, registry: Optional[Registry] = None
) -> Optional[tuple[int, int]]:
    """The platform-calibration cache key a spec will use, or None.

    Sweep runners prewarm these keys (in parallel, exactly once per
    distinct key) before fanning cases out — see
    :meth:`repro.analysis.parallel.ParallelSweepRunner.run_records`.
    """
    if spec.engine.name == "sim" and spec.platform.calibrate:
        registry = registry or default_registry()
        plugin: AppPlugin = registry.resolve("app", spec.app.name)
        cfg = plugin.make_config(spec)
        return (cfg.num_nodes, spec.engine.seed)
    return None


def _fault_plan(spec: ScenarioSpec, registry: Registry):
    """The spec's resolved :class:`~repro.faults.FaultPlan`, or None.

    A default (empty) ``[faults]`` section yields None so fault-free runs
    take literally the same code path — and produce bit-identical results
    — as before the fault layer existed.
    """
    from repro.faults import FaultPlan
    from repro.scenario.spec import FaultsSection

    if spec.faults == FaultsSection():
        return None
    return FaultPlan.from_section(spec.faults, spec.engine.seed, registry)


def _apply_dps_faults(
    spec: ScenarioSpec, plugin: AppPlugin, cfg: Any, registry: Registry
) -> Any:
    """Fold ``crash`` faults into a DPS config's allocation schedule.

    The DPS engines model a node crash as the paper's dynamic-allocation
    primitive: every worker thread on the crashed node is removed after
    the fault's ``after`` phase (``RemoveThreads`` semantics), so the
    malleability machinery — migration planning, dynamic efficiency —
    accounts for the failure with no new mechanism.
    """
    plan = _fault_plan(spec, registry)
    if plan is None:
        return cfg
    if not plugin.supports_schedule:
        raise ConfigurationError(
            f"app {plugin.name!r} does not support dynamic allocation, so "
            "crash faults cannot be applied; drop the spec's [faults] "
            "section or pick a malleable app"
        )
    from repro.dps.malleability import AllocationSchedule
    from repro.faults import compile_dps_removals

    removals = compile_dps_removals(
        plan, cfg.num_nodes, cfg.num_threads, registry=registry
    )
    base = cfg.schedule
    name = f"{base.name} + faults" if base.events else "faults"
    schedule = AllocationSchedule(
        events=tuple(base.events) + removals, name=name
    )
    return dataclasses.replace(cfg, schedule=schedule)


def _make_provider(
    spec: ScenarioSpec,
    plugin: AppPlugin,
    cfg: Any,
    platform: Any,
    registry: Registry,
):
    """Resolve the duration provider for a sim-engine run."""
    provider_name = spec.provider.name
    mode = spec.mode()
    options = dict(spec.provider.options)
    if provider_name == "auto":
        if mode is SimulationMode.DIRECT:
            persist = bool(options.get("persist", True))
            provider_name = "measure_first_n" if persist else "direct"
        else:
            provider_name = "costmodel"
    factory = registry.resolve("provider", provider_name)
    return factory(spec, plugin, cfg, platform, mode, options)


def _flatten_stats(prefix: str, stats: Any, out: dict[str, float]) -> None:
    """Flatten a stats dataclass's scalar fields into ``out``."""
    if stats is None:
        return
    for f in dataclasses.fields(stats):
        value = getattr(stats, f.name)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            out[f"{prefix}{f.name}"] = value


def _model_stats(runtime: Any) -> dict[str, float]:
    """Allocator + horizon counters of a DPS run's resource models."""
    out: dict[str, float] = {}
    backend = getattr(runtime, "backend", None)
    if backend is None:
        return out
    for prefix, model in (("net_", backend.network), ("cpu_", backend.cpu)):
        allocator = getattr(model, "allocator", None)
        _flatten_stats(prefix, getattr(allocator, "stats", None), out)
        _flatten_stats(
            f"{prefix}horizon_", getattr(model, "horizon_stats", None), out
        )
    return out


def _phase_records(run_result: Any) -> tuple[PhaseRecord, ...]:
    """Dynamic-efficiency series of a DPS run, normalized."""
    from repro.sim.efficiency import dynamic_efficiency

    return tuple(
        PhaseRecord(
            label=p.label,
            start=p.start,
            end=p.end,
            work=p.work,
            mean_nodes=p.mean_nodes,
            efficiency=p.efficiency,
        )
        for p in dynamic_efficiency(run_result)
    )


def _verify_app(
    spec: ScenarioSpec, plugin: AppPlugin, app: Any, runtime: Any
) -> Optional[bool]:
    if not spec.engine.verify:
        return None
    if plugin.verify is None:
        raise ConfigurationError(
            f"app {plugin.name!r} has no verification; drop engine.verify"
        )
    plugin.verify(app, runtime)
    return True


# --------------------------------------------------------------------------
# engines
# --------------------------------------------------------------------------

_DEFAULT_SPEC = ScenarioSpec()


def _require_unused(spec: ScenarioSpec, engine: str, sections: tuple) -> None:
    """Reject sections an engine does not consume.

    The spec's contract is that nothing the user declared is silently
    ignored; an engine that has no use for a section must refuse a
    non-default one rather than run something other than what the spec
    says.
    """
    for section in sections:
        if getattr(spec, section) != getattr(_DEFAULT_SPEC, section):
            raise ConfigurationError(
                f"the {engine!r} engine does not use the {section!r} "
                "section; remove it from the spec"
            )


def _require_unsharded(spec: ScenarioSpec, engine: str) -> None:
    if spec.engine.shards != 1 or spec.engine.shard_mode != "auto":
        raise ConfigurationError(
            f"the {engine!r} engine does not shard; engine.shards/"
            "shard_mode apply to the 'server' engine only"
        )


def run_sim(spec: ScenarioSpec, registry: Registry) -> RunRecord:
    """The ``sim`` engine: predict under the paper's performance models."""
    from repro.dps.trace import TraceLevel
    from repro.sim.simulator import DPSSimulator

    _require_unused(spec, "sim", ("cluster",))
    _require_unsharded(spec, "sim")
    plugin: AppPlugin = registry.resolve("app", spec.app.name)
    cfg = _apply_dps_faults(spec, plugin, plugin.make_config(spec), registry)
    platform = _platform(spec, cfg.num_nodes)
    app = plugin.build(cfg)
    provider = _make_provider(spec, plugin, cfg, platform, registry)

    net_entry = registry.resolve("netmodel", spec.netmodel.name)
    net_options = dict(spec.netmodel.options)
    cpu_entry = registry.resolve("cpumodel", spec.cpumodel.name)
    cpu_options = dict(spec.cpumodel.options)

    engine_options = dict(spec.engine.options)
    trace = TraceLevel[str(engine_options.pop("trace_level", "SUMMARY")).upper()]
    if engine_options:
        raise ConfigurationError(
            f"unknown sim engine options {sorted(engine_options)}; "
            "valid: ['trace_level']"
        )

    simulator = DPSSimulator(
        platform,
        provider,
        trace_level=trace,
        network_factory=lambda kernel, params: net_entry(
            kernel, params, **net_options
        ),
        cpu_factory=lambda kernel: cpu_entry(kernel, platform, **cpu_options),
    )
    result = simulator.run(app)
    verified = _verify_app(spec, plugin, app, result.runtime)
    metrics = {"simulation_wall_time": result.simulation_wall_time}
    metrics.update(_model_stats(result.runtime))
    return RunRecord(
        scenario=spec.name,
        app=spec.app.name,
        engine="sim",
        makespan=result.predicted_time,
        wall_time_s=result.simulation_wall_time,
        events=result.events,
        seed=spec.engine.seed,
        phases=_phase_records(result.run),
        metrics=metrics,
        verified=verified,
        raw={"result": result, "runtime": result.runtime},
    )


def run_testbed(spec: ScenarioSpec, registry: Registry) -> RunRecord:
    """The ``testbed`` engine: measure on the ground-truth virtual cluster."""
    from repro.dps.trace import TraceLevel
    from repro.testbed.cluster import VirtualCluster
    from repro.testbed.executor import TestbedExecutor

    # The testbed IS the ground truth: its packet network, timeslice CPU,
    # noisy duration provider and platform are fixed by construction.
    _require_unused(
        spec, "testbed",
        ("cluster", "netmodel", "cpumodel", "provider", "platform"),
    )
    _require_unsharded(spec, "testbed")
    plugin: AppPlugin = registry.resolve("app", spec.app.name)
    cfg = _apply_dps_faults(spec, plugin, plugin.make_config(spec), registry)
    mode = spec.mode()
    engine_options = dict(spec.engine.options)
    trace = TraceLevel[str(engine_options.pop("trace_level", "SUMMARY")).upper()]
    incremental = bool(engine_options.pop("incremental", True))
    verify_incremental = bool(engine_options.pop("verify_incremental", False))
    backend = str(engine_options.pop("backend", "scalar"))
    if engine_options:
        raise ConfigurationError(
            f"unknown testbed engine options {sorted(engine_options)}; "
            "valid: ['trace_level', 'incremental', 'verify_incremental', "
            "'backend']"
        )
    cluster = VirtualCluster(num_nodes=cfg.num_nodes, seed=spec.engine.seed)
    executor = TestbedExecutor(
        cluster,
        run_kernels=mode.runs_kernels,
        trace_level=trace,
        incremental=incremental,
        verify_incremental=verify_incremental,
        backend=backend,
    )
    app = plugin.build(cfg)
    measurement = executor.run(app)
    verified = _verify_app(spec, plugin, app, measurement.runtime)
    metrics = {"executor_wall_time": measurement.wall_time}
    metrics.update(_model_stats(measurement.runtime))
    return RunRecord(
        scenario=spec.name,
        app=spec.app.name,
        engine="testbed",
        makespan=measurement.measured_time,
        wall_time_s=measurement.wall_time,
        events=measurement.run.events_executed,
        seed=spec.engine.seed,
        phases=_phase_records(measurement.run),
        metrics=metrics,
        verified=verified,
        raw={"result": measurement, "runtime": measurement.runtime},
    )


def run_server(spec: ScenarioSpec, registry: Registry) -> RunRecord:
    """The ``server`` engine: a malleable-job workload under one policy.

    ``engine.shards == 1`` runs the eager single-kernel
    :class:`~repro.clusterserver.server.ClusterServer`; ``shards > 1``
    the epoch-barrier :class:`~repro.clusterserver.sharded.ShardedServer`
    (bit-identical results, by the sharding determinism contract).
    """
    from repro.clusterserver.server import ClusterServer
    from repro.clusterserver.sharded import ShardedServer

    # Fluid malleable jobs have no DPS flow graph: no models, providers,
    # payload modes, numerical verification or kill events apply.
    _require_unused(
        spec, "server",
        ("netmodel", "cpumodel", "provider", "platform"),
    )
    if spec.app.options:
        raise ConfigurationError(
            "the 'server' engine's workloads take no app options; size "
            "the stream via the 'cluster' section"
        )
    if spec.events:
        raise ConfigurationError(
            "the 'server' engine does not apply kill events; use an "
            "adaptive scheduling policy instead"
        )
    if spec.engine.mode != _DEFAULT_SPEC.engine.mode:
        raise ConfigurationError(
            "the 'server' engine has no simulation mode; drop engine.mode"
        )
    if spec.engine.verify:
        raise ConfigurationError(
            "the 'server' engine has no numerical result; drop engine.verify"
        )
    if spec.engine.options:
        raise ConfigurationError(
            f"unknown server engine options "
            f"{sorted(spec.engine.options)}; valid: []"
        )
    cluster = spec.cluster
    if cluster.arrivals:
        # Open system: a lazy arrival stream named by cluster.arrivals.
        params = dict(cluster.arrivals)
        process = str(params.pop("process"))
        plugin = registry.resolve("workload", process)
        stream = getattr(plugin, "stream", None)
        if stream is None:
            raise ConfigurationError(
                f"workload {process!r} has no arrival-stream form; "
                "closed-only workloads configure cluster.jobs/interarrival "
                "instead of cluster.arrivals"
            )
        workload = stream(cluster, spec.engine.seed, spec.app.name, params)
    else:
        # Closed system: the legacy materialized workload (bit-compatible
        # with every pre-arrivals launcher).
        plugin = registry.resolve("workload", spec.app.name)
        closed = getattr(plugin, "closed", plugin if callable(plugin) else None)
        if closed is None:
            raise ConfigurationError(
                f"workload {spec.app.name!r} is an open-system arrival "
                "process; configure it via cluster.arrivals"
            )
        workload = closed(
            jobs=cluster.jobs,
            mean_interarrival=cluster.interarrival,
            seed=spec.engine.seed,
            max_nodes=cluster.job_max_nodes,
        )
    policy = registry.resolve("policy", cluster.policy)(cluster)
    plan = _fault_plan(spec, registry)
    stats = None
    wall_start = time.perf_counter()
    if spec.engine.shards > 1:
        server = ShardedServer(
            cluster.nodes,
            policy,
            shards=spec.engine.shards,
            mode=spec.engine.shard_mode,
            faults=plan,
        )
        result = server.run(workload)
        stats = server.stats
    else:
        result = ClusterServer(cluster.nodes, policy, faults=plan).run(
            workload
        )
    wall = time.perf_counter() - wall_start

    metrics: dict[str, float] = {
        "mean_turnaround": result.mean_turnaround,
        "mean_wait": result.mean_wait,
        "mean_slowdown": result.mean_slowdown,
        "max_slowdown": result.max_slowdown,
        "cluster_efficiency": result.cluster_efficiency,
        "utilization": result.utilization,
        "service_rate": result.service_rate,
        "throughput": result.throughput,
        "total_nodes": result.total_nodes,
        "jobs": len(result.job_turnaround) or result.jobs_completed,
    }
    if result.slo is not None:
        # Open-system runs carry the streaming SLO summary: quantile
        # sojourns, rejection rate, utilization aggregates.
        metrics.update(result.slo.to_metrics())
    elif plan is not None:
        # Closed runs surface the fault counters only under a plan, so
        # fault-free records keep their exact historical metric keys.
        metrics["retries"] = result.retries
        metrics["lost_work"] = result.lost_work
        metrics["failed_jobs"] = result.failed_jobs
    if stats is not None:
        _flatten_stats("shard_", stats, metrics)
    return RunRecord(
        scenario=spec.name,
        app=spec.app.name,
        engine="server",
        makespan=result.makespan,
        wall_time_s=wall,
        events=result.events,
        seed=spec.engine.seed,
        metrics=metrics,
        raw={"result": result, "stats": stats},
    )


# --------------------------------------------------------------------------
# the facade
# --------------------------------------------------------------------------


def run_scenario(
    spec: ScenarioSpec, registry: Optional[Registry] = None
) -> RunRecord:
    """Run one scenario under its declared engine; normalize the result.

    The single entry point the CLI subcommands, ``repro run``, sweeps and
    CI smoke jobs all delegate to.
    """
    registry = registry or default_registry()
    engine = registry.resolve("engine", spec.engine.name)
    return engine(spec, registry)
