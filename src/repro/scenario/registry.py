"""Plugin registry: apps, models, providers, engines by name.

Every extensible axis of a :class:`~repro.scenario.spec.ScenarioSpec`
resolves through a :class:`Registry`.  The default registry
(:func:`default_registry`) is populated with the built-ins of
:mod:`repro.scenario.builtins`; new plugins register under a fresh name:

.. code-block:: python

    from repro.scenario import default_registry

    reg = default_registry()
    reg.register("netmodel", "myfabric", my_factory)

Duplicate names raise (pass ``replace=True`` to shadow deliberately) and
unknown lookups raise with the sorted list of valid choices — both are
:class:`~repro.errors.ConfigurationError`, so the CLI reports them as
normal configuration mistakes.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from typing import Any, Callable, Optional

from repro.errors import ConfigurationError
from repro.scenario.spec import ScenarioSpec, parse_kill_events

#: The registrable plugin kinds, in the order ``repro scenarios list``
#: reports them.
KINDS = (
    "app",
    "netmodel",
    "cpumodel",
    "provider",
    "engine",
    "workload",
    "policy",
    "fault",
)


class Registry:
    """Typed name → plugin tables, one per kind in :data:`KINDS`."""

    def __init__(self, name: str = "registry") -> None:
        self.name = name
        self._tables: dict[str, dict[str, Any]] = {kind: {} for kind in KINDS}
        self._descriptions: dict[str, dict[str, str]] = {
            kind: {} for kind in KINDS
        }

    # ------------------------------------------------------------ mutation
    def register(
        self,
        kind: str,
        name: str,
        plugin: Any,
        replace: bool = False,
        description: str = "",
    ) -> Any:
        """Register ``plugin`` under ``(kind, name)``.

        Raises on an unknown kind and on duplicate names unless
        ``replace=True``.  ``description`` is the one-line summary
        ``repro scenarios list`` prints next to the name.  Returns the
        plugin, so it composes as a decorator:
        ``registry.register("engine", "mine", fn)``.
        """
        table = self._table(kind)
        if not name:
            raise ConfigurationError(f"a {kind} plugin needs a non-empty name")
        if name in table and not replace:
            raise ConfigurationError(
                f"{kind} {name!r} is already registered in {self.name}; "
                "pass replace=True to shadow it"
            )
        table[name] = plugin
        if description:
            self._descriptions[kind][name] = description
        elif replace:
            self._descriptions[kind].pop(name, None)
        return plugin

    # ------------------------------------------------------------- lookup
    def resolve(self, kind: str, name: str) -> Any:
        """The plugin registered under ``(kind, name)``; raises if absent."""
        table = self._table(kind)
        try:
            return table[name]
        except KeyError:
            raise ConfigurationError(
                f"unknown {kind} {name!r}; choose from {sorted(table)}"
            ) from None

    def names(self, kind: str) -> list[str]:
        """Sorted plugin names of one kind."""
        return sorted(self._table(kind))

    def describe(self, kind: str, name: str) -> str:
        """One-line description of a registered plugin ("" if none)."""
        self.resolve(kind, name)  # raise the usual error when absent
        return self._descriptions[kind].get(name, "")

    def kinds(self) -> tuple[str, ...]:
        """The registrable plugin kinds."""
        return KINDS

    def _table(self, kind: str) -> dict[str, Any]:
        try:
            return self._tables[kind]
        except KeyError:
            raise ConfigurationError(
                f"unknown plugin kind {kind!r}; choose from {sorted(self._tables)}"
            ) from None


# --------------------------------------------------------------------------
# the app plugin contract
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class AppPlugin:
    """Everything the engines need to run one registered application.

    Parameters
    ----------
    name:
        Registry name (``lu``, ``stencil``...).
    config_cls:
        The app's frozen config dataclass; ``app.options`` of a spec are
        its keyword arguments.
    build:
        ``config -> Application``.
    cost_model:
        ``(machine profile, config) -> CostModel`` — the PDEXEC duration
        source for this app.
    verify:
        ``(app, runtime) -> None`` numerical check, or None when the app
        has nothing to verify.
    supports_schedule:
        Whether the config accepts a dynamic-allocation ``schedule``
        (kill events).
    describe:
        Optional ``config -> str`` one-line description (CLI banner).
    """

    name: str
    config_cls: type
    build: Callable[[Any], Any]
    cost_model: Callable[[Any, Any], Any]
    verify: Optional[Callable[[Any, Any], None]] = None
    supports_schedule: bool = False
    describe: Optional[Callable[[Any], str]] = dataclass_field(
        default=None, compare=False
    )

    def make_config(self, spec: ScenarioSpec) -> Any:
        """Build the app config from a spec (options + mode + events)."""
        kwargs = dict(spec.app.options)
        kwargs["mode"] = spec.mode()
        if spec.events:
            if not self.supports_schedule:
                raise ConfigurationError(
                    f"app {self.name!r} does not support dynamic-allocation "
                    "events; drop the spec's 'events' list"
                )
            kwargs["schedule"] = parse_kill_events(list(spec.events))
        try:
            return self.config_cls(**kwargs)
        except TypeError as exc:
            raise ConfigurationError(
                f"invalid options for app {self.name!r}: {exc}"
            ) from None


# --------------------------------------------------------------------------
# the workload plugin contract
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class WorkloadPlugin:
    """A ``server``-engine workload: closed generator, stream factory, or both.

    Parameters
    ----------
    name:
        Registry name (``lu``, ``poisson``...).
    closed:
        ``(jobs=, mean_interarrival=, seed=, max_nodes=) -> [JobSpec]`` —
        the materialized closed-system workload (None for stream-only
        processes).
    stream:
        ``(cluster, seed, shape, params) -> ArrivalProcess`` — the lazy
        open-system arrival stream built from a spec's
        ``cluster.arrivals`` table (None for closed-only workloads).
        ``shape`` is the spec's ``app.name``, the job-shape family.
    description:
        One-line summary for ``repro scenarios list``.
    """

    name: str
    closed: Optional[Callable[..., Any]] = None
    stream: Optional[Callable[..., Any]] = None
    description: str = ""


# --------------------------------------------------------------------------
# the default registry
# --------------------------------------------------------------------------

_DEFAULT: Optional[Registry] = None


def default_registry() -> Registry:
    """The process-wide registry, with built-ins installed on first use."""
    global _DEFAULT
    if _DEFAULT is None:
        from repro.scenario.builtins import install_builtins

        registry = Registry(name="default")
        install_builtins(registry)
        _DEFAULT = registry
    return _DEFAULT
