"""The declarative scenario specification.

A :class:`ScenarioSpec` is the single description format every execution
engine understands: one spec names an application (or cluster workload),
the performance models to assemble around it, a duration provider, the
target platform, and the engine that should run it — the simulator, the
ground-truth testbed, or the (optionally sharded) cluster server.  Specs
are plain data: they round-trip through ``dict``/JSON/TOML, pickle across
process pools, and compare by value, which is what lets sweeps, benches
and CI jobs all speak one format (see ``docs/scenarios.md``).

Loading: :meth:`ScenarioSpec.from_dict`, :meth:`ScenarioSpec.from_file`
(``.toml``/``.json`` by suffix), :func:`load_spec`.  Serializing:
:meth:`ScenarioSpec.to_dict` emits the canonical fully-expanded dict —
every scalar field explicit, empty option tables omitted — so that
``from_dict(spec.to_dict()).to_dict() == spec.to_dict()`` is an identity.

Unknown section or field names are rejected with a
:class:`~repro.errors.ConfigurationError` naming the valid choices; a
typo'd key can never be silently ignored.
"""

from __future__ import annotations

import dataclasses
import json
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Optional

from repro.dps.malleability import STATIC, AllocationEvent, AllocationSchedule
from repro.errors import ConfigurationError
from repro.sim.modes import SimulationMode

try:  # Python >= 3.11; TOML specs degrade gracefully to JSON below that.
    import tomllib
except ImportError:  # pragma: no cover - exercised only on 3.10
    tomllib = None  # type: ignore[assignment]


#: CLI names for the simulation modes (the canonical mapping; the CLI
#: re-exports it from :mod:`repro.cli.common` for compatibility).
MODE_NAMES = {
    "direct": SimulationMode.DIRECT,
    "pdexec": SimulationMode.PDEXEC,
    "noalloc": SimulationMode.PDEXEC_NOALLOC,
}


def parse_mode(name: str) -> SimulationMode:
    """Map a mode name to a :class:`SimulationMode`."""
    try:
        return MODE_NAMES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown mode {name!r}; choose from {sorted(MODE_NAMES)}"
        ) from None


def parse_kill_events(specs: Optional[list[str]]) -> AllocationSchedule:
    """Parse ``"4,5,6,7@1"`` kill specifications into a schedule.

    Each spec reads *remove threads <indices> after iteration <k>*; the
    phase label follows the apps' ``iter<k>`` convention.
    """
    if not specs:
        return STATIC
    events = []
    for spec in specs:
        try:
            indices_part, phase_part = spec.split("@", 1)
            indices = tuple(int(x) for x in indices_part.split(",") if x.strip())
            after = int(phase_part)
        except ValueError:
            raise ConfigurationError(
                f"bad kill spec {spec!r}; expected e.g. '4,5,6,7@1'"
            ) from None
        if not indices:
            raise ConfigurationError(f"kill spec {spec!r} removes no threads")
        events.append(AllocationEvent(f"iter{after}", "workers", indices))
    name = " + ".join(specs)
    return AllocationSchedule(events=tuple(events), name=f"kill {name}")


# --------------------------------------------------------------------------
# sections
# --------------------------------------------------------------------------


def _freeze_options(options: Optional[Mapping[str, Any]]) -> dict[str, Any]:
    if options is None:
        return {}
    if not isinstance(options, Mapping):
        raise ConfigurationError(
            f"options must be a table/dict, got {type(options).__name__}"
        )
    return dict(options)


@dataclass(frozen=True)
class AppSection:
    """What to run: a registered application (or cluster workload) name.

    ``options`` are keyword arguments of the app's config dataclass
    (``n``, ``r``, ``num_threads``, ...); the engine supplies ``mode``
    and ``schedule`` itself, so those keys are rejected here.
    """

    name: str = "lu"
    options: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "options", _freeze_options(self.options))
        for reserved in ("mode", "schedule"):
            if reserved in self.options:
                raise ConfigurationError(
                    f"app option {reserved!r} is reserved: set engine.mode / "
                    "top-level events instead"
                )


@dataclass(frozen=True)
class EngineSection:
    """Which engine executes the scenario, and how.

    ``mode`` and ``verify`` apply to the DPS engines (``sim``,
    ``testbed``); ``shards``/``shard_mode`` to the ``server`` engine
    (``shards > 1`` selects the sharded epoch-barrier engine).  ``seed``
    is the measurement seed: testbed noise for ``testbed``, the workload
    stream for ``server``, and the calibration cluster for calibrated
    ``sim`` platforms.
    """

    name: str = "sim"
    mode: str = "pdexec"
    seed: int = 1
    verify: bool = False
    shards: int = 1
    shard_mode: str = "auto"
    options: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "options", _freeze_options(self.options))
        if self.mode not in MODE_NAMES:
            raise ConfigurationError(
                f"unknown engine.mode {self.mode!r}; choose from "
                f"{sorted(MODE_NAMES)}"
            )
        if self.shards < 1:
            raise ConfigurationError("engine.shards must be >= 1")
        if self.shard_mode not in ("auto", "inprocess", "process"):
            raise ConfigurationError(
                f"unknown engine.shard_mode {self.shard_mode!r}; choose from "
                "['auto', 'inprocess', 'process']"
            )


@dataclass(frozen=True)
class ModelSection:
    """A registered model (net or CPU) plus its constructor options."""

    name: str
    options: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "options", _freeze_options(self.options))


@dataclass(frozen=True)
class ProviderSection:
    """Duration provider choice.

    ``auto`` derives the provider from the engine mode the way the CLI
    always has: ``direct`` mode runs kernels for real (wrapped in the
    persistent measure-first-n cache unless ``persist`` is false), the
    PDEXEC modes use the app's cost model.
    """

    name: str = "auto"
    options: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "options", _freeze_options(self.options))


@dataclass(frozen=True)
class PlatformSection:
    """Target platform: the paper cluster, optionally testbed-calibrated.

    ``calibrate=True`` replaces the paper's nominal network parameters
    with a (cached) latency/bandwidth fit measured against the
    ground-truth packet network — the sweep workflow.  ``options`` may
    override ``latency``/``bandwidth`` directly (what-if studies).
    """

    name: str = "paper"
    calibrate: bool = False
    options: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "options", _freeze_options(self.options))


@dataclass(frozen=True)
class ClusterSection:
    """The ``server`` engine's scenario shape (paper §9 workloads).

    Two workload modes:

    * **closed** (default): ``jobs`` specs are materialized up front by
      the registered workload generator, with ``interarrival`` as the
      mean job spacing — the original paper-scale form.  ``interarrival``
      is the deprecated alias for ``arrivals = {process = "poisson",
      mean_interarrival = ...}`` and keeps the historical closed
      semantics for bit-compatibility.
    * **open**: a non-empty ``arrivals`` table names a streaming arrival
      process (``process = "poisson" | "bursty" | "diurnal" | "trace"``)
      plus its parameters and a stop condition (``jobs`` and/or
      ``horizon``); jobs are generated lazily and memory stays bounded
      by the active-job count (see ``docs/workloads.md``).

    ``policy_options`` are keyword arguments of the policy factory —
    admission/autoscaling limits, and ``inner`` for wrapper policies.
    """

    nodes: int = 16
    jobs: int = 16
    interarrival: float = 25.0
    policy: str = "adaptive"
    nodes_per_job: int = 8
    efficiency_floor: float = 0.5
    max_nodes: int = 0  # 0: min(8, nodes), the CLI default
    arrivals: dict[str, Any] = field(default_factory=dict)
    policy_options: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "arrivals", _freeze_options(self.arrivals))
        object.__setattr__(
            self, "policy_options", _freeze_options(self.policy_options)
        )
        if self.nodes < 1:
            raise ConfigurationError("cluster.nodes must be >= 1")
        if self.jobs < 1:
            raise ConfigurationError("cluster.jobs must be >= 1")
        if self.interarrival <= 0:
            raise ConfigurationError("cluster.interarrival must be > 0")
        if self.arrivals and not isinstance(self.arrivals.get("process"), str):
            raise ConfigurationError(
                "cluster.arrivals needs a 'process' name (string); e.g. "
                'arrivals = {process = "poisson", mean_interarrival = 25.0, '
                "jobs = 1000}"
            )

    @property
    def job_max_nodes(self) -> int:
        """Per-job allocation cap handed to the workload generator."""
        return self.max_nodes or min(8, self.nodes)


@dataclass(frozen=True)
class FaultsSection:
    """Deterministic failure injection (see ``docs/faults.md``).

    ``events`` is a list of fault tables — ``{kind = "crash", node = 3,
    at = 120.0}`` and friends; the key vocabulary and numeric types are
    validated here (registry-free), per-kind semantics when the engine
    builds its :class:`~repro.faults.FaultPlan`, so registry-registered
    custom kinds parse cleanly.  ``seed = -1`` (the default) inherits
    ``engine.seed``; ``max_retries`` bounds per-job restarts on the
    server engines.
    """

    max_retries: int = 2
    seed: int = -1
    events: tuple = ()

    def __post_init__(self) -> None:
        from repro.faults import BUILTIN_FAULT_KINDS, event_from_dict

        if self.max_retries < 0:
            raise ConfigurationError("faults.max_retries must be >= 0")
        if not isinstance(self.events, (list, tuple)):
            raise ConfigurationError(
                "faults.events must be an array of fault tables, "
                f"got {type(self.events).__name__}"
            )
        normalized = []
        for raw in self.events:
            ev = event_from_dict(raw)
            kind = BUILTIN_FAULT_KINDS.get(ev.kind)
            if kind is not None:  # custom kinds validate at engine time
                kind.validate(ev)
            normalized.append(ev.to_dict())
        object.__setattr__(self, "events", tuple(normalized))


_SECTION_TYPES: dict[str, type] = {
    "app": AppSection,
    "engine": EngineSection,
    "netmodel": ModelSection,
    "cpumodel": ModelSection,
    "provider": ProviderSection,
    "platform": PlatformSection,
    "cluster": ClusterSection,
    "faults": FaultsSection,
}


def _section_from_dict(section: str, cls: type, payload: Any):
    if not isinstance(payload, Mapping):
        raise ConfigurationError(
            f"spec section {section!r} must be a table/dict, "
            f"got {type(payload).__name__}"
        )
    known = {f.name for f in dataclasses.fields(cls)}
    unknown = sorted(set(payload) - known)
    if unknown:
        raise ConfigurationError(
            f"unknown keys {unknown} in spec section {section!r}; "
            f"valid keys: {sorted(known)}"
        )
    return cls(**payload)


_INTERARRIVAL_WARNED = False


def _check_cluster_payload(payload: Mapping[str, Any]) -> None:
    """Validate the deprecated ``interarrival`` key against ``arrivals``.

    ``cluster.interarrival`` is the legacy spelling of
    ``cluster.arrivals = {process = "poisson", mean_interarrival = ...}``
    (closed semantics, kept for bit-compatibility).  Setting it warns
    once per process; setting both spellings with conflicting values is a
    configuration error.
    """
    global _INTERARRIVAL_WARNED
    if "interarrival" not in payload:
        return
    arrivals = payload.get("arrivals") or {}
    if isinstance(arrivals, Mapping) and arrivals:
        process = arrivals.get("process")
        mean = arrivals.get("mean_interarrival", 25.0)
        try:
            consistent = process == "poisson" and float(mean) == float(
                payload["interarrival"]
            )
        except (TypeError, ValueError):
            consistent = False
        if not consistent:
            raise ConfigurationError(
                "cluster.interarrival conflicts with cluster.arrivals "
                f"(interarrival={payload['interarrival']!r} vs "
                f"arrivals={dict(arrivals)!r}); drop the deprecated "
                "interarrival key"
            )
    if not _INTERARRIVAL_WARNED:
        _INTERARRIVAL_WARNED = True
        warnings.warn(
            "cluster.interarrival is deprecated; use cluster.arrivals = "
            '{process = "poisson", mean_interarrival = ...} instead',
            DeprecationWarning,
            stacklevel=4,
        )


# --------------------------------------------------------------------------
# the spec
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class ScenarioSpec:
    """One complete, serializable scenario description.

    ``events`` are dynamic-allocation kill specs in the CLI's
    ``"4,5@1"`` syntax (remove threads 4 and 5 after iteration 1),
    applied to apps that support a removal schedule.
    """

    name: str = "scenario"
    app: AppSection = field(default_factory=AppSection)
    engine: EngineSection = field(default_factory=EngineSection)
    netmodel: ModelSection = field(default_factory=lambda: ModelSection("star"))
    cpumodel: ModelSection = field(default_factory=lambda: ModelSection("shared"))
    provider: ProviderSection = field(default_factory=ProviderSection)
    platform: PlatformSection = field(default_factory=PlatformSection)
    cluster: ClusterSection = field(default_factory=ClusterSection)
    faults: FaultsSection = field(default_factory=FaultsSection)
    events: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("a scenario needs a non-empty name")
        object.__setattr__(self, "events", tuple(self.events))
        parse_kill_events(list(self.events))  # fail fast on bad syntax

    # ------------------------------------------------------------ schedule
    def schedule(self) -> AllocationSchedule:
        """The kill events compiled into an allocation schedule."""
        return parse_kill_events(list(self.events))

    def mode(self) -> SimulationMode:
        """The engine's simulation mode, parsed."""
        return parse_mode(self.engine.mode)

    # --------------------------------------------------------- serializing
    def to_dict(self) -> dict[str, Any]:
        """The canonical fully-expanded dict form.

        Every scalar field is explicit; empty ``options`` tables and
        empty ``events`` lists are omitted.  The result is its own fixed
        point: ``from_dict(d).to_dict() == d``.
        """
        payload: dict[str, Any] = {"name": self.name}
        for section in (
            "app", "engine", "netmodel", "cpumodel",
            "provider", "platform", "cluster",
        ):
            value = getattr(self, section)
            entry: dict[str, Any] = {}
            for f in dataclasses.fields(value):
                v = getattr(value, f.name)
                if isinstance(v, dict):
                    if v:  # empty option tables are omitted
                        entry[f.name] = dict(v)
                else:
                    entry[f.name] = v
            if section == "cluster" and entry.get("arrivals"):
                # An open-system spec: 'interarrival' would be the
                # deprecated alias, so the canonical form drops it.
                entry.pop("interarrival", None)
            payload[section] = entry
        if self.faults != FaultsSection():
            # Omitted when default so pre-fault specs keep their spec_key;
            # events serialize as the canonical per-event dicts.
            faults: dict[str, Any] = {
                "max_retries": self.faults.max_retries,
                "seed": self.faults.seed,
            }
            if self.faults.events:
                faults["events"] = [dict(e) for e in self.faults.events]
            payload["faults"] = faults
        if self.events:
            payload["events"] = list(self.events)
        return payload

    def to_json(self, indent: Optional[int] = 2) -> str:
        """The canonical dict rendered as JSON."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ScenarioSpec":
        """Build a spec from a (possibly partial) dict; defaults fill in."""
        if not isinstance(payload, Mapping):
            raise ConfigurationError(
                f"a scenario spec must be a table/dict, "
                f"got {type(payload).__name__}"
            )
        known = {"name", "events", *_SECTION_TYPES}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown top-level spec keys {unknown}; "
                f"valid keys: {sorted(known)}"
            )
        kwargs: dict[str, Any] = {}
        if "name" in payload:
            kwargs["name"] = str(payload["name"])
        for section, section_cls in _SECTION_TYPES.items():
            if section in payload:
                if section == "cluster" and isinstance(
                    payload[section], Mapping
                ):
                    _check_cluster_payload(payload[section])
                kwargs[section] = _section_from_dict(
                    section, section_cls, payload[section]
                )
        if "events" in payload:
            events = payload["events"]
            if isinstance(events, str):
                events = [events]
            kwargs["events"] = tuple(str(e) for e in events)
        try:
            return cls(**kwargs)
        except TypeError as exc:  # pragma: no cover - guarded above
            raise ConfigurationError(f"invalid scenario spec: {exc}") from None

    # -------------------------------------------------------------- files
    @classmethod
    def from_toml(cls, text: str) -> "ScenarioSpec":
        """Parse a TOML scenario document (requires Python >= 3.11)."""
        if tomllib is None:  # pragma: no cover - 3.10 only
            raise ConfigurationError(
                "TOML scenario specs need Python >= 3.11 (tomllib); "
                "use the JSON form instead"
            )
        try:
            return cls.from_dict(tomllib.loads(text))
        except tomllib.TOMLDecodeError as exc:
            raise ConfigurationError(f"invalid TOML scenario spec: {exc}") from None

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        """Parse a JSON scenario document."""
        try:
            return cls.from_dict(json.loads(text))
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"invalid JSON scenario spec: {exc}") from None

    @classmethod
    def from_file(cls, path: "str | Path") -> "ScenarioSpec":
        """Load a spec from a ``.toml`` or ``.json`` file (by suffix)."""
        path = Path(path)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise ConfigurationError(f"cannot read scenario spec: {exc}") from None
        suffix = path.suffix.lower()
        if suffix == ".toml":
            return cls.from_toml(text)
        if suffix == ".json":
            return cls.from_json(text)
        raise ConfigurationError(
            f"unknown scenario spec format {suffix!r} for {path.name}; "
            "expected .toml or .json"
        )


def load_spec(path: "str | Path") -> ScenarioSpec:
    """Convenience alias for :meth:`ScenarioSpec.from_file`."""
    return ScenarioSpec.from_file(path)
