"""Unified declarative scenario API: one spec, one registry, one entry point.

The subsystem the CLI, sweeps, benches and CI jobs all build on (see
``docs/scenarios.md``):

* :class:`~repro.scenario.spec.ScenarioSpec` — a serializable description
  of one run: app + options, performance models, duration provider,
  platform, engine (simulator / testbed / cluster server, optionally
  sharded), seeds and malleability events.  Loads from TOML, JSON or a
  plain dict; round-trips losslessly.
* :class:`~repro.scenario.registry.Registry` — name → plugin tables for
  apps, netmodels, cpumodels, providers, engines, workloads and
  scheduling policies; :func:`~repro.scenario.registry.default_registry`
  carries the built-ins, and new plugins snap in without CLI surgery.
* :func:`~repro.scenario.runner.run_scenario` — the single entry point:
  resolve, execute, and normalize any engine's native result into a
  :class:`~repro.scenario.runner.RunRecord` (makespan, per-phase
  efficiency, allocator/horizon/shard statistics).
"""

from repro.scenario.registry import (
    AppPlugin,
    Registry,
    WorkloadPlugin,
    default_registry,
)
from repro.scenario.runner import (
    PhaseRecord,
    RunRecord,
    calibration_key,
    run_scenario,
)
from repro.scenario.spec import (
    AppSection,
    ClusterSection,
    EngineSection,
    ModelSection,
    PlatformSection,
    ProviderSection,
    ScenarioSpec,
    load_spec,
)

__all__ = [
    "AppPlugin",
    "AppSection",
    "ClusterSection",
    "EngineSection",
    "ModelSection",
    "PhaseRecord",
    "PlatformSection",
    "ProviderSection",
    "Registry",
    "RunRecord",
    "ScenarioSpec",
    "WorkloadPlugin",
    "calibration_key",
    "default_registry",
    "load_spec",
    "run_scenario",
]
