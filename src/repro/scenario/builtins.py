"""Built-in plugins for the default scenario registry.

One place wires every name a :class:`~repro.scenario.spec.ScenarioSpec`
may use to the concrete classes of the repository:

* **apps** — ``lu``, ``stencil``, ``sort``, ``matmul``, ``imgpipe``;
* **netmodels** — ``star`` (equal share, the paper's model), ``maxmin``,
  ``packet``, ``backplane``, ``analytic``;
* **cpumodels** — ``shared`` (the simulator's), ``timeslice`` (the
  testbed's);
* **providers** — ``costmodel`` (PDEXEC), ``direct``,
  ``measure_first_n`` (plus the ``auto`` mode-derived default);
* **engines** — ``sim``, ``testbed``, ``server``;
* **workloads** — ``lu``, ``mixed`` cluster-server job streams;
* **policies** — ``static``, ``fcfs``, ``backfill``, ``equipartition``,
  ``adaptive`` schedulers.

Extension guide: register your own under a new name (see
``docs/scenarios.md``); the spec format never needs to change.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import ConfigurationError
from repro.scenario.registry import AppPlugin, Registry


def _strict(name: str, cls: Callable[..., Any]) -> Callable[..., Any]:
    """Wrap a model constructor so bad option names configuration-error."""

    def factory(*args: Any, **options: Any) -> Any:
        try:
            return cls(*args, **options)
        except TypeError as exc:
            raise ConfigurationError(
                f"invalid options for {name!r}: {exc}"
            ) from None

    return factory


# --------------------------------------------------------------------------
# apps
# --------------------------------------------------------------------------


def _install_apps(registry: Registry) -> None:
    from repro.apps.imgpipe import ImagePipelineApplication, ImagePipelineConfig
    from repro.apps.lu.app import LUApplication
    from repro.apps.lu.config import LUConfig
    from repro.apps.lu.costs import LUCostModel
    from repro.apps.matmul import MatmulApplication, MatmulConfig
    from repro.apps.sort import (
        SampleSortApplication,
        SampleSortConfig,
        SampleSortCostModel,
    )
    from repro.apps.stencil import (
        StencilApplication,
        StencilConfig,
        StencilCostModel,
    )
    from repro.sim.providers import MachineCostModel

    registry.register(
        "app",
        "lu",
        AppPlugin(
            name="lu",
            config_cls=LUConfig,
            build=LUApplication,
            cost_model=lambda machine, cfg: LUCostModel(machine, cfg.r),
            verify=lambda app, runtime: app.verify(runtime),
            supports_schedule=True,
            describe=lambda cfg: (
                f"LU {cfg.n}x{cfg.n}, r={cfg.r}, variant={cfg.variant_name}, "
                f"{cfg.num_threads} threads on {cfg.num_nodes} nodes, "
                f"schedule={cfg.schedule.name}"
            ),
        ),
    )
    registry.register(
        "app",
        "stencil",
        AppPlugin(
            name="stencil",
            config_cls=StencilConfig,
            build=StencilApplication,
            cost_model=lambda machine, cfg: StencilCostModel(
                machine, cfg.rows, cfg.n
            ),
            verify=lambda app, runtime: app.verify(runtime),
            supports_schedule=True,
            describe=lambda cfg: (
                f"stencil {cfg.n}x{cfg.n}, {cfg.stripes} stripes, "
                f"{cfg.iterations} iterations, "
                f"{'barrier' if cfg.barrier else 'pipelined'}, "
                f"{cfg.num_threads} threads on {cfg.num_nodes} nodes"
            ),
        ),
    )
    registry.register(
        "app",
        "sort",
        AppPlugin(
            name="sort",
            config_cls=SampleSortConfig,
            build=SampleSortApplication,
            cost_model=lambda machine, cfg: SampleSortCostModel(
                machine, cfg.block, cfg.num_threads
            ),
            verify=lambda app, runtime: app.verify(),
            describe=lambda cfg: (
                f"sample sort of {cfg.m} keys, "
                f"{cfg.num_threads} threads on {cfg.num_nodes} nodes"
            ),
        ),
    )
    registry.register(
        "app",
        "matmul",
        AppPlugin(
            name="matmul",
            config_cls=MatmulConfig,
            build=MatmulApplication,
            cost_model=lambda machine, cfg: MachineCostModel(machine),
            verify=lambda app, runtime: app.verify(),
            describe=lambda cfg: (
                f"matmul {cfg.n}x{cfg.n}, s={cfg.s}, "
                f"{cfg.num_threads} threads on {cfg.num_nodes} nodes"
            ),
        ),
    )
    registry.register(
        "app",
        "imgpipe",
        AppPlugin(
            name="imgpipe",
            config_cls=ImagePipelineConfig,
            build=ImagePipelineApplication,
            cost_model=lambda machine, cfg: MachineCostModel(machine),
            describe=lambda cfg: (
                f"imgpipe {cfg.frames} frames x {cfg.tiles_per_frame} tiles, "
                f"{cfg.num_threads} threads on {cfg.num_nodes} nodes"
            ),
        ),
    )


# --------------------------------------------------------------------------
# models
# --------------------------------------------------------------------------


def _install_netmodels(registry: Registry) -> None:
    from repro.netmodel.analytic import AnalyticNetwork
    from repro.netmodel.backplane import BackplaneStarNetwork
    from repro.netmodel.maxmin import MaxMinStarNetwork
    from repro.netmodel.packet import PacketNetwork
    from repro.netmodel.star import EqualShareStarNetwork

    registry.register("netmodel", "star", _strict("netmodel star", EqualShareStarNetwork))
    registry.register("netmodel", "maxmin", _strict("netmodel maxmin", MaxMinStarNetwork))
    registry.register("netmodel", "packet", _strict("netmodel packet", PacketNetwork))
    registry.register(
        "netmodel", "backplane", _strict("netmodel backplane", BackplaneStarNetwork)
    )
    registry.register("netmodel", "analytic", _strict("netmodel analytic", AnalyticNetwork))


def _install_cpumodels(registry: Registry) -> None:
    from repro.cpumodel.commcost import CommCostModel
    from repro.cpumodel.shared import SharedCpuModel
    from repro.cpumodel.timeslice import TimesliceCpuModel, TimesliceParams

    def shared(kernel: Any, platform: Any, **options: Any) -> Any:
        return _strict("cpumodel shared", SharedCpuModel)(
            kernel, CommCostModel(platform.comm_cost), **options
        )

    def timeslice(kernel: Any, platform: Any, **options: Any) -> Any:
        return _strict("cpumodel timeslice", TimesliceCpuModel)(
            kernel, TimesliceParams(), **options
        )

    registry.register("cpumodel", "shared", shared)
    registry.register("cpumodel", "timeslice", timeslice)


# --------------------------------------------------------------------------
# providers
# --------------------------------------------------------------------------


def _check_options(name: str, options: dict, valid: set[str]) -> None:
    unknown = sorted(set(options) - valid)
    if unknown:
        raise ConfigurationError(
            f"unknown provider options {unknown} for {name!r}; "
            f"valid: {sorted(valid)}"
        )


def _install_providers(registry: Registry) -> None:
    from repro.sim.providers import (
        CostModelProvider,
        DirectExecutionProvider,
        HostCalibration,
        MeasureFirstNProvider,
    )

    def costmodel(spec, plugin, cfg, platform, mode, options):
        _check_options("costmodel", options, set())
        return CostModelProvider(
            plugin.cost_model(platform.machine, cfg),
            run_kernels=mode.runs_kernels,
        )

    def direct(spec, plugin, cfg, platform, mode, options):
        _check_options("direct", options, {"persist"})
        return DirectExecutionProvider(HostCalibration(platform.machine))

    def measure_first_n(spec, plugin, cfg, platform, mode, options):
        _check_options("measure_first_n", options, {"n", "persist"})
        return MeasureFirstNProvider(
            DirectExecutionProvider(HostCalibration(platform.machine)),
            n=int(options.get("n", 3)),
            run_kernels_after=mode.allocates,
            persist=bool(options.get("persist", True)),
        )

    registry.register("provider", "costmodel", costmodel)
    registry.register("provider", "direct", direct)
    registry.register("provider", "measure_first_n", measure_first_n)


# --------------------------------------------------------------------------
# engines, workloads, policies
# --------------------------------------------------------------------------


def _install_engines(registry: Registry) -> None:
    from repro.scenario.runner import run_server, run_sim, run_testbed

    registry.register("engine", "sim", run_sim)
    registry.register("engine", "testbed", run_testbed)
    registry.register("engine", "server", run_server)


def _install_workloads(registry: Registry) -> None:
    from repro.clusterserver.workload import mixed_workload, synthetic_workload

    registry.register("workload", "lu", synthetic_workload)
    registry.register("workload", "mixed", mixed_workload)


def _install_policies(registry: Registry) -> None:
    from repro.clusterserver.scheduler import (
        AdaptiveEfficiencyScheduler,
        EquipartitionScheduler,
        FcfsScheduler,
        StaticScheduler,
    )

    registry.register(
        "policy", "static", lambda c: StaticScheduler(c.nodes_per_job)
    )
    registry.register("policy", "fcfs", lambda c: FcfsScheduler())
    registry.register(
        "policy", "backfill", lambda c: FcfsScheduler(backfill=True)
    )
    registry.register(
        "policy", "equipartition", lambda c: EquipartitionScheduler()
    )
    registry.register(
        "policy",
        "adaptive",
        lambda c: AdaptiveEfficiencyScheduler(c.efficiency_floor),
    )


def install_builtins(registry: Registry) -> Registry:
    """Install every built-in plugin into ``registry``; returns it."""
    _install_apps(registry)
    _install_netmodels(registry)
    _install_cpumodels(registry)
    _install_providers(registry)
    _install_engines(registry)
    _install_workloads(registry)
    _install_policies(registry)
    return registry
