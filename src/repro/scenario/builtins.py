"""Built-in plugins for the default scenario registry.

One place wires every name a :class:`~repro.scenario.spec.ScenarioSpec`
may use to the concrete classes of the repository:

* **apps** — ``lu``, ``stencil``, ``sort``, ``matmul``, ``imgpipe``;
* **netmodels** — ``star`` (equal share, the paper's model), ``maxmin``,
  ``packet``, ``backplane``, ``analytic``, plus the numpy
  structure-of-arrays variants ``star-soa``, ``maxmin-soa``,
  ``packet-soa`` (scalar fallback when numpy is absent);
* **cpumodels** — ``shared`` (the simulator's), ``timeslice`` (the
  testbed's), plus ``shared-soa`` / ``timeslice-soa``;
* **providers** — ``costmodel`` (PDEXEC), ``direct``,
  ``measure_first_n`` (plus the ``auto`` mode-derived default);
* **engines** — ``sim``, ``testbed``, ``server``;
* **workloads** — ``lu``, ``mixed`` closed job lists plus the open-system
  ``poisson``, ``bursty``, ``diurnal``, ``trace`` arrival streams;
* **policies** — ``static``, ``fcfs``, ``backfill``, ``equipartition``,
  ``adaptive`` schedulers plus the ``admission`` and ``autoscale``
  wrappers.

Extension guide: register your own under a new name (see
``docs/scenarios.md``); the spec format never needs to change.
"""

from __future__ import annotations

import sys
from typing import Any, Callable

from repro.errors import ConfigurationError
from repro.scenario.registry import AppPlugin, Registry, WorkloadPlugin


def _strict(name: str, cls: Callable[..., Any]) -> Callable[..., Any]:
    """Wrap a model constructor so bad option names configuration-error."""

    def factory(*args: Any, **options: Any) -> Any:
        try:
            return cls(*args, **options)
        except TypeError as exc:
            raise ConfigurationError(
                f"invalid options for {name!r}: {exc}"
            ) from None

    return factory


def _stderr_hint(message: str) -> None:
    print(message, file=sys.stderr)


def _soa_or_scalar(
    name: str,
    load_soa: Callable[[], Callable[..., Any]],
    scalar_factory: Callable[..., Any],
) -> Callable[..., Any]:
    """A ``*-soa`` plugin factory with the graceful scalar fallback.

    With numpy present the SoA class (imported lazily — its module chain
    needs numpy) is built strictly; without it the scalar equivalent runs
    instead, after a one-line hint (not an error) on stderr.  The SoA
    models accept a subset of the scalar options, so every spec that
    resolves on a numpy-less install resolves identically on a full one.
    """

    def factory(*args: Any, **options: Any) -> Any:
        from repro.des.soa import emit_numpy_hint_once, soa_available

        if soa_available():
            return _strict(name, load_soa())(*args, **options)
        emit_numpy_hint_once(_stderr_hint)
        return scalar_factory(*args, **options)

    return factory


# --------------------------------------------------------------------------
# apps
# --------------------------------------------------------------------------


def _install_apps(registry: Registry) -> None:
    from repro.apps.imgpipe import ImagePipelineApplication, ImagePipelineConfig
    from repro.apps.lu.app import LUApplication
    from repro.apps.lu.config import LUConfig
    from repro.apps.lu.costs import LUCostModel
    from repro.apps.matmul import MatmulApplication, MatmulConfig
    from repro.apps.sort import (
        SampleSortApplication,
        SampleSortConfig,
        SampleSortCostModel,
    )
    from repro.apps.stencil import (
        StencilApplication,
        StencilConfig,
        StencilCostModel,
    )
    from repro.sim.providers import MachineCostModel

    registry.register(
        "app",
        "lu",
        AppPlugin(
            name="lu",
            config_cls=LUConfig,
            build=LUApplication,
            cost_model=lambda machine, cfg: LUCostModel(machine, cfg.r),
            verify=lambda app, runtime: app.verify(runtime),
            supports_schedule=True,
            describe=lambda cfg: (
                f"LU {cfg.n}x{cfg.n}, r={cfg.r}, variant={cfg.variant_name}, "
                f"{cfg.num_threads} threads on {cfg.num_nodes} nodes, "
                f"schedule={cfg.schedule.name}"
            ),
        ),
    )
    registry.register(
        "app",
        "stencil",
        AppPlugin(
            name="stencil",
            config_cls=StencilConfig,
            build=StencilApplication,
            cost_model=lambda machine, cfg: StencilCostModel(
                machine, cfg.rows, cfg.n
            ),
            verify=lambda app, runtime: app.verify(runtime),
            supports_schedule=True,
            describe=lambda cfg: (
                f"stencil {cfg.n}x{cfg.n}, {cfg.stripes} stripes, "
                f"{cfg.iterations} iterations, "
                f"{'barrier' if cfg.barrier else 'pipelined'}, "
                f"{cfg.num_threads} threads on {cfg.num_nodes} nodes"
            ),
        ),
    )
    registry.register(
        "app",
        "sort",
        AppPlugin(
            name="sort",
            config_cls=SampleSortConfig,
            build=SampleSortApplication,
            cost_model=lambda machine, cfg: SampleSortCostModel(
                machine, cfg.block, cfg.num_threads
            ),
            verify=lambda app, runtime: app.verify(),
            describe=lambda cfg: (
                f"sample sort of {cfg.m} keys, "
                f"{cfg.num_threads} threads on {cfg.num_nodes} nodes"
            ),
        ),
    )
    registry.register(
        "app",
        "matmul",
        AppPlugin(
            name="matmul",
            config_cls=MatmulConfig,
            build=MatmulApplication,
            cost_model=lambda machine, cfg: MachineCostModel(machine),
            verify=lambda app, runtime: app.verify(),
            describe=lambda cfg: (
                f"matmul {cfg.n}x{cfg.n}, s={cfg.s}, "
                f"{cfg.num_threads} threads on {cfg.num_nodes} nodes"
            ),
        ),
    )
    registry.register(
        "app",
        "imgpipe",
        AppPlugin(
            name="imgpipe",
            config_cls=ImagePipelineConfig,
            build=ImagePipelineApplication,
            cost_model=lambda machine, cfg: MachineCostModel(machine),
            describe=lambda cfg: (
                f"imgpipe {cfg.frames} frames x {cfg.tiles_per_frame} tiles, "
                f"{cfg.num_threads} threads on {cfg.num_nodes} nodes"
            ),
        ),
    )


# --------------------------------------------------------------------------
# models
# --------------------------------------------------------------------------


def _install_netmodels(registry: Registry) -> None:
    from repro.netmodel.analytic import AnalyticNetwork
    from repro.netmodel.backplane import BackplaneStarNetwork
    from repro.netmodel.maxmin import MaxMinStarNetwork
    from repro.netmodel.star import EqualShareStarNetwork

    def packet_scalar(*args: Any, **options: Any) -> Any:
        # Lazy: the scalar packet model seeds its noise through numpy's
        # RNG, and the registry must import on numpy-less installs.
        from repro.netmodel.packet import PacketNetwork

        return _strict("netmodel packet", PacketNetwork)(*args, **options)

    def _soa(attr: str) -> Callable[[], Callable[..., Any]]:
        def load() -> Callable[..., Any]:
            from repro.netmodel import soa

            return getattr(soa, attr)

        return load

    registry.register(
        "netmodel", "star",
        _strict("netmodel star", EqualShareStarNetwork),
        description="equal-share star, the paper's model (scalar backend)",
    )
    registry.register(
        "netmodel", "maxmin",
        _strict("netmodel maxmin", MaxMinStarNetwork),
        description="max-min fair star, incremental water-fill (scalar backend)",
    )
    registry.register(
        "netmodel", "packet",
        packet_scalar,
        description="chunked noisy testbed network (scalar backend)",
    )
    registry.register(
        "netmodel", "backplane",
        _strict("netmodel backplane", BackplaneStarNetwork),
        description="star with a shared-backplane cap (scalar backend)",
    )
    registry.register(
        "netmodel", "analytic",
        _strict("netmodel analytic", AnalyticNetwork),
        description="contention-free closed-form latency+size (scalar backend)",
    )
    registry.register(
        "netmodel", "star-soa",
        _soa_or_scalar(
            "netmodel star-soa",
            _soa("EqualShareStarNetworkSoA"),
            _strict("netmodel star-soa", EqualShareStarNetwork),
        ),
        description="equal-share star over numpy arrays (soa backend)",
    )
    registry.register(
        "netmodel", "maxmin-soa",
        _soa_or_scalar(
            "netmodel maxmin-soa",
            _soa("MaxMinStarNetworkSoA"),
            _strict("netmodel maxmin-soa", MaxMinStarNetwork),
        ),
        description="max-min fair star over numpy arrays (soa backend)",
    )
    registry.register(
        "netmodel", "packet-soa",
        _soa_or_scalar(
            "netmodel packet-soa", _soa("PacketNetworkSoA"), packet_scalar
        ),
        description="chunked noisy network over numpy arrays (soa backend)",
    )


def _install_cpumodels(registry: Registry) -> None:
    from repro.cpumodel.commcost import CommCostModel
    from repro.cpumodel.shared import SharedCpuModel

    def shared(kernel: Any, platform: Any, **options: Any) -> Any:
        return _strict("cpumodel shared", SharedCpuModel)(
            kernel, CommCostModel(platform.comm_cost), **options
        )

    def timeslice(kernel: Any, platform: Any, **options: Any) -> Any:
        # Lazy: the timeslice model seeds its OS noise through numpy's
        # RNG, and the registry must import on numpy-less installs.
        from repro.cpumodel.timeslice import TimesliceCpuModel, TimesliceParams

        return _strict("cpumodel timeslice", TimesliceCpuModel)(
            kernel, TimesliceParams(), **options
        )

    def shared_soa(kernel: Any, platform: Any, **options: Any) -> Any:
        def load() -> Any:
            from repro.cpumodel.soa import SharedCpuModelSoA

            return SharedCpuModelSoA

        factory = _soa_or_scalar(
            "cpumodel shared-soa",
            load,
            _strict("cpumodel shared-soa", SharedCpuModel),
        )
        return factory(kernel, CommCostModel(platform.comm_cost), **options)

    def timeslice_soa(kernel: Any, platform: Any, **options: Any) -> Any:
        def load() -> Any:
            from repro.cpumodel.soa import TimesliceCpuModelSoA

            return TimesliceCpuModelSoA

        def scalar(*args: Any, **kw: Any) -> Any:
            from repro.cpumodel.timeslice import TimesliceCpuModel

            return _strict("cpumodel timeslice-soa", TimesliceCpuModel)(
                *args, **kw
            )

        # Both backends default their TimesliceParams internally, so the
        # hint still fires before any numpy-needing import on the
        # fallback path.
        return _soa_or_scalar("cpumodel timeslice-soa", load, scalar)(
            kernel, **options
        )

    registry.register(
        "cpumodel", "shared",
        shared,
        description="even-share fluid CPU, the paper's model (scalar backend)",
    )
    registry.register(
        "cpumodel", "timeslice",
        timeslice,
        description="noisy overhead-laden testbed CPU (scalar backend)",
    )
    registry.register(
        "cpumodel", "shared-soa",
        shared_soa,
        description="even-share fluid CPU over numpy arrays (soa backend)",
    )
    registry.register(
        "cpumodel", "timeslice-soa",
        timeslice_soa,
        description="noisy testbed CPU over numpy arrays (soa backend)",
    )


# --------------------------------------------------------------------------
# providers
# --------------------------------------------------------------------------


def _check_options(name: str, options: dict, valid: set[str]) -> None:
    unknown = sorted(set(options) - valid)
    if unknown:
        raise ConfigurationError(
            f"unknown provider options {unknown} for {name!r}; "
            f"valid: {sorted(valid)}"
        )


def _install_providers(registry: Registry) -> None:
    from repro.sim.providers import (
        CostModelProvider,
        DirectExecutionProvider,
        HostCalibration,
        MeasureFirstNProvider,
    )

    def costmodel(spec, plugin, cfg, platform, mode, options):
        _check_options("costmodel", options, set())
        return CostModelProvider(
            plugin.cost_model(platform.machine, cfg),
            run_kernels=mode.runs_kernels,
        )

    def direct(spec, plugin, cfg, platform, mode, options):
        _check_options("direct", options, {"persist"})
        return DirectExecutionProvider(HostCalibration(platform.machine))

    def measure_first_n(spec, plugin, cfg, platform, mode, options):
        _check_options("measure_first_n", options, {"n", "persist"})
        return MeasureFirstNProvider(
            DirectExecutionProvider(HostCalibration(platform.machine)),
            n=int(options.get("n", 3)),
            run_kernels_after=mode.allocates,
            persist=bool(options.get("persist", True)),
        )

    registry.register("provider", "costmodel", costmodel)
    registry.register("provider", "direct", direct)
    registry.register("provider", "measure_first_n", measure_first_n)


# --------------------------------------------------------------------------
# engines, workloads, policies
# --------------------------------------------------------------------------


def _install_engines(registry: Registry) -> None:
    from repro.scenario.runner import run_server, run_sim, run_testbed

    registry.register("engine", "sim", run_sim)
    registry.register("engine", "testbed", run_testbed)
    registry.register("engine", "server", run_server)


def _install_workloads(registry: Registry) -> None:
    from repro.clusterserver.arrivals import (
        bursty_arrivals,
        closed_stream,
        diurnal_arrivals,
        poisson_arrivals,
        trace_arrivals,
    )
    from repro.clusterserver.workload import mixed_workload, synthetic_workload

    def _stream_call(name: str, fn: Callable[..., Any], kwargs: dict) -> Any:
        try:
            return fn(**kwargs)
        except TypeError as exc:
            raise ConfigurationError(
                f"invalid cluster.arrivals options for {name!r}: {exc}"
            ) from None

    def _synthetic_stream(name: str, fn: Callable[..., Any]):
        """Adapt a shape-sampling generator to the stream contract."""

        def stream(cluster: Any, seed: int, shape: str, params: dict) -> Any:
            kwargs = dict(params)
            kwargs.setdefault("shape", shape)
            kwargs.setdefault("seed", seed)
            kwargs.setdefault("max_nodes", cluster.job_max_nodes)
            if "jobs" not in kwargs and "horizon" not in kwargs:
                kwargs["jobs"] = cluster.jobs
            return _stream_call(name, fn, kwargs)

        return stream

    def _closed_as_stream(name: str, fn: Callable[..., Any]):
        """A closed generator replayed through the stream interface."""

        def stream(cluster: Any, seed: int, shape: str, params: dict) -> Any:
            kwargs = dict(params)
            kwargs.setdefault("seed", seed)
            kwargs.setdefault("max_nodes", cluster.job_max_nodes)
            kwargs.setdefault("jobs", cluster.jobs)
            return closed_stream(_stream_call(name, fn, kwargs))

        return stream

    def _trace_stream(cluster: Any, seed: int, shape: str, params: dict) -> Any:
        return _stream_call("trace", trace_arrivals, dict(params))

    registry.register(
        "workload",
        "lu",
        WorkloadPlugin(
            name="lu",
            closed=synthetic_workload,
            stream=_closed_as_stream("lu", synthetic_workload),
            description="LU-like malleable jobs, Poisson spacing (closed)",
        ),
        description="LU-like malleable jobs, Poisson spacing (closed)",
    )
    registry.register(
        "workload",
        "mixed",
        WorkloadPlugin(
            name="mixed",
            closed=mixed_workload,
            stream=_closed_as_stream("mixed", mixed_workload),
            description="mixed LU/stencil/ramp-up job families (closed)",
        ),
        description="mixed LU/stencil/ramp-up job families (closed)",
    )
    registry.register(
        "workload",
        "poisson",
        WorkloadPlugin(
            name="poisson",
            stream=_synthetic_stream("poisson", poisson_arrivals),
            description="open stream: constant-rate memoryless arrivals",
        ),
        description="open stream: constant-rate memoryless arrivals",
    )
    registry.register(
        "workload",
        "bursty",
        WorkloadPlugin(
            name="bursty",
            stream=_synthetic_stream("bursty", bursty_arrivals),
            description="open stream: two-state MMPP quiet/burst phases",
        ),
        description="open stream: two-state MMPP quiet/burst phases",
    )
    registry.register(
        "workload",
        "diurnal",
        WorkloadPlugin(
            name="diurnal",
            stream=_synthetic_stream("diurnal", diurnal_arrivals),
            description="open stream: sinusoidal daily-cycle arrival rate",
        ),
        description="open stream: sinusoidal daily-cycle arrival rate",
    )
    registry.register(
        "workload",
        "trace",
        WorkloadPlugin(
            name="trace",
            stream=_trace_stream,
            description="open stream: JSON-lines trace replay (path = ...)",
        ),
        description="open stream: JSON-lines trace replay (path = ...)",
    )


def _install_policies(registry: Registry) -> None:
    import dataclasses

    from repro.clusterserver.scheduler import (
        AdaptiveEfficiencyScheduler,
        AdmissionControlScheduler,
        AutoscalingScheduler,
        EquipartitionScheduler,
        FcfsScheduler,
        StaticScheduler,
    )

    def plain(make: Callable[[Any], Any]) -> Callable[[Any], Any]:
        """Plain policies take no policy_options — reject them loudly."""

        def factory(c: Any) -> Any:
            if c.policy_options:
                raise ConfigurationError(
                    f"policy {c.policy!r} takes no policy_options "
                    f"({sorted(c.policy_options)} given); only 'admission' "
                    "and 'autoscale' are configurable"
                )
            return make(c)

        return factory

    def wrapper(name: str, cls: Callable[..., Any]) -> Callable[[Any], Any]:
        """Admission/autoscaling wrap an inner policy named in options."""

        def factory(c: Any) -> Any:
            options = dict(c.policy_options)
            inner_name = str(options.pop("inner", "adaptive"))
            inner_section = dataclasses.replace(
                c, policy=inner_name, policy_options={}
            )
            inner = registry.resolve("policy", inner_name)(inner_section)
            try:
                return cls(inner, **options)
            except TypeError as exc:
                raise ConfigurationError(
                    f"invalid policy_options for {name!r}: {exc}"
                ) from None

        return factory

    registry.register(
        "policy",
        "static",
        plain(lambda c: StaticScheduler(c.nodes_per_job)),
        description="fixed nodes_per_job grant, FCFS admission",
    )
    registry.register(
        "policy",
        "fcfs",
        plain(lambda c: FcfsScheduler()),
        description="first-come-first-served up to each job's maximum",
    )
    registry.register(
        "policy",
        "backfill",
        plain(lambda c: FcfsScheduler(backfill=True)),
        description="FCFS with backfilling of later runnable jobs",
    )
    registry.register(
        "policy",
        "equipartition",
        plain(lambda c: EquipartitionScheduler()),
        description="equal node shares across running jobs",
    )
    registry.register(
        "policy",
        "adaptive",
        plain(lambda c: AdaptiveEfficiencyScheduler(c.efficiency_floor)),
        description="efficiency-aware shares (paper's dynamic policy)",
    )
    registry.register(
        "policy",
        "admission",
        wrapper("admission", AdmissionControlScheduler),
        description=(
            "admission control around an inner policy "
            "(max_active/max_queued/load_max, defer)"
        ),
    )
    registry.register(
        "policy",
        "autoscale",
        wrapper("autoscale", AutoscalingScheduler),
        description=(
            "utilization-driven node-pool autoscaling around an inner "
            "policy"
        ),
    )


def _install_faults(registry: Registry) -> None:
    from repro.faults import BUILTIN_FAULT_KINDS

    for kind in BUILTIN_FAULT_KINDS.values():
        registry.register(
            "fault", kind.name, kind, description=kind.description
        )


def install_builtins(registry: Registry) -> Registry:
    """Install every built-in plugin into ``registry``; returns it."""
    _install_apps(registry)
    _install_netmodels(registry)
    _install_cpumodels(registry)
    _install_providers(registry)
    _install_engines(registry)
    _install_workloads(registry)
    _install_policies(registry)
    _install_faults(registry)
    return registry
