"""Shared plumbing for the command-line interface.

The CLI mirrors the paper's workflow: the same application object runs
under the simulator (*prediction*) or on the virtual cluster
(*measurement*), selected by ``--engine``; ``--engine both`` reports the
prediction error, the quantity Fig. 13 histograms.

Since the scenario subsystem landed, every app subcommand is a thin shell
over :mod:`repro.scenario`: the argparse options are folded into a
:class:`~repro.scenario.spec.ScenarioSpec` and executed through
:func:`~repro.scenario.runner.run_scenario`, so ``repro lu ...`` and the
equivalent ``repro run lu.toml`` produce identical
:class:`~repro.scenario.runner.RunRecord` metrics by construction.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
from pathlib import Path
from typing import Optional

# Canonical definitions live with the scenario spec; re-exported here for
# compatibility (tests and external callers import them from this module).
from repro.scenario.spec import (  # noqa: F401  (re-exports)
    MODE_NAMES,
    parse_kill_events,
    parse_mode,
)
from repro.scenario import (
    AppSection,
    EngineSection,
    ModelSection,
    ProviderSection,
    RunRecord,
    ScenarioSpec,
    default_registry,
    run_scenario,
)


def add_engine_options(parser: argparse.ArgumentParser) -> None:
    """Attach the engine/mode/seed options every app command shares."""
    parser.add_argument(
        "--engine",
        choices=("sim", "testbed", "both"),
        default="sim",
        help="prediction (sim), measurement (testbed), or both + error",
    )
    parser.add_argument(
        "--mode",
        choices=sorted(MODE_NAMES),
        default="pdexec",
        help="pdexec keeps payloads (verifiable); noalloc elides them",
    )
    parser.add_argument(
        "--seed", type=int, default=1, help="testbed noise seed (one 'run')"
    )
    parser.add_argument(
        "--verify",
        action="store_true",
        help="check the numerical result (needs --mode pdexec)",
    )
    parser.add_argument(
        "--netmodel",
        default=None,
        metavar="NAME",
        help="network model plugin for the sim engine (e.g. maxmin, "
        "maxmin-soa; see 'repro scenarios list'); default: star",
    )
    parser.add_argument(
        "--cpumodel",
        default=None,
        metavar="NAME",
        help="CPU model plugin for the sim engine (e.g. shared, "
        "shared-soa; see 'repro scenarios list'); default: shared",
    )
    parser.add_argument(
        "--persist-cache",
        action=argparse.BooleanOptionalAction,
        default=None,
        help="persist direct-execution kernel benchmarks on disk and wrap "
        "them in the measure-first-n provider (default for --mode direct; "
        "--no-persist-cache restores raw per-invocation timing)",
    )
    parser.add_argument(
        "--record-json",
        metavar="PATH",
        default=None,
        help="also write the normalized RunRecord(s) as a JSON list",
    )


def scenario_from_args(
    app: str,
    args: argparse.Namespace,
    options: dict,
    name: Optional[str] = None,
) -> ScenarioSpec:
    """Fold an app subcommand's argparse namespace into a scenario spec.

    The returned spec carries ``engine.name="sim"``; callers switch it to
    ``testbed`` with :func:`dataclasses.replace` for the measurement leg.
    """
    provider_options = {}
    persist = getattr(args, "persist_cache", None)
    if persist is not None:
        provider_options["persist"] = bool(persist)
    events = tuple(getattr(args, "kill", None) or ())
    # --netmodel/--cpumodel select model plugins (e.g. the *-soa numpy
    # backends); left at None, the spec's defaults apply.
    model_sections = {}
    if getattr(args, "netmodel", None):
        model_sections["netmodel"] = ModelSection(str(args.netmodel))
    if getattr(args, "cpumodel", None):
        model_sections["cpumodel"] = ModelSection(str(args.cpumodel))
    return ScenarioSpec(
        name=name or app,
        app=AppSection(app, dict(options)),
        engine=EngineSection(
            name="sim",
            mode=args.mode,
            seed=args.seed,
            verify=args.verify,
        ),
        provider=ProviderSection("auto", provider_options),
        events=events,
        **model_sections,
    )


def write_records(path: str, records: list[RunRecord]) -> None:
    """Dump normalized run records as a JSON list (``--record-json``)."""
    Path(path).write_text(
        json.dumps([r.to_dict() for r in records], indent=2, sort_keys=True),
        encoding="utf-8",
    )


def run_app(
    args: argparse.Namespace,
    app: str,
    options: dict,
    name: Optional[str] = None,
) -> int:
    """Run an app subcommand per the engine options and print the outcome.

    Prints the app's one-line description, then the prediction and/or
    measurement results in the classic format; ``--engine both`` adds the
    signed relative prediction error.
    """
    spec = scenario_from_args(app, args, options, name=name)
    plugin = default_registry().resolve("app", app)
    cfg = plugin.make_config(spec)  # validates options up front
    if plugin.describe is not None:
        print(plugin.describe(cfg))

    records: list[RunRecord] = []
    predicted = measured = None
    if args.engine in ("sim", "both"):
        record = run_scenario(
            dataclasses.replace(
                spec, engine=dataclasses.replace(spec.engine, name="sim")
            )
        )
        predicted = record.makespan
        print(f"predicted running time : {predicted:.4f} s")
        print(f"simulation wall time   : {record.wall_time_s:.4f} s")
        print(f"kernel events          : {record.events}")
        if record.verified:
            print("verification           : OK")
        records.append(record)
    if args.engine in ("testbed", "both"):
        record = run_scenario(
            dataclasses.replace(
                spec, engine=dataclasses.replace(spec.engine, name="testbed")
            )
        )
        measured = record.makespan
        print(f"measured running time  : {measured:.4f} s")
        if record.verified:
            print("verification           : OK")
        records.append(record)
    if predicted is not None and measured is not None:
        error = (predicted - measured) / measured
        print(f"prediction error       : {error:+.2%}")
    if getattr(args, "record_json", None):
        write_records(args.record_json, records)
    return 0
