"""Shared plumbing for the command-line interface.

The CLI mirrors the paper's workflow: the same application object runs
under the simulator (*prediction*) or on the virtual cluster
(*measurement*), selected by ``--engine``; ``--engine both`` reports the
prediction error, the quantity Fig. 13 histograms.
"""

from __future__ import annotations

import argparse
from typing import Callable, Optional

from repro.apps.base import Application
from repro.dps.malleability import STATIC, AllocationEvent, AllocationSchedule
from repro.dps.runtime import DurationProvider
from repro.errors import ConfigurationError
from repro.sim.modes import SimulationMode
from repro.sim.platform import PAPER_CLUSTER, PlatformSpec
from repro.sim.providers import CostModelProvider
from repro.sim.simulator import DPSSimulator
from repro.testbed.cluster import VirtualCluster
from repro.testbed.executor import TestbedExecutor

#: CLI names for the simulation modes
MODE_NAMES = {
    "direct": SimulationMode.DIRECT,
    "pdexec": SimulationMode.PDEXEC,
    "noalloc": SimulationMode.PDEXEC_NOALLOC,
}


def parse_mode(name: str) -> SimulationMode:
    """Map a CLI mode name to a :class:`SimulationMode`."""
    try:
        return MODE_NAMES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown mode {name!r}; choose from {sorted(MODE_NAMES)}"
        ) from None


def parse_kill_events(specs: Optional[list[str]]) -> AllocationSchedule:
    """Parse ``--kill "4,5,6,7@1"`` specifications into a schedule.

    Each spec reads *remove threads <indices> after iteration <k>*; the
    phase label follows the apps' ``iter<k>`` convention.
    """
    if not specs:
        return STATIC
    events = []
    for spec in specs:
        try:
            indices_part, phase_part = spec.split("@", 1)
            indices = tuple(int(x) for x in indices_part.split(",") if x.strip())
            after = int(phase_part)
        except ValueError:
            raise ConfigurationError(
                f"bad --kill spec {spec!r}; expected e.g. '4,5,6,7@1'"
            ) from None
        if not indices:
            raise ConfigurationError(f"--kill spec {spec!r} removes no threads")
        events.append(AllocationEvent(f"iter{after}", "workers", indices))
    name = " + ".join(specs)
    return AllocationSchedule(events=tuple(events), name=f"kill {name}")


def add_engine_options(parser: argparse.ArgumentParser) -> None:
    """Attach the engine/mode/seed options every app command shares."""
    parser.add_argument(
        "--engine",
        choices=("sim", "testbed", "both"),
        default="sim",
        help="prediction (sim), measurement (testbed), or both + error",
    )
    parser.add_argument(
        "--mode",
        choices=sorted(MODE_NAMES),
        default="pdexec",
        help="pdexec keeps payloads (verifiable); noalloc elides them",
    )
    parser.add_argument(
        "--seed", type=int, default=1, help="testbed noise seed (one 'run')"
    )
    parser.add_argument(
        "--verify",
        action="store_true",
        help="check the numerical result (needs --mode pdexec)",
    )


def run_app(
    args: argparse.Namespace,
    build_app: Callable[[], Application],
    cost_model_factory: Callable[[], "object"],
    num_nodes: int,
    verify: Optional[Callable[[Application, object], None]] = None,
    platform: Optional[PlatformSpec] = None,
) -> int:
    """Run an application per the engine options and print the outcome."""
    mode = parse_mode(args.mode)
    run_kernels = mode.runs_kernels
    platform = platform or PAPER_CLUSTER

    predicted = measured = None
    if args.engine in ("sim", "both"):
        app = build_app()
        provider: DurationProvider
        if mode is SimulationMode.DIRECT:
            # Direct execution: time the real kernels on this host, scale
            # to the target machine (Table 1's first simulator mode).
            from repro.sim.providers import DirectExecutionProvider, HostCalibration

            provider = DirectExecutionProvider(
                HostCalibration(platform.machine)
            )
        else:
            provider = CostModelProvider(
                cost_model_factory(), run_kernels=run_kernels
            )
        result = DPSSimulator(platform, provider).run(app)
        predicted = result.predicted_time
        print(f"predicted running time : {predicted:.4f} s")
        print(f"simulation wall time   : {result.simulation_wall_time:.4f} s")
        print(f"kernel events          : {result.events}")
        if args.verify and verify is not None:
            verify(app, result.runtime)
            print("verification           : OK")
    if args.engine in ("testbed", "both"):
        app = build_app()
        cluster = VirtualCluster(num_nodes=num_nodes, seed=args.seed)
        measurement = TestbedExecutor(cluster, run_kernels=run_kernels).run(app)
        measured = measurement.measured_time
        print(f"measured running time  : {measured:.4f} s")
        if args.verify and verify is not None:
            verify(app, measurement.runtime)
            print("verification           : OK")
    if predicted is not None and measured is not None:
        error = (predicted - measured) / measured
        print(f"prediction error       : {error:+.2%}")
    return 0
