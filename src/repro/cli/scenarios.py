"""Scenario subcommands: ``repro run SPEC`` and ``repro scenarios list``.

``repro run`` executes one declarative scenario file (TOML or JSON, see
``docs/scenarios.md``) through :func:`~repro.scenario.runner.run_scenario`
and prints the normalized :class:`~repro.scenario.runner.RunRecord`;
``repro scenarios list`` shows every plugin the registry can resolve, so
a spec never has to be written blind.
"""

from __future__ import annotations

import argparse
import json

from repro.analysis.tables import ascii_table
from repro.cli.common import write_records
from repro.scenario import RunRecord, ScenarioSpec, default_registry, run_scenario


# --------------------------------------------------------------------------
# run
# --------------------------------------------------------------------------


def add_run_parser(sub: argparse._SubParsersAction) -> None:
    """Register the ``run`` subcommand."""
    p = sub.add_parser(
        "run",
        help="run a declarative scenario spec (TOML or JSON)",
        description=(
            "Load a scenario spec, execute it under its declared engine "
            "(simulator, testbed, or cluster server), and print the "
            "normalized run record — identical metrics to the equivalent "
            "app subcommand, by construction."
        ),
    )
    p.add_argument("spec", help="path to a .toml or .json scenario spec")
    p.add_argument(
        "--json",
        action="store_true",
        help="print the run record as JSON instead of the report",
    )
    p.add_argument(
        "--record-json",
        metavar="PATH",
        default=None,
        help="also write the normalized RunRecord as a JSON list",
    )
    p.set_defaults(func=cmd_run)


def _print_record(record: RunRecord) -> None:
    """Human-readable report of one normalized run record."""
    print(
        f"scenario {record.scenario!r}: app={record.app} "
        f"engine={record.engine}"
    )
    print(f"makespan               : {record.makespan:.4f} s")
    print(f"wall time              : {record.wall_time_s:.4f} s")
    print(f"events                 : {record.events}")
    if record.verified is not None:
        print(f"verification           : {'OK' if record.verified else 'FAILED'}")
    if record.phases:
        rows = [
            (
                p.label,
                f"{p.duration:.4f} s",
                f"{p.mean_nodes:.2f}",
                f"{p.efficiency:.1%}",
            )
            for p in record.phases
        ]
        print()
        print(ascii_table(
            ("phase", "duration", "mean nodes", "efficiency"),
            rows,
            title="per-phase dynamic efficiency",
        ))
    if record.metrics:
        print()
        width = max(len(k) for k in record.metrics)
        for key in sorted(record.metrics):
            value = record.metrics[key]
            rendered = f"{value:.6g}" if isinstance(value, float) else value
            print(f"  {key:<{width}} : {rendered}")


def cmd_run(args: argparse.Namespace) -> int:
    """Load, execute and report one scenario spec."""
    spec = ScenarioSpec.from_file(args.spec)
    record = run_scenario(spec)
    if args.json:
        print(json.dumps(record.to_dict(), indent=2, sort_keys=True))
    else:
        _print_record(record)
    if args.record_json:
        write_records(args.record_json, [record])
    return 0


# --------------------------------------------------------------------------
# scenarios
# --------------------------------------------------------------------------


def add_scenarios_parser(sub: argparse._SubParsersAction) -> None:
    """Register the ``scenarios`` subcommand."""
    p = sub.add_parser(
        "scenarios",
        help="inspect the scenario plugin registry",
        description=(
            "Discovery for the declarative scenario API: list every "
            "registered app, model, provider, engine, workload and "
            "scheduling policy a spec may name."
        ),
    )
    scen_sub = p.add_subparsers(dest="scenarios_command", required=True)
    list_p = scen_sub.add_parser(
        "list", help="list registered plugins, one line per kind"
    )
    list_p.add_argument(
        "--kind",
        choices=None,
        default=None,
        help="restrict to one plugin kind (e.g. app, netmodel, engine)",
    )
    list_p.set_defaults(func=cmd_scenarios_list)


def cmd_scenarios_list(args: argparse.Namespace) -> int:
    """Print the registry contents, one ``kind : names`` line each.

    Plugins registered with a description (the arrival processes and
    scheduling policies, notably) get an indented ``name - summary``
    line under their kind.
    """
    registry = default_registry()
    kinds = registry.kinds()
    if args.kind is not None:
        # Validate through the registry so the error lists valid kinds.
        registry.names(args.kind)
        kinds = (args.kind,)
    for kind in kinds:
        names = registry.names(kind)
        print(f"{kind:<9}: {', '.join(names)}")
        described = [
            (name, registry.describe(kind, name))
            for name in names
            if registry.describe(kind, name)
        ]
        if described:
            width = max(len(name) for name, _ in described)
            for name, description in described:
                print(f"    {name:<{width}} - {description}")
    return 0
