"""The ``server`` subcommand: cluster-level scheduling comparison (paper §9).

Each requested policy becomes one
:class:`~repro.scenario.spec.ScenarioSpec` with the ``server`` engine
(sharded when ``--shards > 1``) executed through
:func:`~repro.scenario.runner.run_scenario`; the table is assembled from
the normalized :class:`~repro.scenario.runner.RunRecord` metrics.
"""

from __future__ import annotations

import argparse

from repro.analysis.tables import ascii_table
from repro.cli.common import write_records
from repro.errors import ConfigurationError
from repro.scenario import (
    AppSection,
    ClusterSection,
    EngineSection,
    ScenarioSpec,
    default_registry,
    run_scenario,
)


def add_server_parser(sub: argparse._SubParsersAction) -> None:
    """Register the ``server`` subcommand."""
    p = sub.add_parser(
        "server",
        help="cluster server with malleable jobs (the paper's future work)",
        description=(
            "Simulate a cluster serving a stream of malleable jobs under "
            "one or more scheduling policies, and compare turnaround, "
            "cluster efficiency and service rate."
        ),
    )
    p.add_argument("--nodes", type=int, default=16, help="cluster size")
    p.add_argument("--jobs", type=int, default=16, help="workload length")
    p.add_argument(
        "--interarrival", type=float, default=25.0,
        help="mean seconds between job arrivals",
    )
    p.add_argument(
        "--workload", choices=("lu", "mixed"), default="lu",
        help="lu: LU-like decaying jobs; mixed: adds stencil and ramp-up shapes",
    )
    p.add_argument("--seed", type=int, default=1)
    p.add_argument(
        "--policy",
        action="append",
        default=None,
        metavar="NAME",
        help="policy to run (repeatable); default: all of "
             "static, fcfs, backfill, equipartition, adaptive",
    )
    p.add_argument(
        "--nodes-per-job", type=int, default=8,
        help="static policy's fixed per-job allocation",
    )
    p.add_argument(
        "--efficiency-floor", type=float, default=0.5,
        help="adaptive policy's marginal-efficiency threshold",
    )
    p.add_argument(
        "--shards", type=int, default=1,
        help="partition the scenario over K shard kernels (sharded "
             "simulation; 1 = classic single-kernel run)",
    )
    p.add_argument(
        "--shard-mode", choices=("auto", "inprocess", "process"),
        default="auto",
        help="shard execution: worker processes, in-process round-robin, "
             "or auto (processes when >1 CPU); results are identical "
             "either way",
    )
    p.add_argument(
        "--record-json",
        metavar="PATH",
        default=None,
        help="also write the normalized RunRecord(s) as a JSON list",
    )
    p.set_defaults(func=cmd_server)


def cmd_server(args: argparse.Namespace) -> int:
    """Simulate the workload under each requested policy and print a table."""
    if args.shards < 1:
        raise ConfigurationError("--shards must be >= 1")
    registry = default_registry()
    names = args.policy or [
        "static", "fcfs", "backfill", "equipartition", "adaptive"
    ]
    known = registry.names("policy")
    unknown = [n for n in names if n not in known]
    if unknown:
        raise ConfigurationError(
            f"unknown policies {unknown}; choose from {known}"
        )
    shard_note = (
        f", {args.shards} shards ({args.shard_mode})" if args.shards > 1 else ""
    )
    print(
        f"{args.jobs} {args.workload} jobs on {args.nodes} nodes, "
        f"mean interarrival {args.interarrival:.0f} s, seed {args.seed}"
        f"{shard_note}\n"
    )
    records = []
    rows = []
    for name in names:
        spec = ScenarioSpec(
            name=f"server-{name}",
            app=AppSection(args.workload),
            engine=EngineSection(
                name="server",
                seed=args.seed,
                shards=args.shards,
                shard_mode=args.shard_mode,
            ),
            cluster=ClusterSection(
                nodes=args.nodes,
                jobs=args.jobs,
                interarrival=args.interarrival,
                policy=name,
                nodes_per_job=args.nodes_per_job,
                efficiency_floor=args.efficiency_floor,
            ),
        )
        record = run_scenario(spec, registry)
        records.append(record)
        stats = record.raw.get("stats")
        if stats is not None:
            print(
                f"[{record.raw['result'].scheduler}] {stats.epochs} epochs, "
                f"{stats.allocations} reallocations "
                f"({stats.allocations_elided} elided), "
                f"events/shard {list(stats.shard_events)}, "
                f"barrier wait {stats.barrier_wait_s * 1e3:.1f} ms"
            )
        rows.append(
            (
                record.raw["result"].scheduler,
                f"{record.makespan:.1f}",
                f"{record.metrics['mean_turnaround']:.1f}",
                f"{record.metrics['mean_wait']:.1f}",
                f"{record.metrics['mean_slowdown']:.2f}",
                f"{record.metrics['cluster_efficiency'] * 100:.1f}%",
                f"{record.metrics['service_rate']:.3f}",
            )
        )
    print(
        ascii_table(
            (
                "policy",
                "makespan [s]",
                "turnaround [s]",
                "wait [s]",
                "slowdown",
                "cluster eff.",
                "service rate",
            ),
            rows,
        )
    )
    if args.record_json:
        write_records(args.record_json, records)
    return 0
