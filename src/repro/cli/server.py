"""The ``server`` subcommand: cluster-level scheduling comparison (paper §9)."""

from __future__ import annotations

import argparse

from repro.analysis.tables import ascii_table
from repro.clusterserver import (
    AdaptiveEfficiencyScheduler,
    ClusterServer,
    EquipartitionScheduler,
    FcfsScheduler,
    Scheduler,
    ShardedServer,
    StaticScheduler,
    mixed_workload,
    synthetic_workload,
)
from repro.errors import ConfigurationError


def _policies(names: list[str], nodes_per_job: int, floor: float) -> list[Scheduler]:
    registry = {
        "static": lambda: StaticScheduler(nodes_per_job),
        "fcfs": lambda: FcfsScheduler(),
        "backfill": lambda: FcfsScheduler(backfill=True),
        "equipartition": lambda: EquipartitionScheduler(),
        "adaptive": lambda: AdaptiveEfficiencyScheduler(floor),
    }
    unknown = [n for n in names if n not in registry]
    if unknown:
        raise ConfigurationError(
            f"unknown policies {unknown}; choose from {sorted(registry)}"
        )
    return [registry[name]() for name in names]


def add_server_parser(sub: argparse._SubParsersAction) -> None:
    """Register the ``server`` subcommand."""
    p = sub.add_parser(
        "server",
        help="cluster server with malleable jobs (the paper's future work)",
        description=(
            "Simulate a cluster serving a stream of malleable jobs under "
            "one or more scheduling policies, and compare turnaround, "
            "cluster efficiency and service rate."
        ),
    )
    p.add_argument("--nodes", type=int, default=16, help="cluster size")
    p.add_argument("--jobs", type=int, default=16, help="workload length")
    p.add_argument(
        "--interarrival", type=float, default=25.0,
        help="mean seconds between job arrivals",
    )
    p.add_argument(
        "--workload", choices=("lu", "mixed"), default="lu",
        help="lu: LU-like decaying jobs; mixed: adds stencil and ramp-up shapes",
    )
    p.add_argument("--seed", type=int, default=1)
    p.add_argument(
        "--policy",
        action="append",
        default=None,
        metavar="NAME",
        help="policy to run (repeatable); default: all of "
             "static, fcfs, backfill, equipartition, adaptive",
    )
    p.add_argument(
        "--nodes-per-job", type=int, default=8,
        help="static policy's fixed per-job allocation",
    )
    p.add_argument(
        "--efficiency-floor", type=float, default=0.5,
        help="adaptive policy's marginal-efficiency threshold",
    )
    p.add_argument(
        "--shards", type=int, default=1,
        help="partition the scenario over K shard kernels (sharded "
             "simulation; 1 = classic single-kernel run)",
    )
    p.add_argument(
        "--shard-mode", choices=("auto", "inprocess", "process"),
        default="auto",
        help="shard execution: worker processes, in-process round-robin, "
             "or auto (processes when >1 CPU); results are identical "
             "either way",
    )
    p.set_defaults(func=cmd_server)


def cmd_server(args: argparse.Namespace) -> int:
    """Simulate the workload under each requested policy and print a table."""
    if args.shards < 1:
        raise ConfigurationError("--shards must be >= 1")
    make = mixed_workload if args.workload == "mixed" else synthetic_workload
    specs = make(
        jobs=args.jobs,
        mean_interarrival=args.interarrival,
        seed=args.seed,
        max_nodes=min(8, args.nodes),
    )
    names = args.policy or [
        "static", "fcfs", "backfill", "equipartition", "adaptive"
    ]
    policies = _policies(names, args.nodes_per_job, args.efficiency_floor)
    shard_note = (
        f", {args.shards} shards ({args.shard_mode})" if args.shards > 1 else ""
    )
    print(
        f"{args.jobs} {args.workload} jobs on {args.nodes} nodes, "
        f"mean interarrival {args.interarrival:.0f} s, seed {args.seed}"
        f"{shard_note}\n"
    )
    rows = []
    for policy in policies:
        if args.shards > 1:
            server = ShardedServer(
                args.nodes, policy, shards=args.shards, mode=args.shard_mode
            )
            result = server.run(specs)
            stats = server.stats
            print(
                f"[{policy.name}] {stats.epochs} epochs, "
                f"{stats.allocations} reallocations "
                f"({stats.allocations_elided} elided), "
                f"events/shard {list(stats.shard_events)}, "
                f"barrier wait {stats.barrier_wait_s * 1e3:.1f} ms"
            )
        else:
            result = ClusterServer(args.nodes, policy).run(specs)
        rows.append(
            (
                result.scheduler,
                f"{result.makespan:.1f}",
                f"{result.mean_turnaround:.1f}",
                f"{result.mean_wait:.1f}",
                f"{result.mean_slowdown:.2f}",
                f"{result.cluster_efficiency * 100:.1f}%",
                f"{result.service_rate:.3f}",
            )
        )
    print(
        ascii_table(
            (
                "policy",
                "makespan [s]",
                "turnaround [s]",
                "wait [s]",
                "slowdown",
                "cluster eff.",
                "service rate",
            ),
            rows,
        )
    )
    return 0
