"""Command-line interface: ``python -m repro <command>``.

Commands
--------

* ``run`` — execute a declarative scenario spec (TOML/JSON) under its
  declared engine; the single entry point everything else delegates to.
* ``scenarios list`` — show every registered app, model, provider,
  engine, workload and policy a spec may name.
* ``lu`` / ``stencil`` / ``sort`` / ``matmul`` — run an application under
  the simulator (prediction), the virtual cluster (measurement) or both.
* ``efficiency`` — per-iteration dynamic efficiency of an LU run (Fig. 11).
* ``calibrate`` — characterize a network model's latency and bandwidth.
* ``sweep`` — measured-vs-predicted validation sweep; ``--jobs`` runs the
  independent cases on a process pool with a shared calibration cache.
* ``cache`` — manage the on-disk calibration and kernel-benchmark caches
  (``clear`` / ``info [--json]``).
* ``graph`` — dump an application's flow-graph structure.
* ``server`` — cluster-level scheduling of malleable jobs (paper §9);
  ``--shards K`` partitions one scenario over K shard kernels.
* ``serve`` — long-lived scenario service: HTTP/JSON daemon over a
  resident worker pool with in-flight dedup and 429 backpressure.
* ``trend`` — render nightly benchmark artifacts into a static trend
  page; ``--alert-threshold`` gates on first→last regressions.
* ``check`` — AST-based invariant linter enforcing the project's
  determinism, import-hygiene, concurrency and registry/spec/docs
  contracts (see ``docs/staticcheck.md``).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.cli.apps import (
    add_lu_parser,
    add_matmul_parser,
    add_sort_parser,
    add_stencil_parser,
)
from repro.cli.check import add_check_parser
from repro.cli.scenarios import add_run_parser, add_scenarios_parser
from repro.cli.server import add_server_parser
from repro.cli.service import add_serve_parser
from repro.cli.tools import (
    add_cache_parser,
    add_calibrate_parser,
    add_efficiency_parser,
    add_graph_parser,
    add_sweep_parser,
    add_trend_parser,
)
from repro.errors import ReproError


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Simulator for parallel applications with dynamically varying "
            "compute node allocation (Schaeli, Gerlach, Hersch; IPPS 2006)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)
    add_run_parser(sub)
    add_scenarios_parser(sub)
    add_lu_parser(sub)
    add_stencil_parser(sub)
    add_sort_parser(sub)
    add_matmul_parser(sub)
    add_efficiency_parser(sub)
    add_calibrate_parser(sub)
    add_sweep_parser(sub)
    add_cache_parser(sub)
    add_graph_parser(sub)
    add_server_parser(sub)
    add_serve_parser(sub)
    add_trend_parser(sub)
    add_check_parser(sub)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


__all__ = ["build_parser", "main"]
